//! Rate-distortion sweep: compressed size and PSNR across target rates.
//!
//!     cargo run --release --example lossy_rate

use jpeg2000_cell::codec::{decode, encode, EncoderParams};
use jpeg2000_cell::images::{psnr, synth};

fn main() {
    let image = synth::natural(512, 512, 99);
    println!("rate-distortion sweep on a 512x512 grayscale natural image");
    println!(
        "{:>8} {:>12} {:>10} {:>10}",
        "rate", "bytes", "bpp", "PSNR dB"
    );
    for rate in [0.02, 0.05, 0.1, 0.2, 0.4, 0.8] {
        let bytes = encode(&image, &EncoderParams::lossy(rate)).expect("encode");
        let back = decode(&bytes).expect("decode");
        let bpp = bytes.len() as f64 * 8.0 / (image.width * image.height) as f64;
        println!(
            "{:>8.2} {:>12} {:>10.3} {:>10.2}",
            rate,
            bytes.len(),
            bpp,
            psnr(&image, &back).unwrap()
        );
    }
    let lossless = encode(&image, &EncoderParams::lossless()).unwrap();
    println!(
        "{:>8} {:>12} {:>10.3} {:>10}",
        "lossless",
        lossless.len(),
        lossless.len() as f64 * 8.0 / (image.width * image.height) as f64,
        "inf"
    );
}
