//! Explore the DWT loop-schedule variants of Section 4: identical outputs,
//! different data movement, measured host wall time.
//!
//!     cargo run --release --example dwt_explorer

use jpeg2000_cell::dwt::{self, Filter, VerticalVariant};
use jpeg2000_cell::images::synth;
use std::time::Instant;
use xpart::AlignedPlane;

fn main() {
    let edge = 1024;
    let image = synth::natural(edge, edge, 5);
    let dense: Vec<i32> = image.planes[0].iter().map(|&v| v as i32).collect();
    let plane = AlignedPlane::from_dense(edge, edge, &dense).unwrap();

    println!("5-level 5/3 DWT of a {edge}x{edge} image, per vertical-filter variant");
    println!(
        "{:>13} {:>16} {:>14} {:>12}",
        "variant", "traffic/sample", "host ms", "identical?"
    );
    let mut reference: Option<Vec<i32>> = None;
    for variant in [
        VerticalVariant::Separate,
        VerticalVariant::Interleaved,
        VerticalVariant::Merged,
    ] {
        let traffic = dwt::vertical_traffic(variant, Filter::Rev53, edge as u64, edge as u64);
        let t0 = Instant::now();
        let mut p = plane.clone();
        dwt::forward_2d_53(&mut p, 5, variant);
        let elapsed = t0.elapsed().as_secs_f64() * 1e3;
        let out = p.to_dense();
        let identical = match &reference {
            None => {
                reference = Some(out);
                "reference"
            }
            Some(r) => {
                assert_eq!(r, &out, "{variant:?} diverged");
                "yes"
            }
        };
        println!(
            "{:>13} {:>16.2} {:>14.3} {:>12}",
            format!("{variant:?}"),
            traffic.total() as f64 / (edge * edge) as f64,
            elapsed,
            identical
        );
    }
    println!();
    println!("(Traffic = elements crossing the memory bus per input sample in the");
    println!(" Cell mapping; the merged single loop is what Section 4 contributes.)");
}
