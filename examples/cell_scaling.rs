//! Simulated Cell/B.E. scaling: the shapes of Figures 4 and 5 in miniature.
//!
//!     cargo run --release --example cell_scaling

use jpeg2000_cell::codec::cell::{simulate, SimOptions};
use jpeg2000_cell::codec::{encode_with_profile, EncoderParams};
use jpeg2000_cell::images::synth;
use jpeg2000_cell::machine::MachineConfig;

fn main() {
    let image = synth::natural_rgb(512, 512, 7);
    for (name, params) in [
        ("lossless", EncoderParams::lossless()),
        ("lossy r=0.1", EncoderParams::lossy(0.1)),
    ] {
        let (_, profile) = encode_with_profile(&image, &params).expect("encode");
        println!("== {name} encode of 512x512 RGB ==");
        println!("{:>14} {:>12} {:>9}", "config", "sim time ms", "speedup");
        let base = simulate(
            &profile,
            &MachineConfig::qs20_single().with_spes(1),
            &SimOptions::default(),
        )
        .total_seconds();
        for spes in [1usize, 2, 4, 8, 16] {
            let cfg = if spes > 8 {
                MachineConfig::qs20_blade().with_spes(spes)
            } else {
                MachineConfig::qs20_single().with_spes(spes)
            };
            let t = simulate(&profile, &cfg, &SimOptions::default()).total_seconds();
            println!("{:>11} SPE {:>12.3} {:>8.2}x", spes, t * 1e3, base / t);
        }
        let cfg = MachineConfig::qs20_blade();
        let t = simulate(
            &profile,
            &cfg,
            &SimOptions {
                ppe_tier1: true,
                ..Default::default()
            },
        )
        .total_seconds();
        println!("{:>8} + 2 PPE {:>12.3} {:>8.2}x", 16, t * 1e3, base / t);
        println!();
    }
}
