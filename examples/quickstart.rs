//! Quickstart: lossless and lossy encode/decode of a synthetic photograph.
//!
//!     cargo run --release --example quickstart

use jpeg2000_cell::codec::{decode, encode, EncoderParams};
use jpeg2000_cell::images::{psnr, synth};

fn main() {
    let image = synth::natural_rgb(512, 512, 42);
    println!(
        "input: {}x{} RGB, {} raw bytes",
        image.width,
        image.height,
        image.raw_bytes()
    );

    // Lossless: RCT + 5/3, exact reconstruction.
    let bytes = encode(&image, &EncoderParams::lossless()).expect("encode");
    let back = decode(&bytes).expect("decode");
    assert_eq!(back, image, "lossless round-trip must be exact");
    println!(
        "lossless: {} bytes ({:.2}:1), round-trip exact",
        bytes.len(),
        image.raw_bytes() as f64 / bytes.len() as f64
    );

    // Lossy at the paper's rate 0.1 (10:1).
    let bytes = encode(&image, &EncoderParams::lossy(0.1)).expect("encode");
    let back = decode(&bytes).expect("decode");
    println!(
        "lossy r=0.1: {} bytes ({:.2}:1), PSNR {:.2} dB",
        bytes.len(),
        image.raw_bytes() as f64 / bytes.len() as f64,
        psnr(&image, &back).unwrap()
    );

    // The host-parallel encoder produces the identical codestream.
    let par =
        jpeg2000_cell::codec::parallel::encode_parallel(&image, &EncoderParams::lossless(), 4)
            .expect("parallel encode");
    let seq = encode(&image, &EncoderParams::lossless()).unwrap();
    assert_eq!(par, seq);
    println!("host-parallel encoder: byte-identical to sequential");
}
