//! End-to-end tests of the `j2kcell` command-line tool (spawned as a real
//! subprocess, exercising file I/O and argument parsing).

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_j2kcell")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("j2kcell-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn write_test_ppm(path: &PathBuf, w: usize, h: usize) {
    let im = imgio::synth::natural_rgb(w, h, 77);
    imgio::pnm::write(path, &im).unwrap();
}

#[test]
fn encode_decode_roundtrip_via_cli() {
    let src = tmp("in.ppm");
    let j2c = tmp("out.j2c");
    let back = tmp("back.ppm");
    write_test_ppm(&src, 96, 64);
    let st = Command::new(bin())
        .args(["encode"])
        .arg(&src)
        .arg(&j2c)
        .status()
        .unwrap();
    assert!(st.success());
    let st = Command::new(bin())
        .args(["decode"])
        .arg(&j2c)
        .arg(&back)
        .status()
        .unwrap();
    assert!(st.success());
    assert_eq!(std::fs::read(&src).unwrap(), std::fs::read(&back).unwrap());
}

#[test]
fn lossy_flag_shrinks_output() {
    let src = tmp("in2.ppm");
    let lossless = tmp("a.j2c");
    let lossy = tmp("b.j2c");
    write_test_ppm(&src, 128, 128);
    assert!(Command::new(bin())
        .args(["encode"])
        .arg(&src)
        .arg(&lossless)
        .status()
        .unwrap()
        .success());
    assert!(Command::new(bin())
        .args(["encode"])
        .arg(&src)
        .arg(&lossy)
        .args(["--lossy", "0.1"])
        .status()
        .unwrap()
        .success());
    let a = std::fs::metadata(&lossless).unwrap().len();
    let b = std::fs::metadata(&lossy).unwrap().len();
    assert!(b < a, "lossy {b} >= lossless {a}");
    assert!(b as f64 <= 0.1 * (128.0 * 128.0 * 3.0) + 64.0);
}

#[test]
fn info_reports_geometry() {
    let src = tmp("in3.ppm");
    let j2c = tmp("c.j2c");
    write_test_ppm(&src, 40, 30);
    Command::new(bin())
        .args(["encode"])
        .arg(&src)
        .arg(&j2c)
        .status()
        .unwrap();
    let out = Command::new(bin())
        .args(["info"])
        .arg(&j2c)
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("40x30 x3 @ 8 bit"), "{text}");
    assert!(text.contains("reversible 5/3"), "{text}");
}

#[test]
fn reduced_resolution_decode() {
    let src = tmp("in4.ppm");
    let j2c = tmp("d.j2c");
    let half = tmp("half.ppm");
    write_test_ppm(&src, 64, 64);
    Command::new(bin())
        .args(["encode"])
        .arg(&src)
        .arg(&j2c)
        .status()
        .unwrap();
    assert!(Command::new(bin())
        .args(["decode"])
        .arg(&j2c)
        .arg(&half)
        .args(["--resolution", "1"])
        .status()
        .unwrap()
        .success());
    let im = imgio::pnm::read(&half).unwrap();
    assert_eq!((im.width, im.height), (32, 32));
}

#[test]
fn simulate_prints_timeline() {
    let src = tmp("in5.ppm");
    write_test_ppm(&src, 64, 64);
    let out = Command::new(bin())
        .args(["simulate"])
        .arg(&src)
        .args(["--spes", "4"])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tier1"), "{text}");
    assert!(text.contains("4 SPE"), "{text}");
    assert!(text.contains("TOTAL"), "{text}");
}

#[test]
fn workers_flag_is_byte_identical_to_sequential() {
    let src = tmp("in6.ppm");
    let seq = tmp("seq.j2c");
    let par = tmp("par.j2c");
    let alias = tmp("alias.j2c");
    write_test_ppm(&src, 96, 72);
    for (out, extra) in [
        (&seq, &[][..]),
        (&par, &["--workers", "4"][..]),
        (&alias, &["--threads", "3"][..]),
    ] {
        assert!(Command::new(bin())
            .args(["encode"])
            .arg(&src)
            .arg(out)
            .args(extra)
            .status()
            .unwrap()
            .success());
    }
    let seq = std::fs::read(&seq).unwrap();
    assert_eq!(std::fs::read(&par).unwrap(), seq);
    assert_eq!(std::fs::read(&alias).unwrap(), seq);
}

#[test]
fn trace_out_writes_valid_chrome_trace_and_identical_bytes() {
    let src = tmp("in7.ppm");
    let seq = tmp("seq7.j2c");
    let traced = tmp("traced7.j2c");
    let trace = tmp("trace7.json");
    write_test_ppm(&src, 96, 64);
    // Lossy: the reversible 5/3 path has no quantize stage, and this
    // test wants every pipeline span name to appear.
    assert!(Command::new(bin())
        .args(["encode"])
        .arg(&src)
        .arg(&seq)
        .args(["--lossy", "0.5"])
        .status()
        .unwrap()
        .success());
    assert!(Command::new(bin())
        .args(["encode"])
        .arg(&src)
        .arg(&traced)
        .args(["--lossy", "0.5", "--workers", "3", "--trace-out"])
        .arg(&trace)
        .status()
        .unwrap()
        .success());
    assert_eq!(
        std::fs::read(&traced).unwrap(),
        std::fs::read(&seq).unwrap(),
        "tracing must not change output bytes"
    );
    let json = std::fs::read_to_string(&trace).unwrap();
    let events = obs::chrome::check(
        &json,
        &[
            "stage:mct",
            "stage:dwt",
            "stage:quantize",
            "stage:tier1",
            "mct",
            "dwt",
            "quantize",
            "tier1",
            "dwt-level-1",
            "chunk-0",
        ],
    )
    .expect("trace must parse with all pipeline span names");
    // Chunk spans carry worker attribution for the utilization report.
    let workers: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| e.name == "mct" || e.name == "dwt")
        .filter_map(|e| {
            e.args
                .iter()
                .find(|(k, _)| k == "worker")
                .map(|(_, v)| *v as u64)
        })
        .collect();
    assert!(
        workers.len() >= 2,
        "expected chunk spans from >= 2 workers, saw {workers:?}"
    );
}

#[test]
fn trace_out_works_at_one_worker() {
    let src = tmp("in8.ppm");
    let out = tmp("out8.j2c");
    let trace = tmp("trace8.json");
    write_test_ppm(&src, 48, 48);
    assert!(Command::new(bin())
        .args(["encode"])
        .arg(&src)
        .arg(&out)
        .args(["--trace-out"])
        .arg(&trace)
        .status()
        .unwrap()
        .success());
    let json = std::fs::read_to_string(&trace).unwrap();
    obs::chrome::check(&json, &["stage:tier1", "tier1", "mct"])
        .expect("single-worker trace still routes through the parallel driver");
}

#[test]
fn compare_reports_bit_exact_lossless_roundtrip() {
    let src = tmp("cmp-in.ppm");
    let j2c = tmp("cmp.j2c");
    let back = tmp("cmp-back.ppm");
    write_test_ppm(&src, 72, 54);
    for args in [
        vec!["encode", src.to_str().unwrap(), j2c.to_str().unwrap()],
        vec!["decode", j2c.to_str().unwrap(), back.to_str().unwrap()],
    ] {
        assert!(Command::new(bin()).args(&args).status().unwrap().success());
    }
    let out = Command::new(bin())
        .args(["compare"])
        .arg(&src)
        .arg(&back)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bit-exact"), "{text}");
    // JSON mode carries the identical flag and null (infinite) PSNR.
    let out = Command::new(bin())
        .args(["compare", "--json"])
        .arg(&src)
        .arg(&back)
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"identical\":true"), "{json}");
    assert!(json.contains("\"psnr\":null"), "{json}");
}

#[test]
fn compare_gates_lossy_quality() {
    let src = tmp("cmpq-in.ppm");
    let j2c = tmp("cmpq.j2c");
    let back = tmp("cmpq-back.ppm");
    write_test_ppm(&src, 96, 96);
    assert!(Command::new(bin())
        .args(["encode"])
        .arg(&src)
        .arg(&j2c)
        .args(["--lossy", "0.3"])
        .status()
        .unwrap()
        .success());
    assert!(Command::new(bin())
        .args(["decode"])
        .arg(&j2c)
        .arg(&back)
        .status()
        .unwrap()
        .success());
    // A sane floor passes...
    assert!(Command::new(bin())
        .args(["compare"])
        .arg(&src)
        .arg(&back)
        .args(["--min-psnr", "20", "--min-ssim", "0.5"])
        .status()
        .unwrap()
        .success());
    // ...an impossible floor exits 1 (distinct from usage errors at 2).
    let st = Command::new(bin())
        .args(["compare"])
        .arg(&src)
        .arg(&back)
        .args(["--min-psnr", "95"])
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(1));
}

#[test]
fn compare_rejects_mismatched_geometry() {
    let a = tmp("cmp-a.ppm");
    let b = tmp("cmp-b.ppm");
    write_test_ppm(&a, 32, 32);
    write_test_ppm(&b, 33, 32);
    let st = Command::new(bin())
        .args(["compare"])
        .arg(&a)
        .arg(&b)
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(2));
}

#[test]
fn help_documents_workers() {
    let out = Command::new(bin()).args(["--help"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--workers N"), "{text}");
    assert!(text.contains("byte-identical"), "{text}");
}

#[test]
fn bad_arguments_exit_nonzero() {
    assert!(!Command::new(bin()).status().unwrap().success());
    assert!(!Command::new(bin())
        .args(["encode", "only-one-arg"])
        .status()
        .unwrap()
        .success());
    assert!(!Command::new(bin())
        .args(["decode", "/nonexistent.j2c", "/tmp/x.ppm"])
        .status()
        .unwrap()
        .success());
    assert!(!Command::new(bin())
        .args(["frobnicate"])
        .status()
        .unwrap()
        .success());
}
