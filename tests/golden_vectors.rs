//! Golden codestream corpus: byte-exact fixtures under `tests/golden/`
//! that pin the encoder's output — header syntax, rate allocation, and
//! Tier-2 packet bytes — across refactors of the rate-control/Tier-2
//! tail. Any intentional format or R-D change must re-bless the corpus:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --release --test golden_vectors
//! ```
//!
//! Every case is also encoded through `encode_parallel` (several worker
//! counts) and `encode_on_cell`, so the corpus simultaneously proves the
//! cross-driver byte-identity invariant on fixed inputs, and every lossy
//! case carries a decoder round-trip PSNR floor so a rate-control change
//! that silently trades quality for rate is caught even when the bytes
//! are re-blessed.

use jpeg2000_cell::codec::cell::SimOptions;
use jpeg2000_cell::codec::parallel::encode_parallel;
use jpeg2000_cell::codec::{decode, encode, encode_on_cell, Arithmetic, Coder, EncoderParams};
use jpeg2000_cell::images::Image;
use jpeg2000_cell::machine::MachineConfig;
use jpeg2000_cell::quality;
use std::path::PathBuf;

struct Case {
    /// Fixture file stem under `tests/golden/`.
    name: &'static str,
    image: fn() -> Image,
    params: EncoderParams,
    /// Decoder round-trip PSNR floor in dB; `None` for lossless cases
    /// (those must reconstruct exactly).
    psnr_floor: Option<f64>,
}

fn synth() -> Vec<Case> {
    use jpeg2000_cell::images::synth::*;
    // Geometry notes: 57 and 100 are not multiples of the column-chunk
    // width, 31x47 is odd in both axes, and the 100x1 / 129x1 cases are
    // the 1-pixel-tall degenerate strips.
    vec![
        Case {
            name: "lossless_gray_64x64",
            image: || natural(64, 64, 7),
            params: EncoderParams::lossless(),
            psnr_floor: None,
        },
        Case {
            name: "lossless_rgb_57x33",
            image: || natural_rgb(57, 33, 4),
            params: EncoderParams {
                levels: 3,
                cb_size: 32,
                ..EncoderParams::lossless()
            },
            psnr_floor: None,
        },
        Case {
            name: "lossless_strip_100x1",
            image: || natural(100, 1, 3),
            params: EncoderParams {
                levels: 2,
                ..EncoderParams::lossless()
            },
            psnr_floor: None,
        },
        Case {
            name: "lossless_noise_bypass_31x47",
            image: || noise(31, 47, 9),
            params: EncoderParams {
                bypass: true,
                ..EncoderParams::lossless()
            },
            psnr_floor: None,
        },
        Case {
            name: "lossy_gray_96x96_r25",
            image: || natural(96, 96, 11),
            params: EncoderParams::lossy(0.25),
            psnr_floor: Some(30.0),
        },
        Case {
            name: "lossy_rgb_100x40_r40_l3",
            image: || natural_rgb(100, 40, 8),
            params: EncoderParams {
                layers: 3,
                ..EncoderParams::lossy(0.4)
            },
            psnr_floor: Some(30.0),
        },
        Case {
            name: "lossy_fixed_64x64_r30",
            image: || natural(64, 64, 2),
            params: EncoderParams {
                arithmetic: Arithmetic::FixedQ13,
                ..EncoderParams::lossy(0.3)
            },
            psnr_floor: Some(30.0),
        },
        Case {
            name: "lossy_strip_129x1_r50",
            image: || natural(129, 1, 5),
            params: EncoderParams {
                levels: 1,
                ..EncoderParams::lossy(0.5)
            },
            // Degenerate budget: 50% of a 129-byte strip is mostly marker
            // overhead, so reconstruction quality is inherently low. The
            // case pins codestream shape, not fidelity (measured ~10.8 dB).
            psnr_floor: Some(9.5),
        },
        Case {
            name: "lossy_rgb_bypass_72x56_r20",
            image: || natural_rgb(72, 56, 5),
            params: EncoderParams {
                bypass: true,
                ..EncoderParams::lossy(0.2)
            },
            psnr_floor: Some(27.0),
        },
        // HT (high-throughput quad coder) legs: same shapes as the MQ
        // cases above so a Tier-1 backend regression shows up as a diff
        // against a directly comparable fixture.
        Case {
            name: "ht_lossless_gray_64x64",
            image: || natural(64, 64, 7),
            params: EncoderParams {
                coder: Coder::Ht,
                ..EncoderParams::lossless()
            },
            psnr_floor: None,
        },
        Case {
            name: "ht_lossless_rgb_57x33",
            image: || natural_rgb(57, 33, 4),
            params: EncoderParams {
                levels: 3,
                cb_size: 32,
                coder: Coder::Ht,
                ..EncoderParams::lossless()
            },
            psnr_floor: None,
        },
        Case {
            name: "ht_lossy_gray_96x96_r25",
            image: || natural(96, 96, 11),
            params: EncoderParams {
                coder: Coder::Ht,
                ..EncoderParams::lossy(0.25)
            },
            // The HT cleanup's coarser truncation grid costs rate vs MQ
            // at a fixed budget; the exact figure is pinned by
            // quality.json, this floor only catches collapses.
            psnr_floor: Some(27.0),
        },
        Case {
            name: "ht_lossy_rgb_100x40_r40_l3",
            image: || natural_rgb(100, 40, 8),
            params: EncoderParams {
                layers: 3,
                coder: Coder::Ht,
                ..EncoderParams::lossy(0.4)
            },
            psnr_floor: Some(27.0),
        },
    ]
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.j2c"))
}

fn blessing() -> bool {
    std::env::var_os("GOLDEN_BLESS").is_some_and(|v| v == "1")
}

/// Byte-diff every corpus case against its fixture, through every
/// encoder driver. With `GOLDEN_BLESS=1` the fixtures are rewritten from
/// the sequential encoder instead (the drivers are still cross-checked).
#[test]
fn corpus_is_byte_exact_across_drivers() {
    let mut blessed = 0;
    for case in synth() {
        let im = (case.image)();
        let seq = encode(&im, &case.params).expect(case.name);
        for workers in [2usize, 5] {
            let par = encode_parallel(&im, &case.params, workers).expect(case.name);
            assert_eq!(par, seq, "{}: parallel({workers}) differs", case.name);
        }
        let (cell, _, _) = encode_on_cell(
            &im,
            &case.params,
            &MachineConfig::qs20_single(),
            &SimOptions::default(),
        )
        .expect(case.name);
        assert_eq!(cell, seq, "{}: cell-sim differs", case.name);

        let path = fixture_path(case.name);
        if blessing() {
            std::fs::write(&path, &seq).expect(case.name);
            blessed += 1;
            continue;
        }
        let golden = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "{}: missing fixture {} ({e}); regenerate with GOLDEN_BLESS=1",
                case.name,
                path.display()
            )
        });
        assert_eq!(
            seq,
            golden,
            "{}: codestream diverged from golden fixture (lengths {} vs {}); if \
             intentional, re-bless with GOLDEN_BLESS=1",
            case.name,
            seq.len(),
            golden.len()
        );
    }
    if blessing() {
        panic!("blessed {blessed} fixtures; rerun without GOLDEN_BLESS to verify");
    }
}

fn quality_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/quality.json")
}

/// Pull one recorded metric for `name` out of the hand-rolled
/// `quality.json` (`None` = recorded as `null`, i.e. infinite PSNR).
fn recorded_metric(json: &str, name: &str, field: &str) -> Option<Option<f64>> {
    let obj = &json[json.find(&format!("\"{name}\": {{"))?..];
    let obj = &obj[..obj.find('}')?];
    let v = obj[obj.find(&format!("\"{field}\":"))? + field.len() + 3..].trim_start();
    let v: String = v
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '-')
        .collect();
    if v == "null" {
        Some(None)
    } else {
        v.parse().ok().map(Some)
    }
}

/// The closed loop: decode every fixture *and measure it*. Measured PSNR
/// and SSIM (via `j2k-metrics`) are recorded in `tests/golden/quality.json`
/// at bless time; afterwards every run re-measures and fails if quality
/// drops below the recording — a rate-control change that keeps the rate
/// but silently spends quality cannot hide behind a re-blessed byte
/// corpus without this file changing too. Lossy cases are measured at
/// several worker counts, so the quality statement (not just the byte
/// statement) covers every encoder driver.
#[test]
fn fixtures_measured_quality_matches_recorded() {
    // Measured-PSNR slack: decode is deterministic, so drift can only
    // come from an intentional codec change; the epsilon only absorbs
    // float formatting (6 decimals in the recording).
    const PSNR_EPS: f64 = 1e-4;
    const SSIM_EPS: f64 = 1e-5;
    let mut records = Vec::new();
    for case in synth() {
        let im = (case.image)();
        // Bless mode measures the fresh encode (the same bytes the
        // sibling test is writing to disk); verify mode measures the
        // on-disk fixture so corpus and recording cannot drift apart.
        let bytes = if blessing() {
            encode(&im, &case.params).expect(case.name)
        } else {
            std::fs::read(fixture_path(case.name)).unwrap_or_else(|e| {
                panic!(
                    "{}: missing fixture ({e}); regenerate with GOLDEN_BLESS=1",
                    case.name
                )
            })
        };
        let c = quality::compare(&im, &decode(&bytes).expect(case.name)).expect(case.name);
        if case.psnr_floor.is_none() {
            assert!(c.identical, "{}: lossless fixture not bit-exact", case.name);
        } else {
            // The same quality must be measured from every driver's
            // output, not just the sequential bytes.
            for workers in [2usize, 5] {
                let par = encode_parallel(&im, &case.params, workers).expect(case.name);
                let cp = quality::compare(&im, &decode(&par).expect(case.name)).expect(case.name);
                assert_eq!(
                    (cp.psnr, cp.ssim),
                    (c.psnr, c.ssim),
                    "{}: measured quality differs at {workers} workers",
                    case.name
                );
            }
        }
        if blessing() {
            let psnr = if c.psnr.is_finite() {
                format!("{:.6}", c.psnr)
            } else {
                "null".into()
            };
            records.push(format!(
                "  \"{}\": {{\"psnr\": {psnr}, \"ssim\": {:.6}}}",
                case.name, c.ssim
            ));
            continue;
        }
        let json = std::fs::read_to_string(quality_path()).unwrap_or_else(|e| {
            panic!("missing quality recording ({e}); regenerate with GOLDEN_BLESS=1")
        });
        let want_psnr = recorded_metric(&json, case.name, "psnr")
            .unwrap_or_else(|| panic!("{}: no psnr recorded; re-bless quality.json", case.name));
        let want_ssim = recorded_metric(&json, case.name, "ssim")
            .flatten()
            .unwrap_or_else(|| panic!("{}: no ssim recorded; re-bless quality.json", case.name));
        match want_psnr {
            None => assert!(
                c.psnr.is_infinite(),
                "{}: recorded lossless (psnr null) but measured {:.2} dB",
                case.name,
                c.psnr
            ),
            Some(want) => assert!(
                c.psnr >= want - PSNR_EPS,
                "{}: measured PSNR {:.4} dB below recorded {want:.4} dB; if the \
                 quality change is intentional, re-bless with GOLDEN_BLESS=1",
                case.name,
                c.psnr
            ),
        }
        assert!(
            c.ssim >= want_ssim - SSIM_EPS,
            "{}: measured SSIM {:.6} below recorded {want_ssim:.6}; if intentional, \
             re-bless with GOLDEN_BLESS=1",
            case.name,
            c.ssim
        );
    }
    if blessing() {
        std::fs::write(quality_path(), format!("{{\n{}\n}}\n", records.join(",\n")))
            .expect("write quality.json");
        panic!(
            "blessed quality recordings for {} cases; rerun without GOLDEN_BLESS to verify",
            records.len()
        );
    }
}

/// Decode every lossy fixture from its *on-disk bytes* (not a fresh
/// encode) and hold the reconstruction to a PSNR floor. Lossless
/// fixtures must reconstruct the input exactly.
#[test]
fn fixtures_decode_within_quality_floor() {
    if blessing() {
        return; // fixtures are being rewritten in the sibling test
    }
    for case in synth() {
        let im = (case.image)();
        let golden = std::fs::read(fixture_path(case.name)).unwrap_or_else(|e| {
            panic!(
                "{}: missing fixture ({e}); regenerate with GOLDEN_BLESS=1",
                case.name
            )
        });
        let back = decode(&golden).expect(case.name);
        match case.psnr_floor {
            None => assert_eq!(back, im, "{}: lossless fixture not exact", case.name),
            Some(floor) => {
                let p = jpeg2000_cell::images::psnr(&im, &back).expect(case.name);
                assert!(
                    p >= floor,
                    "{}: PSNR {p:.2} dB below floor {floor} dB",
                    case.name
                );
            }
        }
    }
}
