//! System-level property tests of the codec: lossless exactness over
//! arbitrary content, decoder robustness against corruption, and
//! equivalence of the encoder drivers. The corruption suite is
//! *semantic*: a mutated or truncated stream must yield either a typed
//! error or a well-formed, measurable image — never a panic, and never
//! an image the comparator cannot hold against the original.

use jpeg2000_cell::codec::cell::SimOptions;
use jpeg2000_cell::codec::parallel::encode_parallel;
use jpeg2000_cell::codec::{
    decode, decode_layers, decode_prefix, encode, encode_on_cell, encode_with_profile,
    transform_coefficients, transform_coefficients_parallel, Coder, EncoderParams, ParallelOptions,
};
use jpeg2000_cell::decomposition::CACHE_LINE;
use jpeg2000_cell::images::Image;
use jpeg2000_cell::machine::MachineConfig;
use jpeg2000_cell::quality;
use proptest::prelude::*;

fn image_strategy() -> impl Strategy<Value = Image> {
    (
        1usize..80,
        1usize..80,
        prop_oneof![Just(1usize), Just(3)],
        any::<u32>(),
        0u8..4,
    )
        .prop_map(|(w, h, comps, seed, kind)| {
            let mut im = Image::new(w, h, comps, 8).unwrap();
            let mut x = seed | 1;
            for c in 0..comps {
                for i in 0..w * h {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    im.planes[c][i] = match kind {
                        0 => (x >> 9) as u16 % 256,               // noise
                        1 => ((i % w) * 255 / w.max(1)) as u16,   // ramp
                        2 => u16::from((x >> 13) % 7 == 0) * 255, // sparse spikes
                        _ => (128 + ((i / w) % 3) * 9) as u16,    // bands
                    };
                }
            }
            im
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lossless_roundtrip_arbitrary_images(
        im in image_strategy(),
        levels in 1usize..5,
        cb_exp in 2u32..7,
    ) {
        let params = EncoderParams {
            levels,
            cb_size: 1 << cb_exp,
            ..EncoderParams::lossless()
        };
        let bytes = encode(&im, &params).unwrap();
        prop_assert_eq!(decode(&bytes).unwrap(), im);
    }

    #[test]
    fn lossy_never_errors_and_respects_rate(
        im in image_strategy(),
        rate in 0.05f64..0.9,
    ) {
        let params = EncoderParams { levels: 3, ..EncoderParams::lossy(rate) };
        let bytes = encode(&im, &params).unwrap();
        // The fixed markers + one empty packet header per (band, comp,
        // layer) are a floor no encoder can truncate below; beyond that
        // the budget must hold.
        let floor = 128.0 + (10 * im.comps()) as f64;
        prop_assert!(
            bytes.len() as f64 <= rate * im.raw_bytes() as f64 + floor,
            "{} bytes for budget {}",
            bytes.len(),
            rate * im.raw_bytes() as f64
        );
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(back.width, im.width);
        prop_assert_eq!(back.comps(), im.comps());
    }

    #[test]
    fn parallel_driver_always_matches(
        im in image_strategy(),
        workers in 1usize..=8,
    ) {
        let params = EncoderParams { levels: 2, ..EncoderParams::lossless() };
        let seq = encode(&im, &params).unwrap();
        let par = encode_parallel(&im, &params, workers).unwrap();
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn all_three_drivers_byte_identical(
        im in image_strategy(),
        workers in 1usize..=8,
        lossy in any::<bool>(),
    ) {
        // The paper's invariant: parallelization never changes the
        // codestream. Sequential, host-parallel (any worker count), and
        // Cell-simulated encoders must agree byte for byte.
        let params = if lossy {
            EncoderParams { levels: 2, ..EncoderParams::lossy(0.4) }
        } else {
            EncoderParams { levels: 2, ..EncoderParams::lossless() }
        };
        let seq = encode(&im, &params).unwrap();
        let par = encode_parallel(&im, &params, workers).unwrap();
        prop_assert_eq!(&par, &seq);
        let (cell, _, _) = encode_on_cell(
            &im,
            &params,
            &MachineConfig::qs20_single(),
            &SimOptions::default(),
        ).unwrap();
        prop_assert_eq!(&cell, &seq);
    }

    #[test]
    fn chunked_transform_matches_sequential_coefficients(
        im in image_strategy(),
        levels in 1usize..5,
        workers in 1usize..=8,
        chunk_lines in 1usize..5,
        lossy in any::<bool>(),
    ) {
        // Coefficient-for-coefficient equality of the chunk-parallel sample
        // stages against the sequential reference, over arbitrary widths —
        // including widths that are not a multiple of the chunk width, so
        // the remainder chunk on the calling thread is exercised.
        let params = if lossy {
            EncoderParams { levels, ..EncoderParams::lossy(0.3) }
        } else {
            EncoderParams { levels, ..EncoderParams::lossless() }
        };
        let opts = ParallelOptions { chunk_width_bytes: Some(chunk_lines * CACHE_LINE) };
        let seq = transform_coefficients(&im, &params).unwrap();
        let par = transform_coefficients_parallel(&im, &params, workers, &opts).unwrap();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn truncated_streams_commit_whole_layers_or_error_typed(
        im in image_strategy(),
        cut_frac in 0.0f64..1.0,
        layers in 1usize..4,
    ) {
        // A truncated progressive stream is not just "no panic": the
        // lenient prefix decoder must either report a typed error (header
        // cut short) or reconstruct a degraded-but-well-formed image that
        // is bit-identical to an honest layer-limited decode.
        let params = EncoderParams { levels: 2, layers, ..EncoderParams::lossy(0.5) };
        let bytes = encode(&im, &params).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        match decode_prefix(&bytes[..cut]) {
            Err(e) => prop_assert!(!e.to_string().is_empty()),
            Ok((img, committed)) => {
                prop_assert_eq!((img.width, img.height, img.comps()),
                                (im.width, im.height, im.comps()));
                prop_assert!(committed <= layers);
                prop_assert_eq!(&img, &decode_layers(&bytes, committed).unwrap());
                // The comparator can always hold a committed image
                // against the original.
                let c = quality::compare(&im, &img).unwrap();
                prop_assert!(c.psnr > 0.0);
            }
        }
        // The strict decoder on the same prefix: Ok (full stream) or a
        // typed error — never a panic.
        if let Err(e) = decode(&bytes[..cut]) {
            prop_assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn decoder_yields_typed_error_or_wellformed_image_on_bitflips(
        im in image_strategy(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes =
            encode(&im, &EncoderParams { levels: 2, ..Default::default() }).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        match decode(&bytes) {
            Err(e) => prop_assert!(!e.to_string().is_empty()),
            Ok(img) => {
                // A flipped header bit may change claimed geometry, but
                // whatever comes back must be internally consistent, and
                // measurable whenever the geometry still matches.
                prop_assert!(img.validate().is_ok());
                if let Ok(c) = quality::compare(&im, &img) {
                    prop_assert!(c.psnr > 0.0 && c.ssim.is_finite());
                }
            }
        }
    }

    #[test]
    fn decoder_yields_typed_error_or_wellformed_image_on_byte_mutations(
        im in image_strategy(),
        pos_frac in 0.0f64..1.0,
        val in 0u32..256,
    ) {
        // Overwrite one byte with an arbitrary value (not just a bit flip).
        let mut bytes =
            encode(&im, &EncoderParams { levels: 2, ..Default::default() }).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = val as u8;
        match decode(&bytes) {
            Err(e) => prop_assert!(!e.to_string().is_empty()),
            Ok(img) => prop_assert!(img.validate().is_ok()),
        }
    }

    #[test]
    fn decoder_survives_mutation_plus_truncation(
        im in image_strategy(),
        pos_frac in 0.0f64..1.0,
        cut_frac in 0.0f64..1.0,
        val in 0u32..256,
    ) {
        let mut bytes =
            encode(&im, &EncoderParams { levels: 2, ..Default::default() }).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = val as u8;
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        match decode(&bytes[..cut]) {
            Err(e) => prop_assert!(!e.to_string().is_empty()),
            Ok(img) => prop_assert!(img.validate().is_ok()),
        }
        // The lenient path on the same damaged prefix must also hold the
        // no-panic, well-formed-or-typed contract.
        match decode_prefix(&bytes[..cut]) {
            Err(e) => prop_assert!(!e.to_string().is_empty()),
            Ok((img, _)) => prop_assert!(img.validate().is_ok()),
        }
    }

    #[test]
    fn lossless_roundtrip_bit_exact_at_any_depth_and_worker_count(
        w in 8usize..48,
        h in 8usize..48,
        comps in prop_oneof![Just(1usize), Just(3)],
        depth in prop_oneof![Just(8u8), Just(10), Just(12), Just(16)],
        seed in any::<u32>(),
        workers in 1usize..=6,
    ) {
        // The closed loop at full strength: any bit depth, any worker
        // count, encode -> decode -> bit-exact, and the comparator agrees
        // (identical flag, infinite PSNR, SSIM exactly 1).
        let mut im = Image::new(w, h, comps, depth).unwrap();
        let span = u32::from(im.max_value()) + 1;
        let mut x = seed | 1;
        for c in 0..comps {
            for v in &mut im.planes[c] {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                *v = ((x >> 9) % span) as u16;
            }
        }
        let params = EncoderParams { levels: 2, ..EncoderParams::lossless() };
        let bytes = encode_parallel(&im, &params, workers).unwrap();
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(&back, &im);
        let c = quality::compare(&im, &back).unwrap();
        prop_assert!(c.identical && c.psnr.is_infinite() && c.ssim == 1.0);
    }

    #[test]
    fn lossy_roundtrip_quality_measured_above_floor(
        w in 48usize..97,
        h in 48usize..97,
        seed in any::<u64>(),
        rgb in any::<bool>(),
        rate in 0.3f64..0.8,
    ) {
        // Natural (smooth) content at a generous rate must reconstruct
        // to a measured PSNR/SSIM floor — the property-level version of
        // the golden corpus quality gate.
        let im = if rgb {
            jpeg2000_cell::images::synth::natural_rgb(w, h, seed)
        } else {
            jpeg2000_cell::images::synth::natural(w, h, seed)
        };
        let params = EncoderParams { levels: 2, ..EncoderParams::lossy(rate) };
        let bytes = encode(&im, &params).unwrap();
        let c = quality::compare(&im, &decode(&bytes).unwrap()).unwrap();
        prop_assert!(
            c.psnr >= 20.0,
            "PSNR {:.2} dB below 20 dB floor at rate {rate:.2}", c.psnr
        );
        prop_assert!(
            c.ssim >= 0.5,
            "SSIM {:.4} below 0.5 floor at rate {rate:.2}", c.ssim
        );
    }

    #[test]
    fn lossy_parallel_identity_with_rate_control_active(
        im in image_strategy(),
        workers in 1usize..=8,
        rate in 0.05f64..0.6,
        layers in 1usize..4,
    ) {
        // The PCRD search, the budget-shrink retry loop, and Tier-2
        // packet assembly all run on the parallel tail here; the result
        // must equal the sequential driver byte for byte at every worker
        // count — even when the loop retries or gives up.
        let params = EncoderParams {
            levels: 2,
            layers,
            ..EncoderParams::lossy(rate)
        };
        let seq = encode(&im, &params).unwrap();
        let par = encode_parallel(&im, &params, workers).unwrap();
        prop_assert_eq!(&par, &seq);
    }

    #[test]
    fn lossy_budget_respected_whenever_shrink_loop_converges(
        im in image_strategy(),
        rate in 0.02f64..0.7,
        layers in 1usize..5,
    ) {
        // Unconditional budget assertions need a floor fudge for tiny
        // images (see lossy_never_errors_and_respects_rate); but whenever
        // the encoder itself reports the shrink loop converged, the hard
        // budget holds with no allowance at all.
        let params = EncoderParams {
            levels: 2,
            layers,
            ..EncoderParams::lossy(rate)
        };
        let (bytes, prof) = encode_with_profile(&im, &params).unwrap();
        if prof.rate_converged {
            let limit = (rate * im.raw_bytes() as f64) as usize;
            prop_assert!(
                bytes.len() <= limit,
                "converged but {} > limit {} (retries {})",
                bytes.len(),
                limit,
                prof.rate_retries
            );
        }
        // Either way the stream decodes.
        let _ = decode(&bytes).unwrap();
    }

    #[test]
    fn ht_lossless_roundtrip_bit_exact_at_any_depth_and_worker_count(
        w in 8usize..48,
        h in 8usize..48,
        comps in prop_oneof![Just(1usize), Just(3)],
        depth in prop_oneof![Just(8u8), Just(10), Just(12), Just(16)],
        seed in any::<u32>(),
        workers in 1usize..=6,
    ) {
        // The HT backend under the same closed loop the MQ coder passes:
        // any bit depth, any worker count, encode -> decode -> bit-exact.
        let mut im = Image::new(w, h, comps, depth).unwrap();
        let span = u32::from(im.max_value()) + 1;
        let mut x = seed | 1;
        for c in 0..comps {
            for v in &mut im.planes[c] {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                *v = ((x >> 9) % span) as u16;
            }
        }
        let params = EncoderParams {
            levels: 2,
            coder: Coder::Ht,
            ..EncoderParams::lossless()
        };
        let bytes = encode_parallel(&im, &params, workers).unwrap();
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(&back, &im);
        let c = quality::compare(&im, &back).unwrap();
        prop_assert!(c.identical && c.psnr.is_infinite() && c.ssim == 1.0);
    }

    #[test]
    fn ht_byte_identical_across_all_drivers_and_worker_counts(
        im in image_strategy(),
        lossy in any::<bool>(),
        layers in 1usize..4,
    ) {
        // Ordered-merge determinism for the HT backend: sequential,
        // parallel at several worker counts, and the cell-sim driver all
        // emit the same bytes, with and without rate control.
        let params = EncoderParams {
            levels: 2,
            layers,
            coder: Coder::Ht,
            ..if lossy { EncoderParams::lossy(0.3) } else { EncoderParams::lossless() }
        };
        let seq = encode(&im, &params).unwrap();
        for workers in [1usize, 2, 5, 8] {
            let par = encode_parallel(&im, &params, workers).unwrap();
            prop_assert_eq!(&par, &seq, "workers={} differs", workers);
        }
        let (cell, _, _) = encode_on_cell(
            &im,
            &params,
            &MachineConfig::qs20_single(),
            &SimOptions::default(),
        ).unwrap();
        prop_assert_eq!(&cell, &seq, "cell-sim differs");
    }

    #[test]
    fn ht_lossy_quality_tracks_mq_at_matched_rate(
        w in 48usize..97,
        h in 48usize..97,
        seed in any::<u64>(),
        rgb in any::<bool>(),
        rate in 0.3f64..0.8,
    ) {
        // Measured-quality comparison at a matched rate budget: the HT
        // coder's coarser truncation grid may cost fidelity, but on
        // natural content at generous rates it must stay within a fixed
        // band of the MQ coder's measured PSNR/SSIM — and above the same
        // absolute floor the MQ property test enforces.
        let im = if rgb {
            jpeg2000_cell::images::synth::natural_rgb(w, h, seed)
        } else {
            jpeg2000_cell::images::synth::natural(w, h, seed)
        };
        let mq = EncoderParams { levels: 2, ..EncoderParams::lossy(rate) };
        let ht = EncoderParams { coder: Coder::Ht, ..mq };
        let cm = quality::compare(&im, &decode(&encode(&im, &mq).unwrap()).unwrap()).unwrap();
        let ch = quality::compare(&im, &decode(&encode(&im, &ht).unwrap()).unwrap()).unwrap();
        prop_assert!(
            ch.psnr >= 20.0 && ch.ssim >= 0.5,
            "HT fell below the absolute floor: {:.2} dB / SSIM {:.4} at rate {rate:.2}",
            ch.psnr, ch.ssim
        );
        // PSNR of either coder can be infinite (or astronomically
        // high) when the budget covers a near-lossless reconstruction;
        // clamp to 50 dB — transparent quality — before differencing, so
        // the band only binds where the difference is perceptible.
        let gap = cm.psnr.min(50.0) - ch.psnr.min(50.0);
        prop_assert!(
            gap <= 10.0,
            "HT trails MQ by {gap:.2} dB at rate {rate:.2} ({:.2} vs {:.2})",
            ch.psnr, cm.psnr
        );
    }
}
