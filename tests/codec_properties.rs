//! System-level property tests of the codec: lossless exactness over
//! arbitrary content, decoder robustness against corruption, and
//! equivalence of the encoder drivers.

use jpeg2000_cell::codec::cell::SimOptions;
use jpeg2000_cell::codec::parallel::encode_parallel;
use jpeg2000_cell::codec::{
    decode, encode, encode_on_cell, encode_with_profile, transform_coefficients,
    transform_coefficients_parallel, EncoderParams, ParallelOptions,
};
use jpeg2000_cell::decomposition::CACHE_LINE;
use jpeg2000_cell::images::Image;
use jpeg2000_cell::machine::MachineConfig;
use proptest::prelude::*;

fn image_strategy() -> impl Strategy<Value = Image> {
    (
        1usize..80,
        1usize..80,
        prop_oneof![Just(1usize), Just(3)],
        any::<u32>(),
        0u8..4,
    )
        .prop_map(|(w, h, comps, seed, kind)| {
            let mut im = Image::new(w, h, comps, 8).unwrap();
            let mut x = seed | 1;
            for c in 0..comps {
                for i in 0..w * h {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    im.planes[c][i] = match kind {
                        0 => (x >> 9) as u16 % 256,               // noise
                        1 => ((i % w) * 255 / w.max(1)) as u16,   // ramp
                        2 => u16::from((x >> 13) % 7 == 0) * 255, // sparse spikes
                        _ => (128 + ((i / w) % 3) * 9) as u16,    // bands
                    };
                }
            }
            im
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lossless_roundtrip_arbitrary_images(
        im in image_strategy(),
        levels in 1usize..5,
        cb_exp in 2u32..7,
    ) {
        let params = EncoderParams {
            levels,
            cb_size: 1 << cb_exp,
            ..EncoderParams::lossless()
        };
        let bytes = encode(&im, &params).unwrap();
        prop_assert_eq!(decode(&bytes).unwrap(), im);
    }

    #[test]
    fn lossy_never_errors_and_respects_rate(
        im in image_strategy(),
        rate in 0.05f64..0.9,
    ) {
        let params = EncoderParams { levels: 3, ..EncoderParams::lossy(rate) };
        let bytes = encode(&im, &params).unwrap();
        // The fixed markers + one empty packet header per (band, comp,
        // layer) are a floor no encoder can truncate below; beyond that
        // the budget must hold.
        let floor = 128.0 + (10 * im.comps()) as f64;
        prop_assert!(
            bytes.len() as f64 <= rate * im.raw_bytes() as f64 + floor,
            "{} bytes for budget {}",
            bytes.len(),
            rate * im.raw_bytes() as f64
        );
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(back.width, im.width);
        prop_assert_eq!(back.comps(), im.comps());
    }

    #[test]
    fn parallel_driver_always_matches(
        im in image_strategy(),
        workers in 1usize..=8,
    ) {
        let params = EncoderParams { levels: 2, ..EncoderParams::lossless() };
        let seq = encode(&im, &params).unwrap();
        let par = encode_parallel(&im, &params, workers).unwrap();
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn all_three_drivers_byte_identical(
        im in image_strategy(),
        workers in 1usize..=8,
        lossy in any::<bool>(),
    ) {
        // The paper's invariant: parallelization never changes the
        // codestream. Sequential, host-parallel (any worker count), and
        // Cell-simulated encoders must agree byte for byte.
        let params = if lossy {
            EncoderParams { levels: 2, ..EncoderParams::lossy(0.4) }
        } else {
            EncoderParams { levels: 2, ..EncoderParams::lossless() }
        };
        let seq = encode(&im, &params).unwrap();
        let par = encode_parallel(&im, &params, workers).unwrap();
        prop_assert_eq!(&par, &seq);
        let (cell, _, _) = encode_on_cell(
            &im,
            &params,
            &MachineConfig::qs20_single(),
            &SimOptions::default(),
        ).unwrap();
        prop_assert_eq!(&cell, &seq);
    }

    #[test]
    fn chunked_transform_matches_sequential_coefficients(
        im in image_strategy(),
        levels in 1usize..5,
        workers in 1usize..=8,
        chunk_lines in 1usize..5,
        lossy in any::<bool>(),
    ) {
        // Coefficient-for-coefficient equality of the chunk-parallel sample
        // stages against the sequential reference, over arbitrary widths —
        // including widths that are not a multiple of the chunk width, so
        // the remainder chunk on the calling thread is exercised.
        let params = if lossy {
            EncoderParams { levels, ..EncoderParams::lossy(0.3) }
        } else {
            EncoderParams { levels, ..EncoderParams::lossless() }
        };
        let opts = ParallelOptions { chunk_width_bytes: Some(chunk_lines * CACHE_LINE) };
        let seq = transform_coefficients(&im, &params).unwrap();
        let par = transform_coefficients_parallel(&im, &params, workers, &opts).unwrap();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn decoder_never_panics_on_truncation(
        im in image_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = encode(&im, &EncoderParams { levels: 2, ..Default::default() }).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // Truncated streams must return Err or a valid image — never panic.
        let _ = decode(&bytes[..cut]);
    }

    #[test]
    fn decoder_never_panics_on_bitflips(
        im in image_strategy(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes =
            encode(&im, &EncoderParams { levels: 2, ..Default::default() }).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        let _ = decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_byte_mutations(
        im in image_strategy(),
        pos_frac in 0.0f64..1.0,
        val in 0u32..256,
    ) {
        // Overwrite one byte with an arbitrary value (not just a bit flip):
        // decode must return Err or a valid image, never panic.
        let mut bytes =
            encode(&im, &EncoderParams { levels: 2, ..Default::default() }).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = val as u8;
        let _ = decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutation_plus_truncation(
        im in image_strategy(),
        pos_frac in 0.0f64..1.0,
        cut_frac in 0.0f64..1.0,
        val in 0u32..256,
    ) {
        let mut bytes =
            encode(&im, &EncoderParams { levels: 2, ..Default::default() }).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = val as u8;
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let _ = decode(&bytes[..cut]);
    }

    #[test]
    fn lossy_parallel_identity_with_rate_control_active(
        im in image_strategy(),
        workers in 1usize..=8,
        rate in 0.05f64..0.6,
        layers in 1usize..4,
    ) {
        // The PCRD search, the budget-shrink retry loop, and Tier-2
        // packet assembly all run on the parallel tail here; the result
        // must equal the sequential driver byte for byte at every worker
        // count — even when the loop retries or gives up.
        let params = EncoderParams {
            levels: 2,
            layers,
            ..EncoderParams::lossy(rate)
        };
        let seq = encode(&im, &params).unwrap();
        let par = encode_parallel(&im, &params, workers).unwrap();
        prop_assert_eq!(&par, &seq);
    }

    #[test]
    fn lossy_budget_respected_whenever_shrink_loop_converges(
        im in image_strategy(),
        rate in 0.02f64..0.7,
        layers in 1usize..5,
    ) {
        // Unconditional budget assertions need a floor fudge for tiny
        // images (see lossy_never_errors_and_respects_rate); but whenever
        // the encoder itself reports the shrink loop converged, the hard
        // budget holds with no allowance at all.
        let params = EncoderParams {
            levels: 2,
            layers,
            ..EncoderParams::lossy(rate)
        };
        let (bytes, prof) = encode_with_profile(&im, &params).unwrap();
        if prof.rate_converged {
            let limit = (rate * im.raw_bytes() as f64) as usize;
            prop_assert!(
                bytes.len() <= limit,
                "converged but {} > limit {} (retries {})",
                bytes.len(),
                limit,
                prof.rate_retries
            );
        }
        // Either way the stream decodes.
        let _ = decode(&bytes).unwrap();
    }
}
