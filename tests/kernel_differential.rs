//! Differential test layer for the kernel-dispatch switch: the SIMD and
//! scalar backends must produce byte-identical codestreams and bit-identical
//! coefficients on *adversarial* geometry — tiny planes, dimensions that are
//! not multiples of the 4-lane SIMD width, deep bit depths, row base
//! pointers misaligned by region offsets, and every worker count the
//! host-parallel driver supports.
//!
//! The global force guard (`wavelet::dispatch::force_guard`) serializes
//! backend selection across these tests, so they are safe under the default
//! multi-threaded test harness.

use jpeg2000_cell::codec::{decode, encode, encode_parallel, Arithmetic, EncoderParams};
use jpeg2000_cell::decomposition::AlignedPlane;
use jpeg2000_cell::dwt::dispatch::{self, Backend};
use jpeg2000_cell::dwt::rowops::Region;
use jpeg2000_cell::dwt::{vertical, VerticalVariant};
use jpeg2000_cell::images::Image;
use proptest::prelude::*;

fn test_image(w: usize, h: usize, comps: usize, depth: u8, seed: u32) -> Image {
    let mut im = Image::new(w, h, comps, depth).unwrap();
    let maxv = (1u32 << depth) - 1;
    let mut x = seed | 1;
    for c in 0..comps {
        for i in 0..w * h {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            im.planes[c][i] = ((x >> 9) % (maxv + 1)) as u16;
        }
    }
    im
}

fn encode_forced(backend: Backend, im: &Image, params: &EncoderParams) -> Vec<u8> {
    let _g = dispatch::force_guard(backend);
    encode(im, params).unwrap()
}

fn shape_strategy() -> impl Strategy<Value = (usize, usize)> {
    // 1..=17 covers every remainder class of the 4-lane kernels (0..=3 tail
    // elements) on both axes, plus sub-lane and single-sample planes.
    (1usize..=17, 1usize..=17)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lossless_streams_identical_across_backends(
        (w, h) in shape_strategy(),
        comps in prop_oneof![Just(1usize), Just(3)],
        depth in prop_oneof![Just(8u8), Just(10), Just(12), Just(16)],
        levels in 1usize..4,
        seed in any::<u32>(),
    ) {
        let im = test_image(w, h, comps, depth, seed);
        let params = EncoderParams { levels, ..EncoderParams::lossless() };
        let scalar = encode_forced(Backend::Scalar, &im, &params);
        let simd = encode_forced(Backend::Simd, &im, &params);
        prop_assert_eq!(scalar, simd);
    }

    #[test]
    fn lossy_streams_identical_across_backends(
        (w, h) in shape_strategy(),
        comps in prop_oneof![Just(1usize), Just(3)],
        depth in prop_oneof![Just(8u8), Just(10), Just(12)],
        arith in prop_oneof![Just(Arithmetic::Float32), Just(Arithmetic::FixedQ13)],
        seed in any::<u32>(),
    ) {
        let im = test_image(w, h, comps, depth, seed);
        let params = EncoderParams {
            arithmetic: arith,
            levels: 2,
            ..EncoderParams::lossy(1.0)
        };
        let scalar = encode_forced(Backend::Scalar, &im, &params);
        let simd = encode_forced(Backend::Simd, &im, &params);
        prop_assert_eq!(scalar, simd);
    }

    #[test]
    fn forced_scalar_parallel_matches_simd_sequential(
        (w, h) in shape_strategy(),
        workers in 1usize..=8,
        lossless in any::<bool>(),
        seed in any::<u32>(),
    ) {
        let im = test_image(w, h, 3, 8, seed);
        let params = if lossless {
            EncoderParams { levels: 2, ..EncoderParams::lossless() }
        } else {
            EncoderParams { levels: 2, ..EncoderParams::lossy(1.0) }
        };
        let seq = encode_forced(Backend::Simd, &im, &params);
        let par = {
            let _g = dispatch::force_guard(Backend::Scalar);
            encode_parallel(&im, &params, workers).unwrap()
        };
        prop_assert_eq!(seq, par, "workers={}", workers);
        // And the stream stays decodable.
        let _ = decode(&encode_forced(Backend::Simd, &im, &params)).unwrap();
    }

    #[test]
    fn misaligned_region_offsets_identical_53(
        x0 in 0usize..=5,
        w in 1usize..=13,
        h in 2usize..=13,
        variant in prop_oneof![
            Just(VerticalVariant::Separate),
            Just(VerticalVariant::Interleaved),
            Just(VerticalVariant::Merged),
        ],
        seed in any::<u32>(),
    ) {
        // Odd x0 makes the row base pointer 4-byte-but-not-16-byte aligned:
        // the SIMD loads must be unaligned-safe and the outputs identical.
        let full_w = x0 + w + 2;
        let mut p = AlignedPlane::<i32>::new(full_w, h).unwrap();
        let mut x = seed | 1;
        p.for_each_mut(|_, _, v| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = ((x >> 8) % 511) as i32 - 255;
        });
        let region = Region { x0, y0: 0, w, h };
        let mut a = p.clone();
        let mut b = p.clone();
        {
            let _g = dispatch::force_guard(Backend::Scalar);
            vertical::fwd53_vertical(&mut a, region, variant);
        }
        {
            let _g = dispatch::force_guard(Backend::Simd);
            vertical::fwd53_vertical(&mut b, region, variant);
        }
        prop_assert_eq!(a.to_dense(), b.to_dense());
        // Inverse under each backend restores the original region.
        {
            let _g = dispatch::force_guard(Backend::Simd);
            vertical::inv53_vertical(&mut b, region);
        }
        prop_assert_eq!(b.to_dense(), p.to_dense());
    }

    #[test]
    fn misaligned_region_offsets_identical_97(
        x0 in 0usize..=5,
        w in 1usize..=13,
        h in 2usize..=13,
        seed in any::<u32>(),
    ) {
        let full_w = x0 + w + 2;
        let mut p = AlignedPlane::<i32>::new(full_w, h).unwrap();
        let mut x = seed | 1;
        p.for_each_mut(|_, _, v| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = ((x >> 8) % 511) as i32 - 255;
        });
        let pf = p.to_f32();
        let region = Region { x0, y0: 0, w, h };
        let mut a = pf.clone();
        let mut b = pf.clone();
        {
            let _g = dispatch::force_guard(Backend::Scalar);
            vertical::fwd97_vertical(&mut a, region, VerticalVariant::Merged);
        }
        {
            let _g = dispatch::force_guard(Backend::Simd);
            vertical::fwd97_vertical(&mut b, region, VerticalVariant::Merged);
        }
        let ab: Vec<u32> = a.to_dense().iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b.to_dense().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(ab, bb);
    }
}

/// The `J2K_KERNELS` env knob and programmatic force agree on naming.
#[test]
fn dispatch_description_mentions_backend() {
    let _g = dispatch::force_guard(Backend::Scalar);
    assert!(dispatch::description().contains("scalar"));
    drop(_g);
    let _g = dispatch::force_guard(Backend::Simd);
    assert!(dispatch::description().contains("simd"));
}
