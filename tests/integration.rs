//! Cross-crate integration tests: the full system exercised end to end.

use jpeg2000_cell::codec::cell::{encode_on_cell, SimOptions};
use jpeg2000_cell::codec::parallel::encode_parallel;
use jpeg2000_cell::codec::{decode, encode, encode_with_profile, EncoderParams, Mode};
use jpeg2000_cell::comparators::{simulate_muta, simulate_p4, MutaMode};
use jpeg2000_cell::images::{psnr, synth};
use jpeg2000_cell::machine::MachineConfig;

#[test]
fn three_drivers_one_codestream() {
    // Sequential, host-parallel, and Cell-simulated encoders must produce
    // byte-identical output — parallelization never changes the stream.
    let im = synth::natural_rgb(128, 96, 11);
    let params = EncoderParams::lossless();
    let seq = encode(&im, &params).unwrap();
    let par = encode_parallel(&im, &params, 4).unwrap();
    let (cell, tl, _) = encode_on_cell(
        &im,
        &params,
        &MachineConfig::qs20_single(),
        &SimOptions::default(),
    )
    .unwrap();
    assert_eq!(seq, par);
    assert_eq!(seq, cell);
    assert!(tl.total_seconds() > 0.0);
    assert_eq!(decode(&seq).unwrap(), im);
}

#[test]
fn bmp_to_j2c_transcode_like_the_paper() {
    // The paper transcodes BMP -> JPEG2000. Round-trip through our BMP
    // writer/reader, then encode losslessly.
    let im = synth::natural_rgb(96, 64, 23);
    let bmp = jpeg2000_cell::images::bmp::encode(&im).unwrap();
    let loaded = jpeg2000_cell::images::bmp::decode(&bmp).unwrap();
    assert_eq!(loaded, im);
    let j2c = encode(&loaded, &EncoderParams::lossless()).unwrap();
    assert!(j2c.len() < bmp.len(), "JPEG2000 must beat raw BMP");
    assert_eq!(decode(&j2c).unwrap(), im);
}

#[test]
fn lossless_roundtrip_across_geometries_and_depths() {
    for (w, h, comps) in [
        (64usize, 64usize, 1usize),
        (65, 63, 3),
        (17, 129, 1),
        (128, 32, 3),
    ] {
        let im = if comps == 3 {
            synth::natural_rgb(w, h, 5)
        } else {
            synth::natural(w, h, 5)
        };
        let params = EncoderParams {
            levels: 3,
            ..EncoderParams::lossless()
        };
        let back = decode(&encode(&im, &params).unwrap()).unwrap();
        assert_eq!(back, im, "{w}x{h}x{comps}");
    }
}

#[test]
fn twelve_bit_imagery_roundtrips() {
    let mut im = jpeg2000_cell::images::Image::new(48, 48, 1, 12).unwrap();
    let mut x: u32 = 9;
    for v in &mut im.planes[0] {
        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
        *v = ((x >> 12) % 4096) as u16;
    }
    let params = EncoderParams {
        levels: 3,
        ..EncoderParams::lossless()
    };
    let back = decode(&encode(&im, &params).unwrap()).unwrap();
    assert_eq!(back, im);
}

#[test]
fn lossy_rate_sweep_monotone_and_within_budget() {
    let im = synth::natural_rgb(128, 128, 77);
    let mut last_psnr = 0.0f64;
    for rate in [0.05f64, 0.1, 0.3] {
        let bytes = encode(&im, &EncoderParams::lossy(rate)).unwrap();
        assert!(
            bytes.len() as f64 <= rate * im.raw_bytes() as f64 + 64.0,
            "rate {rate} overshoot: {}",
            bytes.len()
        );
        let p = psnr(&im, &decode(&bytes).unwrap()).unwrap();
        assert!(
            p > last_psnr - 0.1,
            "rate {rate}: PSNR {p} after {last_psnr}"
        );
        last_psnr = p;
    }
    assert!(last_psnr > 28.0, "rate 0.3 PSNR {last_psnr}");
}

#[test]
fn simulated_machines_reproduce_paper_orderings() {
    let im = synth::natural_rgb(256, 256, 5);
    let params = EncoderParams {
        cb_size: 32,
        ..EncoderParams::lossless()
    };
    let (_, prof) = encode_with_profile(&im, &params).unwrap();
    let single = MachineConfig::qs20_single();

    // More SPEs help; a second chip helps further.
    let t1 =
        jpeg2000_cell::codec::cell::simulate(&prof, &single.with_spes(1), &SimOptions::default());
    let t8 = jpeg2000_cell::codec::cell::simulate(&prof, &single, &SimOptions::default());
    let t16 = jpeg2000_cell::codec::cell::simulate(
        &prof,
        &MachineConfig::qs20_blade(),
        &SimOptions::default(),
    );
    assert!(t8.total_cycles() < t1.total_cycles());
    assert!(t16.total_cycles() < t8.total_cycles());

    // Cell beats the P4 overall and by far on the DWT.
    let p4 = simulate_p4(&prof);
    let p4_secs = p4.total_seconds();
    let cell_secs = t8.total_seconds();
    assert!(
        p4_secs / cell_secs > 1.5,
        "overall only {}",
        p4_secs / cell_secs
    );

    // Ours beats the Muta model per frame.
    let muta_tl = simulate_muta(&prof, MutaMode::Muta1);
    assert!(cell_secs < muta_tl.total_seconds());
}

#[test]
fn lossy_scaling_flattens_from_rate_control() {
    // The lossy pipeline's sequential rate control must grow as a share of
    // total time when SPEs are added (the paper's Figure 5 story).
    let im = synth::natural_rgb(192, 192, 31);
    let (_, prof) = encode_with_profile(&im, &EncoderParams::lossy(0.1)).unwrap();
    let single = MachineConfig::qs20_single();
    let f1 =
        jpeg2000_cell::codec::cell::simulate(&prof, &single.with_spes(1), &SimOptions::default())
            .fraction_matching("rate-control");
    let f8 = jpeg2000_cell::codec::cell::simulate(&prof, &single, &SimOptions::default())
        .fraction_matching("rate-control");
    assert!(f8 > f1, "rate-control share should grow: {f1} -> {f8}");
}

#[test]
fn decomposition_feeds_the_machine_model() {
    // Chunk plans validate and the simulated stages respect ownership.
    let plan = jpeg2000_cell::decomposition::ChunkPlan::build(
        3072,
        3072,
        &jpeg2000_cell::decomposition::PlanConfig::default(),
    )
    .unwrap();
    plan.validate().unwrap();
    assert!(plan.remainder().is_none(), "3072 i32 columns divide evenly");
    let plan = jpeg2000_cell::decomposition::ChunkPlan::build(
        3000,
        100,
        &jpeg2000_cell::decomposition::PlanConfig::default(),
    )
    .unwrap();
    assert!(plan.remainder().is_some());
}

#[test]
fn mode_accessors() {
    match EncoderParams::lossy(0.1).mode {
        Mode::Lossy { rate } => assert!((rate - 0.1).abs() < 1e-12),
        Mode::Lossless => panic!("expected lossy"),
    }
}
