//! Shared harness for the figure/table reproduction binaries.
//!
//! Every binary accepts `--size N` (image edge, default 768 = the paper's
//! 3072 scaled by 1/4 so runs finish quickly; pass `--size 3072` for the
//! full workload), `--seed N`, `--spes a,b,c`, `--levels N`, and `--csv`.
//! Each prints the paper's reported numbers next to the measured ones so
//! EXPERIMENTS.md can be filled mechanically.

use imgio::Image;
use j2k_core::{EncoderParams, WorkloadProfile};

pub mod report;

pub use report::{compare, BenchReport, Direction, Metric, Regression};

/// Paper-reported reference numbers (Section 5).
pub mod paper {
    /// Lossless encode speedup, 8 SPE vs 1 SPE (Fig. 4).
    pub const LOSSLESS_SPEEDUP_8SPE: f64 = 6.6;
    /// Lossy encode speedup, 8 SPE vs 1 SPE (Fig. 5).
    pub const LOSSY_SPEEDUP_8SPE: f64 = 3.1;
    /// Lossless speedup vs PPE-only (Fig. 4).
    pub const LOSSLESS_VS_PPE: f64 = 6.9;
    /// Lossy speedup vs PPE-only (Fig. 5).
    pub const LOSSY_VS_PPE: f64 = 7.4;
    /// Overall Cell vs Pentium IV, lossless (Fig. 9).
    pub const VS_P4_LOSSLESS: f64 = 3.2;
    /// Overall Cell vs Pentium IV, lossy (Fig. 9).
    pub const VS_P4_LOSSY: f64 = 2.7;
    /// DWT Cell vs Pentium IV, lossless (Fig. 9).
    pub const VS_P4_DWT_LOSSLESS: f64 = 9.1;
    /// DWT Cell vs Pentium IV, lossy (Fig. 9).
    pub const VS_P4_DWT_LOSSY: f64 = 15.0;
    /// Rate-control share of the lossy 16 SPE + 2 PPE encode (Sec. 5.1).
    pub const RC_SHARE_16SPE: f64 = 0.60;
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Image edge in pixels (images are square, RGB).
    pub size: usize,
    /// Synthetic image seed.
    pub seed: u64,
    /// SPE counts to sweep.
    pub spes: Vec<usize>,
    /// DWT levels.
    pub levels: usize,
    /// Emit CSV instead of a table.
    pub csv: bool,
    /// Optional JSON output path (binaries that emit a `BENCH_*.json`).
    pub out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            size: 768,
            seed: 20080906,
            spes: vec![1, 2, 4, 8, 16],
            levels: 5,
            csv: false,
            out: None,
        }
    }
}

/// Parse `std::env::args`; unknown flags abort with usage.
pub fn parse_args() -> Args {
    let mut a = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| {
            argv.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--size" => {
                a.size = need(i).parse().expect("--size N");
                i += 2;
            }
            "--seed" => {
                a.seed = need(i).parse().expect("--seed N");
                i += 2;
            }
            "--levels" => {
                a.levels = need(i).parse().expect("--levels N");
                i += 2;
            }
            "--spes" => {
                a.spes = need(i)
                    .split(',')
                    .map(|s| s.parse().expect("--spes a,b,c"))
                    .collect();
                i += 2;
            }
            "--csv" => {
                a.csv = true;
                i += 1;
            }
            "--out" => {
                a.out = Some(need(i).clone());
                i += 2;
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: --size N --seed N --spes a,b,c --levels N \
                     --csv --out FILE"
                );
                std::process::exit(2);
            }
        }
    }
    a
}

/// The scaled paper workload: `size x size` RGB natural image.
pub fn workload_rgb(args: &Args) -> Image {
    imgio::synth::natural_rgb(args.size, args.size, args.seed)
}

/// Encode and return the measured profile (paper parameters + overrides).
pub fn profile(image: &Image, params: &EncoderParams) -> WorkloadProfile {
    j2k_core::encode_with_profile(image, params)
        .expect("encode")
        .1
}

/// Lossless paper parameters at `levels`.
pub fn lossless_params(levels: usize) -> EncoderParams {
    EncoderParams {
        levels,
        ..EncoderParams::lossless()
    }
}

/// Lossy paper parameters (`-O mode=real -O rate=0.1`).
pub fn lossy_params(levels: usize) -> EncoderParams {
    EncoderParams {
        levels,
        ..EncoderParams::lossy(0.1)
    }
}

/// Print one table/CSV row.
pub fn row(csv: bool, cols: &[String]) {
    if csv {
        println!("{}", cols.join(","));
    } else {
        let widths = [18usize, 14, 14, 14, 14, 14, 14];
        let line: Vec<String> = cols
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(12)))
            .collect();
        println!("{}", line.join(" "));
    }
}

/// Format seconds as milliseconds with 3 decimals.
pub fn ms(s: f64) -> String {
    format!("{:.3}", s * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = Args::default();
        assert_eq!(a.size, 768);
        assert!(a.spes.contains(&8));
    }

    #[test]
    fn workload_is_rgb_and_deterministic() {
        let a = Args {
            size: 32,
            ..Args::default()
        };
        let im = workload_rgb(&a);
        assert_eq!(im.comps(), 3);
        assert_eq!(im.width, 32);
        assert_eq!(workload_rgb(&a), im);
    }

    #[test]
    fn params_builders() {
        assert!(matches!(lossy_params(5).mode, j2k_core::Mode::Lossy { rate } if rate == 0.1));
        assert_eq!(lossless_params(3).levels, 3);
    }
}
