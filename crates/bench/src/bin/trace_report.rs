//! `trace_report` — fold a Chrome trace from `j2kcell --trace-out` or
//! the daemon's `--trace-dir` into a per-stage / per-worker utilization
//! table, or validate observability artifacts in CI.
//!
//! ```text
//! trace_report FILE                          utilization table (default)
//! trace_report --check FILE --require a,b,c  assert FILE parses as Chrome
//!                                            trace JSON and contains every
//!                                            named span; exit 1 otherwise
//! trace_report --check-prom FILE             assert FILE is well-formed
//!                                            Prometheus text exposition
//! ```
//!
//! The table groups complete events by name within category (`stage`,
//! `chunk`, `block`) and by `args.worker` where present, so a glance
//! answers: which stage dominates, and was the chunk work balanced
//! across workers?

use std::collections::BTreeMap;
use std::process::exit;

fn die(msg: &str) -> ! {
    eprintln!("trace_report: {msg}");
    exit(1);
}

const USAGE: &str =
    "usage: trace_report FILE | --check FILE --require name,name,... | --check-prom FILE";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("--check") => {
            let file = argv.get(1).unwrap_or_else(|| die(USAGE));
            let mut required: Vec<String> = Vec::new();
            if argv.get(2).map(String::as_str) == Some("--require") {
                required = argv
                    .get(3)
                    .unwrap_or_else(|| die(USAGE))
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            let json =
                std::fs::read_to_string(file).unwrap_or_else(|e| die(&format!("read {file}: {e}")));
            let req: Vec<&str> = required.iter().map(String::as_str).collect();
            match obs::chrome::check(&json, &req) {
                Ok(events) => println!(
                    "trace_report: {file} OK ({} events, {} required span names present)",
                    events.len(),
                    req.len()
                ),
                Err(e) => die(&format!("{file}: {e}")),
            }
        }
        Some("--check-prom") => {
            let file = argv.get(1).unwrap_or_else(|| die(USAGE));
            let text =
                std::fs::read_to_string(file).unwrap_or_else(|e| die(&format!("read {file}: {e}")));
            match obs::prom::validate(&text) {
                Ok(series) => println!("trace_report: {file} OK ({series} series)"),
                Err(e) => die(&format!("{file}: {e}")),
            }
        }
        Some("--help") | Some("-h") => println!("{USAGE}"),
        Some(file) => report(file),
        None => die(USAGE),
    }
}

fn report(file: &str) {
    let json = std::fs::read_to_string(file).unwrap_or_else(|e| die(&format!("read {file}: {e}")));
    let events = obs::chrome::parse(&json).unwrap_or_else(|e| die(&format!("{file}: {e}")));
    let completes: Vec<_> = events.iter().filter(|e| e.ph == "X").collect();
    if completes.is_empty() {
        die(&format!("{file}: no complete events"));
    }
    let wall_us = {
        let t0 = completes.iter().map(|e| e.ts_us).fold(f64::MAX, f64::min);
        let t1 = completes
            .iter()
            .map(|e| e.ts_us + e.dur_us)
            .fold(0.0f64, f64::max);
        (t1 - t0).max(1e-9)
    };

    // Per-name totals.
    let mut by_name: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    for e in &completes {
        let ent = by_name.entry(e.name.as_str()).or_insert((0, 0.0));
        ent.0 += 1;
        ent.1 += e.dur_us;
    }
    println!("trace: {file}");
    println!(
        "{} events, {:.3} ms span-covered wall\n",
        events.len(),
        wall_us / 1e3
    );
    println!(
        "{:<24} {:>7} {:>12} {:>9}",
        "span", "count", "total ms", "% wall"
    );
    for (name, (count, total_us)) in &by_name {
        println!(
            "{name:<24} {count:>7} {:>12.3} {:>8.1}%",
            total_us / 1e3,
            100.0 * total_us / wall_us
        );
    }

    // Per-worker busy time over chunk/block events that carry a worker arg.
    let mut by_worker: BTreeMap<u64, (usize, f64)> = BTreeMap::new();
    for e in &completes {
        if let Some((_, w)) = e.args.iter().find(|(k, _)| k == "worker") {
            let ent = by_worker.entry(*w as u64).or_insert((0, 0.0));
            ent.0 += 1;
            ent.1 += e.dur_us;
        }
    }
    if !by_worker.is_empty() {
        println!(
            "\n{:<10} {:>7} {:>12} {:>12}",
            "worker", "spans", "busy ms", "util %"
        );
        for (w, (count, busy_us)) in &by_worker {
            println!(
                "worker-{w:<3} {count:>7} {:>12.3} {:>11.1}%",
                busy_us / 1e3,
                100.0 * busy_us / wall_us
            );
        }
    }
}
