//! Rate-control/Tier-2 tail scaling: sweep worker counts over the lossy
//! paper workload and measure how the formerly sequential tail — PCRD
//! allocation (threshold search + per-block truncation application) plus
//! Tier-2 packet assembly — scales once both fan out over the worker
//! pool. The `--spes` list is reused as the worker counts.
//!
//! Prints a table (or `--csv`) and, with `--out FILE`, writes the
//! machine-readable `BENCH_rate.json` consumed by CI. Asserts the
//! codestream stays byte-identical to the sequential encoder at every
//! worker count, so the numbers can never come from a divergent encode.

use j2k_bench::{lossy_params, ms, parse_args, row, workload_rgb, BenchReport, Direction};
use j2k_core::{encode, encode_parallel_with_profile, WorkloadProfile};

fn stage(prof: &WorkloadProfile, name: &str) -> f64 {
    prof.stage_times
        .iter()
        .find(|s| s.name == name)
        .map_or(0.0, |s| s.seconds)
}

struct Row {
    workers: usize,
    alloc: f64,
    tier2: f64,
    total: f64,
    retries: u64,
}

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    let params = lossy_params(args.levels);
    let seq = encode(&im, &params).expect("sequential encode");

    println!(
        "rate-control/Tier-2 tail scaling ({}x{} RGB lossy, rate 0.1)",
        args.size, args.size
    );
    row(
        args.csv,
        &[
            "workers".into(),
            "rate_ctl_ms".into(),
            "tier2_ms".into(),
            "tail_ms".into(),
            "total_ms".into(),
            "tail_share".into(),
            "tail_speedup".into(),
        ],
    );

    let mut rows: Vec<Row> = Vec::new();
    for &n in &args.spes {
        let t0 = std::time::Instant::now();
        let (bytes, prof) = encode_parallel_with_profile(&im, &params, n).expect("parallel encode");
        let total = t0.elapsed().as_secs_f64();
        assert_eq!(bytes, seq, "codestream changed at workers={n}");
        let r = Row {
            workers: n,
            alloc: stage(&prof, "rate-control"),
            tier2: stage(&prof, "tier2"),
            total,
            retries: prof.rate_retries,
        };
        let tail = r.alloc + r.tier2;
        let base = rows.first().map_or(tail, |b| b.alloc + b.tier2);
        row(
            args.csv,
            &[
                n.to_string(),
                ms(r.alloc),
                ms(r.tier2),
                ms(tail),
                ms(r.total),
                format!("{:.3}", tail / r.total.max(1e-12)),
                format!("{:.2}", base / tail.max(1e-12)),
            ],
        );
        rows.push(r);
    }

    if let Some(path) = &args.out {
        let base_tail = rows.first().map_or(0.0, |b| b.alloc + b.tier2);
        let body: Vec<String> = rows
            .iter()
            .map(|r| {
                let tail = r.alloc + r.tier2;
                format!(
                    "{{\"workers\":{},\"rate_control_ms\":{:.3},\"tier2_ms\":{:.3},\
                     \"tail_ms\":{:.3},\"total_ms\":{:.3},\"tail_share\":{:.4},\
                     \"tail_speedup\":{:.3},\"rate_retries\":{}}}",
                    r.workers,
                    r.alloc * 1e3,
                    r.tier2 * 1e3,
                    tail * 1e3,
                    r.total * 1e3,
                    tail / r.total.max(1e-12),
                    base_tail / tail.max(1e-12),
                    r.retries,
                )
            })
            .collect();
        let config = format!(
            "{{\"size\":{},\"seed\":{},\"levels\":{},\"rate\":0.1,\
             \"workers\":[{}],\"host_cores\":{}}}",
            args.size,
            args.seed,
            args.levels,
            args.spes
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(","),
            std::thread::available_parallelism().map_or(0, |n| n.get()),
        );
        let last = rows.last().expect("at least one worker count");
        let last_tail = last.alloc + last.tier2;
        let report = BenchReport::new("rate_control_scaling")
            .config(&config)
            .metric("tail_ms_max_workers", last_tail * 1e3, Direction::Lower)
            .metric(
                "tail_share_max_workers",
                last_tail / last.total.max(1e-12),
                Direction::Lower,
            )
            .metric(
                "tail_speedup_max_workers",
                base_tail / last_tail.max(1e-12),
                Direction::Higher,
            )
            .detail(&format!("{{\"rows\":[{}]}}", body.join(",")));
        std::fs::write(path, format!("{}\n", report.to_json())).expect("write --out file");
        println!("wrote {path}");
    }
}
