//! Code block size ablation: the paper's 64x64 vs Muta's 32x32
//! (more blocks -> more PPE interaction and Tier-2 work).

use cellsim::MachineConfig;
use j2k_bench::{lossless_params, ms, parse_args, profile, row, workload_rgb};
use j2k_core::cell::{simulate, SimOptions};
use j2k_core::EncoderParams;

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    println!(
        "Code-block-size ablation, {}x{} RGB lossless",
        args.size, args.size
    );
    row(
        args.csv,
        &[
            "cb".into(),
            "spes".into(),
            "blocks".into(),
            "tier1_ms".into(),
            "tier2_ms".into(),
            "total_ms".into(),
        ],
    );
    for cb in [32usize, 64] {
        let params = EncoderParams {
            cb_size: cb,
            ..lossless_params(args.levels)
        };
        let prof = profile(&im, &params);
        for &n in &args.spes {
            let cfg = if n > 8 {
                MachineConfig::qs20_blade().with_spes(n)
            } else {
                MachineConfig::qs20_single().with_spes(n)
            };
            let tl = simulate(&prof, &cfg, &SimOptions::default());
            row(
                args.csv,
                &[
                    format!("{cb}x{cb}"),
                    format!("{n}"),
                    format!("{}", prof.blocks.len()),
                    ms(tl.cycles_matching("tier1") as f64 / cfg.clock_hz),
                    ms(tl.cycles_matching("tier2") as f64 / cfg.clock_hz),
                    ms(tl.total_seconds()),
                ],
            );
        }
    }
}
