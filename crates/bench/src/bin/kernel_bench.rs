//! `kernel_bench` — per-kernel throughput from the `obs::counters`
//! instrumentation, emitted as a `BENCH_kernels.json` bench-report.
//!
//! The paper argues kernel by kernel (Table 1, the §4 DWT tuning); this
//! bench is the host-side analogue: it runs the real encoder over the
//! paper workload three ways — lossless/MQ (RCT + 5/3 + MQ Tier-1),
//! lossless/HT (the HT Tier-1 backend), and lossy/MQ (ICT + 9/7 +
//! quantization) — with kernel accounting enabled, so every declared
//! kernel accumulates real samples/bytes/ns, then reports derived GB/s
//! and symbols/s per kernel.
//!
//! With `--out FILE` the snapshot is written in the shared
//! [`BenchReport`] envelope (`perf_history` tracks the trajectory and
//! gates regressions in CI).

use j2k_bench::{lossless_params, lossy_params, parse_args, row, workload_rgb, Direction};
use j2k_core::{encode, Coder, EncoderParams};
use obs::counters::{self, Kernel};

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    println!(
        "Per-kernel counters, {}x{} RGB (lossless MQ + lossless HT + lossy)",
        args.size, args.size
    );

    counters::reset();
    counters::set_enabled(true);
    encode(&im, &lossless_params(args.levels)).expect("lossless MQ encode");
    encode(
        &im,
        &EncoderParams {
            coder: Coder::Ht,
            ..lossless_params(args.levels)
        },
    )
    .expect("lossless HT encode");
    encode(&im, &lossy_params(args.levels)).expect("lossy encode");
    counters::set_enabled(false);
    let snap = counters::snapshot();

    row(
        args.csv,
        &[
            "kernel".into(),
            "calls".into(),
            "samples".into(),
            "MB".into(),
            "ms".into(),
            "GB/s".into(),
            "Msym/s".into(),
        ],
    );
    for k in &snap {
        row(
            args.csv,
            &[
                k.kernel.name().into(),
                k.invocations.to_string(),
                k.samples.to_string(),
                format!("{:.2}", k.bytes as f64 / 1e6),
                format!("{:.3}", k.ns as f64 / 1e6),
                format!("{:.3}", k.gb_per_sec()),
                format!("{:.3}", k.symbols_per_sec() / 1e6),
            ],
        );
    }

    // Every measurable kernel must actually have measured: the three
    // encodes above cover the full declared set, so a zero here means an
    // instrumentation point fell off a hot path.
    for k in &snap {
        assert!(
            k.invocations > 0,
            "kernel {} recorded no invocations — instrumentation lost?",
            k.kernel.name()
        );
    }

    if let Some(path) = &args.out {
        let mut report = j2k_bench::BenchReport::new("kernels").config(&format!(
            "{{\"size\":{},\"seed\":{},\"levels\":{}}}",
            args.size, args.seed, args.levels
        ));
        for k in &snap {
            report = report.metric(
                &format!("{}_gb_per_sec", k.kernel.name()),
                k.gb_per_sec(),
                Direction::Higher,
            );
            if matches!(k.kernel, Kernel::Tier1Mq | Kernel::Tier1Ht) {
                report = report.metric(
                    &format!("{}_symbols_per_sec", k.kernel.name()),
                    k.symbols_per_sec(),
                    Direction::Higher,
                );
            }
        }
        let detail: Vec<String> = snap
            .iter()
            .map(|k| {
                format!(
                    "{{\"kernel\":\"{}\",\"invocations\":{},\"samples\":{},\"bytes\":{},\
                     \"symbols\":{},\"ns\":{}}}",
                    k.kernel.name(),
                    k.invocations,
                    k.samples,
                    k.bytes,
                    k.symbols,
                    k.ns
                )
            })
            .collect();
        let report = report.detail(&format!("{{\"kernels\":[{}]}}", detail.join(",")));
        std::fs::write(path, format!("{}\n", report.to_json())).expect("write --out file");
        println!("wrote {path}");
    }
}
