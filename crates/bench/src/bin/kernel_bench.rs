//! `kernel_bench` — per-kernel throughput from the `obs::counters`
//! instrumentation, emitted as a `BENCH_kernels.json` bench-report.
//!
//! The paper argues kernel by kernel (Table 1, the §4 DWT tuning); this
//! bench is the host-side analogue: it runs the real encoder over the
//! paper workload three ways — lossless/MQ (RCT + 5/3 + MQ Tier-1),
//! lossless/HT (the HT Tier-1 backend), and lossy/MQ (ICT + 9/7 +
//! quantization) — with kernel accounting enabled, so every declared
//! kernel accumulates real samples/bytes/ns, then reports derived GB/s
//! and symbols/s per kernel.
//!
//! With `--out FILE` the snapshot is written in the shared
//! [`BenchReport`] envelope (`perf_history` tracks the trajectory and
//! gates regressions in CI).

use j2k_bench::{lossless_params, lossy_params, parse_args, row, workload_rgb, Direction};
use j2k_core::{encode, Coder, EncoderParams};
use obs::counters::{self, Kernel};
use wavelet::dispatch::{self, Backend};

/// Kernels with a SIMD/scalar pair behind the dispatch switch (Tier-1 is
/// table-driven, not vectorized).
const DISPATCHED: [Kernel; 7] = [
    Kernel::MctRct,
    Kernel::MctIct,
    Kernel::Dwt53Vertical,
    Kernel::Dwt53Horizontal,
    Kernel::Dwt97Vertical,
    Kernel::Dwt97Horizontal,
    Kernel::Quantize,
];

/// The bench workload: the three encodes together touch all nine kernels.
fn run_workload(im: &imgio::Image, levels: usize) {
    encode(im, &lossless_params(levels)).expect("lossless MQ encode");
    encode(
        im,
        &EncoderParams {
            coder: Coder::Ht,
            ..lossless_params(levels)
        },
    )
    .expect("lossless HT encode");
    encode(im, &lossy_params(levels)).expect("lossy encode");
}

fn measured_snapshot(im: &imgio::Image, levels: usize) -> Vec<counters::KernelSnapshot> {
    counters::reset();
    counters::set_enabled(true);
    run_workload(im, levels);
    counters::set_enabled(false);
    counters::snapshot()
}

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    println!(
        "Per-kernel counters, {}x{} RGB (lossless MQ + lossless HT + lossy), kernels: {}",
        args.size,
        args.size,
        dispatch::description()
    );

    let snap = measured_snapshot(&im, args.levels);

    row(
        args.csv,
        &[
            "kernel".into(),
            "calls".into(),
            "samples".into(),
            "MB".into(),
            "ms".into(),
            "GB/s".into(),
            "Msym/s".into(),
        ],
    );
    for k in &snap {
        row(
            args.csv,
            &[
                k.kernel.name().into(),
                k.invocations.to_string(),
                k.samples.to_string(),
                format!("{:.2}", k.bytes as f64 / 1e6),
                format!("{:.3}", k.ns as f64 / 1e6),
                format!("{:.3}", k.gb_per_sec()),
                format!("{:.3}", k.symbols_per_sec() / 1e6),
            ],
        );
    }

    // Every measurable kernel must actually have measured: the three
    // encodes above cover the full declared set, so a zero here means an
    // instrumentation point fell off a hot path.
    for k in &snap {
        assert!(
            k.invocations > 0,
            "kernel {} recorded no invocations — instrumentation lost?",
            k.kernel.name()
        );
    }

    // Scalar vs SIMD on the same workload: the dispatched kernels' speedup
    // ratio, from one forced run of each backend. The differential test
    // layer proves the outputs byte-identical; this records what the fast
    // path buys.
    let scalar_snap = {
        let _g = dispatch::force_guard(Backend::Scalar);
        measured_snapshot(&im, args.levels)
    };
    let simd_snap = {
        let _g = dispatch::force_guard(Backend::Simd);
        measured_snapshot(&im, args.levels)
    };
    let mut speedups: Vec<(Kernel, f64)> = Vec::new();
    println!("\nSIMD speedup vs forced-scalar (same workload):");
    for kernel in DISPATCHED {
        let sc = scalar_snap.iter().find(|k| k.kernel == kernel).unwrap();
        let si = simd_snap.iter().find(|k| k.kernel == kernel).unwrap();
        if sc.ns > 0 && si.ns > 0 {
            let ratio = sc.ns as f64 / si.ns as f64;
            println!(
                "    {:<18} {:>6.2}x ({:.3} -> {:.3} GB/s)",
                kernel.name(),
                ratio,
                sc.gb_per_sec(),
                si.gb_per_sec()
            );
            speedups.push((kernel, ratio));
        }
    }

    if let Some(path) = &args.out {
        let mut report = j2k_bench::BenchReport::new("kernels").config(&format!(
            "{{\"size\":{},\"seed\":{},\"levels\":{}}}",
            args.size, args.seed, args.levels
        ));
        for k in &snap {
            report = report.metric(
                &format!("{}_gb_per_sec", k.kernel.name()),
                k.gb_per_sec(),
                Direction::Higher,
            );
            if matches!(k.kernel, Kernel::Tier1Mq | Kernel::Tier1Ht) {
                report = report.metric(
                    &format!("{}_symbols_per_sec", k.kernel.name()),
                    k.symbols_per_sec(),
                    Direction::Higher,
                );
            }
        }
        for (kernel, ratio) in &speedups {
            report = report.metric(
                &format!("{}_simd_speedup", kernel.name()),
                *ratio,
                Direction::Higher,
            );
        }
        let detail: Vec<String> = snap
            .iter()
            .map(|k| {
                format!(
                    "{{\"kernel\":\"{}\",\"invocations\":{},\"samples\":{},\"bytes\":{},\
                     \"symbols\":{},\"ns\":{}}}",
                    k.kernel.name(),
                    k.invocations,
                    k.samples,
                    k.bytes,
                    k.symbols,
                    k.ns
                )
            })
            .collect();
        let report = report.detail(&format!("{{\"kernels\":[{}]}}", detail.join(",")));
        std::fs::write(path, format!("{}\n", report.to_json())).expect("write --out file");
        println!("wrote {path}");
    }
}
