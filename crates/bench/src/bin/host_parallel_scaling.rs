//! Host-parallel scaling: sweep worker counts over the sample-transform
//! stages (level shift + MCT, DWT, quantization) and Tier-1.
//!
//! Unlike the figure binaries this measures *real* wall time of the
//! host-thread driver (`encode_parallel_with_profile`), not the simulated
//! Cell timeline: the `--spes` list is reused as the worker counts. Also
//! prints per-worker job counts so the fan-out is visible, and asserts the
//! codestream stays byte-identical to the sequential encoder at every
//! worker count (the paper's implicit invariant).

use j2k_bench::{lossless_params, lossy_params, ms, parse_args, row, workload_rgb};
use j2k_core::{encode, encode_parallel_with_profile, EncoderParams, WorkloadProfile};

fn stage(prof: &WorkloadProfile, name: &str) -> f64 {
    prof.stage_times
        .iter()
        .find(|s| s.name == name)
        .map_or(0.0, |s| s.seconds)
}

fn transform_secs(prof: &WorkloadProfile) -> f64 {
    stage(prof, "mct") + stage(prof, "dwt") + stage(prof, "quantize")
}

fn sweep(label: &str, im: &imgio::Image, params: &EncoderParams, workers: &[usize], csv: bool) {
    let seq = encode(im, params).expect("sequential encode");
    println!("{label}");
    row(
        csv,
        &[
            "workers".into(),
            "transform_ms".into(),
            "tier1_ms".into(),
            "total_ms".into(),
            "xform_speedup".into(),
            "jobs/worker".into(),
        ],
    );
    let mut base = None;
    for &n in workers {
        let t0 = std::time::Instant::now();
        let (bytes, prof) = encode_parallel_with_profile(im, params, n).expect("parallel encode");
        let total = t0.elapsed().as_secs_f64();
        assert_eq!(bytes, seq, "codestream changed at workers={n}");
        let xform = transform_secs(&prof);
        let base = *base.get_or_insert(xform);
        let jobs: Vec<String> = prof.worker_jobs.iter().map(|j| j.to_string()).collect();
        row(
            csv,
            &[
                n.to_string(),
                ms(xform),
                ms(stage(&prof, "tier1")),
                ms(total),
                format!("{:.2}", base / xform.max(1e-12)),
                jobs.join("/"),
            ],
        );
    }
}

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    let workers: Vec<usize> = args.spes.iter().copied().filter(|&n| n > 0).collect();
    println!(
        "Host-parallel scaling — {}x{} RGB, {} levels (byte-identity asserted per row)",
        args.size, args.size, args.levels
    );
    sweep(
        "lossless (5/3)",
        &im,
        &lossless_params(args.levels),
        &workers,
        args.csv,
    );
    sweep(
        "lossy (9/7, f32)",
        &im,
        &lossy_params(args.levels),
        &workers,
        args.csv,
    );
}
