//! `serve_load` — load generator for the `j2kserved` encode daemon.
//!
//! Drives the TCP wire protocol with `--clients` concurrent connections
//! pushing `--jobs` synthetic encode jobs total, then reports throughput
//! and latency percentiles as JSON (written to `--out`, printed to
//! stdout) so the serve layer's performance trajectory can be tracked
//! run over run (`BENCH_serve.json`).
//!
//! ```text
//! serve_load [--addr HOST:PORT] [--jobs N] [--clients N] [--size N]
//!            [--seed N] [--lossy RATE] [--timeout-ms N] [--verify]
//!            [--decode] [--retries N] [--backoff-ms N] [--probe]
//!            [--breaker-threshold N] [--allow-degraded]
//!            [--trace] [--out PATH]
//! ```
//!
//! With `--trace` (daemon started with tracing on), the last finished
//! job's Chrome trace is fetched over the wire and folded into a
//! queue-wait vs. encode-time split in the report — where does a
//! job's latency actually go under this load?
//!
//! Fault tolerance mirrors the server's own retry discipline:
//! `Rejected(Overloaded)` is **not** a hard failure — the client retries
//! the job up to `--retries` times, backing off by the larger of the
//! server's `retry_after_ms` hint and seeded-jitter exponential backoff
//! (base `--backoff-ms`); a wire error triggers a reconnect and retry on
//! a fresh connection under the same budget. Each client additionally
//! runs a circuit breaker (DESIGN.md §16): after `--breaker-threshold`
//! consecutive overload rejections or wire errors it stops sending and
//! waits out an exponentially growing open window (floored at the
//! server's hint) before a half-open probe; `0` disables it. Shed load
//! (rejections), retries, reconnects, degraded completions, and breaker
//! opens are reported as separate columns, latency additionally split
//! per priority class. `--probe` polls the `Health` request until the
//! daemon reports a full worker pool before offering load.
//!
//! `--allow-degraded` sets the wire flag of the same name on every job:
//! under Elevated pressure the daemon may answer with a codestream from
//! the faster HT coder (marked `degraded`) instead of shedding the job.
//! `--verify` then checks degraded replies byte-identical to the local
//! sequential encode with `EncoderParams::degrade_for_load()` applied —
//! degradation must be a *policy* change, never a correctness one.
//!
//! With `--verify`, every returned codestream is checked **byte-identical**
//! to the local sequential `j2k_core::encode` of the same input and
//! decoded back to the original image — the service must never trade
//! correctness for throughput. With `--decode`, each returned codestream
//! is additionally sent back through the daemon's `Decode` request and
//! (in lossless mode) the server-reconstructed image must equal the
//! input — the round trip closes without the client ever running the
//! codec. The exit code is nonzero if verification fails or nothing
//! completes.

use j2k_bench::{BenchReport, Direction};
use j2k_core::EncoderParams;
use j2k_serve::wire::{
    call, DecodeRequest, EncodeRequest, RejectReason, Request, Response, DEFAULT_MAX_FRAME,
};
use j2k_serve::{BreakerConfig, CircuitBreaker};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Priority classes the generator cycles jobs through (`job % 4`).
const PRIORITY_CLASSES: usize = 4;

struct Opt {
    addr: String,
    jobs: usize,
    clients: usize,
    size: usize,
    seed: u64,
    lossy: Option<f64>,
    timeout_ms: u32,
    verify: bool,
    decode: bool,
    retries: u32,
    backoff_ms: u64,
    breaker_threshold: u32,
    allow_degraded: bool,
    probe: bool,
    trace: bool,
    out: String,
}

fn die(msg: &str) -> ! {
    eprintln!("serve_load: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Opt {
    let mut o = Opt {
        addr: "127.0.0.1:7201".into(),
        jobs: 32,
        clients: 4,
        size: 128,
        seed: 20080906,
        lossy: None,
        timeout_ms: 0,
        verify: false,
        decode: false,
        retries: 3,
        backoff_ms: 25,
        breaker_threshold: 5,
        allow_degraded: false,
        probe: false,
        trace: false,
        out: "BENCH_serve.json".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> &String {
            argv.get(i + 1)
                .unwrap_or_else(|| die(&format!("missing value after {}", argv[i])))
        };
        match argv[i].as_str() {
            "--addr" => {
                o.addr = need(i).clone();
                i += 2;
            }
            "--jobs" => {
                o.jobs = need(i).parse().unwrap_or_else(|_| die("--jobs N"));
                i += 2;
            }
            "--clients" => {
                o.clients = need(i).parse().unwrap_or_else(|_| die("--clients N"));
                i += 2;
            }
            "--size" => {
                o.size = need(i).parse().unwrap_or_else(|_| die("--size N"));
                i += 2;
            }
            "--seed" => {
                o.seed = need(i).parse().unwrap_or_else(|_| die("--seed N"));
                i += 2;
            }
            "--lossy" => {
                o.lossy = Some(need(i).parse().unwrap_or_else(|_| die("--lossy RATE")));
                i += 2;
            }
            "--timeout-ms" => {
                o.timeout_ms = need(i).parse().unwrap_or_else(|_| die("--timeout-ms N"));
                i += 2;
            }
            "--verify" => {
                o.verify = true;
                i += 1;
            }
            "--decode" => {
                o.decode = true;
                i += 1;
            }
            "--retries" => {
                o.retries = need(i).parse().unwrap_or_else(|_| die("--retries N"));
                i += 2;
            }
            "--backoff-ms" => {
                o.backoff_ms = need(i).parse().unwrap_or_else(|_| die("--backoff-ms N"));
                i += 2;
            }
            "--breaker-threshold" => {
                o.breaker_threshold = need(i)
                    .parse()
                    .unwrap_or_else(|_| die("--breaker-threshold N (0 disables)"));
                i += 2;
            }
            "--allow-degraded" => {
                o.allow_degraded = true;
                i += 1;
            }
            "--probe" => {
                o.probe = true;
                i += 1;
            }
            "--trace" => {
                o.trace = true;
                i += 1;
            }
            "--out" => {
                o.out = need(i).clone();
                i += 2;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    o
}

fn params_of(o: &Opt) -> EncoderParams {
    match o.lossy {
        Some(rate) => EncoderParams::lossy(rate),
        None => EncoderParams::lossless(),
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponential backoff with seeded half-jitter: `base * 2^attempt`
/// stretched or shrunk by up to 50%, deterministic per (salt, attempt)
/// so a rerun with the same seed replays the same pacing.
fn jittered_backoff(base_ms: u64, attempt: u32, salt: u64) -> Duration {
    let exp = base_ms.saturating_mul(1u64 << attempt.min(10));
    let jitter = splitmix64(salt.wrapping_add(u64::from(attempt))) % (exp / 2 + 1);
    Duration::from_millis(exp / 2 + jitter)
}

/// Poll `Health` until the daemon reports a full, accepting worker pool.
fn probe_until_ready(o: &Opt) {
    for attempt in 0..40u32 {
        let ready = TcpStream::connect(&o.addr)
            .ok()
            .and_then(|mut c| call(&mut c, &Request::Health, DEFAULT_MAX_FRAME).ok())
            .is_some_and(|r| matches!(r, Response::Health(h) if h.ready()));
        if ready {
            return;
        }
        std::thread::sleep(jittered_backoff(o.backoff_ms, attempt.min(5), o.seed));
    }
    die(&format!("daemon at {} never reported ready", o.addr));
}

/// Pull one integer field out of a specific histogram series inside the
/// server's hand-rolled metrics JSON, e.g.
/// `extract_hist_field(json, "queue_wait_us", "p999")`. Total: any shape
/// mismatch yields `None`.
fn extract_hist_field(metrics_json: &str, series: &str, field: &str) -> Option<u64> {
    let start = metrics_json.find(&format!("\"{series}\":{{"))?;
    let obj = &metrics_json[start..];
    let end = obj.find('}')?;
    let obj = &obj[..end];
    let fpos = obj.find(&format!("\"{field}\":"))?;
    let digits: String = obj[fpos + field.len() + 3..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Fold a job's Chrome trace into a queue-wait vs. encode-time split:
/// (queue_wait_ms, encode_ms) summed over complete events of those names.
fn trace_split(trace_json: &str) -> Option<(f64, f64)> {
    let events = obs::chrome::parse(trace_json).ok()?;
    let sum_ms = |name: &str| -> f64 {
        events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.dur_us)
            .sum::<f64>()
            / 1e3
    };
    Some((sum_ms("queue-wait"), sum_ms("encode")))
}

#[derive(Default)]
struct Tally {
    completed: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    poisoned: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_open_waits: AtomicU64,
    verify_failures: AtomicU64,
    decode_failures: AtomicU64,
}

/// `{"count":N,"p50":X,"p99":Y}` for one priority class's latencies.
fn priority_json(sorted_ms: &[f64]) -> String {
    format!(
        "{{\"count\":{},\"p50\":{:.3},\"p99\":{:.3}}}",
        sorted_ms.len(),
        percentile(sorted_ms, 0.50),
        percentile(sorted_ms, 0.99),
    )
}

fn main() {
    let o = parse_args();
    let params = params_of(&o);
    if o.probe {
        probe_until_ready(&o);
    }
    let tally = Tally::default();
    let latencies_ms: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(o.jobs));
    let priority_ms: [Mutex<Vec<f64>>; PRIORITY_CLASSES] = Default::default();
    let reconnect_ms: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let next_job = AtomicU64::new(0);

    let wall = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..o.clients.max(1) {
            let (o, params, tally, latencies_ms, reconnect_ms, next_job) =
                (&o, &params, &tally, &latencies_ms, &reconnect_ms, &next_job);
            let priority_ms = &priority_ms;
            scope.spawn(move || {
                let mut conn = match TcpStream::connect(&o.addr) {
                    Ok(c) => c,
                    Err(e) => die(&format!("connect {}: {e}", o.addr)),
                };
                // Per-client circuit breaker: after `--breaker-threshold`
                // consecutive overload rejections or wire errors, stop
                // sending until the open window (floored at the server's
                // retry_after hint) lapses, then probe half-open.
                let mut breaker = (o.breaker_threshold > 0).then(|| {
                    CircuitBreaker::new(BreakerConfig {
                        failure_threshold: o.breaker_threshold,
                        open_base: Duration::from_millis(o.backoff_ms.max(1)),
                        ..BreakerConfig::default()
                    })
                });
                'jobs: loop {
                    let j = next_job.fetch_add(1, Ordering::Relaxed);
                    if j >= o.jobs as u64 {
                        break;
                    }
                    let priority = (j % PRIORITY_CLASSES as u64) as u8;
                    let image = imgio::synth::natural_rgb(o.size, o.size, o.seed + j);
                    let req = Request::Encode(EncodeRequest {
                        priority,
                        allow_degraded: o.allow_degraded,
                        timeout_ms: o.timeout_ms,
                        params: *params,
                        image: image.clone(),
                    });
                    let mut attempt = 0u32;
                    loop {
                        if let Some(b) = breaker.as_mut() {
                            while let Err(wait) = b.poll() {
                                tally.breaker_open_waits.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(wait);
                            }
                        }
                        let t0 = Instant::now();
                        match call(&mut conn, &req, DEFAULT_MAX_FRAME) {
                            Ok(Response::EncodeOk {
                                codestream: cs,
                                degraded,
                            }) => {
                                let ms = t0.elapsed().as_secs_f64() * 1e3;
                                latencies_ms.lock().unwrap().push(ms);
                                priority_ms[usize::from(priority)].lock().unwrap().push(ms);
                                tally.completed.fetch_add(1, Ordering::Relaxed);
                                if degraded {
                                    tally.degraded.fetch_add(1, Ordering::Relaxed);
                                }
                                if let Some(b) = breaker.as_mut() {
                                    b.on_success();
                                }
                                if o.verify {
                                    // A degraded reply must match the local
                                    // sequential encode with the *degraded*
                                    // params — same determinism bar, different
                                    // (server-chosen) coder.
                                    let vparams = if degraded {
                                        params.degrade_for_load().0
                                    } else {
                                        *params
                                    };
                                    let seq =
                                        j2k_core::encode(&image, &vparams).expect("local encode");
                                    let decoded_ok = j2k_core::decode(&cs).is_ok();
                                    if cs != seq || !decoded_ok {
                                        eprintln!("job {j}: VERIFY FAILED (identical={}, decodes={decoded_ok}, degraded={degraded})", cs == seq);
                                        tally.verify_failures.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                if o.decode {
                                    // Round-trip through the daemon: the
                                    // server decodes its own codestream;
                                    // lossless must reconstruct the input
                                    // exactly.
                                    let dreq = Request::Decode(DecodeRequest {
                                        max_layers: 0,
                                        discard_levels: 0,
                                        codestream: cs,
                                    });
                                    let ok = match call(&mut conn, &dreq, DEFAULT_MAX_FRAME) {
                                        Ok(Response::DecodeOk(back)) => {
                                            if o.lossy.is_some() {
                                                (back.width, back.height, back.comps())
                                                    == (image.width, image.height, image.comps())
                                            } else {
                                                back == image
                                            }
                                        }
                                        other => {
                                            eprintln!("job {j}: server decode: {other:?}");
                                            false
                                        }
                                    };
                                    if !ok {
                                        eprintln!("job {j}: SERVER DECODE ROUND-TRIP FAILED");
                                        tally.decode_failures.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                break;
                            }
                            // Shed load is expected under overload: back
                            // off by the larger of the server's hint and
                            // the jittered exponential (so the client herd
                            // doesn't re-converge), and retry within the
                            // budget.
                            Ok(Response::Rejected(RejectReason::Overloaded { retry_after_ms }))
                                if attempt < o.retries =>
                            {
                                attempt += 1;
                                tally.retries.fetch_add(1, Ordering::Relaxed);
                                let hint = Duration::from_millis(u64::from(retry_after_ms));
                                if let Some(b) = breaker.as_mut() {
                                    b.on_failure(Some(hint));
                                }
                                std::thread::sleep(
                                    jittered_backoff(o.backoff_ms, attempt, o.seed ^ j).max(hint),
                                );
                            }
                            Ok(Response::Rejected(r)) => {
                                eprintln!("job {j}: rejected ({r:?}) after {attempt} retries");
                                tally.rejected.fetch_add(1, Ordering::Relaxed);
                                if let Some(b) = breaker.as_mut() {
                                    if let RejectReason::Overloaded { retry_after_ms } = r {
                                        b.on_failure(Some(Duration::from_millis(u64::from(
                                            retry_after_ms,
                                        ))));
                                    }
                                }
                                break;
                            }
                            Ok(Response::TimedOut) => {
                                tally.timed_out.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Ok(Response::Poisoned(m)) => {
                                eprintln!("job {j}: poisoned ({m})");
                                tally.poisoned.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Ok(other) => {
                                eprintln!("job {j}: {other:?}");
                                tally.failed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            // The connection died (daemon restart, wire
                            // fault): reconnect and retry this job on a
                            // fresh stream.
                            Err(e) if attempt < o.retries => {
                                attempt += 1;
                                tally.reconnects.fetch_add(1, Ordering::Relaxed);
                                if let Some(b) = breaker.as_mut() {
                                    b.on_failure(None);
                                }
                                eprintln!("job {j}: wire error {e}; reconnecting");
                                std::thread::sleep(jittered_backoff(
                                    o.backoff_ms,
                                    attempt,
                                    o.seed ^ j,
                                ));
                                let c0 = Instant::now();
                                match TcpStream::connect(&o.addr) {
                                    Ok(c) => {
                                        reconnect_ms
                                            .lock()
                                            .unwrap()
                                            .push(c0.elapsed().as_secs_f64() * 1e3);
                                        conn = c;
                                    }
                                    Err(e) => {
                                        eprintln!("job {j}: reconnect failed: {e}");
                                        tally.failed.fetch_add(1, Ordering::Relaxed);
                                        break 'jobs;
                                    }
                                }
                            }
                            Err(e) => {
                                eprintln!("job {j}: wire error {e} (budget spent)");
                                tally.failed.fetch_add(1, Ordering::Relaxed);
                                if let Some(b) = breaker.as_mut() {
                                    b.on_failure(None);
                                }
                                break;
                            }
                        }
                    }
                }
                if let Some(b) = breaker.as_ref() {
                    tally.breaker_opens.fetch_add(b.opens(), Ordering::Relaxed);
                }
            });
        }
    });
    let wall_s = wall.elapsed().as_secs_f64();

    // Pull the server's own view of the run.
    let server_metrics = TcpStream::connect(&o.addr)
        .ok()
        .and_then(|mut c| call(&mut c, &Request::Metrics, DEFAULT_MAX_FRAME).ok())
        .and_then(|r| match r {
            Response::MetricsJson(j) => Some(j),
            _ => None,
        })
        .unwrap_or_else(|| "null".into());
    // The server's own queue-wait tail, straight from its histogram.
    let queue_wait_p999_us = extract_hist_field(&server_metrics, "queue_wait_us", "p999");

    // Queue-wait vs. encode split of the last finished job's trace.
    let trace_section = if o.trace {
        let split = TcpStream::connect(&o.addr)
            .ok()
            .and_then(|mut c| call(&mut c, &Request::Trace(0), DEFAULT_MAX_FRAME).ok())
            .and_then(|r| match r {
                Response::TraceJson(j) => trace_split(&j),
                _ => None,
            });
        match split {
            Some((wait_ms, encode_ms)) => {
                format!("{{\"queue_wait_ms\":{wait_ms:.3},\"encode_ms\":{encode_ms:.3}}}")
            }
            None => {
                eprintln!("serve_load: --trace set but no trace retrieved (daemon tracing off?)");
                "null".into()
            }
        }
    } else {
        "null".into()
    };

    let mut lat = latencies_ms.into_inner().unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let per_priority = priority_ms
        .into_iter()
        .map(|m| {
            let mut v = m.into_inner().unwrap();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            priority_json(&v)
        })
        .collect::<Vec<_>>()
        .join(",");
    let mut recon = reconnect_ms.into_inner().unwrap();
    recon.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let recon_mean = if recon.is_empty() {
        0.0
    } else {
        recon.iter().sum::<f64>() / recon.len() as f64
    };
    let completed = tally.completed.load(Ordering::Relaxed);
    let verify_failures = tally.verify_failures.load(Ordering::Relaxed);
    let decode_failures = tally.decode_failures.load(Ordering::Relaxed);
    let mean = if lat.is_empty() {
        0.0
    } else {
        lat.iter().sum::<f64>() / lat.len() as f64
    };
    let json = format!(
        "{{\"config\":{{\"addr\":\"{}\",\"jobs\":{},\"clients\":{},\"size\":{},\"seed\":{},\
         \"mode\":\"{}\",\"timeout_ms\":{},\"verify\":{},\"retries\":{},\"backoff_ms\":{},\
         \"breaker_threshold\":{},\"allow_degraded\":{}}},\
         \"completed\":{},\"degraded\":{},\"rejected\":{},\"timed_out\":{},\"failed\":{},\
         \"poisoned\":{},\"retries\":{},\"reconnects\":{},\
         \"breaker\":{{\"opens\":{},\"open_waits\":{}}},\
         \"wall_s\":{:.4},\"throughput_jobs_per_s\":{:.3},\
         \"latency_ms\":{{\"mean\":{:.3},\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3},\"p999\":{:.3},\"max\":{:.3}}},\
         \"per_priority\":[{}],\
         \"queue_wait_p999_us\":{},\
         \"reconnect_ms\":{{\"count\":{},\"mean\":{:.3},\"max\":{:.3}}},\
         \"trace\":{},\
         \"verify_failures\":{},\"decode_failures\":{},\"server_metrics\":{}}}",
        o.addr,
        o.jobs,
        o.clients,
        o.size,
        o.seed,
        if o.lossy.is_some() {
            "lossy"
        } else {
            "lossless"
        },
        o.timeout_ms,
        o.verify,
        o.retries,
        o.backoff_ms,
        o.breaker_threshold,
        o.allow_degraded,
        completed,
        tally.degraded.load(Ordering::Relaxed),
        tally.rejected.load(Ordering::Relaxed),
        tally.timed_out.load(Ordering::Relaxed),
        tally.failed.load(Ordering::Relaxed),
        tally.poisoned.load(Ordering::Relaxed),
        tally.retries.load(Ordering::Relaxed),
        tally.reconnects.load(Ordering::Relaxed),
        tally.breaker_opens.load(Ordering::Relaxed),
        tally.breaker_open_waits.load(Ordering::Relaxed),
        wall_s,
        completed as f64 / wall_s.max(1e-9),
        mean,
        percentile(&lat, 0.50),
        percentile(&lat, 0.95),
        percentile(&lat, 0.99),
        percentile(&lat, 0.999),
        lat.last().copied().unwrap_or(0.0),
        per_priority,
        queue_wait_p999_us.map_or("null".into(), |v| v.to_string()),
        recon.len(),
        recon_mean,
        recon.last().copied().unwrap_or(0.0),
        trace_section,
        verify_failures,
        decode_failures,
        server_metrics,
    );
    println!("{json}");
    // Shared bench-report envelope: the full ad-hoc document above rides
    // along as `detail`; the trajectory-tracked scalars are lifted into
    // `metrics` so `perf_history compare` can gate regressions.
    let config = format!(
        "{{\"jobs\":{},\"clients\":{},\"size\":{},\"seed\":{},\"mode\":\"{}\",\
         \"timeout_ms\":{},\"retries\":{}}}",
        o.jobs,
        o.clients,
        o.size,
        o.seed,
        if o.lossy.is_some() {
            "lossy"
        } else {
            "lossless"
        },
        o.timeout_ms,
        o.retries,
    );
    let report = BenchReport::new("serve_load")
        .config(&config)
        .metric(
            "throughput_jobs_per_s",
            completed as f64 / wall_s.max(1e-9),
            Direction::Higher,
        )
        .metric("latency_p50_ms", percentile(&lat, 0.50), Direction::Lower)
        .metric("latency_p99_ms", percentile(&lat, 0.99), Direction::Lower)
        .metric("completed", completed as f64, Direction::Higher)
        .detail(&json);
    if let Err(e) = std::fs::write(&o.out, format!("{}\n", report.to_json())) {
        die(&format!("write {}: {e}", o.out));
    }
    // Human summary, always printed in full: absent counters read as
    // "not measured", so poisoned/retried/reconnects appear even at 0.
    eprintln!(
        "serve_load: {completed} completed ({} degraded), {} rejected, {} timed out, \
         {} failed, {} poisoned, {} retried, {} reconnects, {} breaker opens \
         ({} jobs in {wall_s:.2}s, p50 {:.1} ms)",
        tally.degraded.load(Ordering::Relaxed),
        tally.rejected.load(Ordering::Relaxed),
        tally.timed_out.load(Ordering::Relaxed),
        tally.failed.load(Ordering::Relaxed),
        tally.poisoned.load(Ordering::Relaxed),
        tally.retries.load(Ordering::Relaxed),
        tally.reconnects.load(Ordering::Relaxed),
        tally.breaker_opens.load(Ordering::Relaxed),
        o.jobs,
        percentile(&lat, 0.50),
    );
    if verify_failures > 0 {
        die(&format!("{verify_failures} verification failures"));
    }
    if decode_failures > 0 {
        die(&format!(
            "{decode_failures} server decode round-trip failures"
        ));
    }
    if completed == 0 {
        die("no jobs completed");
    }
}
