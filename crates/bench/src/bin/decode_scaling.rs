//! Decode throughput: sweep image sizes over the lossless and lossy
//! paper workloads, measure full-pipeline decode wall time, and close the
//! loop on every row — lossless rows assert bit-exact reconstruction,
//! lossy rows report the measured PSNR/SSIM (via `j2k-metrics`) so a
//! decoder speedup can never silently come from skipped reconstruction
//! work.
//!
//! `--size N` sets the largest edge; the sweep runs N/4, N/2, and N.
//! Prints a table (or `--csv`) and, with `--out FILE`, writes the
//! machine-readable `BENCH_decode.json` consumed by CI.

use j2k_bench::{lossless_params, lossy_params, ms, parse_args, row, BenchReport, Direction};
use j2k_core::decode;

struct Row {
    mode: &'static str,
    size: usize,
    bytes: usize,
    decode_s: f64,
    psnr: f64,
    ssim: f64,
}

fn main() {
    let args = parse_args();
    let sizes: Vec<usize> = [args.size / 4, args.size / 2, args.size]
        .into_iter()
        .filter(|&s| s >= 8)
        .collect();

    println!(
        "decode throughput (RGB natural workload, levels {})",
        args.levels
    );
    row(
        args.csv,
        &[
            "mode".into(),
            "size".into(),
            "stream_kb".into(),
            "decode_ms".into(),
            "mpix/s".into(),
            "psnr_db".into(),
            "ssim".into(),
        ],
    );

    let mut rows: Vec<Row> = Vec::new();
    for &size in &sizes {
        let im = imgio::synth::natural_rgb(size, size, args.seed);
        for (mode, params) in [
            ("lossless", lossless_params(args.levels)),
            ("lossy", lossy_params(args.levels)),
        ] {
            let bytes = j2k_core::encode(&im, &params).expect("encode");
            let t0 = std::time::Instant::now();
            let back = decode(&bytes).expect("decode");
            let decode_s = t0.elapsed().as_secs_f64();
            let c = j2k_metrics::compare(&im, &back).expect("comparable geometry");
            if mode == "lossless" {
                assert!(c.identical, "lossless decode must be bit-exact at {size}");
            }
            let mpix = (size * size) as f64 / 1e6 / decode_s.max(1e-12);
            row(
                args.csv,
                &[
                    mode.into(),
                    size.to_string(),
                    format!("{:.1}", bytes.len() as f64 / 1024.0),
                    ms(decode_s),
                    format!("{mpix:.2}"),
                    if c.psnr.is_finite() {
                        format!("{:.2}", c.psnr)
                    } else {
                        "inf".into()
                    },
                    format!("{:.4}", c.ssim),
                ],
            );
            rows.push(Row {
                mode,
                size,
                bytes: bytes.len(),
                decode_s,
                psnr: c.psnr,
                ssim: c.ssim,
            });
        }
    }

    if let Some(path) = &args.out {
        let body: Vec<String> = rows
            .iter()
            .map(|r| {
                let psnr = if r.psnr.is_finite() {
                    format!("{:.3}", r.psnr)
                } else {
                    "null".into()
                };
                format!(
                    "{{\"mode\":\"{}\",\"size\":{},\"stream_bytes\":{},\
                     \"decode_ms\":{:.3},\"mpix_per_s\":{:.3},\"psnr_db\":{psnr},\
                     \"ssim\":{:.5}}}",
                    r.mode,
                    r.size,
                    r.bytes,
                    r.decode_s * 1e3,
                    (r.size * r.size) as f64 / 1e6 / r.decode_s.max(1e-12),
                    r.ssim,
                )
            })
            .collect();
        let config = format!(
            "{{\"sizes\":[{}],\"seed\":{},\"levels\":{},\"host_cores\":{}}}",
            sizes
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(","),
            args.seed,
            args.levels,
            std::thread::available_parallelism().map_or(0, |n| n.get()),
        );
        // Track the largest-size rows: the steady-state decode rate.
        let mut report = BenchReport::new("decode_scaling").config(&config);
        for r in rows.iter().filter(|r| r.size == args.size) {
            let mpix = (r.size * r.size) as f64 / 1e6 / r.decode_s.max(1e-12);
            report = report.metric(&format!("{}_mpix_per_s", r.mode), mpix, Direction::Higher);
            if r.psnr.is_finite() {
                report = report.metric(&format!("{}_psnr_db", r.mode), r.psnr, Direction::Higher);
            }
        }
        let report = report.detail(&format!("{{\"rows\":[{}]}}", body.join(",")));
        std::fs::write(path, format!("{}\n", report.to_json())).expect("write --out file");
        println!("wrote {path}");
    }
}
