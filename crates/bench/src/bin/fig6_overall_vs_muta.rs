//! Figure 6: overall encode time vs Muta0/Muta1 (1280x720 lossless frame).

use baselines::muta::{per_frame_seconds, simulate_muta, MutaMode};
use cellsim::MachineConfig;
use j2k_bench::{lossless_params, ms, parse_args, row};
use j2k_core::cell::{simulate, SimOptions};
use j2k_core::EncoderParams;

fn main() {
    let args = parse_args();
    let im = imgio::synth::natural_rgb(1280, 720, args.seed);
    println!("Figure 6 — overall encode vs Muta et al. (1280x720 RGB lossless; speedups vs Muta0)");
    let ours = j2k_core::encode_with_profile(&im, &lossless_params(args.levels))
        .unwrap()
        .1;
    let muta_prof = j2k_core::encode_with_profile(
        &im,
        &EncoderParams {
            cb_size: 32,
            ..lossless_params(args.levels)
        },
    )
    .unwrap()
    .1;
    let m0 = per_frame_seconds(&simulate_muta(&muta_prof, MutaMode::Muta0), MutaMode::Muta0);
    let m1 = per_frame_seconds(&simulate_muta(&muta_prof, MutaMode::Muta1), MutaMode::Muta1);
    let ours1 = simulate(
        &ours,
        &MachineConfig::qs20_single(),
        &SimOptions {
            ppe_tier1: true,
            ..Default::default()
        },
    )
    .total_seconds();
    let ours2 = simulate(
        &ours,
        &MachineConfig::qs20_blade(),
        &SimOptions {
            ppe_tier1: true,
            ..Default::default()
        },
    )
    .total_seconds();
    row(
        args.csv,
        &[
            "config".into(),
            "ms/frame".into(),
            "speedup_vs_muta0".into(),
        ],
    );
    row(args.csv, &["Muta0 (2 chips)".into(), ms(m0), "1.00".into()]);
    row(
        args.csv,
        &["Muta1 (2 chips)".into(), ms(m1), format!("{:.2}", m0 / m1)],
    );
    row(
        args.csv,
        &[
            "Ours (1 chip)".into(),
            ms(ours1),
            format!("{:.2}", m0 / ours1),
        ],
    );
    row(
        args.csv,
        &[
            "Ours (2 chips)".into(),
            ms(ours2),
            format!("{:.2}", m0 / ours2),
        ],
    );
}
