//! Figure 7: EBCOT (Tier-1 + Tier-2) time vs Muta0/Muta1.

use baselines::muta::{muta_machine, simulate_muta, MutaMode};
use cellsim::MachineConfig;
use j2k_bench::{lossless_params, ms, parse_args, row};
use j2k_core::cell::{simulate, SimOptions};
use j2k_core::EncoderParams;

fn ebcot_secs(tl: &cellsim::Timeline, hz: f64) -> f64 {
    (tl.cycles_matching("tier1") + tl.cycles_matching("tier2") + tl.cycles_matching("ebcot")) as f64
        / hz
}

fn main() {
    let args = parse_args();
    let im = imgio::synth::natural_rgb(1280, 720, args.seed);
    println!(
        "Figure 7 — EBCOT (Tier-1 + Tier-2) vs Muta et al. (1280x720 lossless; speedups vs Muta0)"
    );
    let ours = j2k_core::encode_with_profile(&im, &lossless_params(args.levels))
        .unwrap()
        .1;
    let muta_prof = j2k_core::encode_with_profile(
        &im,
        &EncoderParams {
            cb_size: 32,
            ..lossless_params(args.levels)
        },
    )
    .unwrap()
    .1;
    let m0tl = simulate_muta(&muta_prof, MutaMode::Muta0);
    let m1tl = simulate_muta(&muta_prof, MutaMode::Muta1);
    let m0 = ebcot_secs(&m0tl, muta_machine(MutaMode::Muta0).clock_hz) / 2.0; // throughput
    let m1 = ebcot_secs(&m1tl, muta_machine(MutaMode::Muta1).clock_hz);
    let opts = SimOptions {
        ppe_tier1: true,
        ..Default::default()
    };
    let o1tl = simulate(&ours, &MachineConfig::qs20_single(), &opts);
    let o2tl = simulate(&ours, &MachineConfig::qs20_blade(), &opts);
    let o1 = ebcot_secs(&o1tl, MachineConfig::qs20_single().clock_hz);
    let o2 = ebcot_secs(&o2tl, MachineConfig::qs20_blade().clock_hz);
    row(
        args.csv,
        &[
            "config".into(),
            "ebcot_ms".into(),
            "speedup_vs_muta0".into(),
        ],
    );
    row(args.csv, &["Muta0 (2 chips)".into(), ms(m0), "1.00".into()]);
    row(
        args.csv,
        &["Muta1 (2 chips)".into(), ms(m1), format!("{:.2}", m0 / m1)],
    );
    row(
        args.csv,
        &["Ours (1 chip)".into(), ms(o1), format!("{:.2}", m0 / o1)],
    );
    row(
        args.csv,
        &["Ours (2 chips)".into(), ms(o2), format!("{:.2}", m0 / o2)],
    );
}
