//! Figure 4: lossless encoding time and speedup vs SPE count
//! (additional PPEs participate in Tier-1 encoding).

use cellsim::MachineConfig;
use j2k_bench::{lossless_params, ms, paper, parse_args, profile, row, workload_rgb};
use j2k_core::cell::{simulate, SimOptions};

fn machine_for(spes: usize) -> MachineConfig {
    if spes > 8 {
        MachineConfig::qs20_blade().with_spes(spes)
    } else {
        MachineConfig::qs20_single().with_spes(spes)
    }
}

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    let prof = profile(&im, &lossless_params(args.levels));
    println!(
        "Figure 4 — lossless encode, {}x{} RGB (paper: {}x at 8 SPE vs 1 SPE; {}x vs PPE-only)",
        args.size,
        args.size,
        paper::LOSSLESS_SPEEDUP_8SPE,
        paper::LOSSLESS_VS_PPE
    );
    row(
        args.csv,
        &[
            "config".into(),
            "time_ms".into(),
            "speedup_vs_1spe".into(),
            "vs_ppe_only".into(),
        ],
    );
    let ppe_only = simulate(&prof, &machine_for(0), &SimOptions::default()).total_seconds();
    let base = simulate(&prof, &machine_for(1), &SimOptions::default()).total_seconds();
    row(
        args.csv,
        &[
            "1 PPE only".into(),
            ms(ppe_only),
            format!("{:.2}", base / ppe_only),
            "1.00".into(),
        ],
    );
    for &n in &args.spes {
        let t = simulate(&prof, &machine_for(n), &SimOptions::default()).total_seconds();
        row(
            args.csv,
            &[
                format!("{n} SPE"),
                ms(t),
                format!("{:.2}", base / t),
                format!("{:.2}", ppe_only / t),
            ],
        );
        for ppes in [1usize, 2] {
            let cfg = machine_for(n).with_ppes(ppes);
            let t2 = simulate(
                &prof,
                &cfg,
                &SimOptions {
                    ppe_tier1: true,
                    ..Default::default()
                },
            )
            .total_seconds();
            row(
                args.csv,
                &[
                    format!("{n} SPE + {ppes} PPE"),
                    ms(t2),
                    format!("{:.2}", base / t2),
                    format!("{:.2}", ppe_only / t2),
                ],
            );
        }
    }
}
