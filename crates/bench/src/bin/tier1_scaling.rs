//! Tier-1 backend scaling: MQ bit-plane coder vs the HT quad coder on
//! the paper workload, swept over host worker counts (the `--spes` list
//! is reused as the worker counts, as in `host_parallel_scaling`).
//!
//! For each coder the codestream is asserted byte-identical to the
//! sequential encoder at every worker count, then the Tier-1 stage wall
//! time is converted into two throughput figures:
//!
//! * `symbols/s` — coder-native work items (MQ decisions, or HT quads +
//!   MagSgn emissions + refinement samples). Not comparable across
//!   coders: the HT cleanup codes a whole quad per item.
//! * `samples/s` — code-block samples swept per second of Tier-1 time.
//!   The coder-neutral basis; the ≥3x HT-vs-MQ gate below uses it.
//!
//! Prints a table (or `--csv`) and, with `--out FILE`, writes the
//! machine-readable `BENCH_tier1.json` consumed by CI — a shared
//! [`BenchReport`](j2k_bench::BenchReport) envelope whose `detail`
//! carries the per-row table and whose `metrics` feed `perf_history`.

use j2k_bench::{lossless_params, ms, parse_args, row, workload_rgb, BenchReport, Direction};
use j2k_core::{encode, encode_parallel_with_profile, Coder, EncoderParams, WorkloadProfile};

/// HT must beat MQ by at least this factor on the samples/s basis
/// (single worker, so the ratio is per-core coder speed, not scaling).
const HT_MIN_SPEEDUP: f64 = 3.0;

fn tier1_secs(prof: &WorkloadProfile) -> f64 {
    prof.stage_times
        .iter()
        .filter(|s| s.name == "tier1")
        .map(|s| s.seconds)
        .sum()
}

struct Row {
    coder: Coder,
    workers: usize,
    tier1: f64,
    symbols: u64,
    samples: u64,
    bytes: usize,
}

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    println!(
        "Tier-1 backend scaling, {}x{} RGB lossless (workers = --spes list)",
        args.size, args.size
    );
    row(
        args.csv,
        &[
            "coder".into(),
            "workers".into(),
            "tier1_ms".into(),
            "symbols/s".into(),
            "samples/s".into(),
            "bytes".into(),
        ],
    );

    let mut rows: Vec<Row> = Vec::new();
    for coder in [Coder::Mq, Coder::Ht] {
        let params = EncoderParams {
            coder,
            ..lossless_params(args.levels)
        };
        let seq = encode(&im, &params).expect("sequential encode");
        for &n in &args.spes {
            let (bytes, prof) =
                encode_parallel_with_profile(&im, &params, n).expect("parallel encode");
            assert_eq!(
                bytes, seq,
                "{coder} codestream changed at workers={n} vs sequential"
            );
            let r = Row {
                coder,
                workers: n,
                tier1: tier1_secs(&prof),
                symbols: prof.tier1_symbols(),
                samples: prof.blocks.iter().map(|b| b.samples).sum(),
                bytes: bytes.len(),
            };
            row(
                args.csv,
                &[
                    coder.name().into(),
                    n.to_string(),
                    ms(r.tier1),
                    format!("{:.3e}", r.symbols as f64 / r.tier1.max(1e-12)),
                    format!("{:.3e}", r.samples as f64 / r.tier1.max(1e-12)),
                    r.bytes.to_string(),
                ],
            );
            rows.push(r);
        }
    }

    // Single-worker rows give the per-core coder comparison.
    let base = |c: Coder| -> &Row {
        rows.iter()
            .find(|r| r.coder == c && r.workers == rows[0].workers)
            .expect("base row")
    };
    let (mq, ht) = (base(Coder::Mq), base(Coder::Ht));
    let sps = |r: &Row| r.samples as f64 / r.tier1.max(1e-12);
    let ht_speedup = sps(ht) / sps(mq).max(1e-12);
    let size_delta = ht.bytes as f64 / mq.bytes as f64 - 1.0;
    println!();
    println!(
        "HT vs MQ at {} worker(s): {:.2}x samples/s, {:+.2}% codestream size",
        mq.workers,
        ht_speedup,
        size_delta * 100.0
    );

    if let Some(path) = &args.out {
        let body: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"coder\":\"{}\",\"workers\":{},\"tier1_ms\":{:.3},\
                     \"symbols\":{},\"symbols_per_sec\":{:.1},\
                     \"samples_per_sec\":{:.1},\"bytes\":{}}}",
                    r.coder.name(),
                    r.workers,
                    r.tier1 * 1e3,
                    r.symbols,
                    r.symbols as f64 / r.tier1.max(1e-12),
                    sps(r),
                    r.bytes,
                )
            })
            .collect();
        let config = format!(
            "{{\"size\":{},\"seed\":{},\"levels\":{},\"workers\":[{}]}}",
            args.size,
            args.seed,
            args.levels,
            args.spes
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        let detail = format!(
            "{{\"rows\":[{}],\"summary\":{{\"ht_vs_mq_samples_per_sec\":{:.3},\
             \"ht_size_delta\":{:.4}}}}}",
            body.join(","),
            ht_speedup,
            size_delta,
        );
        let report = BenchReport::new("tier1_scaling")
            .config(&config)
            .metric("mq_samples_per_sec", sps(mq), Direction::Higher)
            .metric("ht_samples_per_sec", sps(ht), Direction::Higher)
            .metric("ht_vs_mq_samples_per_sec", ht_speedup, Direction::Higher)
            .metric("ht_size_delta", size_delta, Direction::Lower)
            .detail(&detail);
        std::fs::write(path, format!("{}\n", report.to_json())).expect("write --out file");
        println!("wrote {path}");
    }

    assert!(
        ht_speedup >= HT_MIN_SPEEDUP,
        "HT Tier-1 throughput regression: {ht_speedup:.2}x MQ on samples/s, \
         gate is {HT_MIN_SPEEDUP}x"
    );
}
