//! Ablation of Algorithms 1/2 and the merged split (Section 4): DMA
//! traffic, simulated vertical-DWT time, and measured host wall time per
//! variant. All variants produce identical coefficients.

use cellsim::MachineConfig;
use j2k_bench::{lossless_params, ms, parse_args, profile, row, workload_rgb};
use j2k_core::cell::{simulate, SimOptions};
use j2k_core::EncoderParams;
use std::time::Instant;
use wavelet::{Filter, VerticalVariant};
use xpart::AlignedPlane;

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    println!(
        "Lifting-schedule ablation, {}x{} RGB lossless (Algorithm 1 = Separate, Algorithm 2 = Interleaved)",
        args.size, args.size
    );
    row(
        args.csv,
        &[
            "variant".into(),
            "traffic_elems/sample".into(),
            "sim_dwtv_ms".into(),
            "host_fwd2d_ms".into(),
        ],
    );
    let cfg = MachineConfig::qs20_single();
    for variant in [
        VerticalVariant::Separate,
        VerticalVariant::Interleaved,
        VerticalVariant::Merged,
    ] {
        let params = EncoderParams {
            variant,
            ..lossless_params(args.levels)
        };
        let prof = profile(&im, &params);
        let tl = simulate(&prof, &cfg, &SimOptions::default());
        let t = wavelet::vertical_traffic(variant, Filter::Rev53, 1000, 1000);
        // Host wall time of the real forward transform on one plane.
        let dense: Vec<i32> = im.planes[0].iter().map(|&v| v as i32).collect();
        let plane = AlignedPlane::from_dense(im.width, im.height, &dense).unwrap();
        let t0 = Instant::now();
        let mut p = plane.clone();
        wavelet::forward_2d_53(&mut p, args.levels, variant);
        let host = t0.elapsed().as_secs_f64();
        row(
            args.csv,
            &[
                format!("{variant:?}"),
                format!("{:.2}", t.total() as f64 / 1e6),
                ms(tl.cycles_matching("dwt-vertical") as f64 / cfg.clock_hz),
                ms(host),
            ],
        );
    }
}
