//! Figure 2: work partitioning among the PPE and the SPEs.

use cellsim::MachineConfig;
use j2k_bench::{lossless_params, parse_args, profile, workload_rgb};
use j2k_core::cell::{simulate, SimOptions};

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    let prof = profile(&im, &lossless_params(args.levels));
    let cfg = MachineConfig::qs20_single();
    let tl = simulate(&prof, &cfg, &SimOptions::default());
    println!(
        "Figure 2 — work partitioning for a {}x{} RGB lossless encode on 8 SPE + 1 PPE",
        args.size, args.size
    );
    println!(
        "{:<24} {:<34} {:>10}",
        "stage", "processing elements", "tasks"
    );
    for s in &tl.stages {
        let n_active = s.tasks_run.iter().filter(|&&t| t > 0).count();
        let kind = match s.name.as_str() {
            "read-convert-par" => "PPE + SPEs (partial)".to_string(),
            "read-convert-seq" | "rate-control" | "tier2" | "stream-io" => "PPE only".to_string(),
            "tier1" => format!("work queue, {} PEs", s.busy_cycles.len()),
            _ => format!("chunked: {} of {} PEs", n_active, s.busy_cycles.len()),
        };
        println!(
            "{:<24} {:<34} {:>10}",
            s.name,
            kind,
            s.tasks_run.iter().sum::<usize>()
        );
    }
    println!();
    println!("{}", tl.render());
}
