//! Figure 5: lossy encoding time and speedup vs SPE count; the sequential
//! rate-control stage flattens the curve.

use cellsim::MachineConfig;
use j2k_bench::{lossy_params, ms, paper, parse_args, profile, row, workload_rgb};
use j2k_core::cell::{simulate, SimOptions};

fn machine_for(spes: usize) -> MachineConfig {
    if spes > 8 {
        MachineConfig::qs20_blade().with_spes(spes)
    } else {
        MachineConfig::qs20_single().with_spes(spes)
    }
}

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    let prof = profile(&im, &lossy_params(args.levels));
    println!(
        "Figure 5 — lossy encode rate 0.1, {}x{} RGB (paper: {}x at 8 SPE; {}x vs PPE-only; \
         rate control ~{:.0}% at 16 SPE + 2 PPE)",
        args.size,
        args.size,
        paper::LOSSY_SPEEDUP_8SPE,
        paper::LOSSY_VS_PPE,
        paper::RC_SHARE_16SPE * 100.0
    );
    row(
        args.csv,
        &[
            "config".into(),
            "time_ms".into(),
            "speedup_vs_1spe".into(),
            "rc_share".into(),
        ],
    );
    let ppe_only = simulate(&prof, &machine_for(0), &SimOptions::default());
    let base = simulate(&prof, &machine_for(1), &SimOptions::default());
    row(
        args.csv,
        &[
            "1 PPE only".into(),
            ms(ppe_only.total_seconds()),
            format!("{:.2}", base.total_seconds() / ppe_only.total_seconds()),
            format!("{:.2}", ppe_only.fraction_matching("rate-control")),
        ],
    );
    for &n in &args.spes {
        let tl = simulate(&prof, &machine_for(n), &SimOptions::default());
        row(
            args.csv,
            &[
                format!("{n} SPE"),
                ms(tl.total_seconds()),
                format!("{:.2}", base.total_seconds() / tl.total_seconds()),
                format!("{:.2}", tl.fraction_matching("rate-control")),
            ],
        );
    }
    let cfg = machine_for(16).with_ppes(2);
    let tl = simulate(
        &prof,
        &cfg,
        &SimOptions {
            ppe_tier1: true,
            ..Default::default()
        },
    );
    row(
        args.csv,
        &[
            "16 SPE + 2 PPE".into(),
            ms(tl.total_seconds()),
            format!("{:.2}", base.total_seconds() / tl.total_seconds()),
            format!("{:.2}", tl.fraction_matching("rate-control")),
        ],
    );
}
