//! Selective arithmetic-coding bypass ("lazy" mode) ablation — an optional
//! JPEG2000 feature the paper does not explore, but which attacks exactly
//! its bottleneck: Tier-1 is ~75% of the lossless encode, and bypass
//! converts deep-plane MQ decisions into raw bits.

use cellsim::MachineConfig;
use j2k_bench::{lossless_params, ms, parse_args, row, workload_rgb};
use j2k_core::cell::{simulate, SimOptions};
use j2k_core::EncoderParams;

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    println!(
        "Arithmetic-coding-bypass ablation, {}x{} RGB lossless (8 SPE + 1 PPE)",
        args.size, args.size
    );
    row(
        args.csv,
        &[
            "mode".into(),
            "bytes".into(),
            "t1_symbols".into(),
            "sim_total_ms".into(),
            "sim_tier1_ms".into(),
        ],
    );
    let cfg = MachineConfig::qs20_single();
    for bypass in [false, true] {
        let params = EncoderParams {
            bypass,
            ..lossless_params(args.levels)
        };
        let (bytes, prof) = j2k_core::encode_with_profile(&im, &params).unwrap();
        let tl = simulate(&prof, &cfg, &SimOptions::default());
        row(
            args.csv,
            &[
                if bypass {
                    "bypass (lazy)".into()
                } else {
                    "full MQ".into()
                },
                format!("{}", bytes.len()),
                format!("{}", prof.tier1_symbols()),
                ms(tl.total_seconds()),
                ms(tl.cycles_matching("tier1") as f64 / cfg.clock_hz),
            ],
        );
    }
    println!();
    println!("(Raw bits are counted as Tier-1 work items too; the benefit on real");
    println!(" hardware comes from the raw path's shorter dependency chain — the");
    println!(" cost model treats decisions uniformly, so simulated gains are");
    println!(" conservative. The rate cost of bypass is the `bytes` delta.)");
}
