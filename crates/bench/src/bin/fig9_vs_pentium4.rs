//! Figure 9: Cell/B.E. vs Intel Pentium IV 3.2 GHz, overall and DWT,
//! lossless and lossy.

use baselines::pentium4::{p4_machine, simulate_p4};
use cellsim::MachineConfig;
use j2k_bench::{lossless_params, lossy_params, ms, paper, parse_args, profile, row, workload_rgb};
use j2k_core::cell::{simulate, SimOptions};

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    println!(
        "Figure 9 — Cell (8 SPE + 1 PPE) vs Pentium IV 3.2 GHz, {}x{} RGB \
         (paper: overall {}x lossless / {}x lossy; DWT {}x / {}x)",
        args.size,
        args.size,
        paper::VS_P4_LOSSLESS,
        paper::VS_P4_LOSSY,
        paper::VS_P4_DWT_LOSSLESS,
        paper::VS_P4_DWT_LOSSY
    );
    row(
        args.csv,
        &[
            "metric".into(),
            "p4_ms".into(),
            "cell_ms".into(),
            "speedup".into(),
            "paper".into(),
        ],
    );
    let cell_cfg = MachineConfig::qs20_single();
    let opts = SimOptions {
        ppe_tier1: true,
        ..Default::default()
    };
    for (name, params, overall_ref, dwt_ref) in [
        (
            "lossless",
            lossless_params(args.levels),
            paper::VS_P4_LOSSLESS,
            paper::VS_P4_DWT_LOSSLESS,
        ),
        (
            "lossy",
            lossy_params(args.levels),
            paper::VS_P4_LOSSY,
            paper::VS_P4_DWT_LOSSY,
        ),
    ] {
        // The Cell runs the float path (the paper's optimization); the P4
        // runs stock Jasper's fixed-point representation.
        let prof = profile(&im, &params);
        let p4_params = j2k_core::EncoderParams {
            arithmetic: j2k_core::Arithmetic::FixedQ13,
            ..params
        };
        let p4_prof = if matches!(params.mode, j2k_core::Mode::Lossy { .. }) {
            profile(&im, &p4_params)
        } else {
            prof.clone()
        };
        let p4 = simulate_p4(&p4_prof);
        let cell = simulate(&prof, &cell_cfg, &opts);
        let p4_total = p4.total_seconds();
        let cell_total = cell.total_seconds();
        row(
            args.csv,
            &[
                format!("{name} overall"),
                ms(p4_total),
                ms(cell_total),
                format!("{:.2}", p4_total / cell_total),
                format!("{overall_ref:.1}"),
            ],
        );
        let p4_dwt = p4.cycles_matching("dwt") as f64 / p4_machine().clock_hz;
        let cell_dwt = cell.cycles_matching("dwt") as f64 / cell_cfg.clock_hz;
        row(
            args.csv,
            &[
                format!("{name} DWT"),
                ms(p4_dwt),
                ms(cell_dwt),
                format!("{:.2}", p4_dwt / cell_dwt),
                format!("{dwt_ref:.1}"),
            ],
        );
    }
}
