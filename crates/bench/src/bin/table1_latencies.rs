//! Table 1: SPE instruction latencies and the fixed-vs-float consequence.

use cellsim::isa;

fn main() {
    println!("Table 1 — Latency for the SPE instructions (paper, Section 4)");
    println!("{:<8} {:<44} {:>8}", "instr", "description", "latency");
    for i in isa::TABLE1 {
        println!("{:<8} {:<44} {:>7}c", i.name, i.desc, i.latency);
    }
    println!();
    println!(
        "Derived: emulated 32-bit integer multiply = {} instructions, \
         dependent-chain latency {} cycles, vs. one pipelined fm ({} cycles).",
        isa::MUL32_EMULATION_INSTRS,
        isa::MUL32_EMULATION_LATENCY,
        isa::FM.latency
    );
    println!(
        "Modelled per-sample lifting-step cost on the SPE: f32 {:.2}c, Q13 fixed {:.2}c ({}x).",
        cellsim::cost::cycles_per_item(cellsim::ProcKind::Spe, cellsim::Kernel::DwtLift97F32),
        cellsim::cost::cycles_per_item(cellsim::ProcKind::Spe, cellsim::Kernel::DwtLift97Fixed),
        cellsim::cost::cycles_per_item(cellsim::ProcKind::Spe, cellsim::Kernel::DwtLift97Fixed)
            / cellsim::cost::cycles_per_item(cellsim::ProcKind::Spe, cellsim::Kernel::DwtLift97F32),
    );
}
