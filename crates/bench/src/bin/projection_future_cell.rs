//! Projection for future Cell processors: the paper's conclusion claims
//! the approach "will work efficiently even in the future Cell/B.E.
//! processors with more SPEs" (32 were anticipated). Sweep SPE counts past
//! the QS20 and report where each pipeline saturates and why.

use cellsim::MachineConfig;
use j2k_bench::{lossless_params, lossy_params, ms, parse_args, profile, row, workload_rgb};
use j2k_core::cell::{simulate, SimOptions};

fn machine_for(spes: usize) -> MachineConfig {
    // Future parts: scale memory bandwidth with chip count (8 SPEs/chip).
    let chips = spes.div_ceil(8).max(1);
    MachineConfig {
        num_spes: spes,
        num_ppes: chips,
        mem_bw_bytes_per_s: chips as f64 * 25.6e9,
        ..MachineConfig::qs20_single()
    }
}

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    println!(
        "Future-Cell projection, {}x{} RGB (paper conclusion: scaling should continue past 16 SPEs)",
        args.size, args.size
    );
    for (name, params) in [
        ("lossless", lossless_params(args.levels)),
        ("lossy r=0.1", lossy_params(args.levels)),
    ] {
        let prof = profile(&im, &params);
        println!("-- {name} --");
        row(
            args.csv,
            &[
                "spes".into(),
                "time_ms".into(),
                "speedup".into(),
                "tier1_share".into(),
                "seq_share".into(),
            ],
        );
        let base = simulate(&prof, &machine_for(1), &SimOptions::default()).total_seconds();
        for spes in [1usize, 2, 4, 8, 16, 32, 64] {
            let tl = simulate(
                &prof,
                &machine_for(spes),
                &SimOptions {
                    ppe_tier1: true,
                    ..Default::default()
                },
            );
            let seq = tl.fraction_matching("rate-control")
                + tl.fraction_matching("tier2")
                + tl.fraction_matching("stream-io")
                + tl.fraction_matching("read-convert-seq");
            row(
                args.csv,
                &[
                    format!("{spes}"),
                    ms(tl.total_seconds()),
                    format!("{:.2}", base / tl.total_seconds()),
                    format!("{:.2}", tl.fraction_matching("tier1")),
                    format!("{:.2}", seq),
                ],
            );
        }
    }
    println!();
    println!("(seq_share = Amdahl residue: rate control + Tier-2 + stream I/O +");
    println!(" sequential read; it bounds the achievable speedup as SPEs grow.)");
}
