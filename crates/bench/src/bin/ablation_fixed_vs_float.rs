//! Fixed-point (Jasper Q13) vs single-precision float 9/7 (Section 4):
//! the representation switch that pays off on the SPE but not on the P4.

use baselines::pentium4::{p4_machine, simulate_p4};
use cellsim::MachineConfig;
use j2k_bench::{lossy_params, ms, parse_args, profile, row, workload_rgb};
use j2k_core::cell::{simulate, SimOptions};
use j2k_core::{Arithmetic, EncoderParams};
use std::time::Instant;
use wavelet::VerticalVariant;
use xpart::AlignedPlane;

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    println!(
        "Fixed vs float 9/7 ablation, {}x{} RGB lossy rate 0.1",
        args.size, args.size
    );
    row(
        args.csv,
        &[
            "arithmetic".into(),
            "cell_dwt_ms".into(),
            "p4_dwt_ms".into(),
            "host_fwd2d_ms".into(),
        ],
    );
    let cfg = MachineConfig::qs20_single();
    for arith in [Arithmetic::Float32, Arithmetic::FixedQ13] {
        let params = EncoderParams {
            arithmetic: arith,
            ..lossy_params(args.levels)
        };
        let prof = profile(&im, &params);
        let cell = simulate(&prof, &cfg, &SimOptions::default());
        let p4 = simulate_p4(&prof);
        let host = {
            let dense: Vec<i32> = im.planes[0].iter().map(|&v| v as i32).collect();
            let plane = AlignedPlane::from_dense(im.width, im.height, &dense).unwrap();
            let t0 = Instant::now();
            match arith {
                Arithmetic::Float32 => {
                    let mut p = plane.to_f32();
                    wavelet::forward_2d_97(&mut p, args.levels, VerticalVariant::Merged);
                }
                Arithmetic::FixedQ13 => {
                    let mut p = plane.map(wavelet::fixed::to_fixed);
                    wavelet::transform2d::forward_2d_97_fixed(
                        &mut p,
                        args.levels,
                        VerticalVariant::Merged,
                    );
                }
            }
            t0.elapsed().as_secs_f64()
        };
        row(
            args.csv,
            &[
                format!("{arith:?}"),
                ms(cell.cycles_matching("dwt") as f64 / cfg.clock_hz),
                ms(p4.cycles_matching("dwt") as f64 / p4_machine().clock_hz),
                ms(host),
            ],
        );
    }
}
