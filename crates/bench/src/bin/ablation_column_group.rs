//! Column-group-width ablation: the paper fixes group width to a multiple
//! of the cache line; narrower groups mean more, smaller DMAs, and
//! non-aligned groups pay the misalignment penalty.

use cellsim::{DmaClass, MachineConfig};
use j2k_bench::{lossless_params, ms, parse_args, profile, row, workload_rgb};
use j2k_core::cell::{simulate, SimOptions};

fn main() {
    let args = parse_args();
    let im = workload_rgb(&args);
    let prof = profile(&im, &lossless_params(args.levels));
    let cfg = MachineConfig::qs20_single();
    println!(
        "Column-group ablation, {}x{} RGB lossless (8 SPEs)",
        args.size, args.size
    );
    row(
        args.csv,
        &[
            "group_bytes".into(),
            "alignment".into(),
            "dwtv_ms".into(),
            "dma_requests".into(),
        ],
    );
    for bytes in [128usize, 512, 2048, 8192] {
        for (label, class) in [
            ("line-aligned", DmaClass::LineOptimal),
            ("unaligned", DmaClass::QuadAligned),
        ] {
            let opts = SimOptions {
                chunk_width_bytes: Some(bytes),
                dma_class: class,
                ..Default::default()
            };
            let tl = simulate(&prof, &cfg, &opts);
            let reqs: u64 = tl
                .stages
                .iter()
                .filter(|s| s.name.starts_with("dwt-vertical"))
                .map(|s| s.dma_requests)
                .sum();
            row(
                args.csv,
                &[
                    format!("{bytes}"),
                    label.into(),
                    ms(tl.cycles_matching("dwt-vertical") as f64 / cfg.clock_hz),
                    format!("{reqs}"),
                ],
            );
        }
    }
}
