//! `perf_history` — track bench results across runs and fail CI on
//! performance regressions.
//!
//! ```text
//! perf_history add REPORT.json...  [--history FILE]
//!     validate each report (bench-report/v1 envelope) and append it as
//!     one line of the history (default BENCH_history.jsonl)
//!
//! perf_history compare REPORT.json [--history FILE] [--tolerance PCT]
//!     compare REPORT against the most recent history entry with the
//!     same bench name; exit 1 listing every metric that moved in the
//!     worse direction by more than PCT percent (default 10). A report
//!     with no baseline passes (first run seeds the trajectory).
//!
//! perf_history self-test
//!     exercise the compare logic end to end on synthetic reports: two
//!     identical runs must pass, and a 20% throughput drop must be
//!     flagged; exit 1 if either expectation fails.
//! ```
//!
//! History is JSON Lines: one [`BenchReport`] envelope per line, so it
//! appends atomically, diffs cleanly, and any line can be inspected with
//! standard tools. Unparseable lines are skipped with a warning rather
//! than poisoning the whole trajectory.

use j2k_bench::report::{compare, BenchReport, Direction};
use std::process::exit;

fn die(msg: &str) -> ! {
    eprintln!("perf_history: {msg}");
    exit(1);
}

const USAGE: &str = "usage: perf_history add REPORT.json... [--history FILE] | \
                     perf_history compare REPORT.json [--history FILE] [--tolerance PCT] | \
                     perf_history self-test";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("add") => add(&argv[1..]),
        Some("compare") => cmd_compare(&argv[1..]),
        Some("self-test") | Some("--self-test") => self_test(),
        Some("--help") | Some("-h") => println!("{USAGE}"),
        _ => die(USAGE),
    }
}

/// Split `args` into positional file paths and the shared flags.
fn parse_flags(args: &[String]) -> (Vec<String>, String, f64) {
    let mut files = Vec::new();
    let mut history = "BENCH_history.jsonl".to_string();
    let mut tolerance = 0.10;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--history" => {
                history = args
                    .get(i + 1)
                    .unwrap_or_else(|| die("missing value after --history"))
                    .clone();
                i += 2;
            }
            "--tolerance" => {
                let pct: f64 = args
                    .get(i + 1)
                    .unwrap_or_else(|| die("missing value after --tolerance"))
                    .parse()
                    .unwrap_or_else(|_| die("--tolerance PCT"));
                if !(0.0..=100.0).contains(&pct) {
                    die("--tolerance PCT must be in 0..=100");
                }
                tolerance = pct / 100.0;
                i += 2;
            }
            flag if flag.starts_with("--") => die(&format!("unknown flag {flag}; {USAGE}")),
            file => {
                files.push(file.to_string());
                i += 1;
            }
        }
    }
    (files, history, tolerance)
}

fn read_report(path: &str) -> BenchReport {
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    BenchReport::parse(&json).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// Most recent history entry for `bench`, skipping (with a warning) any
/// lines that no longer parse.
fn latest_baseline(history: &str, bench: &str) -> Option<BenchReport> {
    let text = std::fs::read_to_string(history).ok()?;
    let mut last = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match BenchReport::parse(line) {
            Ok(r) if r.bench == bench => last = Some(r),
            Ok(_) => {}
            Err(e) => eprintln!("perf_history: {history}:{}: skipping: {e}", lineno + 1),
        }
    }
    last
}

fn add(args: &[String]) {
    let (files, history, _) = parse_flags(args);
    if files.is_empty() {
        die("add: no report files given");
    }
    let mut lines = String::new();
    for f in &files {
        let r = read_report(f);
        lines.push_str(&r.to_json());
        lines.push('\n');
        println!(
            "perf_history: recorded {} ({} metrics) from {f}",
            r.bench,
            r.metrics.len()
        );
    }
    use std::io::Write;
    let mut fh = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history)
        .unwrap_or_else(|e| die(&format!("open {history}: {e}")));
    fh.write_all(lines.as_bytes())
        .unwrap_or_else(|e| die(&format!("append {history}: {e}")));
}

fn cmd_compare(args: &[String]) {
    let (files, history, tolerance) = parse_flags(args);
    let [file] = files.as_slice() else {
        die("compare: exactly one report file expected");
    };
    let current = read_report(file);
    let Some(baseline) = latest_baseline(&history, &current.bench) else {
        println!(
            "perf_history: no baseline for {} in {history}; first run passes",
            current.bench
        );
        return;
    };
    let regs = compare(&baseline, &current, tolerance);
    for m in &current.metrics {
        let base = baseline.metrics.iter().find(|b| b.name == m.name);
        println!(
            "{:<36} {:>14} -> {:>14}  ({})",
            m.name,
            base.map_or("(new)".to_string(), |b| format!("{:.4}", b.value)),
            format!("{:.4}", m.value),
            m.dir.as_str()
        );
    }
    if regs.is_empty() {
        println!(
            "perf_history: {} OK vs baseline ({} metrics, tolerance {:.0}%)",
            current.bench,
            current.metrics.len(),
            tolerance * 100.0
        );
    } else {
        for r in &regs {
            eprintln!("perf_history: REGRESSION {r}");
        }
        die(&format!(
            "{} metric(s) regressed beyond {:.0}% tolerance",
            regs.len(),
            tolerance * 100.0
        ));
    }
}

/// End-to-end check of the regression gate itself, exercising the same
/// envelope serialization, parsing, and compare path CI relies on.
fn self_test() {
    let base = BenchReport::new("self_test")
        .config("{\"synthetic\":true}")
        .metric("throughput_samples_per_sec", 1.0e8, Direction::Higher)
        .metric("e2e_ms", 120.0, Direction::Lower);

    // Round-trip through the JSONL representation, as compare does.
    let base = BenchReport::parse(&base.to_json()).unwrap_or_else(|e| die(&format!("parse: {e}")));

    // Two identical runs must pass.
    if !compare(&base, &base.clone(), 0.10).is_empty() {
        die("self-test: identical runs flagged a regression");
    }

    // A 20% throughput drop must be flagged at 10% tolerance.
    let mut dropped = base.clone();
    dropped.metrics[0].value *= 0.8;
    let regs = compare(&base, &dropped, 0.10);
    if regs.len() != 1 || regs[0].name != "throughput_samples_per_sec" {
        die(&format!(
            "self-test: expected exactly the throughput drop to be flagged, got {regs:?}"
        ));
    }

    // And an equivalent latency increase on the lower-is-better metric.
    let mut slower = base.clone();
    slower.metrics[1].value *= 1.2;
    if compare(&base, &slower, 0.10).len() != 1 {
        die("self-test: 20% latency increase was not flagged");
    }

    println!(
        "perf_history: self-test OK (identical runs pass, 20% regressions flagged: {})",
        regs[0]
    );
}
