//! The shared `BENCH_*.json` envelope and the regression-compare logic
//! behind the `perf_history` binary.
//!
//! Every bench emitter used to write an ad-hoc JSON shape, which made
//! cross-run trend tracking impossible without per-bench parsers. A
//! [`BenchReport`] is the common envelope: a bench name, a timestamp, a
//! flat list of named scalar [`Metric`]s each tagged with the direction
//! that is *better*, and the emitter's full original JSON preserved
//! verbatim under `detail`. `perf_history` appends reports to
//! `BENCH_history.jsonl` (one envelope per line) and compares a fresh
//! report against the most recent run of the same bench, failing on any
//! metric that moved in the *worse* direction by more than the
//! tolerance.
//!
//! The workspace builds offline without serde, so serialization is
//! hand-rolled here and parsing is a small scanner that understands
//! exactly the shapes this module writes (balanced-brace raw capture
//! for `config`/`detail`, flat field extraction for metrics).

use std::fmt;

/// Which way a metric is *better*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (throughput, speedup).
    Higher,
    /// Smaller is better (latency, bytes, share).
    Lower,
}

impl Direction {
    /// Stable wire name (`higher` / `lower`).
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Higher => "higher",
            Direction::Lower => "lower",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Result<Direction, String> {
        match s {
            "higher" => Ok(Direction::Higher),
            "lower" => Ok(Direction::Lower),
            other => Err(format!("unknown direction {other:?}")),
        }
    }
}

/// One tracked scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable metric name within the bench (`ht_samples_per_sec`, ...).
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Which way is better.
    pub dir: Direction,
}

/// The shared envelope written by every `BENCH_*.json` emitter.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Bench name (`tier1_scaling`, `kernels`, `serve_load`, ...) — the
    /// history key.
    pub bench: String,
    /// Milliseconds since the Unix epoch at emit time (0 when unknown).
    pub unix_ms: u64,
    /// Raw JSON object with the run configuration, verbatim.
    pub config: String,
    /// Tracked scalars, compared run over run by `perf_history`.
    pub metrics: Vec<Metric>,
    /// The emitter's full bench-specific JSON, verbatim (`null` if none).
    pub detail: String,
}

/// One metric that moved in the worse direction beyond tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change in the *worse* direction (0.2 = 20% worse).
    pub worse_by: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.4} -> {:.4} ({:.1}% worse)",
            self.name,
            self.baseline,
            self.current,
            self.worse_by * 100.0
        )
    }
}

impl BenchReport {
    /// An empty report for `bench` stamped with the current wall clock.
    pub fn new(bench: &str) -> BenchReport {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        BenchReport {
            bench: bench.to_string(),
            unix_ms,
            config: "{}".to_string(),
            metrics: Vec::new(),
            detail: "null".to_string(),
        }
    }

    /// Add one tracked metric (builder style).
    pub fn metric(mut self, name: &str, value: f64, dir: Direction) -> BenchReport {
        self.metrics.push(Metric {
            name: name.to_string(),
            value,
            dir,
        });
        self
    }

    /// Attach the raw JSON config object (must be valid JSON; stored
    /// verbatim).
    pub fn config(mut self, raw_json: &str) -> BenchReport {
        self.config = raw_json.to_string();
        self
    }

    /// Attach the emitter's full bench-specific JSON (stored verbatim).
    pub fn detail(mut self, raw_json: &str) -> BenchReport {
        self.detail = raw_json.to_string();
        self
    }

    /// One-line JSON envelope (also the `BENCH_history.jsonl` line
    /// format).
    pub fn to_json(&self) -> String {
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|m| {
                format!(
                    "{{\"name\":\"{}\",\"value\":{},\"dir\":\"{}\"}}",
                    obs::json_escape(&m.name),
                    fmt_f64(m.value),
                    m.dir.as_str()
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"bench-report/v1\",\"bench\":\"{}\",\"unix_ms\":{},\
             \"config\":{},\"metrics\":[{}],\"detail\":{}}}",
            obs::json_escape(&self.bench),
            self.unix_ms,
            self.config,
            metrics.join(","),
            self.detail
        )
    }

    /// Parse an envelope previously written by [`to_json`](Self::to_json).
    pub fn parse(json: &str) -> Result<BenchReport, String> {
        let s = json.trim();
        if raw_value(s, "schema") != Some("\"bench-report/v1\"".to_string()) {
            return Err("missing or unknown \"schema\" (want bench-report/v1)".into());
        }
        let bench = string_value(s, "bench").ok_or("missing \"bench\"")?;
        let unix_ms = raw_value(s, "unix_ms")
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or("missing or non-integer \"unix_ms\"")?;
        let config = raw_value(s, "config").ok_or("missing \"config\"")?;
        let detail = raw_value(s, "detail").ok_or("missing \"detail\"")?;
        let marr = raw_value(s, "metrics").ok_or("missing \"metrics\"")?;
        let mut metrics = Vec::new();
        for obj in split_objects(&marr)? {
            let name = string_value(&obj, "name").ok_or("metric missing \"name\"")?;
            let value = raw_value(&obj, "value")
                .and_then(|v| v.parse::<f64>().ok())
                .ok_or("metric missing numeric \"value\"")?;
            let dir = string_value(&obj, "dir")
                .ok_or("metric missing \"dir\"")
                .and_then(|d| Direction::parse(&d).map_err(|_| "bad metric \"dir\""))?;
            metrics.push(Metric { name, value, dir });
        }
        Ok(BenchReport {
            bench,
            unix_ms,
            config,
            metrics,
            detail,
        })
    }
}

/// Render an f64 so it round-trips through `parse::<f64>` (JSON numbers
/// may not be NaN/inf; those degrade to 0).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints without a dot; keep it valid JSON
        // either way (integers are valid JSON numbers).
        s
    } else {
        "0".to_string()
    }
}

/// Extract the raw JSON value of a top-level `"key":` in `s`, respecting
/// strings, escapes, and balanced braces/brackets. Top-level only in
/// spirit: the first occurrence of the quoted key wins, so callers parse
/// shapes this module wrote (envelope keys precede nested payloads).
fn raw_value(s: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let start = s.find(&pat)? + pat.len();
    let rest = s[start..].trim_start();
    let bytes = rest.as_bytes();
    let end = match bytes.first()? {
        b'"' => {
            let mut i = 1;
            let mut esc = false;
            loop {
                let b = *bytes.get(i)?;
                if esc {
                    esc = false;
                } else if b == b'\\' {
                    esc = true;
                } else if b == b'"' {
                    break i + 1;
                }
                i += 1;
            }
        }
        b'{' | b'[' => {
            let (open, close) = if bytes[0] == b'{' {
                (b'{', b'}')
            } else {
                (b'[', b']')
            };
            let mut depth = 0usize;
            let mut i = 0;
            let mut in_str = false;
            let mut esc = false;
            loop {
                let b = *bytes.get(i)?;
                if in_str {
                    if esc {
                        esc = false;
                    } else if b == b'\\' {
                        esc = true;
                    } else if b == b'"' {
                        in_str = false;
                    }
                } else if b == b'"' {
                    in_str = true;
                } else if b == open {
                    depth += 1;
                } else if b == close {
                    depth -= 1;
                    if depth == 0 {
                        break i + 1;
                    }
                }
                i += 1;
            }
        }
        _ => rest.find([',', '}', ']']).unwrap_or(rest.len()),
    };
    Some(rest[..end].trim_end().to_string())
}

/// [`raw_value`] for string fields, unescaping the simple escapes this
/// module's writer produces.
fn string_value(s: &str, key: &str) -> Option<String> {
    let raw = raw_value(s, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                other => out.push(other),
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Split a raw JSON array of flat objects into the objects' raw text.
fn split_objects(arr: &str) -> Result<Vec<String>, String> {
    let inner = arr
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or("metrics is not an array")?;
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    let mut in_str = false;
    let mut esc = false;
    for (i, b) in inner.bytes().enumerate() {
        if in_str {
            if esc {
                esc = false;
            } else if b == b'\\' {
                esc = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            b'}' => {
                depth = depth.checked_sub(1).ok_or("unbalanced metric object")?;
                if depth == 0 {
                    let s = start.take().ok_or("unbalanced metric object")?;
                    out.push(inner[s..=i].to_string());
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err("unterminated metric object".into());
    }
    Ok(out)
}

/// Compare `current` against `baseline`: every metric present in both
/// (by name) whose value moved in the worse direction by strictly more
/// than `tolerance` (relative, e.g. 0.10 = 10%) is a [`Regression`].
/// Metrics missing from either side are ignored — benches may grow
/// metrics over time. A baseline of exactly 0 cannot regress relatively
/// and is skipped.
pub fn compare(baseline: &BenchReport, current: &BenchReport, tolerance: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for cur in &current.metrics {
        let Some(base) = baseline.metrics.iter().find(|m| m.name == cur.name) else {
            continue;
        };
        if base.value == 0.0 {
            continue;
        }
        let worse_by = match cur.dir {
            Direction::Higher => (base.value - cur.value) / base.value.abs(),
            Direction::Lower => (cur.value - base.value) / base.value.abs(),
        };
        if worse_by > tolerance {
            out.push(Regression {
                name: cur.name.clone(),
                baseline: base.value,
                current: cur.value,
                worse_by,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            bench: "kernels".into(),
            unix_ms: 1_700_000_000_000,
            config: "{\"size\":256,\"seed\":7}".into(),
            metrics: vec![
                Metric {
                    name: "tier1_mq_samples_per_sec".into(),
                    value: 1.25e8,
                    dir: Direction::Higher,
                },
                Metric {
                    name: "e2e_ms".into(),
                    value: 42.5,
                    dir: Direction::Lower,
                },
            ],
            detail: "{\"rows\":[{\"kernel\":\"quantize\",\"ns\":12}]}".into(),
        }
    }

    #[test]
    fn envelope_roundtrips() {
        let r = sample();
        let parsed = BenchReport::parse(&r.to_json()).expect("parse");
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(BenchReport::parse("{\"schema\":\"bogus/v9\"}").is_err());
        assert!(BenchReport::parse("{}").is_err());
    }

    #[test]
    fn identical_runs_do_not_regress() {
        let r = sample();
        assert!(compare(&r, &r, 0.10).is_empty());
    }

    #[test]
    fn twenty_percent_throughput_drop_is_flagged() {
        let base = sample();
        let mut cur = sample();
        cur.metrics[0].value = base.metrics[0].value * 0.8;
        let regs = compare(&base, &cur, 0.10);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "tier1_mq_samples_per_sec");
        assert!((regs[0].worse_by - 0.2).abs() < 1e-9);
    }

    #[test]
    fn lower_is_better_regresses_upward() {
        let base = sample();
        let mut cur = sample();
        cur.metrics[1].value = 42.5 * 1.5; // latency grew 50%
        let regs = compare(&base, &cur, 0.10);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "e2e_ms");
        // And an *improvement* in the lower-is-better metric never flags.
        cur.metrics[1].value = 42.5 * 0.5;
        assert!(compare(&base, &cur, 0.10).is_empty());
    }

    #[test]
    fn within_tolerance_passes() {
        let base = sample();
        let mut cur = sample();
        cur.metrics[0].value = base.metrics[0].value * 0.95; // 5% worse
        assert!(compare(&base, &cur, 0.10).is_empty());
    }

    #[test]
    fn new_and_removed_metrics_are_ignored() {
        let base = sample();
        let mut cur = sample();
        cur.metrics.remove(1);
        cur.metrics.push(Metric {
            name: "brand_new".into(),
            value: 1.0,
            dir: Direction::Higher,
        });
        assert!(compare(&base, &cur, 0.10).is_empty());
    }

    #[test]
    fn raw_capture_handles_nested_and_escaped() {
        let r = BenchReport::new("na\"me")
            .config("{\"a\":{\"b\":[1,2,{\"c\":\"}\"}]}}")
            .metric("m", 1.0, Direction::Higher)
            .detail("{\"s\":\"[{\\\"t\\\":1}]\"}");
        let parsed = BenchReport::parse(&r.to_json()).expect("parse");
        assert_eq!(parsed.bench, "na\"me");
        assert_eq!(parsed.config, "{\"a\":{\"b\":[1,2,{\"c\":\"}\"}]}}");
        assert_eq!(parsed.detail, "{\"s\":\"[{\\\"t\\\":1}]\"}");
    }
}
