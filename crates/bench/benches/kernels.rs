//! Criterion wall-clock benchmarks of the real host kernels: DWT variants
//! (the paper's Section 4 kernels), the MQ coder, Tier-1 block coding, and
//! the full encoders. These complement the figure binaries (which measure
//! *simulated* Cell time): here the measured quantity is actual Rust
//! throughput on the host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use j2k_core::EncoderParams;
use mqcoder::{Contexts, MqEncoder};
use wavelet::VerticalVariant;
use xpart::AlignedPlane;

const EDGE: usize = 256;

fn plane_i32() -> AlignedPlane<i32> {
    let im = imgio::synth::natural(EDGE, EDGE, 7);
    let dense: Vec<i32> = im.planes[0].iter().map(|&v| v as i32).collect();
    AlignedPlane::from_dense(EDGE, EDGE, &dense).unwrap()
}

fn bench_dwt_variants(c: &mut Criterion) {
    let p0 = plane_i32();
    let mut g = c.benchmark_group("dwt53_forward_2d");
    g.throughput(Throughput::Elements((EDGE * EDGE) as u64));
    for variant in [
        VerticalVariant::Separate,
        VerticalVariant::Interleaved,
        VerticalVariant::Merged,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant:?}")),
            &variant,
            |b, &v| {
                b.iter(|| {
                    let mut p = p0.clone();
                    wavelet::forward_2d_53(&mut p, 5, v);
                    p
                })
            },
        );
    }
    g.finish();
}

fn bench_dwt97_float_vs_fixed(c: &mut Criterion) {
    let p0 = plane_i32();
    let mut g = c.benchmark_group("dwt97_forward_2d");
    g.throughput(Throughput::Elements((EDGE * EDGE) as u64));
    g.bench_function("f32", |b| {
        let f0 = p0.to_f32();
        b.iter(|| {
            let mut p = f0.clone();
            wavelet::forward_2d_97(&mut p, 5, VerticalVariant::Merged);
            p
        })
    });
    g.bench_function("fixed_q13", |b| {
        let q0 = p0.map(wavelet::fixed::to_fixed);
        b.iter(|| {
            let mut p = q0.clone();
            wavelet::transform2d::forward_2d_97_fixed(&mut p, 5, VerticalVariant::Merged);
            p
        })
    });
    g.finish();
}

fn bench_mq_coder(c: &mut Criterion) {
    let mut x: u32 = 0xC0FFEE;
    let seq: Vec<(usize, u8)> = (0..100_000)
        .map(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            ((x >> 9) as usize % 19, ((x >> 20) & 1) as u8)
        })
        .collect();
    let mut g = c.benchmark_group("mq_encoder");
    g.throughput(Throughput::Elements(seq.len() as u64));
    g.bench_function("mixed_contexts", |b| {
        b.iter(|| {
            let mut ctxs = Contexts::new(19);
            let mut enc = MqEncoder::new();
            for &(cx, d) in &seq {
                enc.encode(&mut ctxs, cx, d);
            }
            enc.finish()
        })
    });
    g.finish();
}

fn bench_tier1_block(c: &mut Criterion) {
    let mut x: u32 = 5;
    let data: Vec<i32> = (0..64 * 64)
        .map(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            ((x >> 8) as i32 % 255) - 127
        })
        .collect();
    let mut g = c.benchmark_group("tier1");
    g.throughput(Throughput::Elements((64 * 64) as u64));
    g.bench_function("encode_block_64x64", |b| {
        b.iter(|| ebcot::encode_block(&data, 64, 64, ebcot::BandKind::Hl))
    });
    g.finish();
}

fn bench_full_encode(c: &mut Criterion) {
    let im = imgio::synth::natural(EDGE, EDGE, 3);
    let mut g = c.benchmark_group("encode_full");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(im.raw_bytes() as u64));
    g.bench_function("lossless_256", |b| {
        b.iter(|| j2k_core::encode(&im, &EncoderParams::lossless()).unwrap())
    });
    g.bench_function("lossy_r0.1_256", |b| {
        b.iter(|| j2k_core::encode(&im, &EncoderParams::lossy(0.1)).unwrap())
    });
    g.finish();
}

fn bench_cell_simulation(c: &mut Criterion) {
    let im = imgio::synth::natural(EDGE, EDGE, 3);
    let prof = j2k_core::encode_with_profile(&im, &EncoderParams::lossless())
        .unwrap()
        .1;
    let cfg = cellsim::MachineConfig::qs20_single();
    c.bench_function("cellsim_schedule_lossless_256", |b| {
        b.iter(|| j2k_core::cell::simulate(&prof, &cfg, &j2k_core::cell::SimOptions::default()))
    });
}

fn fast_config() -> Criterion {
    // Keep `cargo bench --workspace` under a couple of minutes on one core;
    // raise these locally for publication-grade confidence intervals.
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_dwt_variants,
        bench_dwt97_float_vs_fixed,
        bench_mq_coder,
        bench_tier1_block,
        bench_full_encode,
        bench_cell_simulation
}
criterion_main!(benches);
