//! Tier-1 code-block coder and decoder (JPEG2000 Annex D).
//!
//! Coefficients are coded in sign-magnitude form, bit-plane by bit-plane,
//! most significant plane first. Each plane below the first runs three
//! passes — significance propagation, magnitude refinement, cleanup — and
//! every pass ends with an MQ termination (the standard's TERMALL /
//! RESTART style), so truncation at any pass boundary is *exact*: rate
//! control can drop a suffix of passes and the decoder reconstructs the
//! included prefix bit-for-bit.
//!
//! The coder also measures, per pass, the byte cost, the estimated
//! distortion reduction (for PCRD), and the MQ decision count (the Tier-1
//! work items consumed by the `cellsim` cost model).

use crate::context::{
    initial_contexts, mr_context, sc_index, sc_lut, zc_index, zc_lut, CTX_RL, CTX_UNI,
};
use mqcoder::{Contexts, MqDecoder, MqEncoder, RawDecoder, RawEncoder};

/// Band class for context selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandKind {
    /// LL and LH (vertically low-pass) bands share one table.
    LlLh,
    /// HL: horizontally high-pass (h/v roles swap).
    Hl,
    /// HH: diagonally oriented.
    Hh,
}

/// Coding pass type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassType {
    /// Significance propagation.
    SigProp,
    /// Magnitude refinement.
    MagRef,
    /// Cleanup.
    Cleanup,
}

/// Bookkeeping for one coding pass.
#[derive(Debug, Clone)]
pub struct PassInfo {
    /// Pass type.
    pub pass_type: PassType,
    /// Bit-plane index (0 = least significant).
    pub plane: u8,
    /// Cumulative compressed bytes through the end of this pass.
    pub rate_bytes: usize,
    /// Estimated distortion reduction of this pass, in (quantizer-index)^2
    /// units; multiply by (step * L2 basis norm)^2 to get image-domain MSE.
    pub dist_reduction: f64,
    /// MQ decisions coded in this pass (Tier-1 work items).
    pub symbols: u64,
}

/// Output of [`encode_block`].
#[derive(Debug, Clone)]
pub struct EncodedBlock {
    /// Concatenated per-pass MQ segments.
    pub data: Vec<u8>,
    /// Byte offset of the end of each pass's segment within `data`.
    pub pass_ends: Vec<usize>,
    /// Per-pass metadata (same length as `pass_ends`).
    pub passes: Vec<PassInfo>,
    /// Number of coded magnitude bit-planes (0 for an all-zero block).
    pub num_planes: u8,
    /// Block width.
    pub w: usize,
    /// Block height.
    pub h: usize,
}

impl EncodedBlock {
    /// Total MQ decisions across passes.
    pub fn total_symbols(&self) -> u64 {
        self.passes.iter().map(|p| p.symbols).sum()
    }

    /// Bytes if truncated to the first `n` passes.
    pub fn bytes_for_passes(&self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.pass_ends[n.min(self.pass_ends.len()) - 1]
        }
    }
}

const SIG: u8 = 1;
const VISITED: u8 = 2;
const REFINED: u8 = 4;
const NEG: u8 = 8;

/// Shared significance/sign state grid.
///
/// Flags live in a `(w + 2) x (h + 2)` array whose one-cell border stays
/// all-zero, so the 8-neighbor reads in [`Grid::counts`] and
/// [`Grid::sign_sums`] need no bounds checks or edge branches — the border
/// cells supply the "outside the block = insignificant" rule by value. With
/// the context tables from [`crate::context`] this makes every significance
/// state update in the hot passes branch-free (straight-line loads, masks
/// and adds feeding a table index).
struct Grid {
    w: usize,
    h: usize,
    /// Padded row stride, `w + 2`.
    stride: usize,
    flags: Vec<u8>,
}

impl Grid {
    fn new(w: usize, h: usize) -> Self {
        Grid {
            w,
            h,
            stride: w + 2,
            flags: vec![0; (w + 2) * (h + 2)],
        }
    }

    /// Index of interior cell `(x, y)` in the padded array.
    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        (y + 1) * self.stride + (x + 1)
    }

    #[inline]
    fn get(&self, x: usize, y: usize) -> u8 {
        self.flags[self.idx(x, y)]
    }

    #[inline]
    fn set(&mut self, x: usize, y: usize, bit: u8) {
        let i = self.idx(x, y);
        self.flags[i] |= bit;
    }

    /// (horizontal, vertical, diagonal) significant-neighbor counts.
    /// Branch-free: `SIG` is bit 0, so each neighbor contributes
    /// `flags & 1` directly.
    #[inline]
    fn counts(&self, x: usize, y: usize) -> (u32, u32, u32) {
        let i = self.idx(x, y);
        let up = i - self.stride;
        let dn = i + self.stride;
        let s = |j: usize| (self.flags[j] & SIG) as u32;
        let h = s(i - 1) + s(i + 1);
        let v = s(up) + s(dn);
        let d = s(up - 1) + s(up + 1) + s(dn - 1) + s(dn + 1);
        (h, v, d)
    }

    /// Raw (unclamped) sign contribution sums `(hc, vc)`, each in -2..=2:
    /// a significant positive neighbor adds +1, a significant negative one
    /// -1. The clamp of Annex D is folded into [`sc_lut`]. Branch-free:
    /// with `SIG` at bit 0 and `NEG` at bit 3, the contribution is
    /// `sig - 2 * (sig & neg)`.
    #[inline]
    fn sign_sums(&self, x: usize, y: usize) -> (i32, i32) {
        let i = self.idx(x, y);
        let c = |j: usize| -> i32 {
            let f = self.flags[j];
            let sig = (f & SIG) as i32;
            let neg = ((f >> 3) & 1) as i32;
            sig - 2 * (sig & neg)
        };
        let hc = c(i - 1) + c(i + 1);
        let vc = c(i - self.stride) + c(i + self.stride);
        (hc, vc)
    }

    fn clear_visited(&mut self) {
        for f in &mut self.flags {
            *f &= !VISITED;
        }
    }
}

fn num_planes_of(mags: &[u32]) -> u8 {
    let max = mags.iter().copied().max().unwrap_or(0);
    (32 - max.leading_zeros()) as u8
}

/// Distortion-reduction estimate when a sample becomes significant at
/// plane `p` (reconstruction moves from 0 to the interval midpoint).
#[inline]
fn d_sig(p: u8) -> f64 {
    2.25 * f64::powi(4.0, p as i32)
}

/// Distortion-reduction estimate for one refinement bit at plane `p`
/// (uncertainty interval halves).
#[inline]
fn d_ref(p: u8) -> f64 {
    0.25 * f64::powi(4.0, p as i32)
}

/// True when a pass is raw-coded under selective arithmetic-coding bypass
/// (Annex D.5): significance-propagation and magnitude-refinement passes
/// below the four most significant bit planes skip the MQ coder.
#[inline]
pub fn pass_is_raw(bypass: bool, pt: PassType, plane: u8, num_planes: u8) -> bool {
    bypass && pt != PassType::Cleanup && plane + 4 < num_planes
}

/// Encode one code block of signed quantizer indices.
pub fn encode_block(data: &[i32], w: usize, h: usize, kind: BandKind) -> EncodedBlock {
    encode_block_opts(data, w, h, kind, false)
}

/// [`encode_block`] with the selective arithmetic-coding-bypass option
/// ("lazy" mode): cheaper Tier-1 at a small rate cost.
pub fn encode_block_opts(
    data: &[i32],
    w: usize,
    h: usize,
    kind: BandKind,
    bypass: bool,
) -> EncodedBlock {
    assert_eq!(data.len(), w * h, "block data size");
    // Per-code-block trace span: free (one atomic load) while tracing
    // is disabled; Tier-1 cost is data dependent, so these spans are
    // the ground truth behind the dynamic work queue's utilization.
    let mut span = obs::trace::span("tier1")
        .cat("block")
        .arg("w", w as u64)
        .arg("h", h as u64);
    let samples = (w * h) as u64;
    let mut meas = obs::counters::measure(
        obs::counters::Kernel::Tier1Mq,
        samples,
        samples * std::mem::size_of::<i32>() as u64,
    );
    let mags: Vec<u32> = data.iter().map(|&v| v.unsigned_abs()).collect();
    let num_planes = num_planes_of(&mags);
    let mut blk = EncodedBlock {
        data: Vec::new(),
        pass_ends: Vec::new(),
        passes: Vec::new(),
        num_planes,
        w,
        h,
    };
    if num_planes == 0 {
        span.set_arg("symbols", 0);
        return blk;
    }
    let mut grid = Grid::new(w, h);
    for (i, &v) in data.iter().enumerate() {
        if v < 0 {
            grid.set(i % w, i / w, NEG);
        }
    }
    let mut ctxs = initial_contexts();

    for plane in (0..num_planes).rev() {
        let first = plane == num_planes - 1;
        let passes: &[PassType] = if first {
            &[PassType::Cleanup]
        } else {
            &[PassType::SigProp, PassType::MagRef, PassType::Cleanup]
        };
        for &pt in passes {
            let mut dist = 0.0f64;
            let (seg, symbols) = if pass_is_raw(bypass, pt, plane, num_planes) {
                let mut enc = RawEncoder::new();
                let symbols = match pt {
                    PassType::SigProp => {
                        sig_prop_enc_raw(&mut enc, &mut grid, &mags, plane, kind, &mut dist)
                    }
                    PassType::MagRef => {
                        mag_ref_enc_raw(&mut enc, &mut grid, &mags, plane, &mut dist)
                    }
                    PassType::Cleanup => unreachable!("cleanup is never raw"),
                };
                (enc.finish(), symbols)
            } else {
                let mut enc = MqEncoder::new();
                match pt {
                    PassType::SigProp => sig_prop_enc(
                        &mut enc, &mut ctxs, &mut grid, &mags, plane, kind, &mut dist,
                    ),
                    PassType::MagRef => {
                        mag_ref_enc(&mut enc, &mut ctxs, &mut grid, &mags, plane, &mut dist)
                    }
                    PassType::Cleanup => {
                        cleanup_enc(
                            &mut enc, &mut ctxs, &mut grid, &mags, plane, kind, &mut dist,
                        );
                        grid.clear_visited();
                    }
                }
                let symbols = enc.symbols();
                (enc.finish(), symbols)
            };
            blk.data.extend_from_slice(&seg);
            blk.pass_ends.push(blk.data.len());
            blk.passes.push(PassInfo {
                pass_type: pt,
                plane,
                rate_bytes: blk.data.len(),
                dist_reduction: dist,
                symbols,
            });
        }
    }
    span.set_arg("symbols", blk.total_symbols());
    meas.add_symbols(blk.total_symbols());
    blk
}

fn stripe_rows(h: usize, y0: usize) -> usize {
    (h - y0).min(4)
}

fn code_sign_enc(enc: &mut MqEncoder, ctxs: &mut Contexts, grid: &Grid, x: usize, y: usize) {
    let (hc, vc) = grid.sign_sums(x, y);
    let (cx, xor) = sc_lut()[sc_index(hc, vc)];
    let neg = u8::from(grid.get(x, y) & NEG != 0);
    enc.encode(ctxs, cx as usize, neg ^ xor);
}

fn sig_prop_enc(
    enc: &mut MqEncoder,
    ctxs: &mut Contexts,
    grid: &mut Grid,
    mags: &[u32],
    plane: u8,
    kind: BandKind,
    dist: &mut f64,
) {
    let lut = zc_lut(kind);
    let (w, h) = (grid.w, grid.h);
    let mut y0 = 0;
    while y0 < h {
        for x in 0..w {
            for y in y0..y0 + stripe_rows(h, y0) {
                let f = grid.get(x, y);
                if f & SIG != 0 {
                    continue;
                }
                let (hc, vc, dc) = grid.counts(x, y);
                let cx = lut[zc_index(hc, vc, dc)] as usize;
                if cx == 0 {
                    continue; // not in the preferred neighborhood
                }
                let bit = ((mags[y * w + x] >> plane) & 1) as u8;
                enc.encode(ctxs, cx, bit);
                grid.set(x, y, VISITED);
                if bit == 1 {
                    code_sign_enc(enc, ctxs, grid, x, y);
                    grid.set(x, y, SIG);
                    *dist += d_sig(plane);
                }
            }
        }
        y0 += 4;
    }
}

fn mag_ref_enc(
    enc: &mut MqEncoder,
    ctxs: &mut Contexts,
    grid: &mut Grid,
    mags: &[u32],
    plane: u8,
    dist: &mut f64,
) {
    let (w, h) = (grid.w, grid.h);
    let mut y0 = 0;
    while y0 < h {
        for x in 0..w {
            for y in y0..y0 + stripe_rows(h, y0) {
                let f = grid.get(x, y);
                if f & SIG == 0 || f & VISITED != 0 {
                    continue;
                }
                let (hc, vc, dc) = grid.counts(x, y);
                let cx = mr_context(f & REFINED == 0, hc + vc + dc > 0);
                let bit = ((mags[y * w + x] >> plane) & 1) as u8;
                enc.encode(ctxs, cx, bit);
                grid.set(x, y, REFINED);
                *dist += d_ref(plane);
            }
        }
        y0 += 4;
    }
}

/// Raw (bypass) significance propagation: same membership rule as the MQ
/// pass, but bits and signs are emitted uncoded. Returns bits emitted.
fn sig_prop_enc_raw(
    enc: &mut RawEncoder,
    grid: &mut Grid,
    mags: &[u32],
    plane: u8,
    kind: BandKind,
    dist: &mut f64,
) -> u64 {
    let lut = zc_lut(kind);
    let (w, h) = (grid.w, grid.h);
    let mut bits = 0u64;
    let mut y0 = 0;
    while y0 < h {
        for x in 0..w {
            for y in y0..y0 + stripe_rows(h, y0) {
                let f = grid.get(x, y);
                if f & SIG != 0 {
                    continue;
                }
                let (hc, vc, dc) = grid.counts(x, y);
                if lut[zc_index(hc, vc, dc)] as usize == 0 {
                    continue;
                }
                let bit = ((mags[y * w + x] >> plane) & 1) as u8;
                enc.put(bit);
                bits += 1;
                grid.set(x, y, VISITED);
                if bit == 1 {
                    enc.put(u8::from(f & NEG != 0));
                    bits += 1;
                    grid.set(x, y, SIG);
                    *dist += d_sig(plane);
                }
            }
        }
        y0 += 4;
    }
    bits
}

/// Raw (bypass) magnitude refinement. Returns bits emitted.
fn mag_ref_enc_raw(
    enc: &mut RawEncoder,
    grid: &mut Grid,
    mags: &[u32],
    plane: u8,
    dist: &mut f64,
) -> u64 {
    let (w, h) = (grid.w, grid.h);
    let mut bits = 0u64;
    let mut y0 = 0;
    while y0 < h {
        for x in 0..w {
            for y in y0..y0 + stripe_rows(h, y0) {
                let f = grid.get(x, y);
                if f & SIG == 0 || f & VISITED != 0 {
                    continue;
                }
                enc.put(((mags[y * w + x] >> plane) & 1) as u8);
                bits += 1;
                grid.set(x, y, REFINED);
                *dist += d_ref(plane);
            }
        }
        y0 += 4;
    }
    bits
}

fn cleanup_enc(
    enc: &mut MqEncoder,
    ctxs: &mut Contexts,
    grid: &mut Grid,
    mags: &[u32],
    plane: u8,
    kind: BandKind,
    dist: &mut f64,
) {
    let lut = zc_lut(kind);
    let (w, h) = (grid.w, grid.h);
    let mut y0 = 0;
    while y0 < h {
        let rows = stripe_rows(h, y0);
        for x in 0..w {
            let mut start_row = 0usize;
            // Run mode: full stripe column, all uncoded, all zero-context.
            let run_ok = rows == 4
                && (0..4).all(|r| {
                    let y = y0 + r;
                    let f = grid.get(x, y);
                    f & (SIG | VISITED) == 0 && {
                        let (hc, vc, dc) = grid.counts(x, y);
                        lut[zc_index(hc, vc, dc)] as usize == 0
                    }
                });
            if run_ok {
                let first_sig = (0..4).find(|&r| (mags[(y0 + r) * w + x] >> plane) & 1 == 1);
                match first_sig {
                    None => {
                        enc.encode(ctxs, CTX_RL, 0);
                        continue;
                    }
                    Some(r) => {
                        enc.encode(ctxs, CTX_RL, 1);
                        enc.encode(ctxs, CTX_UNI, ((r >> 1) & 1) as u8);
                        enc.encode(ctxs, CTX_UNI, (r & 1) as u8);
                        let y = y0 + r;
                        code_sign_enc(enc, ctxs, grid, x, y);
                        grid.set(x, y, SIG);
                        *dist += d_sig(plane);
                        start_row = r + 1;
                    }
                }
            }
            for r in start_row..rows {
                let y = y0 + r;
                let f = grid.get(x, y);
                if f & (SIG | VISITED) != 0 {
                    continue;
                }
                let (hc, vc, dc) = grid.counts(x, y);
                let cx = lut[zc_index(hc, vc, dc)] as usize;
                let bit = ((mags[y * w + x] >> plane) & 1) as u8;
                enc.encode(ctxs, cx, bit);
                if bit == 1 {
                    code_sign_enc(enc, ctxs, grid, x, y);
                    grid.set(x, y, SIG);
                    *dist += d_sig(plane);
                }
            }
        }
        y0 += 4;
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

fn code_sign_dec(
    dec: &mut MqDecoder<'_>,
    ctxs: &mut Contexts,
    grid: &mut Grid,
    x: usize,
    y: usize,
) {
    let (hc, vc) = grid.sign_sums(x, y);
    let (cx, xor) = sc_lut()[sc_index(hc, vc)];
    let bit = dec.decode(ctxs, cx as usize) ^ xor;
    if bit == 1 {
        grid.set(x, y, NEG);
    }
}

/// Decode the first `num_passes` passes of a block coded by
/// [`encode_block`]. `pass_ends` are the per-pass segment ends (as in
/// [`EncodedBlock::pass_ends`], possibly truncated); `data` must contain at
/// least `pass_ends[num_passes - 1]` bytes.
///
/// When `midpoint` is set, partially decoded magnitudes are reconstructed
/// at the midpoint of their uncertainty interval (standard lossy decoder
/// behavior); exact lossless reconstruction requires all passes and
/// `midpoint = false` (the adjustment would be zero anyway at plane 0).
#[allow(clippy::too_many_arguments)]
pub fn decode_block(
    data: &[u8],
    pass_ends: &[usize],
    num_passes: usize,
    w: usize,
    h: usize,
    kind: BandKind,
    num_planes: u8,
    midpoint: bool,
) -> Vec<i32> {
    decode_block_opts(
        data, pass_ends, num_passes, w, h, kind, num_planes, midpoint, false,
    )
}

/// [`decode_block`] with the selective arithmetic-coding-bypass option;
/// `bypass` must match the encoder's setting (signalled in COD).
#[allow(clippy::too_many_arguments)]
pub fn decode_block_opts(
    data: &[u8],
    pass_ends: &[usize],
    num_passes: usize,
    w: usize,
    h: usize,
    kind: BandKind,
    num_planes: u8,
    midpoint: bool,
    bypass: bool,
) -> Vec<i32> {
    let mut mags = vec![0u32; w * h];
    if num_planes == 0 || num_passes == 0 {
        return vec![0; w * h];
    }
    let mut grid = Grid::new(w, h);
    let mut ctxs = initial_contexts();
    let mut pass_idx = 0usize;
    let mut seg_start = 0usize;
    let mut last_plane = num_planes - 1;

    'outer: for plane in (0..num_planes).rev() {
        let first = plane == num_planes - 1;
        let passes: &[PassType] = if first {
            &[PassType::Cleanup]
        } else {
            &[PassType::SigProp, PassType::MagRef, PassType::Cleanup]
        };
        for &pt in passes {
            if pass_idx >= num_passes {
                break 'outer;
            }
            let seg_end = pass_ends[pass_idx];
            let seg = &data[seg_start..seg_end];
            if pass_is_raw(bypass, pt, plane, num_planes) {
                let mut dec = RawDecoder::new(seg);
                match pt {
                    PassType::SigProp => {
                        sig_prop_dec_raw(&mut dec, &mut grid, &mut mags, plane, kind)
                    }
                    PassType::MagRef => mag_ref_dec_raw(&mut dec, &mut grid, &mut mags, plane),
                    PassType::Cleanup => unreachable!("cleanup is never raw"),
                }
            } else {
                let mut dec = MqDecoder::new(seg);
                match pt {
                    PassType::SigProp => {
                        sig_prop_dec(&mut dec, &mut ctxs, &mut grid, &mut mags, plane, kind)
                    }
                    PassType::MagRef => {
                        mag_ref_dec(&mut dec, &mut ctxs, &mut grid, &mut mags, plane)
                    }
                    PassType::Cleanup => {
                        cleanup_dec(&mut dec, &mut ctxs, &mut grid, &mut mags, plane, kind);
                        grid.clear_visited();
                    }
                }
            }
            last_plane = plane;
            seg_start = seg_end;
            pass_idx += 1;
        }
    }

    let half = if midpoint && last_plane > 0 {
        1u32 << (last_plane - 1)
    } else {
        0
    };
    (0..w * h)
        .map(|i| {
            let m = mags[i];
            if m == 0 {
                0
            } else {
                let v = (m + half) as i32;
                if grid.get(i % w, i / w) & NEG != 0 {
                    -v
                } else {
                    v
                }
            }
        })
        .collect()
}

fn sig_prop_dec(
    dec: &mut MqDecoder<'_>,
    ctxs: &mut Contexts,
    grid: &mut Grid,
    mags: &mut [u32],
    plane: u8,
    kind: BandKind,
) {
    let lut = zc_lut(kind);
    let (w, h) = (grid.w, grid.h);
    let mut y0 = 0;
    while y0 < h {
        for x in 0..w {
            for y in y0..y0 + stripe_rows(h, y0) {
                let f = grid.get(x, y);
                if f & SIG != 0 {
                    continue;
                }
                let (hc, vc, dc) = grid.counts(x, y);
                let cx = lut[zc_index(hc, vc, dc)] as usize;
                if cx == 0 {
                    continue;
                }
                let bit = dec.decode(ctxs, cx);
                grid.set(x, y, VISITED);
                if bit == 1 {
                    code_sign_dec(dec, ctxs, grid, x, y);
                    grid.set(x, y, SIG);
                    mags[y * w + x] |= 1 << plane;
                }
            }
        }
        y0 += 4;
    }
}

fn mag_ref_dec(
    dec: &mut MqDecoder<'_>,
    ctxs: &mut Contexts,
    grid: &mut Grid,
    mags: &mut [u32],
    plane: u8,
) {
    let (w, h) = (grid.w, grid.h);
    let mut y0 = 0;
    while y0 < h {
        for x in 0..w {
            for y in y0..y0 + stripe_rows(h, y0) {
                let f = grid.get(x, y);
                if f & SIG == 0 || f & VISITED != 0 {
                    continue;
                }
                let (hc, vc, dc) = grid.counts(x, y);
                let cx = mr_context(f & REFINED == 0, hc + vc + dc > 0);
                let bit = dec.decode(ctxs, cx);
                grid.set(x, y, REFINED);
                if bit == 1 {
                    mags[y * w + x] |= 1 << plane;
                }
            }
        }
        y0 += 4;
    }
}

/// Raw (bypass) significance-propagation decode.
fn sig_prop_dec_raw(
    dec: &mut RawDecoder<'_>,
    grid: &mut Grid,
    mags: &mut [u32],
    plane: u8,
    kind: BandKind,
) {
    let lut = zc_lut(kind);
    let (w, h) = (grid.w, grid.h);
    let mut y0 = 0;
    while y0 < h {
        for x in 0..w {
            for y in y0..y0 + stripe_rows(h, y0) {
                let f = grid.get(x, y);
                if f & SIG != 0 {
                    continue;
                }
                let (hc, vc, dc) = grid.counts(x, y);
                if lut[zc_index(hc, vc, dc)] as usize == 0 {
                    continue;
                }
                let bit = dec.get();
                grid.set(x, y, VISITED);
                if bit == 1 {
                    if dec.get() == 1 {
                        grid.set(x, y, NEG);
                    }
                    grid.set(x, y, SIG);
                    mags[y * w + x] |= 1 << plane;
                }
            }
        }
        y0 += 4;
    }
}

/// Raw (bypass) magnitude-refinement decode.
fn mag_ref_dec_raw(dec: &mut RawDecoder<'_>, grid: &mut Grid, mags: &mut [u32], plane: u8) {
    let (w, h) = (grid.w, grid.h);
    let mut y0 = 0;
    while y0 < h {
        for x in 0..w {
            for y in y0..y0 + stripe_rows(h, y0) {
                let f = grid.get(x, y);
                if f & SIG == 0 || f & VISITED != 0 {
                    continue;
                }
                if dec.get() == 1 {
                    mags[y * w + x] |= 1 << plane;
                }
                grid.set(x, y, REFINED);
            }
        }
        y0 += 4;
    }
}

fn cleanup_dec(
    dec: &mut MqDecoder<'_>,
    ctxs: &mut Contexts,
    grid: &mut Grid,
    mags: &mut [u32],
    plane: u8,
    kind: BandKind,
) {
    let lut = zc_lut(kind);
    let (w, h) = (grid.w, grid.h);
    let mut y0 = 0;
    while y0 < h {
        let rows = stripe_rows(h, y0);
        for x in 0..w {
            let mut start_row = 0usize;
            let run_ok = rows == 4
                && (0..4).all(|r| {
                    let y = y0 + r;
                    let f = grid.get(x, y);
                    f & (SIG | VISITED) == 0 && {
                        let (hc, vc, dc) = grid.counts(x, y);
                        lut[zc_index(hc, vc, dc)] as usize == 0
                    }
                });
            if run_ok {
                if dec.decode(ctxs, CTX_RL) == 0 {
                    continue;
                }
                let r = ((dec.decode(ctxs, CTX_UNI) << 1) | dec.decode(ctxs, CTX_UNI)) as usize;
                let y = y0 + r;
                mags[y * w + x] |= 1 << plane;
                code_sign_dec(dec, ctxs, grid, x, y);
                grid.set(x, y, SIG);
                start_row = r + 1;
            }
            for r in start_row..rows {
                let y = y0 + r;
                let f = grid.get(x, y);
                if f & (SIG | VISITED) != 0 {
                    continue;
                }
                let (hc, vc, dc) = grid.counts(x, y);
                let cx = lut[zc_index(hc, vc, dc)] as usize;
                let bit = dec.decode(ctxs, cx);
                if bit == 1 {
                    code_sign_dec(dec, ctxs, grid, x, y);
                    grid.set(x, y, SIG);
                    mags[y * w + x] |= 1 << plane;
                }
            }
        }
        y0 += 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[i32], w: usize, h: usize, kind: BandKind) {
        let blk = encode_block(data, w, h, kind);
        let got = decode_block(
            &blk.data,
            &blk.pass_ends,
            blk.passes.len(),
            w,
            h,
            kind,
            blk.num_planes,
            false,
        );
        assert_eq!(got, data, "{w}x{h} {kind:?}");
    }

    fn pseudo(n: usize, seed: u32, spread: i32) -> Vec<i32> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                ((x >> 10) as i32 % (2 * spread + 1)) - spread
            })
            .collect()
    }

    #[test]
    fn zero_block_is_empty() {
        let blk = encode_block(&[0; 16], 4, 4, BandKind::LlLh);
        assert_eq!(blk.num_planes, 0);
        assert!(blk.data.is_empty());
        assert!(blk.passes.is_empty());
        let got = decode_block(&[], &[], 0, 4, 4, BandKind::LlLh, 0, false);
        assert_eq!(got, vec![0; 16]);
    }

    #[test]
    fn single_coefficient() {
        for v in [1i32, -1, 2, -7, 255, -256] {
            let mut data = vec![0i32; 16];
            data[5] = v;
            roundtrip(&data, 4, 4, BandKind::Hh);
        }
    }

    #[test]
    fn roundtrip_various_shapes() {
        for (w, h) in [
            (4usize, 4usize),
            (8, 8),
            (5, 7),
            (1, 9),
            (9, 1),
            (3, 4),
            (64, 64),
        ] {
            for kind in [BandKind::LlLh, BandKind::Hl, BandKind::Hh] {
                let data = pseudo(w * h, (w * 31 + h) as u32, 100);
                roundtrip(&data, w, h, kind);
            }
        }
    }

    #[test]
    fn roundtrip_sparse_blocks() {
        // Mostly zeros: exercises run-length coding heavily.
        let mut data = vec![0i32; 32 * 32];
        for i in (0..data.len()).step_by(97) {
            data[i] = ((i as i32 % 13) - 6) * 3;
        }
        roundtrip(&data, 32, 32, BandKind::LlLh);
    }

    #[test]
    fn roundtrip_dense_large_values() {
        let data = pseudo(32 * 32, 99, 30_000);
        roundtrip(&data, 32, 32, BandKind::Hl);
    }

    #[test]
    fn pass_structure_is_3n_minus_2() {
        let data = pseudo(16 * 16, 5, 100);
        let blk = encode_block(&data, 16, 16, BandKind::LlLh);
        assert!(blk.num_planes > 0);
        assert_eq!(blk.passes.len(), 3 * blk.num_planes as usize - 2);
        assert_eq!(blk.passes[0].pass_type, PassType::Cleanup);
        if blk.passes.len() > 1 {
            assert_eq!(blk.passes[1].pass_type, PassType::SigProp);
            assert_eq!(blk.passes[2].pass_type, PassType::MagRef);
        }
        // Rates are cumulative and non-decreasing; ends match data length.
        for w in blk.passes.windows(2) {
            assert!(w[1].rate_bytes >= w[0].rate_bytes);
        }
        assert_eq!(*blk.pass_ends.last().unwrap(), blk.data.len());
    }

    #[test]
    fn truncated_decode_is_exact_prefix() {
        // Dropping trailing passes must reproduce exactly the coefficients
        // implied by the included planes (no corruption of earlier planes).
        let data = pseudo(16 * 16, 1234, 500);
        let blk = encode_block(&data, 16, 16, BandKind::LlLh);
        let total = blk.passes.len();
        for keep in [1usize, 2, total / 2, total - 1, total] {
            let keep = keep.clamp(1, total);
            let bytes = blk.bytes_for_passes(keep);
            let got = decode_block(
                &blk.data[..bytes],
                &blk.pass_ends[..keep],
                keep,
                16,
                16,
                BandKind::LlLh,
                blk.num_planes,
                false,
            );
            // Every decoded magnitude must be a prefix (high planes) of the
            // true magnitude, and the full decode must be exact.
            for (g, &t) in got.iter().zip(&data) {
                let (gm, tm) = (g.unsigned_abs(), t.unsigned_abs());
                assert!(gm <= tm, "keep={keep}: {gm} > {tm}");
                if keep == total {
                    assert_eq!(*g, t);
                }
                if gm > 0 {
                    assert_eq!(g.signum(), t.signum());
                }
            }
        }
    }

    #[test]
    fn midpoint_reconstruction_reduces_error() {
        let data = pseudo(16 * 16, 777, 1000);
        let blk = encode_block(&data, 16, 16, BandKind::Hh);
        let keep = blk.passes.len() / 2;
        let bytes = blk.bytes_for_passes(keep);
        let err = |v: &[i32]| -> f64 {
            v.iter()
                .zip(&data)
                .map(|(g, t)| ((g - t) as f64).powi(2))
                .sum()
        };
        let plain = decode_block(
            &blk.data[..bytes],
            &blk.pass_ends[..keep],
            keep,
            16,
            16,
            BandKind::Hh,
            blk.num_planes,
            false,
        );
        let mid = decode_block(
            &blk.data[..bytes],
            &blk.pass_ends[..keep],
            keep,
            16,
            16,
            BandKind::Hh,
            blk.num_planes,
            true,
        );
        assert!(
            err(&mid) <= err(&plain),
            "midpoint {} plain {}",
            err(&mid),
            err(&plain)
        );
    }

    #[test]
    fn distortion_estimates_decrease_with_plane() {
        let data = pseudo(32 * 32, 4242, 2000);
        let blk = encode_block(&data, 32, 32, BandKind::LlLh);
        // Cleanup of the top plane must claim more distortion reduction
        // than the cleanup of the bottom plane.
        let first = &blk.passes[0];
        let last = blk
            .passes
            .iter()
            .rev()
            .find(|p| p.pass_type == PassType::Cleanup)
            .unwrap();
        assert!(first.dist_reduction > last.dist_reduction);
        assert!(blk.total_symbols() > 0);
    }

    #[test]
    fn compresses_structured_data() {
        // A smooth gradient block should code well below 16 bits/sample.
        let mut data = vec![0i32; 64 * 64];
        for y in 0..64 {
            for x in 0..64 {
                data[y * 64 + x] = (x as i32 - 32) * 2;
            }
        }
        let blk = encode_block(&data, 64, 64, BandKind::LlLh);
        assert!(blk.data.len() < 64 * 64 * 2 / 4, "{} bytes", blk.data.len());
    }

    #[test]
    fn bypass_roundtrip_various() {
        for (w, h, spread) in [(16usize, 16usize, 30_000i32), (8, 8, 500), (33, 17, 4_000)] {
            for kind in [BandKind::LlLh, BandKind::Hl, BandKind::Hh] {
                let data = pseudo(w * h, (w + h) as u32 * 7 + 1, spread);
                let blk = encode_block_opts(&data, w, h, kind, true);
                let got = decode_block_opts(
                    &blk.data,
                    &blk.pass_ends,
                    blk.passes.len(),
                    w,
                    h,
                    kind,
                    blk.num_planes,
                    false,
                    true,
                );
                assert_eq!(got, data, "{w}x{h} {kind:?}");
            }
        }
    }

    #[test]
    fn bypass_reduces_mq_symbols() {
        // Bypass converts deep-plane SPP/MRP decisions to raw bits, which
        // are cheaper; total MQ decisions must drop (raw bits counted as
        // symbols too, but the point is the segments stay decodable and
        // the stream only grows slightly).
        let data = pseudo(32 * 32, 321, 20_000);
        let mq = encode_block_opts(&data, 32, 32, BandKind::LlLh, false);
        let raw = encode_block_opts(&data, 32, 32, BandKind::LlLh, true);
        assert_eq!(mq.passes.len(), raw.passes.len());
        // The raw stream costs at most ~15% more bytes.
        assert!(
            (raw.data.len() as f64) < mq.data.len() as f64 * 1.15,
            "raw {} vs mq {}",
            raw.data.len(),
            mq.data.len()
        );
    }

    #[test]
    fn bypass_rule_matches_standard() {
        // First four coded planes always use the MQ coder; deeper SPP/MRP
        // go raw; cleanup never does.
        assert!(!pass_is_raw(true, PassType::SigProp, 8, 12));
        assert!(!pass_is_raw(true, PassType::SigProp, 9, 12));
        assert!(pass_is_raw(true, PassType::SigProp, 7, 12));
        assert!(pass_is_raw(true, PassType::MagRef, 0, 12));
        assert!(!pass_is_raw(true, PassType::Cleanup, 0, 12));
        assert!(!pass_is_raw(false, PassType::SigProp, 0, 12));
    }

    #[test]
    fn bypass_truncation_still_exact_prefix() {
        let data = pseudo(16 * 16, 99, 9_000);
        let blk = encode_block_opts(&data, 16, 16, BandKind::Hh, true);
        let keep = blk.passes.len() / 2;
        let bytes = blk.bytes_for_passes(keep);
        let got = decode_block_opts(
            &blk.data[..bytes],
            &blk.pass_ends[..keep],
            keep,
            16,
            16,
            BandKind::Hh,
            blk.num_planes,
            false,
            true,
        );
        for (g, t) in got.iter().zip(&data) {
            assert!(g.unsigned_abs() <= t.unsigned_abs());
        }
    }

    #[test]
    fn all_negative_block() {
        let data = vec![-5i32; 8 * 8];
        roundtrip(&data, 8, 8, BandKind::Hl);
    }

    #[test]
    fn alternating_signs() {
        let data: Vec<i32> = (0..64).map(|i| if i % 2 == 0 { 9 } else { -9 }).collect();
        roundtrip(&data, 8, 8, BandKind::LlLh);
    }
}
