//! Tag trees (JPEG2000 Annex B.10.2) — Tier-2's incremental quad-tree code
//! for per-code-block side information (first inclusion layer, number of
//! all-zero bit planes).

use mqcoder::{RawDecoder, RawEncoder};

/// One node of the tree.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Assigned value (leaves) or min of children (internal).
    value: u32,
    /// Current decoder-known lower bound.
    low: u32,
    /// Whether the value is fully communicated.
    known: bool,
}

/// A tag tree over a `w x h` grid of leaves.
#[derive(Debug, Clone)]
pub struct TagTree {
    /// Per-level dimensions, finest first.
    dims: Vec<(usize, usize)>,
    /// Per-level node arrays, finest first.
    levels: Vec<Vec<Node>>,
}

impl TagTree {
    /// Build a tree with all leaf values zero (set them before encoding).
    pub fn new(w: usize, h: usize) -> Self {
        assert!(w > 0 && h > 0);
        let mut dims = vec![(w, h)];
        let (mut cw, mut ch) = (w, h);
        while cw > 1 || ch > 1 {
            cw = cw.div_ceil(2);
            ch = ch.div_ceil(2);
            dims.push((cw, ch));
        }
        let levels = dims
            .iter()
            .map(|&(w, h)| {
                vec![
                    Node {
                        value: 0,
                        low: 0,
                        known: false
                    };
                    w * h
                ]
            })
            .collect();
        TagTree { dims, levels }
    }

    /// Set leaf `(x, y)` to `value`, updating internal minima. Must be
    /// called for all leaves before the first `encode`.
    pub fn set_value(&mut self, x: usize, y: usize, value: u32) {
        let (w, _) = self.dims[0];
        self.levels[0][y * w + x].value = value;
        self.propagate_min();
    }

    fn propagate_min(&mut self) {
        for lev in 1..self.levels.len() {
            let (cw, _ch) = self.dims[lev];
            let (pw, ph) = self.dims[lev - 1];
            for y in 0..self.dims[lev].1 {
                for x in 0..cw {
                    let mut m = u32::MAX;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let (px, py) = (2 * x + dx, 2 * y + dy);
                            if px < pw && py < ph {
                                m = m.min(self.levels[lev - 1][py * pw + px].value);
                            }
                        }
                    }
                    self.levels[lev][y * cw + x].value = m;
                }
            }
        }
    }

    /// Reset the communicated state (not the values).
    pub fn reset_state(&mut self) {
        for level in &mut self.levels {
            for n in level {
                n.low = 0;
                n.known = false;
            }
        }
    }

    fn path(&self, x: usize, y: usize) -> Vec<(usize, usize)> {
        // (level, index) pairs from root down to the leaf.
        let mut p = Vec::with_capacity(self.levels.len());
        for lev in (0..self.levels.len()).rev() {
            let (w, _) = self.dims[lev];
            let (lx, ly) = (x >> lev, y >> lev);
            p.push((lev, ly * w + lx));
        }
        p
    }

    /// Encode whether leaf `(x, y)`'s value is `< threshold`, emitting only
    /// bits the decoder does not already know. Returns that predicate.
    pub fn encode(&mut self, x: usize, y: usize, threshold: u32, out: &mut RawEncoder) -> bool {
        let mut carried = 0u32;
        for (lev, idx) in self.path(x, y) {
            let n = &mut self.levels[lev][idx];
            if n.low < carried {
                n.low = carried;
            }
            while !n.known && n.low < threshold {
                if n.low == n.value {
                    out.put(1);
                    n.known = true;
                } else {
                    out.put(0);
                    n.low += 1;
                }
            }
            carried = n.low.min(threshold);
        }
        let (w, _) = self.dims[0];
        let leaf = &self.levels[0][y * w + x];
        leaf.known && leaf.value < threshold
    }

    /// Decoder mirror of [`TagTree::encode`].
    pub fn decode(&mut self, x: usize, y: usize, threshold: u32, inp: &mut RawDecoder<'_>) -> bool {
        let mut carried = 0u32;
        for (lev, idx) in self.path(x, y) {
            let n = &mut self.levels[lev][idx];
            if n.low < carried {
                n.low = carried;
            }
            while !n.known && n.low < threshold {
                if inp.get() == 1 {
                    n.known = true;
                } else {
                    n.low += 1;
                }
            }
            carried = n.low.min(threshold);
        }
        let (w, _) = self.dims[0];
        let leaf = &self.levels[0][y * w + x];
        leaf.known && leaf.low < threshold
    }

    /// Encode leaf `(x, y)`'s exact value by raising the threshold until the
    /// tree resolves it (used for zero-bit-plane counts).
    pub fn encode_value(&mut self, x: usize, y: usize, out: &mut RawEncoder) {
        let mut t = 1;
        while !self.encode(x, y, t, out) {
            t += 1;
        }
    }

    /// Decoder mirror of [`TagTree::encode_value`]; returns the value.
    pub fn decode_value(&mut self, x: usize, y: usize, inp: &mut RawDecoder<'_>) -> u32 {
        let mut t = 1;
        while !self.decode(x, y, t, inp) {
            t += 1;
        }
        let (w, _) = self.dims[0];
        self.levels[0][y * w + x].low
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_values(w: usize, h: usize, values: &[u32]) {
        let mut enc_tree = TagTree::new(w, h);
        for y in 0..h {
            for x in 0..w {
                enc_tree.set_value(x, y, values[y * w + x]);
            }
        }
        let mut out = RawEncoder::new();
        for y in 0..h {
            for x in 0..w {
                enc_tree.encode_value(x, y, &mut out);
            }
        }
        let bytes = out.finish();
        let mut dec_tree = TagTree::new(w, h);
        let mut inp = RawDecoder::new(&bytes);
        for y in 0..h {
            for x in 0..w {
                assert_eq!(
                    dec_tree.decode_value(x, y, &mut inp),
                    values[y * w + x],
                    "({x},{y}) of {w}x{h}"
                );
            }
        }
    }

    #[test]
    fn single_leaf() {
        roundtrip_values(1, 1, &[0]);
        roundtrip_values(1, 1, &[7]);
    }

    #[test]
    fn small_grids() {
        roundtrip_values(2, 2, &[3, 1, 0, 2]);
        roundtrip_values(3, 2, &[5, 5, 5, 5, 5, 5]);
        roundtrip_values(4, 4, &(0..16).map(|i| (i * 7) % 5).collect::<Vec<_>>());
        roundtrip_values(5, 3, &[9, 0, 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9]);
    }

    #[test]
    fn threshold_queries_roundtrip() {
        // Layered inclusion usage: query each leaf with rising thresholds.
        let w = 3;
        let h = 3;
        let values = [2u32, 0, 1, 3, 2, 0, 1, 1, 4];
        let mut enc_tree = TagTree::new(w, h);
        for y in 0..h {
            for x in 0..w {
                enc_tree.set_value(x, y, values[y * w + x]);
            }
        }
        let mut out = RawEncoder::new();
        let mut expected = Vec::new();
        for t in 1..=5u32 {
            for y in 0..h {
                for x in 0..w {
                    expected.push(enc_tree.encode(x, y, t, &mut out));
                }
            }
        }
        let bytes = out.finish();
        let mut dec_tree = TagTree::new(w, h);
        let mut inp = RawDecoder::new(&bytes);
        let mut got = Vec::new();
        for t in 1..=5u32 {
            for y in 0..h {
                for x in 0..w {
                    got.push(dec_tree.decode(x, y, t, &mut inp));
                }
            }
        }
        assert_eq!(got, expected);
        // Threshold above every value resolves all leaves truthfully.
        for (i, &v) in values.iter().enumerate() {
            let idx = 4 * w * h + i; // t = 5 block
            assert_eq!(expected[idx], v < 5);
        }
    }

    #[test]
    fn min_propagation_saves_bits() {
        // A tree whose minimum is large should cost fewer bits than coding
        // each leaf independently: the root absorbs the common prefix.
        let n = 4;
        let mut tree = TagTree::new(n, n);
        for y in 0..n {
            for x in 0..n {
                tree.set_value(x, y, 10);
            }
        }
        let mut out = RawEncoder::new();
        for y in 0..n {
            for x in 0..n {
                tree.encode_value(x, y, &mut out);
            }
        }
        let bytes = out.finish();
        // Naive unary would be 16 * 11 bits = 22 bytes; the tree shares the
        // climb to 10 among ancestors.
        assert!(bytes.len() < 16, "{} bytes", bytes.len());
    }
}
