//! EBCOT — Embedded Block Coding with Optimized Truncation
//! (JPEG2000 Part 1, Annexes B/C/D; Taubman, IEEE TIP 2000).
//!
//! * **Tier-1** ([`block`]): code blocks of quantized coefficients are coded
//!   bit-plane by bit-plane in three passes (significance propagation,
//!   magnitude refinement, cleanup) through the MQ coder with the 19
//!   standard contexts ([`context`]). Every block is independent — this is
//!   the parallelism the paper's work queue exploits — and the coder
//!   reports per-pass rate, distortion reduction, and MQ decision counts
//!   (the work items for the `cellsim` cost model).
//! * **Tier-2** ([`tagtree`], [`header`]): tag trees and packet headers
//!   encode which blocks contribute which passes to each quality layer.
//! * **Rate control** ([`rate`]): PCRD-style convex-hull truncation finds,
//!   for a byte budget, the per-block pass counts minimizing distortion —
//!   the sequential stage that flattens the paper's lossy scaling curve.

pub mod block;
pub mod context;
pub mod header;
pub mod rate;
pub mod tagtree;

pub use block::{decode_block, encode_block, BandKind, EncodedBlock, PassInfo, PassType};
pub use rate::{allocate, BlockSummary};

/// Standard maximum code block size (64x64), the paper's choice; Muta et
/// al. use 32x32.
pub const MAX_CB_SIZE: usize = 64;

#[cfg(test)]
mod tests {
    #[test]
    fn constants() {
        assert_eq!(super::MAX_CB_SIZE, 64);
    }
}
