//! PCRD-opt rate control (Taubman, IEEE TIP 2000, §IV).
//!
//! Given every block's per-pass (cumulative rate, cumulative distortion
//! reduction) curve, choose a truncation point per block minimizing total
//! distortion subject to a byte budget. Classic two-step algorithm:
//! restrict candidates to the convex hull of each block's R-D curve, then
//! find the Lagrangian slope λ whose induced truncations meet the budget
//! (bisection). Only the λ *search* is inherently sequential — it needs
//! *all* blocks' statistics — which is why the paper's lossy encode stops
//! scaling ("the sequential rate allocation stage ... takes around 60% of
//! the total execution time in the 16 SPE + 2 PPE case").
//!
//! To attack that tail, the stage is factored into three pieces with
//! distinct parallelism profiles:
//!
//! 1. **Per-block preparation** ([`BlockSummary::from_block`] +
//!    [`PreparedBlock::new`]): accumulate the weighted distortion curve
//!    and compute the convex hull. Embarrassingly parallel — the drivers
//!    run it inside the Tier-1 work queue as each block finishes.
//! 2. **Threshold search** ([`search_threshold`]): bisect for λ over the
//!    precomputed hulls. Global, cheap, stays sequential.
//! 3. **Truncation application** ([`Threshold::apply`]): per-block, given
//!    λ. Embarrassingly parallel again — fanned out by the drivers.
//!
//! [`allocate`] composes the three and is bit-for-bit equivalent to the
//! historical single-shot implementation (same bisection, same
//! `passes_examined` accounting), so every caller — sequential or
//! parallel — produces the same truncations.

use crate::block::EncodedBlock;

/// Per-block rate-distortion summary (cumulative over passes).
#[derive(Debug, Clone, Default)]
pub struct BlockSummary {
    /// Cumulative bytes after each pass.
    pub rates: Vec<usize>,
    /// Cumulative distortion reduction after each pass (weighted to image
    /// domain by the caller: (step x basis norm)^2).
    pub dists: Vec<f64>,
}

impl BlockSummary {
    /// Build the summary straight from a Tier-1-coded block: cumulative
    /// pass rates plus the distortion curve scaled into the image domain
    /// by `weight` ((step × basis norm)²). The accumulation is a strictly
    /// sequential scan *within* the block, so it is deterministic no
    /// matter which worker runs it.
    pub fn from_block(enc: &EncodedBlock, weight: f64) -> BlockSummary {
        BlockSummary {
            rates: enc.pass_ends.clone(),
            dists: enc
                .passes
                .iter()
                .scan(0.0, |acc, p| {
                    *acc += p.dist_reduction * weight;
                    Some(*acc)
                })
                .collect(),
        }
    }
    /// Indices of passes on the convex hull of the R-D curve (strictly
    /// decreasing slopes), always candidates for truncation.
    pub fn hull(&self) -> Vec<usize> {
        let n = self.rates.len();
        let mut hull: Vec<usize> = Vec::new();
        for i in 0..n {
            loop {
                let (r_prev, d_prev) = match hull.last() {
                    Some(&j) => (self.rates[j] as f64, self.dists[j]),
                    None => (0.0, 0.0),
                };
                let dr = self.rates[i] as f64 - r_prev;
                let dd = self.dists[i] - d_prev;
                if dr < 0.0 || (dr == 0.0 && dd <= 0.0) {
                    // Non-monotone data; skip this pass as a candidate.
                    break;
                }
                let slope = if dr == 0.0 { f64::INFINITY } else { dd / dr };
                // Pop hull points with a shallower slope than the segment
                // that would replace them.
                if let Some(&j) = hull.last() {
                    let (r2, d2) = match hull.len() {
                        1 => (0.0, 0.0),
                        _ => {
                            let k = hull[hull.len() - 2];
                            (self.rates[k] as f64, self.dists[k])
                        }
                    };
                    let dr2 = self.rates[j] as f64 - r2;
                    let dd2 = self.dists[j] - d2;
                    let slope2 = if dr2 == 0.0 { f64::INFINITY } else { dd2 / dr2 };
                    if slope >= slope2 {
                        hull.pop();
                        continue;
                    }
                }
                if dd > 0.0 {
                    hull.push(i);
                }
                break;
            }
        }
        hull
    }

    /// Truncation (number of passes) chosen at slope threshold `lambda`:
    /// the furthest hull point whose incremental slope is `>= lambda`.
    pub fn truncation_at(&self, hull: &[usize], lambda: f64) -> usize {
        let mut chosen = 0usize; // passes kept (0 = drop block entirely)
        let (mut r_prev, mut d_prev) = (0.0f64, 0.0f64);
        for &i in hull {
            let dr = self.rates[i] as f64 - r_prev;
            let dd = self.dists[i] - d_prev;
            let slope = if dr == 0.0 { f64::INFINITY } else { dd / dr };
            if slope >= lambda {
                chosen = i + 1;
                r_prev = self.rates[i] as f64;
                d_prev = self.dists[i];
            } else {
                break;
            }
        }
        chosen
    }
}

/// A block's R-D summary with its convex hull precomputed. This is the
/// per-block piece of rate control that the drivers hoist into the Tier-1
/// work queue: the hull depends only on the block's own curve, so it can
/// be finalized the moment the block's coding passes exist.
#[derive(Debug, Clone, Default)]
pub struct PreparedBlock {
    /// The R-D curve.
    pub summary: BlockSummary,
    /// Hull pass indices ([`BlockSummary::hull`] of `summary`).
    pub hull: Vec<usize>,
}

impl PreparedBlock {
    /// Compute the hull for `summary`.
    pub fn new(summary: BlockSummary) -> PreparedBlock {
        let hull = summary.hull();
        PreparedBlock { summary, hull }
    }

    /// Truncation chosen at slope threshold `lambda`.
    pub fn truncation_at(&self, lambda: f64) -> usize {
        self.summary.truncation_at(&self.hull, lambda)
    }

    /// Payload bytes of the first `n` passes.
    pub fn bytes_for(&self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.summary.rates[n - 1]
        }
    }
}

/// Outcome of the global λ search: either "keep everything" (the full
/// stream fits the budget) or the bisected slope threshold. Applying a
/// threshold to a block ([`Threshold::apply`]) is pure and per-block, so
/// the application fans out over workers without changing a single byte.
#[derive(Debug, Clone, Copy)]
pub struct Threshold {
    /// `None` = no truncation needed; `Some(λ)` = keep hull passes with
    /// incremental slope ≥ λ.
    pub lambda: Option<f64>,
    /// Coding passes examined by this search (work items for the
    /// sequential rate-control stage in the machine model).
    pub passes_examined: u64,
}

impl Threshold {
    /// Truncation this threshold induces on one block.
    pub fn apply(&self, block: &PreparedBlock) -> usize {
        match self.lambda {
            None => block.summary.rates.len(),
            Some(l) => block.truncation_at(l),
        }
    }
}

/// The sequential half of PCRD: bisect for the slope threshold λ whose
/// induced truncations fit `budget_bytes` of block payload (headers
/// excluded). A budget of `usize::MAX` keeps everything. The bisection
/// and its `passes_examined` accounting are identical to the historical
/// single-shot [`allocate`], so `allocate(s, b)` ≡ search + apply.
pub fn search_threshold(blocks: &[&PreparedBlock], budget_bytes: usize) -> Threshold {
    let mut examined: u64 = blocks.iter().map(|b| b.summary.rates.len() as u64).sum();

    let full_bytes: usize = blocks
        .iter()
        .map(|b| b.summary.rates.last().copied().unwrap_or(0))
        .sum();
    if full_bytes <= budget_bytes {
        return Threshold {
            lambda: None,
            passes_examined: examined,
        };
    }

    let bytes_at = |lambda: f64, examined: &mut u64| -> usize {
        let mut total = 0usize;
        for b in blocks {
            *examined += b.hull.len() as u64;
            total += b.bytes_for(b.truncation_at(lambda));
        }
        total
    };

    // Bisect on log-lambda. High lambda -> keep little; low -> keep all.
    let (mut lo, mut hi) = (1e-12f64, 1e12f64);
    // Most aggressive truncation is the fallback if no mid is feasible.
    bytes_at(hi, &mut examined);
    for _ in 0..60 {
        let mid = (lo * hi).sqrt();
        if bytes_at(mid, &mut examined) <= budget_bytes {
            hi = mid; // feasible: try keeping more (smaller lambda)
        } else {
            lo = mid;
        }
    }
    Threshold {
        lambda: Some(hi),
        passes_examined: examined,
    }
}

/// Result of [`allocate`].
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Passes kept per block.
    pub passes: Vec<usize>,
    /// Total payload bytes of the kept passes.
    pub total_bytes: usize,
    /// Coding passes examined during the search (work items for the
    /// sequential rate-control stage in the machine model).
    pub passes_examined: u64,
}

/// Choose per-block truncations to fit `budget_bytes` of block payload
/// (headers excluded), minimizing distortion. A budget of `usize::MAX`
/// keeps everything (lossless / no rate limit). Composition of
/// [`PreparedBlock::new`], [`search_threshold`], and [`Threshold::apply`];
/// kept for callers that don't stage the pieces across workers.
pub fn allocate(blocks: &[BlockSummary], budget_bytes: usize) -> Allocation {
    let prepared: Vec<PreparedBlock> = blocks
        .iter()
        .map(|b| PreparedBlock::new(b.clone()))
        .collect();
    let refs: Vec<&PreparedBlock> = prepared.iter().collect();
    let th = search_threshold(&refs, budget_bytes);
    let passes: Vec<usize> = refs.iter().map(|b| th.apply(b)).collect();
    let total_bytes = refs.iter().zip(&passes).map(|(b, &n)| b.bytes_for(n)).sum();
    Allocation {
        passes,
        total_bytes,
        passes_examined: th.passes_examined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(rd: &[(usize, f64)]) -> BlockSummary {
        BlockSummary {
            rates: rd.iter().map(|&(r, _)| r).collect(),
            dists: rd.iter().map(|&(_, d)| d).collect(),
        }
    }

    #[test]
    fn hull_of_concave_curve_is_everything() {
        let b = block(&[(10, 100.0), (20, 150.0), (30, 170.0), (40, 175.0)]);
        assert_eq!(b.hull(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn hull_skips_dominated_passes() {
        // Pass 1 is a poor deal (tiny gain), pass 2 makes up for it: the
        // hull bridges from 0 straight to 2.
        let b = block(&[(10, 100.0), (20, 101.0), (30, 200.0), (40, 202.0)]);
        let h = b.hull();
        assert!(h.contains(&2));
        assert!(!h.contains(&1), "{h:?}");
    }

    #[test]
    fn truncation_respects_lambda() {
        let b = block(&[(10, 100.0), (20, 150.0), (30, 170.0)]);
        let h = b.hull();
        assert_eq!(b.truncation_at(&h, 20.0), 0); // even first slope (10) < 20
        assert_eq!(b.truncation_at(&h, 10.0), 1);
        assert_eq!(b.truncation_at(&h, 5.0), 2);
        assert_eq!(b.truncation_at(&h, 0.5), 3);
    }

    #[test]
    fn allocate_unlimited_keeps_all() {
        let blocks = vec![
            block(&[(10, 1.0), (20, 1.5)]),
            block(&[(5, 2.0), (50, 2.5)]),
        ];
        let a = allocate(&blocks, usize::MAX);
        assert_eq!(a.passes, vec![2, 2]);
        assert_eq!(a.total_bytes, 70);
    }

    #[test]
    fn allocate_meets_budget() {
        let blocks: Vec<BlockSummary> = (0..20)
            .map(|i| {
                let base = 100.0 + i as f64 * 10.0;
                block(&[
                    (100, base),
                    (200, base * 1.5),
                    (300, base * 1.7),
                    (400, base * 1.75),
                ])
            })
            .collect();
        for budget in [500usize, 2000, 4000, 7900] {
            let a = allocate(&blocks, budget);
            assert!(
                a.total_bytes <= budget,
                "budget {budget}: used {}",
                a.total_bytes
            );
            // Should use a decent share of the budget (not trivially 0).
            assert!(
                a.total_bytes * 10 >= budget * 5,
                "budget {budget}: used {}",
                a.total_bytes
            );
        }
    }

    #[test]
    fn allocate_prefers_high_value_blocks() {
        // Block A offers 10x the distortion reduction per byte of block B;
        // a tight budget should fund A first.
        let a = block(&[(100, 1000.0)]);
        let b = block(&[(100, 100.0)]);
        let alloc = allocate(&[a, b], 100);
        assert_eq!(alloc.passes, vec![1, 0]);
    }

    #[test]
    fn empty_blocks_are_fine() {
        let blocks = vec![BlockSummary::default(), block(&[(10, 1.0)])];
        let a = allocate(&blocks, 5);
        assert_eq!(a.passes[0], 0);
        assert!(a.total_bytes <= 5);
    }

    #[test]
    fn distortion_monotone_in_budget() {
        let blocks: Vec<BlockSummary> = (0..10)
            .map(|i| {
                block(&[
                    (50 + i, 500.0 + i as f64),
                    (150 + i, 700.0),
                    (300 + i, 780.0),
                ])
            })
            .collect();
        let dist_of = |passes: &[usize]| -> f64 {
            passes
                .iter()
                .zip(&blocks)
                .map(|(&n, b)| if n > 0 { b.dists[n - 1] } else { 0.0 })
                .sum()
        };
        let mut prev = -1.0;
        for budget in [200usize, 600, 1200, 2400, 4000] {
            let a = allocate(&blocks, budget);
            let d = dist_of(&a.passes);
            assert!(d >= prev, "budget {budget}: {d} < {prev}");
            prev = d;
        }
    }
}
