//! Context assignment for Tier-1 bit modeling (JPEG2000 Annex D).
//!
//! Context labels 0..=18:
//! * 0..=8   — zero coding (significance), band-orientation dependent;
//! * 9..=13  — sign coding (plus an XOR flip bit);
//! * 14..=16 — magnitude refinement;
//! * 17      — run-length (cleanup run mode);
//! * 18      — UNIFORM (near-equiprobable side information).

use mqcoder::{Contexts, CtxState};

/// Number of adaptive contexts.
pub const NUM_CTX: usize = 19;
/// Run-length context label.
pub const CTX_RL: usize = 17;
/// UNIFORM context label.
pub const CTX_UNI: usize = 18;
/// First sign context label.
pub const CTX_SIGN0: usize = 9;
/// First magnitude-refinement context label.
pub const CTX_MAG0: usize = 14;

/// Fresh context bank with the standard initial states:
/// all-zero-neighborhood significance context at state 4, run-length at
/// state 3, UNIFORM at state 46, everything else at state 0.
pub fn initial_contexts() -> Contexts {
    let mut c = Contexts::new(NUM_CTX);
    c.set(0, CtxState::at(4));
    c.set(CTX_RL, CtxState::at(3));
    c.set(CTX_UNI, CtxState::at(46));
    c
}

/// Zero-coding context from neighbor significance counts, for a band class.
///
/// `h` = significant horizontal neighbors (0..=2), `v` = vertical (0..=2),
/// `d` = diagonal (0..=4).
#[inline]
pub fn zc_context(kind: crate::BandKind, h: u32, v: u32, d: u32) -> usize {
    use crate::BandKind::*;
    let (h, v) = match kind {
        // HL is horizontally high-pass: the roles of h and v swap.
        Hl => (v, h),
        LlLh => (h, v),
        Hh => {
            // HH keys primarily on the diagonal count.
            return match (d, h + v) {
                (d, _) if d >= 3 => 8,
                (2, hv) if hv >= 1 => 7,
                (2, _) => 6,
                (1, hv) if hv >= 2 => 5,
                (1, 1) => 4,
                (1, _) => 3,
                (0, hv) if hv >= 2 => 2,
                (0, 1) => 1,
                _ => 0,
            };
        }
    };
    match (h, v, d) {
        (2, _, _) => 8,
        (1, v, _) if v >= 1 => 7,
        (1, 0, d) if d >= 1 => 6,
        (1, 0, 0) => 5,
        (0, 2, _) => 4,
        (0, 1, _) => 3,
        (0, 0, d) if d >= 2 => 2,
        (0, 0, 1) => 1,
        _ => 0,
    }
}

/// Sign-coding context and XOR flip from net neighbor sign contributions.
///
/// `hc`/`vc` are the clamped sums of (significant) horizontal/vertical
/// neighbor signs: -1, 0, or +1 (positive = +1 contribution).
#[inline]
pub fn sc_context(hc: i32, vc: i32) -> (usize, u8) {
    debug_assert!((-1..=1).contains(&hc) && (-1..=1).contains(&vc));
    match (hc, vc) {
        (1, 1) => (13, 0),
        (1, 0) => (12, 0),
        (1, -1) => (11, 0),
        (0, 1) => (10, 0),
        (0, 0) => (9, 0),
        (0, -1) => (10, 1),
        (-1, 1) => (11, 1),
        (-1, 0) => (12, 1),
        (-1, -1) => (13, 1),
        _ => unreachable!(),
    }
}

/// Magnitude-refinement context: `first` = first refinement of this sample,
/// `any_sig_neighbor` = any of the 8 neighbors significant.
#[inline]
pub fn mr_context(first: bool, any_sig_neighbor: bool) -> usize {
    if !first {
        16
    } else if any_sig_neighbor {
        15
    } else {
        14
    }
}

// ---------------------------------------------------------------------------
// Table-driven context lookup (branch-free inner loops)
//
// The branchy `zc_context` / `sc_context` matches above stay as the readable
// reference; the tables below are built from them once per process, so
// equivalence is by construction (and additionally pinned by exhaustive
// tests). The Tier-1 passes index the tables with a small integer computed
// from raw neighbor counts — no data-dependent branches in the significance
// state machine.
// ---------------------------------------------------------------------------

/// Flat index into a [`zc_lut`] table: `h`, `v` in 0..=2, `d` in 0..=4.
#[inline]
pub fn zc_index(h: u32, v: u32, d: u32) -> usize {
    (h * 15 + v * 5 + d) as usize
}

/// Zero-coding context table for a band class: 45 entries addressed by
/// [`zc_index`]. Equivalent to [`zc_context`] over its whole domain.
pub fn zc_lut(kind: crate::BandKind) -> &'static [u8; 45] {
    use std::sync::OnceLock;
    static LUTS: OnceLock<[[u8; 45]; 3]> = OnceLock::new();
    let luts = LUTS.get_or_init(|| {
        let mut t = [[0u8; 45]; 3];
        for (ki, kind) in [
            crate::BandKind::LlLh,
            crate::BandKind::Hl,
            crate::BandKind::Hh,
        ]
        .into_iter()
        .enumerate()
        {
            for h in 0..=2u32 {
                for v in 0..=2u32 {
                    for d in 0..=4u32 {
                        t[ki][zc_index(h, v, d)] = zc_context(kind, h, v, d) as u8;
                    }
                }
            }
        }
        t
    });
    match kind {
        crate::BandKind::LlLh => &luts[0],
        crate::BandKind::Hl => &luts[1],
        crate::BandKind::Hh => &luts[2],
    }
}

/// Flat index into [`sc_lut`]: `hc`, `vc` are the *unclamped* sums of the
/// two horizontal / vertical neighbor sign contributions, each in -2..=2.
#[inline]
pub fn sc_index(hc: i32, vc: i32) -> usize {
    ((hc + 2) * 5 + (vc + 2)) as usize
}

/// Sign-coding (context, xor) table: 25 entries addressed by [`sc_index`].
/// Folds the `clamp(-1, 1)` of [`sc_context`]'s inputs into the table, so
/// callers can use raw -2..=2 sums directly.
pub fn sc_lut() -> &'static [(u8, u8); 25] {
    use std::sync::OnceLock;
    static LUT: OnceLock<[(u8, u8); 25]> = OnceLock::new();
    LUT.get_or_init(|| {
        let mut t = [(0u8, 0u8); 25];
        for hc in -2..=2i32 {
            for vc in -2..=2i32 {
                let (cx, xor) = sc_context(hc.clamp(-1, 1), vc.clamp(-1, 1));
                t[sc_index(hc, vc)] = (cx as u8, xor);
            }
        }
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BandKind;

    #[test]
    fn initial_states_match_standard() {
        let c = initial_contexts();
        assert_eq!(c.get(0).index, 4);
        assert_eq!(c.get(CTX_RL).index, 3);
        assert_eq!(c.get(CTX_UNI).index, 46);
        assert_eq!(c.get(5).index, 0);
        assert_eq!(c.len(), 19);
    }

    #[test]
    fn zc_lllh_table() {
        let k = BandKind::LlLh;
        assert_eq!(zc_context(k, 0, 0, 0), 0);
        assert_eq!(zc_context(k, 0, 0, 1), 1);
        assert_eq!(zc_context(k, 0, 0, 3), 2);
        assert_eq!(zc_context(k, 0, 1, 2), 3);
        assert_eq!(zc_context(k, 0, 2, 0), 4);
        assert_eq!(zc_context(k, 1, 0, 0), 5);
        assert_eq!(zc_context(k, 1, 0, 2), 6);
        assert_eq!(zc_context(k, 1, 1, 0), 7);
        assert_eq!(zc_context(k, 2, 0, 0), 8);
        assert_eq!(zc_context(k, 2, 2, 4), 8);
    }

    #[test]
    fn zc_hl_swaps_h_and_v() {
        for h in 0..=2u32 {
            for v in 0..=2u32 {
                for d in 0..=4u32 {
                    assert_eq!(
                        zc_context(BandKind::Hl, h, v, d),
                        zc_context(BandKind::LlLh, v, h, d),
                        "h={h} v={v} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn zc_hh_table() {
        let k = BandKind::Hh;
        assert_eq!(zc_context(k, 0, 0, 0), 0);
        assert_eq!(zc_context(k, 1, 0, 0), 1);
        assert_eq!(zc_context(k, 1, 1, 0), 2);
        assert_eq!(zc_context(k, 0, 0, 1), 3);
        assert_eq!(zc_context(k, 1, 0, 1), 4);
        assert_eq!(zc_context(k, 2, 1, 1), 5);
        assert_eq!(zc_context(k, 0, 0, 2), 6);
        assert_eq!(zc_context(k, 2, 0, 2), 7);
        assert_eq!(zc_context(k, 0, 0, 3), 8);
        assert_eq!(zc_context(k, 2, 2, 4), 8);
    }

    #[test]
    fn sign_contexts_are_symmetric() {
        // Flipping both contributions gives the same context with the
        // opposite XOR bit.
        for hc in -1..=1 {
            for vc in -1..=1 {
                let (c1, x1) = sc_context(hc, vc);
                let (c2, x2) = sc_context(-hc, -vc);
                assert_eq!(c1, c2);
                if (hc, vc) != (0, 0) {
                    assert_ne!(x1, x2);
                }
            }
        }
        assert_eq!(sc_context(0, 0), (9, 0));
    }

    #[test]
    fn zc_lut_matches_function_exhaustively() {
        for kind in [BandKind::LlLh, BandKind::Hl, BandKind::Hh] {
            let lut = zc_lut(kind);
            for h in 0..=2u32 {
                for v in 0..=2u32 {
                    for d in 0..=4u32 {
                        assert_eq!(
                            lut[zc_index(h, v, d)] as usize,
                            zc_context(kind, h, v, d),
                            "{kind:?} h={h} v={v} d={d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sc_lut_matches_function_exhaustively() {
        let lut = sc_lut();
        for hc in -2..=2i32 {
            for vc in -2..=2i32 {
                let (cx, xor) = sc_context(hc.clamp(-1, 1), vc.clamp(-1, 1));
                assert_eq!(lut[sc_index(hc, vc)], (cx as u8, xor), "hc={hc} vc={vc}");
            }
        }
    }

    #[test]
    fn mr_contexts() {
        assert_eq!(mr_context(true, false), 14);
        assert_eq!(mr_context(true, true), 15);
        assert_eq!(mr_context(false, false), 16);
        assert_eq!(mr_context(false, true), 16);
    }
}
