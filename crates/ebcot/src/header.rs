//! Packet headers (JPEG2000 Annex B.10) for one precinct.
//!
//! We use one precinct per subband, so a packet = (layer, subband). The
//! header tells the decoder, per code block: whether it contributes to this
//! layer, the number of all-zero bit planes (on first inclusion), how many
//! coding passes are added, and the byte length of each added pass segment
//! (every pass is MQ-terminated — see `block` — so lengths are per pass).

use crate::tagtree::TagTree;
use mqcoder::{RawDecoder, RawEncoder};

/// A malformed packet header (corrupt or truncated stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderError(pub String);

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad packet header: {}", self.0)
    }
}

impl std::error::Error for HeaderError {}

/// Upper bound on Lblock (32-bit segment lengths are already absurd).
const MAX_LBLOCK: u32 = 32;

/// Persistent Tier-2 state for the code blocks of one precinct.
#[derive(Debug, Clone)]
pub struct PrecinctState {
    /// Grid dimensions in code blocks.
    pub cbw: usize,
    /// See `cbw`.
    pub cbh: usize,
    incl_tree: TagTree,
    zbp_tree: TagTree,
    /// Layer at which each block was first included (`u32::MAX` = not yet).
    first_layer: Vec<u32>,
    /// Lblock length-signalling state per block.
    lblock: Vec<u32>,
    /// Passes already signalled per block.
    passes_done: Vec<usize>,
}

/// One code block's contribution to one layer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Contribution {
    /// Number of new passes in this layer (0 = does not contribute).
    pub num_passes: usize,
    /// Byte length of each added pass segment.
    pub pass_lens: Vec<usize>,
    /// Number of all-zero bit planes (consumed on first inclusion only).
    pub zero_planes: u32,
}

impl PrecinctState {
    /// State for a `cbw x cbh` grid of code blocks.
    pub fn new(cbw: usize, cbh: usize) -> Self {
        PrecinctState {
            cbw,
            cbh,
            incl_tree: TagTree::new(cbw, cbh),
            zbp_tree: TagTree::new(cbw, cbh),
            first_layer: vec![u32::MAX; cbw * cbh],
            lblock: vec![3; cbw * cbh],
            passes_done: vec![0; cbw * cbh],
        }
    }

    /// Initialize the encoder-side trees. `first_incl[i]` is the layer at
    /// which block `i` first contributes; `zero_planes[i]` its missing
    /// bit-plane count. Must be called before the first `encode_packet`.
    pub fn set_encoder_values(&mut self, first_incl: &[u32], zero_planes: &[u32]) {
        assert_eq!(first_incl.len(), self.cbw * self.cbh);
        assert_eq!(zero_planes.len(), self.cbw * self.cbh);
        for y in 0..self.cbh {
            for x in 0..self.cbw {
                self.incl_tree.set_value(x, y, first_incl[y * self.cbw + x]);
                self.zbp_tree.set_value(x, y, zero_planes[y * self.cbw + x]);
            }
        }
    }
}

fn put_bits(out: &mut RawEncoder, value: usize, bits: u32) {
    for i in (0..bits).rev() {
        out.put(((value >> i) & 1) as u8);
    }
}

fn get_bits(inp: &mut RawDecoder<'_>, bits: u32) -> usize {
    let mut v = 0usize;
    for _ in 0..bits {
        v = (v << 1) | inp.get() as usize;
    }
    v
}

/// Pass-count variable-length code (Annex B Table B.4).
fn put_numpasses(out: &mut RawEncoder, n: usize) {
    match n {
        1 => out.put(0),
        2 => {
            out.put(1);
            out.put(0);
        }
        3..=5 => {
            put_bits(out, 0b11, 2);
            put_bits(out, n - 3, 2);
        }
        6..=36 => {
            put_bits(out, 0b1111, 4);
            put_bits(out, n - 6, 5);
        }
        37..=164 => {
            put_bits(out, 0b1111_11111, 9);
            put_bits(out, n - 37, 7);
        }
        _ => panic!("pass count {n} out of range"),
    }
}

fn get_numpasses(inp: &mut RawDecoder<'_>) -> usize {
    if inp.get() == 0 {
        return 1;
    }
    if inp.get() == 0 {
        return 2;
    }
    let t = get_bits(inp, 2);
    if t != 0b11 {
        return 3 + t;
    }
    let t = get_bits(inp, 5);
    if t != 0b11111 {
        return 6 + t;
    }
    37 + get_bits(inp, 7)
}

fn bitlen(v: usize) -> u32 {
    usize::BITS - v.leading_zeros()
}

/// Encode one packet header. `contribs[i]` describes block `i` (raster
/// order) for layer `layer`. Returns the header bytes.
pub fn encode_packet(st: &mut PrecinctState, layer: u32, contribs: &[Contribution]) -> Vec<u8> {
    assert_eq!(contribs.len(), st.cbw * st.cbh);
    let mut out = RawEncoder::new();
    let nonempty = contribs.iter().any(|c| c.num_passes > 0);
    out.put(u8::from(nonempty));
    if !nonempty {
        return out.finish();
    }
    for y in 0..st.cbh {
        for x in 0..st.cbw {
            let i = y * st.cbw + x;
            let c = &contribs[i];
            let included = c.num_passes > 0;
            if st.first_layer[i] == u32::MAX {
                // Not yet included in any layer: inclusion via tag tree.
                let resolved = st.incl_tree.encode(x, y, layer + 1, &mut out);
                debug_assert_eq!(resolved, included, "tag tree vs contribution");
                if included {
                    st.first_layer[i] = layer;
                    st.zbp_tree.encode_value(x, y, &mut out);
                }
            } else {
                out.put(u8::from(included));
            }
            if !included {
                continue;
            }
            put_numpasses(&mut out, c.num_passes);
            debug_assert_eq!(c.pass_lens.len(), c.num_passes);
            // Length signalling: every pass is a terminated segment, so
            // each length is coded in `lblock` bits after enough unary
            // increments to make the longest fit.
            let need = c
                .pass_lens
                .iter()
                .map(|&l| bitlen(l))
                .max()
                .unwrap_or(1)
                .max(1);
            let incr = need.saturating_sub(st.lblock[i]);
            for _ in 0..incr {
                out.put(1);
            }
            out.put(0);
            st.lblock[i] += incr;
            for &len in &c.pass_lens {
                put_bits(&mut out, len, st.lblock[i]);
            }
            st.passes_done[i] += c.num_passes;
        }
    }
    out.finish()
}

/// Decode one packet header; the mirror of [`encode_packet`]. Returns the
/// per-block contributions and the number of header bytes consumed.
pub fn decode_packet(
    st: &mut PrecinctState,
    layer: u32,
    header: &[u8],
) -> Result<(Vec<Contribution>, usize), HeaderError> {
    let mut inp = RawDecoder::new(header);
    let mut out = vec![Contribution::default(); st.cbw * st.cbh];
    if inp.get() == 0 {
        return Ok((out, inp.bytes_consumed()));
    }
    for y in 0..st.cbh {
        for x in 0..st.cbw {
            let i = y * st.cbw + x;
            let included;
            if st.first_layer[i] == u32::MAX {
                included = st.incl_tree.decode(x, y, layer + 1, &mut inp);
                if included {
                    st.first_layer[i] = layer;
                    out[i].zero_planes = st.zbp_tree.decode_value(x, y, &mut inp);
                }
            } else {
                included = inp.get() == 1;
            }
            if !included {
                continue;
            }
            let np = get_numpasses(&mut inp);
            let mut incr = 0u32;
            while inp.get() == 1 {
                incr += 1;
                if st.lblock[i] + incr > MAX_LBLOCK {
                    return Err(HeaderError(format!(
                        "Lblock increment overflow for block {i}"
                    )));
                }
            }
            st.lblock[i] += incr;
            let mut lens = Vec::with_capacity(np);
            for _ in 0..np {
                lens.push(get_bits(&mut inp, st.lblock[i]));
            }
            out[i].num_passes = np;
            out[i].pass_lens = lens;
            st.passes_done[i] += np;
        }
    }
    let consumed = inp.bytes_consumed();
    Ok((out, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contribution(np: usize, lens: &[usize]) -> Contribution {
        Contribution {
            num_passes: np,
            pass_lens: lens.to_vec(),
            zero_planes: 0,
        }
    }

    #[test]
    fn numpasses_vlc_roundtrip() {
        for n in [1usize, 2, 3, 4, 5, 6, 7, 20, 36, 37, 46, 100, 164] {
            let mut out = RawEncoder::new();
            put_numpasses(&mut out, n);
            put_bits(&mut out, 0b1010, 4); // trailing guard bits
            let bytes = out.finish();
            let mut inp = RawDecoder::new(&bytes);
            assert_eq!(get_numpasses(&mut inp), n, "n={n}");
            assert_eq!(get_bits(&mut inp, 4), 0b1010);
        }
    }

    #[test]
    fn empty_packet_is_one_bit() {
        let mut st = PrecinctState::new(2, 2);
        st.set_encoder_values(&[0, 0, 1, 1], &[0; 4]);
        let hdr = encode_packet(&mut st, 5, &vec![Contribution::default(); 4]);
        assert_eq!(hdr.len(), 1);
        let mut dst = PrecinctState::new(2, 2);
        let (got, used) = decode_packet(&mut dst, 5, &hdr).unwrap();
        assert_eq!(used, 1);
        assert!(got.iter().all(|c| c.num_passes == 0));
    }

    #[test]
    fn single_layer_roundtrip() {
        let mut st = PrecinctState::new(2, 2);
        let first = [0u32, 0, 0, 0];
        let zbp = [2u32, 0, 5, 1];
        st.set_encoder_values(&first, &zbp);
        let contribs = vec![
            contribution(1, &[10]),
            contribution(3, &[5, 0, 77]),
            contribution(2, &[128, 4000]),
            contribution(1, &[0]),
        ];
        let hdr = encode_packet(&mut st, 0, &contribs);
        let mut dst = PrecinctState::new(2, 2);
        let (got, used) = decode_packet(&mut dst, 0, &hdr).unwrap();
        assert_eq!(used, hdr.len());
        for i in 0..4 {
            assert_eq!(got[i].num_passes, contribs[i].num_passes, "block {i}");
            assert_eq!(got[i].pass_lens, contribs[i].pass_lens, "block {i}");
            assert_eq!(got[i].zero_planes, zbp[i], "block {i}");
        }
    }

    #[test]
    fn multi_layer_roundtrip_with_late_inclusion() {
        let mut enc = PrecinctState::new(3, 1);
        // Block 0 included at layer 0, block 1 at layer 2, block 2 never.
        enc.set_encoder_values(&[0, 2, u32::MAX], &[1, 3, 0]);
        let layers: Vec<Vec<Contribution>> = vec![
            vec![
                contribution(2, &[9, 30]),
                Contribution::default(),
                Contribution::default(),
            ],
            vec![
                contribution(1, &[2]),
                Contribution::default(),
                Contribution::default(),
            ],
            vec![
                Contribution::default(),
                contribution(4, &[1, 2, 3, 4]),
                Contribution::default(),
            ],
        ];
        let headers: Vec<Vec<u8>> = layers
            .iter()
            .enumerate()
            .map(|(l, c)| encode_packet(&mut enc, l as u32, c))
            .collect();
        let mut dec = PrecinctState::new(3, 1);
        for (l, hdr) in headers.iter().enumerate() {
            let (got, _) = decode_packet(&mut dec, l as u32, hdr).unwrap();
            for i in 0..3 {
                assert_eq!(
                    got[i].num_passes, layers[l][i].num_passes,
                    "layer {l} block {i}"
                );
                assert_eq!(
                    got[i].pass_lens, layers[l][i].pass_lens,
                    "layer {l} block {i}"
                );
            }
            if l == 0 {
                assert_eq!(got[0].zero_planes, 1);
            }
            if l == 2 {
                assert_eq!(got[1].zero_planes, 3);
            }
        }
    }

    #[test]
    fn lblock_grows_for_long_segments() {
        let mut enc = PrecinctState::new(1, 1);
        enc.set_encoder_values(&[0], &[0]);
        let big = contribution(1, &[1_000_000]);
        let hdr = encode_packet(&mut enc, 0, std::slice::from_ref(&big));
        let mut dec = PrecinctState::new(1, 1);
        let (got, _) = decode_packet(&mut dec, 0, &hdr).unwrap();
        assert_eq!(got[0].pass_lens, vec![1_000_000]);
        // A follow-up short segment still decodes (state is persistent).
        let hdr2 = encode_packet(&mut enc, 1, &[contribution(1, &[3])]);
        let (got2, _) = decode_packet(&mut dec, 1, &hdr2).unwrap();
        assert_eq!(got2[0].pass_lens, vec![3]);
    }

    #[test]
    fn truncated_header_errors_instead_of_panicking() {
        // Past-the-end bits read as 1s; the unary Lblock run must bail out
        // instead of counting forever.
        let mut enc = PrecinctState::new(2, 2);
        enc.set_encoder_values(&[0, 0, 0, 0], &[0; 4]);
        let contribs = vec![contribution(1, &[100]); 4];
        let hdr = encode_packet(&mut enc, 0, &contribs);
        for cut in 0..hdr.len() {
            let mut dec = PrecinctState::new(2, 2);
            let _ = decode_packet(&mut dec, 0, &hdr[..cut]); // must not panic
        }
    }

    #[test]
    fn zero_length_pass_segments_roundtrip() {
        // Passes that code nothing produce empty MQ segments; headers must
        // carry length 0 correctly.
        let mut enc = PrecinctState::new(1, 1);
        enc.set_encoder_values(&[0], &[7]);
        let hdr = encode_packet(&mut enc, 0, &[contribution(3, &[0, 0, 0])]);
        let mut dec = PrecinctState::new(1, 1);
        let (got, _) = decode_packet(&mut dec, 0, &hdr).unwrap();
        assert_eq!(got[0].pass_lens, vec![0, 0, 0]);
        assert_eq!(got[0].zero_planes, 7);
    }
}
