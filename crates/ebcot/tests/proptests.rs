//! Property tests for Tier-1, tag trees, and rate allocation.

use ebcot::block::{decode_block, encode_block, BandKind};
use ebcot::rate::{allocate, BlockSummary};
use ebcot::tagtree::TagTree;
use mqcoder::{RawDecoder, RawEncoder};
use proptest::prelude::*;

fn band_strategy() -> impl Strategy<Value = BandKind> {
    prop_oneof![Just(BandKind::LlLh), Just(BandKind::Hl), Just(BandKind::Hh)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn tier1_roundtrip(
        w in 1usize..33,
        h in 1usize..33,
        kind in band_strategy(),
        seed in any::<u32>(),
        spread in 1i32..20_000,
    ) {
        let mut x = seed | 1;
        let data: Vec<i32> = (0..w * h)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                ((x >> 8) as i32 % (2 * spread + 1)) - spread
            })
            .collect();
        let blk = encode_block(&data, w, h, kind);
        let got = decode_block(
            &blk.data, &blk.pass_ends, blk.passes.len(), w, h, kind,
            blk.num_planes, false,
        );
        prop_assert_eq!(got, data);
    }

    #[test]
    fn tier1_truncation_never_overshoots(
        seed in any::<u32>(),
        keep_frac in 0.0f64..1.0,
    ) {
        let mut x = seed | 1;
        let data: Vec<i32> = (0..12 * 12)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                ((x >> 9) as i32 % 513) - 256
            })
            .collect();
        let blk = encode_block(&data, 12, 12, BandKind::LlLh);
        if blk.passes.is_empty() {
            return Ok(());
        }
        let keep = ((blk.passes.len() as f64 * keep_frac) as usize).clamp(1, blk.passes.len());
        let bytes = blk.bytes_for_passes(keep);
        let got = decode_block(
            &blk.data[..bytes], &blk.pass_ends[..keep], keep, 12, 12,
            BandKind::LlLh, blk.num_planes, false,
        );
        for (g, t) in got.iter().zip(&data) {
            prop_assert!(g.unsigned_abs() <= t.unsigned_abs());
            if *g != 0 {
                prop_assert_eq!(g.signum(), t.signum());
            }
        }
    }

    #[test]
    fn tagtree_arbitrary_values_roundtrip(
        w in 1usize..9,
        h in 1usize..9,
        vals in prop::collection::vec(0u32..12, 64),
    ) {
        let mut enc = TagTree::new(w, h);
        for y in 0..h {
            for x in 0..w {
                enc.set_value(x, y, vals[y * 8 + x]);
            }
        }
        let mut out = RawEncoder::new();
        for y in 0..h {
            for x in 0..w {
                enc.encode_value(x, y, &mut out);
            }
        }
        let bytes = out.finish();
        let mut dec = TagTree::new(w, h);
        let mut inp = RawDecoder::new(&bytes);
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(dec.decode_value(x, y, &mut inp), vals[y * 8 + x]);
            }
        }
    }

    #[test]
    fn allocation_always_within_budget(
        nblocks in 1usize..30,
        seed in any::<u32>(),
        budget in 0usize..50_000,
    ) {
        let mut x = seed | 1;
        let mut r = move || {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            (x >> 8) as usize
        };
        let blocks: Vec<BlockSummary> = (0..nblocks)
            .map(|_| {
                let n = r() % 10 + 1;
                let mut rate = 0usize;
                let mut dist = 0.0f64;
                let mut rates = Vec::new();
                let mut dists = Vec::new();
                for _ in 0..n {
                    rate += r() % 500;
                    dist += (r() % 1000) as f64;
                    rates.push(rate);
                    dists.push(dist);
                }
                BlockSummary { rates, dists }
            })
            .collect();
        let a = allocate(&blocks, budget);
        prop_assert!(a.total_bytes <= budget || budget == 0 && a.total_bytes == 0);
        // passes chosen are within range and bytes accounted correctly.
        let mut total = 0usize;
        for (n, b) in a.passes.iter().zip(&blocks) {
            prop_assert!(*n <= b.rates.len());
            if *n > 0 {
                total += b.rates[*n - 1];
            }
        }
        prop_assert_eq!(total, a.total_bytes);
    }
}
