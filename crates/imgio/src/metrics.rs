//! Image quality metrics.

use crate::Image;

/// Mean squared error across all components; `None` if geometries differ.
pub fn mse(a: &Image, b: &Image) -> Option<f64> {
    if a.width != b.width || a.height != b.height || a.comps() != b.comps() {
        return None;
    }
    let mut acc = 0f64;
    let mut n = 0usize;
    for (pa, pb) in a.planes.iter().zip(&b.planes) {
        for (&va, &vb) in pa.iter().zip(pb) {
            let d = va as f64 - vb as f64;
            acc += d * d;
            n += 1;
        }
    }
    Some(acc / n as f64)
}

/// Peak signal-to-noise ratio in dB (peak from `a`'s bit depth).
/// Returns `f64::INFINITY` for identical images.
pub fn psnr(a: &Image, b: &Image) -> Option<f64> {
    let m = mse(a, b)?;
    if m == 0.0 {
        return Some(f64::INFINITY);
    }
    let peak = a.max_value() as f64;
    Some(10.0 * (peak * peak / m).log10())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn identical_images_have_infinite_psnr() {
        let im = synth::natural(16, 16, 1);
        assert_eq!(mse(&im, &im), Some(0.0));
        assert_eq!(psnr(&im, &im), Some(f64::INFINITY));
    }

    #[test]
    fn known_mse() {
        let a = synth::flat(4, 4, 100);
        let b = synth::flat(4, 4, 110);
        assert_eq!(mse(&a, &b), Some(100.0));
        let p = psnr(&a, &b).unwrap();
        assert!((p - 10.0 * (255.0f64 * 255.0 / 100.0).log10()).abs() < 1e-9);
    }

    #[test]
    fn geometry_mismatch_is_none() {
        let a = synth::flat(4, 4, 0);
        let b = synth::flat(4, 5, 0);
        assert_eq!(mse(&a, &b), None);
        let c = synth::natural_rgb(4, 4, 0);
        assert_eq!(psnr(&a, &c), None);
    }

    #[test]
    fn psnr_orders_by_error() {
        let a = synth::natural(32, 32, 5);
        let mut b = a.clone();
        let mut c = a.clone();
        for i in 0..b.planes[0].len() {
            b.planes[0][i] = (b.planes[0][i] as i32 + 2).clamp(0, 255) as u16;
            c.planes[0][i] = (c.planes[0][i] as i32 + 8).clamp(0, 255) as u16;
        }
        assert!(psnr(&a, &b).unwrap() > psnr(&a, &c).unwrap());
    }
}
