//! Uncompressed 24-bit BMP read/write (the paper's input format).
//!
//! Supports the classic `BITMAPINFOHEADER` layout: bottom-up rows, BGR
//! sample order, rows padded to 4-byte multiples.

use crate::{Image, ImgError};
use std::io::{Read, Write};
use std::path::Path;

fn u16le(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn u32le(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn i32le(b: &[u8]) -> i32 {
    i32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Decode a 24-bit uncompressed BMP from bytes.
pub fn decode(data: &[u8]) -> Result<Image, ImgError> {
    if data.len() < 54 {
        return Err(ImgError::Format("truncated BMP header".into()));
    }
    if &data[0..2] != b"BM" {
        return Err(ImgError::Format("missing BM signature".into()));
    }
    let pixel_offset = u32le(&data[10..14]) as usize;
    let header_size = u32le(&data[14..18]);
    if header_size < 40 {
        return Err(ImgError::Format(format!(
            "unsupported DIB header size {header_size}"
        )));
    }
    let width = i32le(&data[18..22]);
    let height_raw = i32le(&data[22..26]);
    let planes = u16le(&data[26..28]);
    let bpp = u16le(&data[28..30]);
    let compression = u32le(&data[30..34]);
    if planes != 1 || bpp != 24 || compression != 0 {
        return Err(ImgError::Format(format!(
            "only 24-bit uncompressed BMP supported (planes={planes} bpp={bpp} comp={compression})"
        )));
    }
    if width <= 0 || height_raw == 0 {
        return Err(ImgError::Format("non-positive dimensions".into()));
    }
    let top_down = height_raw < 0;
    let width = width as usize;
    let height = height_raw.unsigned_abs() as usize;
    let row_bytes = (width * 3 + 3) & !3;
    let need = pixel_offset + row_bytes * height;
    if data.len() < need {
        return Err(ImgError::Format(format!(
            "pixel data truncated: need {need} bytes, have {}",
            data.len()
        )));
    }
    let mut im = Image::new(width, height, 3, 8)?;
    for row in 0..height {
        let y = if top_down { row } else { height - 1 - row };
        let src = &data[pixel_offset + row * row_bytes..];
        for x in 0..width {
            let b = src[x * 3];
            let g = src[x * 3 + 1];
            let r = src[x * 3 + 2];
            im.planes[0][y * width + x] = r as u16;
            im.planes[1][y * width + x] = g as u16;
            im.planes[2][y * width + x] = b as u16;
        }
    }
    Ok(im)
}

/// Encode an 8-bit image (1 or 3 components) as a 24-bit BMP.
pub fn encode(im: &Image) -> Result<Vec<u8>, ImgError> {
    if im.bit_depth != 8 || (im.comps() != 1 && im.comps() != 3) {
        return Err(ImgError::Invalid(
            "BMP writer needs an 8-bit image with 1 or 3 components".into(),
        ));
    }
    im.validate()?;
    let (w, h) = (im.width, im.height);
    let row_bytes = (w * 3 + 3) & !3;
    let pixel_bytes = row_bytes * h;
    let mut out = Vec::with_capacity(54 + pixel_bytes);
    out.extend_from_slice(b"BM");
    out.extend_from_slice(&(54 + pixel_bytes as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&54u32.to_le_bytes());
    out.extend_from_slice(&40u32.to_le_bytes());
    out.extend_from_slice(&(w as i32).to_le_bytes());
    out.extend_from_slice(&(h as i32).to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes());
    out.extend_from_slice(&24u16.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // BI_RGB
    out.extend_from_slice(&(pixel_bytes as u32).to_le_bytes());
    out.extend_from_slice(&2835u32.to_le_bytes()); // 72 dpi
    out.extend_from_slice(&2835u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    let gray = im.comps() == 1;
    for row in 0..h {
        let y = h - 1 - row;
        for x in 0..w {
            let (r, g, b) = if gray {
                let v = im.planes[0][y * w + x] as u8;
                (v, v, v)
            } else {
                (
                    im.planes[0][y * w + x] as u8,
                    im.planes[1][y * w + x] as u8,
                    im.planes[2][y * w + x] as u8,
                )
            };
            out.push(b);
            out.push(g);
            out.push(r);
        }
        out.resize(out.len() + (row_bytes - w * 3), 0);
    }
    Ok(out)
}

/// Read a BMP file.
pub fn read(path: impl AsRef<Path>) -> Result<Image, ImgError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    decode(&buf)
}

/// Write a BMP file.
pub fn write(path: impl AsRef<Path>, im: &Image) -> Result<(), ImgError> {
    let bytes = encode(im)?;
    std::fs::File::create(path)?.write_all(&bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image() -> Image {
        let mut im = Image::new(5, 3, 3, 8).unwrap();
        for y in 0..3 {
            for x in 0..5 {
                im.set(0, x, y, (x * 50) as u16);
                im.set(1, x, y, (y * 80) as u16);
                im.set(2, x, y, ((x + y) * 30) as u16);
            }
        }
        im
    }

    #[test]
    fn roundtrip_rgb() {
        let im = test_image();
        let bytes = encode(&im).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, im);
    }

    #[test]
    fn roundtrip_gray_promotes_to_rgb() {
        let mut im = Image::new(3, 2, 1, 8).unwrap();
        im.set(0, 1, 1, 99);
        let back = decode(&encode(&im).unwrap()).unwrap();
        assert_eq!(back.comps(), 3);
        assert_eq!(back.get(0, 1, 1), 99);
        assert_eq!(back.get(1, 1, 1), 99);
    }

    #[test]
    fn row_padding_is_correct() {
        // Width 5 -> 15 bytes of pixels padded to 16 per row.
        let bytes = encode(&test_image()).unwrap();
        assert_eq!(bytes.len(), 54 + 16 * 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(b"not a bmp at all............................................").is_err());
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn rejects_truncated_pixels() {
        let mut bytes = encode(&test_image()).unwrap();
        bytes.truncate(60);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let im = test_image();
        let dir = std::env::temp_dir().join("imgio_bmp_test.bmp");
        write(&dir, &im).unwrap();
        let back = read(&dir).unwrap();
        assert_eq!(back, im);
        let _ = std::fs::remove_file(dir);
    }
}
