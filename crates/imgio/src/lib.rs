//! Image I/O, synthetic workloads, and quality metrics.
//!
//! The paper's test input is a 28.3 MB BMP photograph
//! (`waltham_dial.bmp`, 3072x3072 RGB) that is no longer retrievable. The
//! [`synth`] module provides deterministic synthetic substitutes whose
//! bit-plane statistics resemble natural photographs (multi-octave 1/f
//! value noise plus edge content), which is what drives EBCOT workload
//! characteristics and compressibility. BMP (the paper's input format) and
//! PNM readers/writers round out the I/O surface.

pub mod bmp;
pub mod metrics;
pub mod pnm;
pub mod synth;

pub use metrics::{mse, psnr};

/// A simple planar image: one dense row-major `u16` plane per component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Bits per sample (1..=16).
    pub bit_depth: u8,
    /// Component planes (1 = grayscale, 3 = RGB), each `width * height`.
    pub planes: Vec<Vec<u16>>,
}

/// Errors from image construction and file I/O.
#[derive(Debug)]
pub enum ImgError {
    /// Geometry/plane mismatch or unsupported parameter.
    Invalid(String),
    /// Malformed file contents.
    Format(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ImgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImgError::Invalid(m) => write!(f, "invalid image: {m}"),
            ImgError::Format(m) => write!(f, "bad file format: {m}"),
            ImgError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ImgError {}

impl From<std::io::Error> for ImgError {
    fn from(e: std::io::Error) -> Self {
        ImgError::Io(e)
    }
}

impl Image {
    /// A zero-filled image with `comps` components.
    pub fn new(width: usize, height: usize, comps: usize, bit_depth: u8) -> Result<Self, ImgError> {
        if width == 0 || height == 0 || comps == 0 {
            return Err(ImgError::Invalid("zero extent or component count".into()));
        }
        if bit_depth == 0 || bit_depth > 16 {
            return Err(ImgError::Invalid(format!(
                "bit depth {bit_depth} unsupported"
            )));
        }
        Ok(Image {
            width,
            height,
            bit_depth,
            planes: vec![vec![0u16; width * height]; comps],
        })
    }

    /// Number of components.
    #[inline]
    pub fn comps(&self) -> usize {
        self.planes.len()
    }

    /// Maximum sample value for the bit depth.
    #[inline]
    pub fn max_value(&self) -> u16 {
        ((1u32 << self.bit_depth) - 1) as u16
    }

    /// Sample accessor.
    #[inline]
    pub fn get(&self, c: usize, x: usize, y: usize) -> u16 {
        self.planes[c][y * self.width + x]
    }

    /// Sample mutator (clamps to the bit depth).
    #[inline]
    pub fn set(&mut self, c: usize, x: usize, y: usize, v: u16) {
        let m = self.max_value();
        self.planes[c][y * self.width + x] = v.min(m);
    }

    /// Total samples across components.
    pub fn samples(&self) -> usize {
        self.width * self.height * self.comps()
    }

    /// Uncompressed size in bytes at one byte per 8 bits of depth.
    pub fn raw_bytes(&self) -> usize {
        self.samples() * usize::from(self.bit_depth.div_ceil(8))
    }

    /// Validate internal consistency (bit depth, plane sizes, sample
    /// ranges). The depth check must come first: [`Self::max_value`] on
    /// an out-of-range depth would overflow the shift.
    pub fn validate(&self) -> Result<(), ImgError> {
        if self.bit_depth == 0 || self.bit_depth > 16 {
            return Err(ImgError::Invalid(format!(
                "bit depth {} unsupported",
                self.bit_depth
            )));
        }
        let n = self.width * self.height;
        let max = self.max_value();
        for (c, p) in self.planes.iter().enumerate() {
            if p.len() != n {
                return Err(ImgError::Invalid(format!(
                    "plane {c} has {} samples, expected {n}",
                    p.len()
                )));
            }
            if p.iter().any(|&v| v > max) {
                return Err(ImgError::Invalid(format!("plane {c} exceeds bit depth")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let mut im = Image::new(4, 3, 3, 8).unwrap();
        assert_eq!(im.comps(), 3);
        assert_eq!(im.max_value(), 255);
        im.set(1, 2, 1, 300); // clamps
        assert_eq!(im.get(1, 2, 1), 255);
        assert_eq!(im.samples(), 36);
        assert_eq!(im.raw_bytes(), 36);
        im.validate().unwrap();
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(Image::new(0, 3, 1, 8).is_err());
        assert!(Image::new(3, 3, 0, 8).is_err());
        assert!(Image::new(3, 3, 1, 17).is_err());
    }

    #[test]
    fn validate_catches_inconsistency() {
        let mut im = Image::new(2, 2, 1, 8).unwrap();
        im.planes[0].push(0);
        assert!(im.validate().is_err());
        let mut im = Image::new(2, 2, 1, 4).unwrap();
        im.planes[0][0] = 200;
        assert!(im.validate().is_err());
        // Out-of-range depth must error, not overflow max_value's shift.
        let mut im = Image::new(2, 2, 1, 8).unwrap();
        im.bit_depth = 200;
        assert!(im.validate().is_err());
        im.bit_depth = 0;
        assert!(im.validate().is_err());
    }
}
