//! Binary PGM (P5) / PPM (P6) read and write.

use crate::{Image, ImgError};
use std::io::{Read, Write};
use std::path::Path;

struct Tokenizer<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(data: &'a [u8]) -> Self {
        Tokenizer { data, pos: 0 }
    }

    /// Next whitespace-delimited token, skipping `#` comments.
    fn token(&mut self) -> Result<&'a [u8], ImgError> {
        loop {
            while self.pos < self.data.len() && self.data[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.data.len() && self.data[self.pos] == b'#' {
                while self.pos < self.data.len() && self.data[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
        let start = self.pos;
        while self.pos < self.data.len() && !self.data[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ImgError::Format("unexpected end of PNM header".into()));
        }
        Ok(&self.data[start..self.pos])
    }

    fn number(&mut self) -> Result<usize, ImgError> {
        let t = self.token()?;
        std::str::from_utf8(t)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ImgError::Format("bad number in PNM header".into()))
    }
}

/// Decode a binary PGM/PPM.
pub fn decode(data: &[u8]) -> Result<Image, ImgError> {
    let mut tk = Tokenizer::new(data);
    let magic = tk.token()?;
    let comps = match magic {
        b"P5" => 1,
        b"P6" => 3,
        _ => return Err(ImgError::Format("not a binary PGM/PPM".into())),
    };
    let width = tk.number()?;
    let height = tk.number()?;
    let maxval = tk.number()?;
    if maxval == 0 || maxval > 65535 {
        return Err(ImgError::Format(format!("maxval {maxval} out of range")));
    }
    let depth: u8 = if maxval < 256 { 8 } else { 16 };
    // Exactly one whitespace byte separates header and raster.
    let raster = &data[tk.pos + 1..];
    let bytes_per = if maxval < 256 { 1 } else { 2 };
    let need = width * height * comps * bytes_per;
    if raster.len() < need {
        return Err(ImgError::Format(format!(
            "raster truncated: need {need}, have {}",
            raster.len()
        )));
    }
    let mut im = Image::new(width, height, comps, depth)?;
    for y in 0..height {
        for x in 0..width {
            for c in 0..comps {
                let i = ((y * width + x) * comps + c) * bytes_per;
                let v = if bytes_per == 1 {
                    raster[i] as u16
                } else {
                    u16::from_be_bytes([raster[i], raster[i + 1]])
                };
                im.planes[c][y * width + x] = v;
            }
        }
    }
    Ok(im)
}

/// Encode as binary PGM (1 component) or PPM (3 components).
pub fn encode(im: &Image) -> Result<Vec<u8>, ImgError> {
    im.validate()?;
    let magic = match im.comps() {
        1 => "P5",
        3 => "P6",
        n => {
            return Err(ImgError::Invalid(format!(
                "PNM needs 1 or 3 components, got {n}"
            )))
        }
    };
    let maxval = im.max_value();
    let mut out = format!("{magic}\n{} {}\n{}\n", im.width, im.height, maxval).into_bytes();
    let two = maxval > 255;
    for y in 0..im.height {
        for x in 0..im.width {
            for c in 0..im.comps() {
                let v = im.planes[c][y * im.width + x];
                if two {
                    out.extend_from_slice(&v.to_be_bytes());
                } else {
                    out.push(v as u8);
                }
            }
        }
    }
    Ok(out)
}

/// Read a PNM file.
pub fn read(path: impl AsRef<Path>) -> Result<Image, ImgError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    decode(&buf)
}

/// Write a PNM file (`.pgm` for 1 component, `.ppm` for 3).
pub fn write(path: impl AsRef<Path>, im: &Image) -> Result<(), ImgError> {
    let bytes = encode(im)?;
    std::fs::File::create(path)?.write_all(&bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pgm_8bit() {
        let mut im = Image::new(7, 4, 1, 8).unwrap();
        for (i, v) in im.planes[0].iter_mut().enumerate() {
            *v = (i * 9 % 256) as u16;
        }
        assert_eq!(decode(&encode(&im).unwrap()).unwrap(), im);
    }

    #[test]
    fn roundtrip_ppm_16bit() {
        let mut im = Image::new(3, 3, 3, 12).unwrap();
        for c in 0..3 {
            for (i, v) in im.planes[c].iter_mut().enumerate() {
                *v = ((i * 413 + c * 777) % 4096) as u16;
            }
        }
        let back = decode(&encode(&im).unwrap()).unwrap();
        // Depth reads back as 16 (maxval 4095 >= 256), planes identical.
        assert_eq!(back.planes, im.planes);
        assert_eq!(back.bit_depth, 16);
    }

    #[test]
    fn header_comments_skipped() {
        let data = b"P5\n# a comment\n2 2\n255\n\x01\x02\x03\x04";
        let im = decode(data).unwrap();
        assert_eq!(im.planes[0], vec![1, 2, 3, 4]);
    }

    #[test]
    fn rejects_ascii_variants_and_garbage() {
        assert!(decode(b"P2\n2 2\n255\n1 2 3 4").is_err());
        assert!(decode(b"hello").is_err());
        assert!(decode(b"P5\n2 2\n255\n\x01").is_err()); // truncated raster
    }
}
