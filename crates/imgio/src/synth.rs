//! Deterministic synthetic test images.
//!
//! The paper's photographic test input is unavailable; these generators
//! stand in for it. [`natural_rgb`] is the primary substitute: multi-octave
//! value noise with a 1/f amplitude spectrum (the canonical natural-image
//! statistic) plus sparse edge content, so that EBCOT sees realistic
//! bit-plane activity and the DWT sees realistic energy compaction.

use crate::Image;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Constant-value image (maximally compressible).
pub fn flat(width: usize, height: usize, value: u16) -> Image {
    let mut im = Image::new(width, height, 1, 8).expect("valid geometry");
    let v = value.min(im.max_value());
    for p in &mut im.planes[0] {
        *p = v;
    }
    im
}

/// Smooth diagonal gradient.
pub fn gradient(width: usize, height: usize) -> Image {
    let mut im = Image::new(width, height, 1, 8).expect("valid geometry");
    for y in 0..height {
        for x in 0..width {
            let v = ((x + y) * 255 / (width + height - 1).max(1)) as u16;
            im.planes[0][y * width + x] = v;
        }
    }
    im
}

/// Checkerboard (worst case for the DWT's energy compaction).
pub fn checkerboard(width: usize, height: usize, cell: usize) -> Image {
    let cell = cell.max(1);
    let mut im = Image::new(width, height, 1, 8).expect("valid geometry");
    for y in 0..height {
        for x in 0..width {
            let v = if ((x / cell) + (y / cell)).is_multiple_of(2) {
                230
            } else {
                25
            };
            im.planes[0][y * width + x] = v;
        }
    }
    im
}

/// Uniform random noise (incompressible; EBCOT stress case).
pub fn noise(width: usize, height: usize, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut im = Image::new(width, height, 1, 8).expect("valid geometry");
    for p in &mut im.planes[0] {
        *p = rng.gen_range(0..=255);
    }
    im
}

/// One octave of bilinear value noise on a `grid x grid` lattice.
fn value_noise_octave(width: usize, height: usize, grid: usize, rng: &mut StdRng) -> Vec<f32> {
    let gw = grid + 2;
    let lattice: Vec<f32> = (0..gw * gw).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut out = vec![0f32; width * height];
    for y in 0..height {
        let fy = y as f32 / height as f32 * grid as f32;
        let gy = fy as usize;
        let ty = fy - gy as f32;
        for x in 0..width {
            let fx = x as f32 / width as f32 * grid as f32;
            let gx = fx as usize;
            let tx = fx - gx as f32;
            let l = |i: usize, j: usize| lattice[j * gw + i];
            let a = l(gx, gy) * (1.0 - tx) + l(gx + 1, gy) * tx;
            let b = l(gx, gy + 1) * (1.0 - tx) + l(gx + 1, gy + 1) * tx;
            out[y * width + x] = a * (1.0 - ty) + b * ty;
        }
    }
    out
}

/// Natural-image-like grayscale: multi-octave 1/f value noise plus sparse
/// high-contrast edges (rectangles standing in for text/detail).
pub fn natural(width: usize, height: usize, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = vec![0f32; width * height];
    let octaves = (width.min(height).max(4) as f32).log2() as usize;
    let mut amp = 1.0f32;
    let mut grid = 2usize;
    for _ in 0..octaves.min(9) {
        let oct = value_noise_octave(width, height, grid, &mut rng);
        for (a, o) in acc.iter_mut().zip(&oct) {
            *a += amp * o;
        }
        amp *= 0.5; // 1/f: amplitude halves as frequency doubles
        grid *= 2;
    }
    // Fine-detail floor: real photographs (the paper's watch-dial image
    // included) carry sensor noise and sub-octave texture that keeps the
    // lowest bit planes active; without it, rate control has nothing to
    // truncate and lossless ratios are unrealistically high.
    for a in acc.iter_mut() {
        let r = rng.gen_range(-1.0f32..1.0);
        *a += 0.045 * r;
    }
    // Sparse edge content: a handful of soft-edged rectangles.
    let nrect = (width * height / 8192).clamp(2, 64);
    for _ in 0..nrect {
        let rw = rng.gen_range(width / 16 + 1..width / 4 + 2).min(width);
        let rh = rng.gen_range(height / 16 + 1..height / 4 + 2).min(height);
        let rx = rng.gen_range(0..width - rw + 1);
        let ry = rng.gen_range(0..height - rh + 1);
        let dv = rng.gen_range(-0.6f32..0.6);
        for y in ry..ry + rh {
            for x in rx..rx + rw {
                acc[y * width + x] += dv;
            }
        }
    }
    // Normalize to 8-bit range.
    let (mut lo, mut hi) = (f32::MAX, f32::MIN);
    for &v in &acc {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-6);
    let mut im = Image::new(width, height, 1, 8).expect("valid geometry");
    for (p, &v) in im.planes[0].iter_mut().zip(&acc) {
        *p = (((v - lo) / span) * 255.0).round() as u16;
    }
    im
}

/// Natural-image-like RGB: a shared luma structure plus per-channel chroma
/// variation, mimicking the strong inter-component correlation of
/// photographs (which is what the RCT/ICT stage exploits).
pub fn natural_rgb(width: usize, height: usize, seed: u64) -> Image {
    let luma = natural(width, height, seed);
    let chroma_a = natural(width, height, seed ^ 0x9E37_79B9_7F4A_7C15);
    let chroma_b = natural(width, height, seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1);
    let mut im = Image::new(width, height, 3, 8).expect("valid geometry");
    for i in 0..width * height {
        let l = luma.planes[0][i] as f32;
        let ca = (chroma_a.planes[0][i] as f32 - 128.0) * 0.25;
        let cb = (chroma_b.planes[0][i] as f32 - 128.0) * 0.25;
        im.planes[0][i] = (l + ca).clamp(0.0, 255.0) as u16;
        im.planes[1][i] = l as u16;
        im.planes[2][i] = (l + cb).clamp(0.0, 255.0) as u16;
    }
    im
}

/// The paper-scale workload: 3072 x 3072 RGB = 28.3 MB raw, matching the
/// `waltham_dial.bmp` test file. Expensive; benchmarks usually scale down
/// via their `--size` flag.
pub fn paper_workload(seed: u64) -> Image {
    natural_rgb(3072, 3072, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(natural(32, 24, 7), natural(32, 24, 7));
        assert_ne!(natural(32, 24, 7), natural(32, 24, 8));
        assert_eq!(natural_rgb(16, 16, 1), natural_rgb(16, 16, 1));
    }

    #[test]
    fn natural_uses_full_range() {
        let im = natural(64, 64, 42);
        let lo = *im.planes[0].iter().min().unwrap();
        let hi = *im.planes[0].iter().max().unwrap();
        assert_eq!(lo, 0);
        assert_eq!(hi, 255);
    }

    #[test]
    fn natural_has_1_over_f_spectrum_shape() {
        // Coarse check: mean absolute horizontal gradient should be much
        // smaller than the sample spread (smooth large-scale structure),
        // unlike white noise where they are comparable.
        let im = natural(128, 128, 3);
        let grad: f64 = im.planes[0]
            .chunks(128)
            .flat_map(|row| row.windows(2))
            .map(|w| (w[1] as f64 - w[0] as f64).abs())
            .sum::<f64>()
            / (128.0 * 127.0);
        let noise_im = noise(128, 128, 3);
        let ngrad: f64 = noise_im.planes[0]
            .chunks(128)
            .flat_map(|row| row.windows(2))
            .map(|w| (w[1] as f64 - w[0] as f64).abs())
            .sum::<f64>()
            / (128.0 * 127.0);
        assert!(
            grad * 2.0 < ngrad,
            "natural grad {grad} vs noise grad {ngrad}"
        );
    }

    #[test]
    fn rgb_channels_are_correlated() {
        let im = natural_rgb(64, 64, 9);
        let mean = |p: &[u16]| p.iter().map(|&v| v as f64).sum::<f64>() / p.len() as f64;
        let (mr, mg) = (mean(&im.planes[0]), mean(&im.planes[1]));
        let mut num = 0.0;
        let mut dr = 0.0;
        let mut dg = 0.0;
        for i in 0..im.planes[0].len() {
            let a = im.planes[0][i] as f64 - mr;
            let b = im.planes[1][i] as f64 - mg;
            num += a * b;
            dr += a * a;
            dg += b * b;
        }
        let corr = num / (dr.sqrt() * dg.sqrt());
        assert!(corr > 0.9, "R/G correlation {corr}");
    }

    #[test]
    fn simple_generators() {
        let f = flat(8, 8, 100);
        assert!(f.planes[0].iter().all(|&v| v == 100));
        let g = gradient(16, 16);
        assert!(g.planes[0][0] < g.planes[0][255]);
        let c = checkerboard(8, 8, 2);
        assert_ne!(c.planes[0][0], c.planes[0][2]);
        assert_eq!(c.planes[0][0], c.planes[0][4]);
    }

    #[test]
    fn paper_workload_dimensions() {
        // Don't generate the full 3072^2 in unit tests; just check the raw
        // size arithmetic it is documented to satisfy.
        let im = Image::new(3072, 3072, 3, 8).unwrap();
        let mb = im.raw_bytes() as f64 / (1024.0 * 1024.0);
        assert!((mb - 27.0).abs() < 0.1, "raw size {mb} MB"); // 3*3072^2 = 27 MiB = 28.3 MB decimal
    }
}
