//! MEL adaptive run-length coder (HTJ2K's low-entropy event coder).
//!
//! The MEL stream codes one binary event per context-0 quad: "does this
//! quad contain any significant sample?". Significance is rare in the
//! deep subbands, so the coder is a 13-state adaptive run-length scheme:
//! state `k` carries a run threshold `2^E[k]`; a completed run of
//! `2^E[k]` zero events emits a single `1` bit and moves to a longer
//! threshold, while a significant event emits `0` followed by `E[k]`
//! bits of the interrupted run's length and moves to a shorter one.
//! Throughput is the point: one branch and no table lookups per event,
//! versus the MQ coder's context fetch + probability update + renorm.

use crate::bitio::{BitReader, BitWriter};

/// Run-length exponents per adaptation state (threshold = `1 << E[k]`).
const E: [u32; 13] = [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4, 5];

/// MEL event encoder.
pub struct MelEncoder {
    out: BitWriter,
    k: usize,
    run: u32,
}

impl Default for MelEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl MelEncoder {
    pub fn new() -> Self {
        MelEncoder {
            out: BitWriter::new(),
            k: 0,
            run: 0,
        }
    }

    /// Code one event (`true` = significant quad).
    #[inline]
    pub fn encode(&mut self, one: bool) {
        let t = 1u32 << E[self.k];
        if !one {
            self.run += 1;
            if self.run == t {
                self.out.put_bit(1);
                self.run = 0;
                self.k = (self.k + 1).min(E.len() - 1);
            }
        } else {
            self.out.put_bit(0);
            self.out.put_bits(self.run, E[self.k] as usize);
            self.run = 0;
            self.k = self.k.saturating_sub(1);
        }
    }

    /// Flush: a partial final run is emitted as if it had completed; the
    /// decoder consumes only as many events as the quad walk demands, so
    /// the overhang is never observed.
    pub fn finish(mut self) -> Vec<u8> {
        if self.run > 0 {
            self.out.put_bit(1);
        }
        self.out.finish()
    }
}

/// MEL event decoder, mirroring [`MelEncoder`] state-for-state.
pub struct MelDecoder<'a> {
    inp: BitReader<'a>,
    k: usize,
    /// Buffered zero events not yet handed out.
    run: u32,
    /// A one event queued behind the buffered zeros.
    one_pending: bool,
}

impl<'a> MelDecoder<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        MelDecoder {
            inp: BitReader::new(data),
            k: 0,
            run: 0,
            one_pending: false,
        }
    }

    /// Decode one event (`true` = significant quad).
    #[inline]
    pub fn decode(&mut self) -> bool {
        loop {
            if self.run > 0 {
                self.run -= 1;
                return false;
            }
            if self.one_pending {
                self.one_pending = false;
                return true;
            }
            // Refill from the next codeword. Past the end of the buffer
            // the reader yields zeros, which decode as "run of zeros
            // then a one" — bounded, never a stall.
            if self.inp.bit() == 1 {
                self.run = 1 << E[self.k];
                self.k = (self.k + 1).min(E.len() - 1);
            } else {
                self.run = self.inp.bits(E[self.k] as usize);
                self.one_pending = true;
                self.k = self.k.saturating_sub(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn roundtrip(events: &[bool]) {
        let mut enc = MelEncoder::new();
        for &e in events {
            enc.encode(e);
        }
        let bytes = enc.finish();
        let mut dec = MelDecoder::new(&bytes);
        for (i, &e) in events.iter().enumerate() {
            assert_eq!(dec.decode(), e, "event {i} of {}", events.len());
        }
    }

    #[test]
    fn roundtrips_hand_patterns() {
        roundtrip(&[]);
        roundtrip(&[true]);
        roundtrip(&[false]);
        roundtrip(&[true; 40]);
        roundtrip(&[false; 1000]);
        let alternating: Vec<bool> = (0..257).map(|i| i % 2 == 0).collect();
        roundtrip(&alternating);
    }

    #[test]
    fn roundtrips_random_densities() {
        let mut rng = StdRng::seed_from_u64(7);
        for &density in &[0.01f64, 0.1, 0.5, 0.9] {
            for len in [1usize, 17, 256, 4096] {
                let ev: Vec<bool> = (0..len).map(|_| rng.gen_bool(density)).collect();
                roundtrip(&ev);
            }
        }
    }

    #[test]
    fn long_zero_runs_compress() {
        let mut enc = MelEncoder::new();
        for _ in 0..10_000 {
            enc.encode(false);
        }
        let bytes = enc.finish();
        // Fully adapted, 32 zeros cost one bit.
        assert!(bytes.len() < 10_000 / 32 + 16, "got {} bytes", bytes.len());
    }
}
