//! The HT block coder: one non-iterative quad cleanup pass over the
//! upper bit-planes, then raw significance/refinement passes for the
//! remaining low planes.
//!
//! ## Pass structure
//!
//! Let `num_planes` be the magnitude bit-plane count of the block and
//! `p_cup = min(2, num_planes - 1)`. The **cleanup pass** codes, in a
//! single pass over 2×2 quads, every sample's full magnitude above
//! plane `p_cup` — *all* upper bit-planes at once, in contrast to the
//! MQ coder's per-plane iteration. Below it, each plane `p_cup-1 .. 0`
//! contributes a raw **SigProp** pass (one bit per still-insignificant
//! sample, plus a sign on 1) and a raw **MagRef** pass (one bit per
//! already-significant sample), exactly the shape of the MQ coder's
//! lazy-mode bypass passes. Every pass is a separately terminated
//! segment, so the existing PCRD machinery truncates HT blocks at pass
//! boundaries just as it does MQ blocks; keeping all passes decodes
//! losslessly bit-for-bit.
//!
//! ## Cleanup segment layout
//!
//! ```text
//! [mel_len: u16 LE][vlc_len: u16 LE][MEL bytes][VLC bytes][MagSgn bytes]
//! ```
//!
//! Three independent forward bit-streams (the standard interleaves two
//! of them bidirectionally to save the length words; explicit lengths
//! keep the coder simple and cost at most 4 bytes per block):
//!
//! * **MEL** — adaptive run-length coded significance events for
//!   context-0 quads ([`crate::mel`]).
//! * **VLC** — significance patterns ([`crate::vlc`]), the quad
//!   exponent bound `u_q` (Elias-gamma) and per-sample exponent
//!   offsets `u_q - e_n` (unary).
//! * **MagSgn** — per significant sample: a sign bit then the
//!   `e_n - 1` magnitude bits below the implicit leading one.

use crate::bitio::{BitReader, BitWriter};
use crate::mel::{MelDecoder, MelEncoder};
use crate::vlc::{get_gamma, get_unary, put_gamma, put_unary, tables};
use ebcot::block::{EncodedBlock, PassInfo, PassType};

/// Decoder failure.
#[derive(Debug)]
pub enum HtError {
    /// The `ht.quad` failpoint injected this error (test/chaos builds).
    Injected(String),
    /// Structurally invalid HT segment data.
    Malformed(String),
}

impl std::fmt::Display for HtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HtError::Injected(m) => write!(f, "injected fault: {m}"),
            HtError::Malformed(m) => write!(f, "malformed HT block: {m}"),
        }
    }
}

impl std::error::Error for HtError {}

/// Cleanup-pass floor plane: everything at or above it is coded by the
/// quad pass, everything below by raw refinement passes.
#[inline]
pub fn cup_plane(num_planes: u8) -> u8 {
    num_planes.saturating_sub(1).min(2)
}

/// Sample scan order within a quad at (2qx, 2qy).
const QOFF: [(usize, usize); 4] = [(0, 0), (1, 0), (0, 1), (1, 1)];

/// Distortion-reduction estimate when a sample becomes significant at
/// plane `p` (same units as the MQ coder's estimate, so PCRD compares
/// HT and MQ blocks on one scale).
#[inline]
fn d_sig(p: u8) -> f64 {
    2.25 * f64::powi(4.0, i32::from(p))
}

/// Distortion-reduction estimate for one refinement bit at plane `p`.
#[inline]
fn d_ref(p: u8) -> f64 {
    0.25 * f64::powi(4.0, i32::from(p))
}

/// Encode one code block of signed quantizer indices with the HT coder.
///
/// Output is the same [`EncodedBlock`] shape the MQ coder produces, so
/// rate control, packet assembly and the cost model treat both coders
/// uniformly; `passes[i].symbols` counts HT work items (quads coded +
/// MagSgn emissions for the cleanup pass, samples visited for the raw
/// passes), which is what makes the coder's per-item cost comparable
/// across backends in `cellsim`.
pub fn encode_block(data: &[i32], w: usize, h: usize) -> EncodedBlock {
    assert_eq!(data.len(), w * h, "block data size");
    let mut span = obs::trace::span("tier1")
        .cat("block")
        .arg("w", w as u64)
        .arg("h", h as u64)
        .arg("coder", 1);
    let samples = (w * h) as u64;
    let mut meas = obs::counters::measure(
        obs::counters::Kernel::Tier1Ht,
        samples,
        samples * std::mem::size_of::<i32>() as u64,
    );
    let mags: Vec<u32> = data.iter().map(|&v| v.unsigned_abs()).collect();
    let max = mags.iter().copied().max().unwrap_or(0);
    let num_planes = (32 - max.leading_zeros()) as u8;
    let mut blk = EncodedBlock {
        data: Vec::new(),
        pass_ends: Vec::new(),
        passes: Vec::new(),
        num_planes,
        w,
        h,
    };
    if num_planes == 0 {
        span.set_arg("symbols", 0);
        return blk;
    }
    let p_cup = cup_plane(num_planes);

    // --- cleanup pass ---
    let (seg, dist, symbols) = cleanup_enc(data, &mags, w, h, p_cup);
    push_pass(&mut blk, seg, PassType::Cleanup, p_cup, dist, symbols);

    // --- raw refinement passes, one SigProp + MagRef pair per plane ---
    for plane in (0..p_cup).rev() {
        let (seg, dist, symbols) = sig_prop_enc(data, &mags, plane);
        push_pass(&mut blk, seg, PassType::SigProp, plane, dist, symbols);
        let (seg, dist, symbols) = mag_ref_enc(&mags, plane);
        push_pass(&mut blk, seg, PassType::MagRef, plane, dist, symbols);
    }

    span.set_arg("symbols", blk.total_symbols());
    meas.add_symbols(blk.total_symbols());
    blk
}

fn push_pass(
    blk: &mut EncodedBlock,
    seg: Vec<u8>,
    pt: PassType,
    plane: u8,
    dist: f64,
    symbols: u64,
) {
    blk.data.extend_from_slice(&seg);
    blk.pass_ends.push(blk.data.len());
    blk.passes.push(PassInfo {
        pass_type: pt,
        plane,
        rate_bytes: blk.data.len(),
        dist_reduction: dist,
        symbols,
    });
}

/// Context of the quad at (qx, qy): 1 when any already-coded neighbor
/// quad (left, above-left, above, above-right) held a significant
/// sample. Significance clusters; the split keeps MEL events rare-ish
/// and lets the VLC tables specialize.
#[inline]
fn quad_ctx(qsig: &[bool], qw: usize, qx: usize, qy: usize) -> usize {
    let left = qx > 0 && qsig[qy * qw + qx - 1];
    let up = qy > 0
        && (qsig[(qy - 1) * qw + qx]
            || (qx > 0 && qsig[(qy - 1) * qw + qx - 1])
            || (qx + 1 < qw && qsig[(qy - 1) * qw + qx + 1]));
    usize::from(left || up)
}

fn cleanup_enc(data: &[i32], mags: &[u32], w: usize, h: usize, p_cup: u8) -> (Vec<u8>, f64, u64) {
    let (qw, qh) = (w.div_ceil(2), h.div_ceil(2));
    let mut qsig = vec![false; qw * qh];
    let mut mel = MelEncoder::new();
    let mut vlc = BitWriter::new();
    let mut ms = BitWriter::new();
    let tabs = tables();
    let mut dist = 0.0f64;
    let mut symbols = 0u64;

    for qy in 0..qh {
        for qx in 0..qw {
            symbols += 1;
            // Gather the quad's significance pattern and exponents of
            // the magnitudes above the cleanup floor.
            let mut rho = 0u8;
            let mut es = [0u8; 4];
            for (i, &(dx, dy)) in QOFF.iter().enumerate() {
                let (x, y) = (2 * qx + dx, 2 * qy + dy);
                if x < w && y < h {
                    let m = mags[y * w + x] >> p_cup;
                    if m != 0 {
                        rho |= 1 << i;
                        es[i] = (32 - m.leading_zeros()) as u8;
                    }
                }
            }
            let ctx = quad_ctx(&qsig, qw, qx, qy);
            if ctx == 0 {
                mel.encode(rho != 0);
                if rho == 0 {
                    continue;
                }
                tabs[0].put(&mut vlc, rho);
            } else {
                tabs[1].put(&mut vlc, rho);
                if rho == 0 {
                    continue;
                }
            }
            qsig[qy * qw + qx] = true;
            let u_q = u32::from(*es.iter().max().unwrap());
            put_gamma(&mut vlc, u_q);
            for (i, &e) in es.iter().enumerate() {
                if rho & (1 << i) != 0 {
                    put_unary(&mut vlc, u_q - u32::from(e));
                }
            }
            for (i, &(dx, dy)) in QOFF.iter().enumerate() {
                if rho & (1 << i) == 0 {
                    continue;
                }
                let (x, y) = (2 * qx + dx, 2 * qy + dy);
                let full = mags[y * w + x];
                let m = full >> p_cup;
                let e = es[i];
                ms.put_bit(u32::from(data[y * w + x] < 0));
                ms.put_bits(m & !(1u32 << (e - 1)), usize::from(e - 1));
                symbols += 1;
                // PCRD estimate: becoming significant at the sample's top
                // plane, then one refinement per coded plane down to the
                // cleanup floor.
                let top = (31 - full.leading_zeros()) as u8;
                dist += d_sig(top);
                for p in p_cup..top {
                    dist += d_ref(p);
                }
            }
        }
    }

    let mel_bytes = mel.finish();
    let vlc_bytes = vlc.finish();
    let ms_bytes = ms.finish();
    assert!(mel_bytes.len() <= u16::MAX as usize && vlc_bytes.len() <= u16::MAX as usize);
    let mut seg = Vec::with_capacity(4 + mel_bytes.len() + vlc_bytes.len() + ms_bytes.len());
    seg.extend_from_slice(&(mel_bytes.len() as u16).to_le_bytes());
    seg.extend_from_slice(&(vlc_bytes.len() as u16).to_le_bytes());
    seg.extend_from_slice(&mel_bytes);
    seg.extend_from_slice(&vlc_bytes);
    seg.extend_from_slice(&ms_bytes);
    (seg, dist, symbols)
}

/// Raw significance pass at `plane`: one bit per sample whose magnitude
/// has no coded bit above `plane` yet, plus a sign bit after each 1.
fn sig_prop_enc(data: &[i32], mags: &[u32], plane: u8) -> (Vec<u8>, f64, u64) {
    let mut w = BitWriter::new();
    let mut dist = 0.0f64;
    let mut symbols = 0u64;
    for (i, &m) in mags.iter().enumerate() {
        if m >> (plane + 1) != 0 {
            continue; // already significant
        }
        symbols += 1;
        let bit = (m >> plane) & 1;
        w.put_bit(bit);
        if bit == 1 {
            w.put_bit(u32::from(data[i] < 0));
            dist += d_sig(plane);
        }
    }
    (w.finish(), dist, symbols)
}

/// Raw refinement pass at `plane`: one bit per already-significant
/// sample.
fn mag_ref_enc(mags: &[u32], plane: u8) -> (Vec<u8>, f64, u64) {
    let mut w = BitWriter::new();
    let mut dist = 0.0f64;
    let mut symbols = 0u64;
    for &m in mags {
        if m >> (plane + 1) == 0 {
            continue;
        }
        symbols += 1;
        w.put_bit((m >> plane) & 1);
        dist += d_ref(plane);
    }
    (w.finish(), dist, symbols)
}

/// Decode the first `num_passes` passes of a block coded by
/// [`encode_block`]. Mirrors `ebcot::block::decode_block`'s contract:
/// `pass_ends` are per-pass segment ends (possibly truncated), and
/// `midpoint` selects lossy mid-interval reconstruction; exact
/// reconstruction needs all passes and `midpoint = false`.
pub fn decode_block(
    data: &[u8],
    pass_ends: &[usize],
    num_passes: usize,
    w: usize,
    h: usize,
    num_planes: u8,
    midpoint: bool,
) -> Result<Vec<i32>, HtError> {
    if num_planes == 0 || num_passes == 0 {
        return Ok(vec![0; w * h]);
    }
    let p_cup = cup_plane(num_planes);
    let mut mags = vec![0u32; w * h];
    let mut neg = vec![false; w * h];

    // Deterministic pass sequence, exactly as the encoder emits it.
    let mut seq: Vec<(PassType, u8)> = vec![(PassType::Cleanup, p_cup)];
    for plane in (0..p_cup).rev() {
        seq.push((PassType::SigProp, plane));
        seq.push((PassType::MagRef, plane));
    }

    let mut seg_start = 0usize;
    let mut last_plane = p_cup;
    for (idx, &(pt, plane)) in seq.iter().take(num_passes).enumerate() {
        let seg_end = *pass_ends
            .get(idx)
            .ok_or_else(|| HtError::Malformed("missing pass segment length".into()))?;
        if seg_end < seg_start || seg_end > data.len() {
            return Err(HtError::Malformed(format!(
                "pass segment [{seg_start}, {seg_end}) outside {} data bytes",
                data.len()
            )));
        }
        let seg = &data[seg_start..seg_end];
        match pt {
            PassType::Cleanup => cleanup_dec(seg, w, h, p_cup, num_planes, &mut mags, &mut neg)?,
            PassType::SigProp => sig_prop_dec(seg, plane, &mut mags, &mut neg),
            PassType::MagRef => mag_ref_dec(seg, plane, &mut mags),
        }
        last_plane = plane;
        seg_start = seg_end;
    }

    let half = if midpoint && last_plane > 0 {
        1u32 << (last_plane - 1)
    } else {
        0
    };
    Ok((0..w * h)
        .map(|i| {
            let m = mags[i];
            if m == 0 {
                0
            } else {
                let v = (m + half) as i32;
                if neg[i] {
                    -v
                } else {
                    v
                }
            }
        })
        .collect())
}

fn cleanup_dec(
    seg: &[u8],
    w: usize,
    h: usize,
    p_cup: u8,
    num_planes: u8,
    mags: &mut [u32],
    neg: &mut [bool],
) -> Result<(), HtError> {
    if seg.len() < 4 {
        return Err(HtError::Malformed(
            "cleanup segment shorter than header".into(),
        ));
    }
    let mel_len = u16::from_le_bytes([seg[0], seg[1]]) as usize;
    let vlc_len = u16::from_le_bytes([seg[2], seg[3]]) as usize;
    if 4 + mel_len + vlc_len > seg.len() {
        return Err(HtError::Malformed(format!(
            "cleanup sub-stream lengths {mel_len}+{vlc_len} exceed segment of {}",
            seg.len()
        )));
    }
    let mut mel = MelDecoder::new(&seg[4..4 + mel_len]);
    let mut vlc = BitReader::new(&seg[4 + mel_len..4 + mel_len + vlc_len]);
    let mut ms = BitReader::new(&seg[4 + mel_len + vlc_len..]);
    let tabs = tables();

    let (qw, qh) = (w.div_ceil(2), h.div_ceil(2));
    let mut qsig = vec![false; qw * qh];
    for qy in 0..qh {
        for qx in 0..qw {
            if let Some(msg) = faultsim::eval("ht.quad") {
                return Err(HtError::Injected(msg));
            }
            let ctx = quad_ctx(&qsig, qw, qx, qy);
            let rho = if ctx == 0 {
                if !mel.decode() {
                    continue;
                }
                tabs[0]
                    .get(&mut vlc)
                    .ok_or_else(|| HtError::Malformed("VLC hole (ctx 0)".into()))?
            } else {
                let r = tabs[1]
                    .get(&mut vlc)
                    .ok_or_else(|| HtError::Malformed("VLC hole (ctx 1)".into()))?;
                if r == 0 {
                    continue;
                }
                r
            };
            if rho == 0 {
                // MEL said significant but the pattern claims empty: the
                // encoder never writes this (ctx-0 table has no 0 entry),
                // so only corruption can reach here.
                return Err(HtError::Malformed("empty pattern after MEL hit".into()));
            }
            qsig[qy * qw + qx] = true;
            let u_q =
                get_gamma(&mut vlc).ok_or_else(|| HtError::Malformed("bad u_q gamma".into()))?;
            if u_q > u32::from(num_planes - p_cup) {
                return Err(HtError::Malformed(format!(
                    "quad exponent {u_q} exceeds plane budget {}",
                    num_planes - p_cup
                )));
            }
            for (i, &(dx, dy)) in QOFF.iter().enumerate() {
                if rho & (1 << i) == 0 {
                    continue;
                }
                let (x, y) = (2 * qx + dx, 2 * qy + dy);
                if x >= w || y >= h {
                    return Err(HtError::Malformed(
                        "significant sample outside block".into(),
                    ));
                }
                let r = get_unary(&mut vlc, u_q)
                    .ok_or_else(|| HtError::Malformed("bad exponent offset".into()))?;
                if r >= u_q {
                    return Err(HtError::Malformed(
                        "exponent offset consumes exponent".into(),
                    ));
                }
                let e = u_q - r;
                let sign = ms.bit();
                let rest = ms.bits((e - 1) as usize);
                let m = (1u32 << (e - 1)) | rest;
                mags[y * w + x] = m << p_cup;
                neg[y * w + x] = sign == 1;
            }
        }
    }
    Ok(())
}

fn sig_prop_dec(seg: &[u8], plane: u8, mags: &mut [u32], neg: &mut [bool]) {
    let mut r = BitReader::new(seg);
    for i in 0..mags.len() {
        if mags[i] >> (plane + 1) != 0 {
            continue;
        }
        if r.bit() == 1 {
            mags[i] |= 1 << plane;
            neg[i] = r.bit() == 1;
        }
    }
}

fn mag_ref_dec(seg: &[u8], plane: u8, mags: &mut [u32]) {
    let mut r = BitReader::new(seg);
    for m in mags.iter_mut() {
        if *m >> (plane + 1) == 0 {
            continue;
        }
        *m |= r.bit() << plane;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn roundtrip_exact(data: &[i32], w: usize, h: usize) {
        let enc = encode_block(data, w, h);
        let back = decode_block(
            &enc.data,
            &enc.pass_ends,
            enc.passes.len(),
            w,
            h,
            enc.num_planes,
            false,
        )
        .expect("decode");
        assert_eq!(back, data, "{w}x{h} planes={}", enc.num_planes);
    }

    #[test]
    fn zero_block_is_empty() {
        let enc = encode_block(&[0; 12], 4, 3);
        assert_eq!(enc.num_planes, 0);
        assert!(enc.data.is_empty() && enc.passes.is_empty());
        let back = decode_block(&[], &[], 0, 4, 3, 0, false).unwrap();
        assert_eq!(back, vec![0; 12]);
    }

    #[test]
    fn pass_structure_matches_contract() {
        // 1 plane: cleanup only. 2 planes: cleanup + one SPP/MRP pair.
        // >= 3 planes: cleanup + two pairs, never more.
        let one = encode_block(&[1, 0, -1, 1], 2, 2);
        assert_eq!(one.passes.len(), 1);
        assert_eq!(one.passes[0].plane, 0);
        let two = encode_block(&[3, 0, -2, 1], 2, 2);
        assert_eq!(two.passes.len(), 3);
        let deep = encode_block(&[1000, -3, 77, 1], 2, 2);
        assert_eq!(deep.passes.len(), 5);
        assert_eq!(deep.passes[0].pass_type, PassType::Cleanup);
        assert_eq!(deep.passes[0].plane, 2);
    }

    #[test]
    fn roundtrips_shapes_and_depths() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(w, h) in &[
            (1usize, 1usize),
            (2, 2),
            (3, 5),
            (8, 8),
            (64, 1),
            (1, 64),
            (17, 9),
            (64, 64),
        ] {
            for &amp in &[1i32, 3, 255, 4095, 1 << 20] {
                let data: Vec<i32> = (0..w * h).map(|_| rng.gen_range(-amp..=amp)).collect();
                roundtrip_exact(&data, w, h);
            }
        }
    }

    #[test]
    fn roundtrips_sparse_blocks() {
        let mut rng = StdRng::seed_from_u64(9);
        for density in [0.0f64, 0.01, 0.1] {
            let (w, h) = (32usize, 24usize);
            let data: Vec<i32> = (0..w * h)
                .map(|_| {
                    if rng.gen_bool(density) {
                        rng.gen_range(-100_000i32..=100_000)
                    } else {
                        0
                    }
                })
                .collect();
            roundtrip_exact(&data, w, h);
        }
    }

    #[test]
    fn truncation_at_pass_boundaries_is_clean() {
        let mut rng = StdRng::seed_from_u64(5);
        let (w, h) = (16usize, 16usize);
        let data: Vec<i32> = (0..w * h).map(|_| rng.gen_range(-5000i32..=5000)).collect();
        let enc = encode_block(&data, w, h);
        assert!(enc.passes.len() >= 3);
        let full = decode_block(
            &enc.data,
            &enc.pass_ends,
            enc.passes.len(),
            w,
            h,
            enc.num_planes,
            false,
        )
        .unwrap();
        assert_eq!(full, data);
        // Every truncation decodes; per-sample error is bounded by the
        // uncertainty interval of the last decoded plane (midpoint
        // reconstruction halves the interval, so the bound tightens as
        // passes are added even though individual samples may wobble).
        for n in 1..=enc.passes.len() {
            let part = decode_block(
                &enc.data[..enc.bytes_for_passes(n)],
                &enc.pass_ends,
                n,
                w,
                h,
                enc.num_planes,
                true,
            )
            .unwrap();
            let last_plane = enc.passes[n - 1].plane;
            let bound = f64::from(1u32 << last_plane);
            for (i, (&a, &b)) in data.iter().zip(&part).enumerate() {
                let err = (f64::from(a) - f64::from(b)).abs();
                assert!(
                    err <= bound,
                    "sample {i}: |{a} - {b}| > {bound} after {n} passes"
                );
            }
        }
    }

    #[test]
    fn corrupt_streams_error_or_decode_never_panic() {
        let mut rng = StdRng::seed_from_u64(11);
        let (w, h) = (13usize, 7usize);
        let data: Vec<i32> = (0..w * h).map(|_| rng.gen_range(-900i32..=900)).collect();
        let enc = encode_block(&data, w, h);
        for _ in 0..500 {
            let mut d = enc.data.clone();
            let i = rng.gen_range(0..d.len());
            d[i] ^= 1 << rng.gen_range(0..8u32);
            // Must return (Ok with some values, or a typed error) —
            // never panic, never loop.
            let _ = decode_block(
                &d,
                &enc.pass_ends,
                enc.passes.len(),
                w,
                h,
                enc.num_planes,
                false,
            );
        }
    }

    #[test]
    fn rate_is_sane_on_natural_like_data() {
        // Smooth content: HT's rate premium over MQ is meant to be
        // small; at minimum the coder must beat raw sign-magnitude.
        let (w, h) = (64usize, 64usize);
        let data: Vec<i32> = (0..w * h)
            .map(|i| {
                let (x, y) = ((i % w) as f64, (i / w) as f64);
                ((x * 0.3).sin() * 40.0 + (y * 0.2).cos() * 30.0) as i32
            })
            .collect();
        let enc = encode_block(&data, w, h);
        assert!(
            enc.data.len() < w * h * 2,
            "{} bytes for {} samples",
            enc.data.len(),
            w * h
        );
        roundtrip_exact(&data, w, h);
    }
}
