//! MSB-first bit packing for the HT segment streams.
//!
//! All three cleanup sub-streams (MEL, VLC, MagSgn) and the raw
//! refinement passes pack bits most-significant-bit first into whole
//! bytes, with zero padding at the end. Unlike the standard's MagSgn
//! byte-stuffing rules, no `0xFF` avoidance is needed here: every pass
//! segment's byte length travels explicitly in the packet headers
//! (TERMALL-style), so the decoder never scans for marker bytes.

/// MSB-first bit writer.
#[derive(Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn put_bit(&mut self, bit: u32) {
        debug_assert!(bit <= 1);
        self.acc = (self.acc << 1) | bit;
        self.nbits += 1;
        if self.nbits == 8 {
            self.buf.push(self.acc as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Write the low `n` bits of `v`, most significant first (`n <= 32`).
    #[inline]
    pub fn put_bits(&mut self, v: u32, n: usize) {
        for i in (0..n).rev() {
            self.put_bit((v >> i) & 1);
        }
    }

    /// Bits written so far (before padding).
    pub fn len_bits(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Pad the final partial byte with zeros and return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.buf.push((self.acc << (8 - self.nbits)) as u8);
        }
        self.buf
    }
}

/// MSB-first bit reader. Reads past the end yield zero bits — the
/// decoder's structural validation (exponent bounds, LUT holes) turns
/// trailing garbage into a typed error rather than a panic.
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    #[inline]
    pub fn bit(&mut self) -> u32 {
        let b = self.peek(1);
        self.pos += 1;
        b
    }

    /// Read `n` bits MSB first (`n <= 32`).
    #[inline]
    pub fn bits(&mut self, n: usize) -> u32 {
        let v = self.peek(n);
        self.pos += n;
        v
    }

    /// Look at the next `n` bits without consuming (zero-padded past
    /// the end of the buffer).
    #[inline]
    pub fn peek(&self, n: usize) -> u32 {
        let mut v = 0u32;
        for i in 0..n {
            let p = self.pos + i;
            let byte = self.data.get(p / 8).copied().unwrap_or(0);
            v = (v << 1) | u32::from((byte >> (7 - p % 8)) & 1);
        }
        v
    }

    #[inline]
    pub fn skip(&mut self, n: usize) {
        self.pos += n;
    }

    /// True once reads have gone past the last real byte.
    pub fn overrun(&self) -> bool {
        self.pos > self.data.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip_msb_first() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bit(1);
        w.put_bits(0x5a, 8);
        w.put_bits(3, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(4), 0b1011);
        assert_eq!(r.bit(), 1);
        assert_eq!(r.bits(8), 0x5a);
        assert_eq!(r.bits(2), 3);
        assert!(!r.overrun());
    }

    #[test]
    fn reads_past_end_are_zero() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.bits(8), 0xff);
        assert_eq!(r.bits(5), 0);
        assert!(r.overrun());
    }

    #[test]
    fn padding_is_zeros() {
        let mut w = BitWriter::new();
        w.put_bits(0b111, 3);
        assert_eq!(w.finish(), vec![0b1110_0000]);
    }
}
