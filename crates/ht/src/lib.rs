//! `j2k-ht` — an HTJ2K-style (ISO/IEC 15444-15 shaped) high-throughput
//! Tier-1 block coder.
//!
//! The MQ bit-plane coder iterates three context-modeled passes per bit
//! plane, serializing on the arithmetic coder's state at every decision.
//! Part 15's answer — reproduced here in the repo's own codestream
//! container — codes **all upper bit-planes in one non-iterative cleanup
//! pass** over 2×2 sample quads, split across three simple streams:
//!
//! * [`mel`] — adaptive run-length significance events (context-0 quads);
//! * [`vlc`] — context-dependent significance patterns + exponents;
//! * MagSgn — raw sign + magnitude-below-MSB bits ([`block`]).
//!
//! Low planes are finished by raw SigProp/MagRef passes (the MQ coder's
//! lazy-mode shape), so rate control keeps real truncation points and a
//! full decode is lossless, while the per-sample work drops from tens of
//! MQ decisions to a handful of branch-light bit operations.
//!
//! The coder produces the same [`ebcot::block::EncodedBlock`] the MQ
//! coder does and is selected per encode through `j2k-core`'s
//! `BlockCoder` registry.

pub mod bitio;
pub mod block;
pub mod mel;
pub mod vlc;

pub use block::{cup_plane, decode_block, encode_block, HtError};
