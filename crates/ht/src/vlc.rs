//! CxtVLC — context-dependent variable-length coding of quad
//! significance patterns, plus the exponent side-information (`u_q`
//! Elias-gamma, per-sample unary offsets) that rides in the same
//! bit-stream.
//!
//! A quad's significance pattern `rho` is 4 bits (one per sample, scan
//! order (0,0),(1,0),(0,1),(1,1)). Two canonical prefix-code tables are
//! selected by the quad context:
//!
//! * context 0 (no significant coded neighbor quad): the MEL coder has
//!   already said "some sample is significant", so `rho != 0`. Singles
//!   are by far the most likely — 3 bits; pairs 5; triples and the full
//!   quad 6.
//! * context 1 (a coded neighbor quad is significant): all 16 patterns
//!   occur; significance clusters, so the empty pattern is short (2
//!   bits) and dense patterns are cheaper than in context 0.
//!
//! Both tables satisfy the Kraft inequality with slack (checked by a
//! unit test) and have a maximum codeword length of 6 bits, so decoding
//! is a single 64-entry table lookup on a 6-bit peek.

use crate::bitio::{BitReader, BitWriter};

/// Maximum codeword length across both tables.
pub const MAX_LEN: usize = 6;

/// One canonical prefix-code table over the 16 quad patterns.
pub struct VlcTable {
    /// Codeword length per pattern (0 = pattern unused in this context).
    pub len: [u8; 16],
    /// Right-aligned codeword bits per pattern.
    pub code: [u16; 16],
    /// Decode LUT over a 6-bit peek: `(pattern, length)`; length 0
    /// marks a hole (no codeword has this prefix).
    lut: [(u8, u8); 1 << MAX_LEN],
}

impl VlcTable {
    /// Build the canonical code for the given length assignment:
    /// codewords are assigned in (length, pattern) order, which makes
    /// the code prefix-free whenever the lengths satisfy Kraft.
    fn build(len: [u8; 16]) -> VlcTable {
        let mut syms: Vec<u8> = (0u8..16).filter(|&s| len[s as usize] > 0).collect();
        syms.sort_by_key(|&s| (len[s as usize], s));
        let mut code = [0u16; 16];
        let mut next = 0u16;
        let mut prev = len[syms[0] as usize];
        for &s in &syms {
            let l = len[s as usize];
            next <<= l - prev;
            code[s as usize] = next;
            next += 1;
            prev = l;
        }
        let mut lut = [(0u8, 0u8); 1 << MAX_LEN];
        for &s in &syms {
            let l = len[s as usize] as usize;
            let base = (code[s as usize] as usize) << (MAX_LEN - l);
            for pad in 0..(1usize << (MAX_LEN - l)) {
                lut[base | pad] = (s, l as u8);
            }
        }
        VlcTable { len, code, lut }
    }

    /// Emit the codeword for `rho`.
    #[inline]
    pub fn put(&self, w: &mut BitWriter, rho: u8) {
        let l = self.len[rho as usize];
        debug_assert!(l > 0, "pattern {rho} unused in this context");
        w.put_bits(u32::from(self.code[rho as usize]), l as usize);
    }

    /// Decode one pattern; `None` on a prefix that matches no codeword
    /// (corrupt stream).
    #[inline]
    pub fn get(&self, r: &mut BitReader<'_>) -> Option<u8> {
        let (sym, l) = self.lut[r.peek(MAX_LEN) as usize];
        if l == 0 {
            return None;
        }
        r.skip(l as usize);
        Some(sym)
    }
}

fn popcount4(rho: u8) -> u32 {
    (rho & 0xf).count_ones()
}

fn lengths_for_ctx(ctx: usize) -> [u8; 16] {
    let mut len = [0u8; 16];
    for rho in 0u8..16 {
        len[rho as usize] = match (ctx, popcount4(rho)) {
            (0, 0) => 0, // impossible: MEL already coded "significant"
            (0, 1) => 3,
            (0, 2) => 5,
            (0, 3) => 6,
            (0, 4) => 6,
            (1, 0) => 2,
            (1, 1) => 4,
            (1, 2) => 5,
            (1, 3) => 5,
            (1, 4) => 5,
            _ => unreachable!(),
        };
    }
    len
}

/// The two context tables, built once.
pub fn tables() -> &'static [VlcTable; 2] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[VlcTable; 2]> = OnceLock::new();
    TABLES.get_or_init(|| {
        [
            VlcTable::build(lengths_for_ctx(0)),
            VlcTable::build(lengths_for_ctx(1)),
        ]
    })
}

/// Elias-gamma code for `v >= 1`: `b-1` zeros then the `b` bits of `v`
/// (MSB first), where `b = bit-length(v)`.
#[inline]
pub fn put_gamma(w: &mut BitWriter, v: u32) {
    debug_assert!(v >= 1);
    let b = 32 - v.leading_zeros();
    w.put_bits(0, (b - 1) as usize);
    w.put_bits(v, b as usize);
}

/// Decode an Elias-gamma value; `None` if the prefix of zeros is
/// implausibly long (corrupt or truncated stream).
#[inline]
pub fn get_gamma(r: &mut BitReader<'_>) -> Option<u32> {
    let mut zeros = 0u32;
    while r.bit() == 0 {
        zeros += 1;
        if zeros > 31 {
            return None;
        }
    }
    let mut v = 1u32;
    for _ in 0..zeros {
        v = (v << 1) | r.bit();
    }
    Some(v)
}

/// Unary code for `v`: `v` ones then a zero.
#[inline]
pub fn put_unary(w: &mut BitWriter, v: u32) {
    for _ in 0..v {
        w.put_bit(1);
    }
    w.put_bit(0);
}

/// Decode a unary value with an upper bound (`None` past `cap`).
#[inline]
pub fn get_unary(r: &mut BitReader<'_>, cap: u32) -> Option<u32> {
    let mut v = 0u32;
    while r.bit() == 1 {
        v += 1;
        if v > cap {
            return None;
        }
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_tables_satisfy_kraft() {
        for ctx in 0..2 {
            let len = lengths_for_ctx(ctx);
            let kraft: f64 = len
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| f64::powi(0.5, i32::from(l)))
                .sum();
            assert!(kraft <= 1.0 + 1e-12, "ctx {ctx} kraft {kraft}");
            // And every usable pattern has a codeword.
            for rho in 0u8..16 {
                let used = !(ctx == 0 && rho == 0);
                assert_eq!(len[rho as usize] > 0, used, "ctx {ctx} rho {rho}");
            }
        }
    }

    #[test]
    fn codewords_roundtrip_and_are_prefix_free() {
        for (ctx, t) in tables().iter().enumerate() {
            let start: u8 = if ctx == 0 { 1 } else { 0 };
            let mut w = BitWriter::new();
            for rho in start..16 {
                t.put(&mut w, rho);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for rho in start..16 {
                assert_eq!(t.get(&mut r), Some(rho), "ctx {ctx}");
            }
        }
    }

    #[test]
    fn gamma_and_unary_roundtrip() {
        let mut w = BitWriter::new();
        for v in 1..40u32 {
            put_gamma(&mut w, v);
        }
        for v in 0..12u32 {
            put_unary(&mut w, v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for v in 1..40u32 {
            assert_eq!(get_gamma(&mut r), Some(v));
        }
        for v in 0..12u32 {
            assert_eq!(get_unary(&mut r, 32), Some(v));
        }
    }

    #[test]
    fn corrupt_prefixes_are_rejected() {
        // A context-0 stream starting with the all-ones hole (no 6-bit
        // codeword is 111111 in either table's canonical assignment at
        // full Kraft slack) must return None rather than alias.
        let bytes = [0xff, 0xff];
        // ctx0's deepest codeword ends well before 0b111111 (Kraft 0.766),
        // so the all-ones prefix is a hole in both tables.
        assert_eq!(tables()[0].get(&mut BitReader::new(&bytes)), None);
        assert_eq!(tables()[1].get(&mut BitReader::new(&bytes)), None);
        // An all-zero gamma prefix never terminates within 32 bits.
        assert_eq!(get_gamma(&mut BitReader::new(&[0u8; 5])), None);
    }
}
