//! Multi-window burn-rate SLO evaluation over cumulative good/total
//! event counts.
//!
//! The model is the SRE-workbook alerting scheme: an SLO promises that
//! a fraction `objective` of events are *good* (e.g. 99% of completed
//! jobs finish under the latency threshold). The **error budget** is
//! `1 - objective`; the **burn rate** over a trailing window is
//!
//! ```text
//! burn = bad_fraction(window) / (1 - objective)
//! ```
//!
//! so `burn == 1` consumes the budget exactly at the sustainable pace,
//! and `burn == 14.4` over a 5-minute window exhausts a 30-day budget
//! in ~2 days. A breach fires only when **every** configured window
//! exceeds its threshold — the short window proves the problem is
//! happening *now*, the long window proves it is not a blip (the
//! classic fast+slow AND).
//!
//! The monitor consumes *cumulative* counters (monotone `good`/`total`
//! pairs, exactly what [`crate::hist::HistogramSnapshot`]s and service
//! counters provide) and keeps a bounded ring of timestamped
//! observations; window deltas come from the ring, so the caller only
//! has to call [`SloMonitor::observe`] on its natural sampling cadence
//! (health probes, metric scrapes). Time is an explicit `now_ms`
//! parameter — deterministic in tests, monotonic-clock-driven in the
//! daemon.

use crate::hist::{bucket_upper, HistogramSnapshot};
use std::collections::VecDeque;

/// One trailing evaluation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Window length in seconds.
    pub secs: u64,
    /// Burn rate at or above which this window votes breach.
    pub burn_threshold: f64,
}

/// What an SLO promises: `objective` of events are good.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Series name (`latency_p99`, `error_rate`, ...): the Prometheus
    /// `slo` label and Health field prefix.
    pub name: String,
    /// Promised good fraction in `(0, 1)`, e.g. `0.99`.
    pub objective: f64,
}

/// Burn state of one window at evaluation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStatus {
    /// The window's length in seconds.
    pub secs: u64,
    /// Events inside the window.
    pub total: u64,
    /// Bad events inside the window.
    pub bad: u64,
    /// Burn rate (`bad/total / (1-objective)`; 0 with no events).
    pub burn_rate: f64,
    /// Whether this window's burn is at/above its threshold.
    pub burning: bool,
}

/// Evaluation result across every window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The spec's name.
    pub name: String,
    /// Per-window burn states, in configuration order.
    pub windows: Vec<WindowStatus>,
    /// True when **all** windows are burning (the page condition).
    pub breached: bool,
}

/// Multi-window burn-rate monitor over one SLO.
#[derive(Debug)]
pub struct SloMonitor {
    spec: SloSpec,
    windows: Vec<Window>,
    /// (now_ms, cumulative good, cumulative total), oldest first.
    ring: VecDeque<(u64, u64, u64)>,
    horizon_ms: u64,
}

impl SloMonitor {
    /// A monitor for `spec` over `windows` (at least one; the longest
    /// window bounds ring retention).
    pub fn new(spec: SloSpec, windows: Vec<Window>) -> SloMonitor {
        assert!(!windows.is_empty(), "an SLO needs at least one window");
        assert!(
            spec.objective > 0.0 && spec.objective < 1.0,
            "objective must be in (0,1), got {}",
            spec.objective
        );
        let horizon_ms = windows.iter().map(|w| w.secs).max().unwrap_or(0) * 1000;
        SloMonitor {
            spec,
            windows,
            ring: VecDeque::new(),
            horizon_ms,
        }
    }

    /// The monitored spec.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Feed one observation of the *cumulative* good/total counters at
    /// `now_ms`. Out-of-order or counter-reset observations are clamped
    /// monotone rather than corrupting window deltas.
    pub fn observe(&mut self, now_ms: u64, good: u64, total: u64) {
        if let Some(&(last_ms, last_good, last_total)) = self.ring.back() {
            if now_ms < last_ms || good < last_good || total < last_total {
                return;
            }
        }
        self.ring.push_back((now_ms, good, total));
        // Retain one observation older than the horizon so the longest
        // window always has a baseline to delta against.
        while self.ring.len() > 1 {
            let second_oldest = self.ring[1].0;
            if now_ms.saturating_sub(second_oldest) >= self.horizon_ms {
                self.ring.pop_front();
            } else {
                break;
            }
        }
    }

    /// Evaluate every window's burn at `now_ms` against the ring.
    pub fn evaluate(&self, now_ms: u64) -> SloStatus {
        let budget = 1.0 - self.spec.objective;
        let newest = self.ring.back().copied().unwrap_or((now_ms, 0, 0));
        let windows: Vec<WindowStatus> = self
            .windows
            .iter()
            .map(|w| {
                let start = now_ms.saturating_sub(w.secs * 1000);
                // Baseline: the newest observation at or before the
                // window start (falling back to the oldest retained).
                let base = self
                    .ring
                    .iter()
                    .rev()
                    .find(|&&(t, _, _)| t <= start)
                    .or(self.ring.front())
                    .copied()
                    .unwrap_or((now_ms, 0, 0));
                let total = newest.2.saturating_sub(base.2);
                let good = newest.1.saturating_sub(base.1);
                let bad = total.saturating_sub(good);
                let burn_rate = if total == 0 {
                    0.0
                } else {
                    (bad as f64 / total as f64) / budget
                };
                WindowStatus {
                    secs: w.secs,
                    total,
                    bad,
                    burn_rate,
                    burning: total > 0 && burn_rate >= w.burn_threshold,
                }
            })
            .collect();
        let breached = !windows.is_empty() && windows.iter().all(|w| w.burning);
        SloStatus {
            name: self.spec.name.clone(),
            windows,
            breached,
        }
    }
}

/// Good-event count for a latency SLO read off a log₂ histogram: the
/// samples whose bucket upper bound is `<= threshold`. Conservative by
/// at most one bucket (≤ 2× relative threshold error) — the same
/// coarseness the histogram's percentiles carry, documented in
/// DESIGN.md §17.
pub fn good_below(snap: &HistogramSnapshot, threshold: u64) -> u64 {
    snap.buckets
        .iter()
        .enumerate()
        .take_while(|&(i, _)| bucket_upper(i) <= threshold)
        .map(|(_, &n)| n)
        .sum()
}

/// The default fast+slow window pair (5 min at 14.4x, 1 h at 6x): the
/// SRE-workbook page thresholds for a 30-day budget.
pub fn default_windows() -> Vec<Window> {
    vec![
        Window {
            secs: 300,
            burn_threshold: 14.4,
        },
        Window {
            secs: 3600,
            burn_threshold: 6.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn monitor(objective: f64, windows: Vec<Window>) -> SloMonitor {
        SloMonitor::new(
            SloSpec {
                name: "t".into(),
                objective,
            },
            windows,
        )
    }

    #[test]
    fn healthy_traffic_never_breaches() {
        let mut m = monitor(0.99, default_windows());
        // 1% bad is exactly the objective: burn == 1 < both thresholds.
        for t in 0..120u64 {
            m.observe(t * 60_000, 990 * (t + 1), 1000 * (t + 1));
        }
        let st = m.evaluate(120 * 60_000);
        assert!(!st.breached, "{st:?}");
        for w in &st.windows {
            assert!(w.burn_rate <= 1.01, "{w:?}");
        }
    }

    #[test]
    fn sustained_total_failure_breaches_all_windows() {
        let mut m = monitor(0.99, default_windows());
        // 2 hours of 100% bad events: burn = 1/0.01 = 100x everywhere.
        for t in 0..=120u64 {
            m.observe(t * 60_000, 0, 100 * (t + 1));
        }
        let st = m.evaluate(120 * 60_000);
        assert!(st.breached, "{st:?}");
        for w in &st.windows {
            assert!(w.burning, "{w:?}");
            assert!((w.burn_rate - 100.0).abs() < 1e-9, "{w:?}");
        }
    }

    #[test]
    fn short_blip_fails_the_long_window_vote() {
        let mut m = monitor(0.99, default_windows());
        // 59 healthy minutes, then one terrible minute: the 5-minute
        // window burns but the 1-hour window absorbs it (fast+slow AND).
        let mut good = 0u64;
        let mut total = 0u64;
        for t in 0..59u64 {
            good += 1000;
            total += 1000;
            m.observe(t * 60_000, good, total);
        }
        total += 1000; // 1000 bad events, no good ones
        m.observe(59 * 60_000, good, total);
        let st = m.evaluate(59 * 60_000);
        assert!(st.windows[0].burning, "fast window sees the blip: {st:?}");
        assert!(!st.windows[1].burning, "slow window absorbs it: {st:?}");
        assert!(!st.breached);
    }

    #[test]
    fn no_events_means_no_burn() {
        let m = monitor(0.999, default_windows());
        let st = m.evaluate(10_000_000);
        assert!(!st.breached);
        assert!(st.windows.iter().all(|w| w.burn_rate == 0.0 && !w.burning));
    }

    #[test]
    fn non_monotone_observations_are_dropped() {
        let mut m = monitor(
            0.99,
            vec![Window {
                secs: 60,
                burn_threshold: 1.0,
            }],
        );
        m.observe(1000, 10, 10);
        m.observe(500, 0, 0); // time going backwards
        m.observe(2000, 5, 20); // good counter reset
        assert_eq!(m.ring.len(), 1);
        m.observe(2000, 10, 20);
        assert_eq!(m.ring.len(), 2);
    }

    #[test]
    fn ring_is_bounded_by_the_horizon() {
        let mut m = monitor(
            0.99,
            vec![Window {
                secs: 10,
                burn_threshold: 1.0,
            }],
        );
        for t in 0..1000u64 {
            m.observe(t * 1000, t, t);
        }
        // Horizon is 10s: one in-horizon observation per second plus one
        // pre-horizon baseline.
        assert!(m.ring.len() <= 12, "ring len {}", m.ring.len());
    }

    #[test]
    fn good_below_counts_whole_buckets() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        // Threshold 127 covers buckets up to upper bound 127: values
        // 1,2,3,100 are good; 5000 is bad.
        assert_eq!(good_below(&s, 127), 4);
        assert_eq!(good_below(&s, 8191), 5);
        assert_eq!(good_below(&s, 0), 0);
    }
}
