//! Prometheus text exposition (format 0.0.4): render counters, gauges
//! and [`HistogramSnapshot`]s, and validate scraped output — the
//! validator backs the CI `observe` job and the serve tests.

use crate::hist::{bucket_upper, HistogramSnapshot, BUCKETS};

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().enumerate().all(|(i, b)| {
            b.is_ascii_alphabetic() || b == b'_' || b == b':' || (i > 0 && b.is_ascii_digit())
        })
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    debug_assert!(valid_name(name), "bad metric name {name:?}");
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Escape a label value for Prometheus exposition: backslash, double
/// quote, and newline must be escaped inside the quoted value.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Append a counter sample.
pub fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, help, "counter");
    out.push_str(&format!("{name} {value}\n"));
}

/// Append a gauge sample.
pub fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, help, "gauge");
    out.push_str(&format!("{name} {value}\n"));
}

/// Append a counter family with one sample per label set (one shared
/// HELP/TYPE header). Label values are escaped.
pub fn counter_vec(out: &mut String, name: &str, help: &str, samples: &[(Vec<(&str, &str)>, u64)]) {
    header(out, name, help, "counter");
    for (labels, value) in samples {
        out.push_str(&format!("{name}{} {value}\n", label_block(labels)));
    }
}

/// Append a gauge family with float samples per label set. Values are
/// rendered with enough precision to round-trip typical rates.
pub fn gauge_vec_f64(
    out: &mut String,
    name: &str,
    help: &str,
    samples: &[(Vec<(&str, &str)>, f64)],
) {
    header(out, name, help, "gauge");
    for (labels, value) in samples {
        out.push_str(&format!("{name}{} {value:.6}\n", label_block(labels)));
    }
}

/// Append a histogram family: cumulative `_bucket{le="..."}` samples
/// up to the last occupied bucket, the mandatory `le="+Inf"` bucket,
/// `_sum`, and `_count`. Bucket bounds are the log₂ bucket upper
/// bounds, emitted as integers.
pub fn histogram(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot) {
    header(out, name, help, "histogram");
    let last_occupied = snap
        .buckets
        .iter()
        .rposition(|&n| n > 0)
        .map_or(0, |i| i.min(BUCKETS - 2));
    let mut cumulative = 0u64;
    for i in 0..=last_occupied {
        cumulative += snap.buckets[i];
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            bucket_upper(i)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
    out.push_str(&format!("{name}_sum {}\n", snap.sum));
    out.push_str(&format!("{name}_count {}\n", snap.count));
}

/// Parse the interior of a `{...}` label block into (name, unescaped
/// value) pairs, rejecting malformed label syntax: unquoted values,
/// bad label names, bad escapes, unterminated strings.
fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let bytes = block.as_bytes();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let name_start = pos;
        while pos < bytes.len() && bytes[pos] != b'=' {
            pos += 1;
        }
        if pos >= bytes.len() {
            return Err("label without '='".into());
        }
        let name = &block[name_start..pos];
        if !valid_name(name) {
            return Err(format!("bad label name {name:?}"));
        }
        pos += 1; // '='
        if bytes.get(pos) != Some(&b'"') {
            return Err(format!("label {name} value not quoted"));
        }
        pos += 1;
        let mut value = String::new();
        loop {
            match bytes.get(pos) {
                None => return Err(format!("label {name}: unterminated value")),
                Some(b'"') => {
                    pos += 1;
                    break;
                }
                Some(b'\\') => {
                    match bytes.get(pos + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        other => {
                            return Err(format!(
                                "label {name}: bad escape \\{}",
                                other.map_or(' ', |&b| b as char)
                            ))
                        }
                    }
                    pos += 2;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar.
                    let rest = &block[pos..];
                    let c = rest.chars().next().expect("non-empty");
                    value.push(c);
                    pos += c.len_utf8();
                }
            }
        }
        out.push((name.to_string(), value));
        match bytes.get(pos) {
            None => break,
            Some(b',') => pos += 1,
            Some(&b) => return Err(format!("expected ',' between labels, got {:?}", b as char)),
        }
    }
    Ok(out)
}

/// Validate Prometheus text exposition: line syntax, metric-name
/// syntax, label syntax and value escaping, numeric sample values, and
/// histogram invariants (buckets cumulative and non-decreasing, `+Inf`
/// bucket present and equal to `_count`). Returns the number of samples
/// checked.
pub fn validate(text: &str) -> Result<usize, String> {
    struct HistState {
        last_cum: u64,
        inf: Option<u64>,
        count: Option<u64>,
    }
    let mut hists: Vec<(String, HistState)> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            // HELP / TYPE / arbitrary comments are all legal.
            continue;
        }
        // sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: non-numeric value {value:?}", lineno + 1))?;
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let rest = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated labels", lineno + 1))?;
                (n, Some(rest))
            }
            None => (series, None),
        };
        if !valid_name(name) {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        let labels = match labels {
            Some(block) => Some(
                parse_labels(block).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?,
            ),
            None => None,
        };
        samples += 1;

        if let Some(base) = name.strip_suffix("_bucket") {
            let labels =
                labels.ok_or_else(|| format!("line {}: _bucket without labels", lineno + 1))?;
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("line {}: _bucket without le label", lineno + 1))?;
            let cum = value as u64;
            let st = match hists.iter_mut().find(|(n, _)| n == base) {
                Some((_, st)) => st,
                None => {
                    hists.push((
                        base.to_string(),
                        HistState {
                            last_cum: 0,
                            inf: None,
                            count: None,
                        },
                    ));
                    &mut hists.last_mut().expect("just pushed").1
                }
            };
            if le == "+Inf" {
                if cum < st.last_cum {
                    return Err(format!("{base}: +Inf bucket below prior cumulative"));
                }
                st.inf = Some(cum);
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("{base}: non-numeric le {le:?}"))?;
                if cum < st.last_cum {
                    return Err(format!("{base}: bucket counts not cumulative at le={le}"));
                }
                st.last_cum = cum;
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            if let Some((_, st)) = hists.iter_mut().find(|(n, _)| n == base) {
                st.count = Some(value as u64);
            }
        }
    }
    for (name, st) in &hists {
        let inf = st
            .inf
            .ok_or_else(|| format!("{name}: histogram missing +Inf bucket"))?;
        if let Some(count) = st.count {
            if inf != count {
                return Err(format!("{name}: +Inf bucket {inf} != _count {count}"));
            }
        } else {
            return Err(format!("{name}: histogram missing _count"));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn renders_and_validates() {
        let h = Histogram::new();
        for v in [0u64, 1, 3, 900, 70_000] {
            h.record(v);
        }
        let mut out = String::new();
        counter(&mut out, "j2k_jobs_completed_total", "Jobs completed.", 5);
        gauge(&mut out, "j2k_queue_depth", "Queued jobs.", 2);
        histogram(
            &mut out,
            "j2k_job_e2e_us",
            "End-to-end latency.",
            &h.snapshot(),
        );
        let n = validate(&out).expect("well-formed");
        assert!(n >= 6, "samples checked: {n}");
        assert!(out.contains("j2k_job_e2e_us_bucket{le=\"+Inf\"} 5"));
        assert!(out.contains("j2k_job_e2e_us_count 5"));
        assert!(out.contains("# TYPE j2k_job_e2e_us histogram"));
    }

    #[test]
    fn buckets_are_cumulative() {
        let h = Histogram::new();
        h.record(1);
        h.record(2);
        h.record(2);
        let mut out = String::new();
        histogram(&mut out, "m", "h", &h.snapshot());
        assert!(out.contains("m_bucket{le=\"1\"} 1\n"), "{out}");
        assert!(out.contains("m_bucket{le=\"3\"} 3\n"), "{out}");
        assert!(out.contains("m_bucket{le=\"+Inf\"} 3\n"), "{out}");
    }

    #[test]
    fn empty_histogram_still_valid() {
        let mut out = String::new();
        histogram(&mut out, "m_empty", "h", &Histogram::new().snapshot());
        validate(&out).expect("empty histogram is well-formed");
        assert!(out.contains("m_empty_bucket{le=\"+Inf\"} 0"));
    }

    #[test]
    fn labeled_counters_and_float_gauges_validate() {
        let mut out = String::new();
        counter_vec(
            &mut out,
            "j2k_kernel_bytes_total",
            "Bytes through each kernel.",
            &[
                (vec![("kernel", "dwt53_vertical")], 1 << 20),
                (vec![("kernel", "quantize")], 12345),
            ],
        );
        gauge_vec_f64(
            &mut out,
            "j2k_kernel_gb_per_sec",
            "Derived kernel throughput.",
            &[(vec![("kernel", "dwt53_vertical")], 3.25)],
        );
        let n = validate(&out).expect("labeled exposition validates");
        assert_eq!(n, 3);
        assert!(out.contains("j2k_kernel_bytes_total{kernel=\"dwt53_vertical\"} 1048576\n"));
        assert!(out.contains("j2k_kernel_gb_per_sec{kernel=\"dwt53_vertical\"} 3.250000\n"));
        // One HELP/TYPE header per family, not per sample.
        assert_eq!(out.matches("# TYPE j2k_kernel_bytes_total").count(), 1);
    }

    #[test]
    fn label_values_are_escaped_and_unescape_in_the_validator() {
        let mut out = String::new();
        counter_vec(
            &mut out,
            "m_total",
            "h",
            &[(vec![("slo", "we\"ird\\name\nx")], 7)],
        );
        assert!(
            out.contains(r#"m_total{slo="we\"ird\\name\nx"} 7"#),
            "escaped exposition: {out}"
        );
        validate(&out).expect("escaped label values validate");
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn validator_rejects_malformed_labels() {
        assert!(validate("m{k=unquoted} 1\n").is_err(), "unquoted value");
        assert!(validate("m{k=\"open 1\n").is_err(), "unterminated value");
        assert!(validate("m{1bad=\"v\"} 1\n").is_err(), "bad label name");
        assert!(validate("m{k=\"a\\q\"} 1\n").is_err(), "bad escape");
        assert!(
            validate("m{k=\"a\"extra=\"b\"} 1\n").is_err(),
            "missing comma"
        );
        assert!(validate("m{k=\"a\",j=\"b\"} 1\n").is_ok(), "two labels ok");
    }

    #[test]
    fn validator_catches_breakage() {
        assert!(validate("not a metric line at all\n").is_err());
        assert!(validate("1bad_name 3\n").is_err());
        assert!(validate(
            "m_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 3\nm_bucket{le=\"+Inf\"} 5\nm_count 5\n"
        )
        .is_err());
        assert!(
            validate("m_bucket{le=\"+Inf\"} 4\nm_count 5\n").is_err(),
            "+Inf != count rejected"
        );
        assert!(
            validate("m_bucket{le=\"1\"} 5\nm_count 5\n").is_err(),
            "missing +Inf"
        );
        assert!(validate("m 12.5\n# random comment\n").is_ok());
    }
}
