//! Prometheus text exposition (format 0.0.4): render counters, gauges
//! and [`HistogramSnapshot`]s, and validate scraped output — the
//! validator backs the CI `observe` job and the serve tests.

use crate::hist::{bucket_upper, HistogramSnapshot, BUCKETS};

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().enumerate().all(|(i, b)| {
            b.is_ascii_alphabetic() || b == b'_' || b == b':' || (i > 0 && b.is_ascii_digit())
        })
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    debug_assert!(valid_name(name), "bad metric name {name:?}");
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Append a counter sample.
pub fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, help, "counter");
    out.push_str(&format!("{name} {value}\n"));
}

/// Append a gauge sample.
pub fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, help, "gauge");
    out.push_str(&format!("{name} {value}\n"));
}

/// Append a histogram family: cumulative `_bucket{le="..."}` samples
/// up to the last occupied bucket, the mandatory `le="+Inf"` bucket,
/// `_sum`, and `_count`. Bucket bounds are the log₂ bucket upper
/// bounds, emitted as integers.
pub fn histogram(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot) {
    header(out, name, help, "histogram");
    let last_occupied = snap
        .buckets
        .iter()
        .rposition(|&n| n > 0)
        .map_or(0, |i| i.min(BUCKETS - 2));
    let mut cumulative = 0u64;
    for i in 0..=last_occupied {
        cumulative += snap.buckets[i];
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            bucket_upper(i)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
    out.push_str(&format!("{name}_sum {}\n", snap.sum));
    out.push_str(&format!("{name}_count {}\n", snap.count));
}

/// Validate Prometheus text exposition: line syntax, metric-name
/// syntax, numeric sample values, and histogram invariants (buckets
/// cumulative and non-decreasing, `+Inf` bucket present and equal to
/// `_count`). Returns the number of samples checked.
pub fn validate(text: &str) -> Result<usize, String> {
    struct HistState {
        last_cum: u64,
        inf: Option<u64>,
        count: Option<u64>,
    }
    let mut hists: Vec<(String, HistState)> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            // HELP / TYPE / arbitrary comments are all legal.
            continue;
        }
        // sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: non-numeric value {value:?}", lineno + 1))?;
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let rest = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated labels", lineno + 1))?;
                (n, Some(rest))
            }
            None => (series, None),
        };
        if !valid_name(name) {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        samples += 1;

        if let Some(base) = name.strip_suffix("_bucket") {
            let labels =
                labels.ok_or_else(|| format!("line {}: _bucket without labels", lineno + 1))?;
            let le = labels
                .split(',')
                .find_map(|kv| kv.strip_prefix("le="))
                .ok_or_else(|| format!("line {}: _bucket without le label", lineno + 1))?
                .trim_matches('"');
            let cum = value as u64;
            let st = match hists.iter_mut().find(|(n, _)| n == base) {
                Some((_, st)) => st,
                None => {
                    hists.push((
                        base.to_string(),
                        HistState {
                            last_cum: 0,
                            inf: None,
                            count: None,
                        },
                    ));
                    &mut hists.last_mut().expect("just pushed").1
                }
            };
            if le == "+Inf" {
                if cum < st.last_cum {
                    return Err(format!("{base}: +Inf bucket below prior cumulative"));
                }
                st.inf = Some(cum);
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("{base}: non-numeric le {le:?}"))?;
                if cum < st.last_cum {
                    return Err(format!("{base}: bucket counts not cumulative at le={le}"));
                }
                st.last_cum = cum;
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            if let Some((_, st)) = hists.iter_mut().find(|(n, _)| n == base) {
                st.count = Some(value as u64);
            }
        }
    }
    for (name, st) in &hists {
        let inf = st
            .inf
            .ok_or_else(|| format!("{name}: histogram missing +Inf bucket"))?;
        if let Some(count) = st.count {
            if inf != count {
                return Err(format!("{name}: +Inf bucket {inf} != _count {count}"));
            }
        } else {
            return Err(format!("{name}: histogram missing _count"));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn renders_and_validates() {
        let h = Histogram::new();
        for v in [0u64, 1, 3, 900, 70_000] {
            h.record(v);
        }
        let mut out = String::new();
        counter(&mut out, "j2k_jobs_completed_total", "Jobs completed.", 5);
        gauge(&mut out, "j2k_queue_depth", "Queued jobs.", 2);
        histogram(
            &mut out,
            "j2k_job_e2e_us",
            "End-to-end latency.",
            &h.snapshot(),
        );
        let n = validate(&out).expect("well-formed");
        assert!(n >= 6, "samples checked: {n}");
        assert!(out.contains("j2k_job_e2e_us_bucket{le=\"+Inf\"} 5"));
        assert!(out.contains("j2k_job_e2e_us_count 5"));
        assert!(out.contains("# TYPE j2k_job_e2e_us histogram"));
    }

    #[test]
    fn buckets_are_cumulative() {
        let h = Histogram::new();
        h.record(1);
        h.record(2);
        h.record(2);
        let mut out = String::new();
        histogram(&mut out, "m", "h", &h.snapshot());
        assert!(out.contains("m_bucket{le=\"1\"} 1\n"), "{out}");
        assert!(out.contains("m_bucket{le=\"3\"} 3\n"), "{out}");
        assert!(out.contains("m_bucket{le=\"+Inf\"} 3\n"), "{out}");
    }

    #[test]
    fn empty_histogram_still_valid() {
        let mut out = String::new();
        histogram(&mut out, "m_empty", "h", &Histogram::new().snapshot());
        validate(&out).expect("empty histogram is well-formed");
        assert!(out.contains("m_empty_bucket{le=\"+Inf\"} 0"));
    }

    #[test]
    fn validator_catches_breakage() {
        assert!(validate("not a metric line at all\n").is_err());
        assert!(validate("1bad_name 3\n").is_err());
        assert!(validate(
            "m_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 3\nm_bucket{le=\"+Inf\"} 5\nm_count 5\n"
        )
        .is_err());
        assert!(
            validate("m_bucket{le=\"+Inf\"} 4\nm_count 5\n").is_err(),
            "+Inf != count rejected"
        );
        assert!(
            validate("m_bucket{le=\"1\"} 5\nm_count 5\n").is_err(),
            "missing +Inf"
        );
        assert!(validate("m 12.5\n# random comment\n").is_ok());
    }
}
