//! Chrome trace-event JSON: render [`trace::Event`]s into the format
//! `chrome://tracing` and Perfetto load, and parse/validate such files
//! (for the CI trace checker and `trace_report`).
//!
//! Rendered shape: `{"traceEvents":[...],"displayTimeUnit":"ms"}`.
//! Complete spans are phase `"X"` with `ts`/`dur` in microseconds;
//! instants are phase `"i"` with thread scope. The job trace id rides
//! in `args.trace` of every event.

use crate::json_escape;
use crate::trace::Event;

/// Render events as a Chrome trace-event JSON document.
pub fn render(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts_us = ev.ts_ns as f64 / 1000.0;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{:.3}",
            json_escape(&ev.name),
            json_escape(if ev.cat.is_empty() { "j2k" } else { ev.cat }),
            ev.tid,
            ts_us,
        ));
        match ev.dur_ns {
            Some(d) => out.push_str(&format!(",\"ph\":\"X\",\"dur\":{:.3}", d as f64 / 1000.0)),
            None => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
        }
        out.push_str(&format!(",\"args\":{{\"trace\":{}", ev.trace_id));
        for (k, v) in &ev.args {
            out.push_str(&format!(",\"{}\":{}", json_escape(k), v));
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// One event as read back from a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// Event name.
    pub name: String,
    /// Phase (`"X"` complete, `"i"` instant, ...).
    pub ph: String,
    /// Start timestamp, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds (0 for instants).
    pub dur_us: f64,
    /// Thread id.
    pub tid: u64,
    /// Numeric args (non-numeric args are skipped).
    pub args: Vec<(String, f64)>,
}

impl ParsedEvent {
    /// The `args.trace` job correlation id, if present.
    pub fn trace_id(&self) -> Option<u64> {
        self.args
            .iter()
            .find(|(k, _)| k == "trace")
            .map(|(_, v)| *v as u64)
    }
}

/// Parse a Chrome trace-event JSON document (object-with-`traceEvents`
/// or bare array form). Errors are human-readable strings.
pub fn parse(json: &str) -> Result<Vec<ParsedEvent>, String> {
    let value = JsonParser::new(json).parse_document()?;
    let events = match &value {
        Value::Array(a) => a,
        Value::Object(o) => match o.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, Value::Array(a))) => a,
            Some(_) => return Err("traceEvents is not an array".into()),
            None => return Err("missing traceEvents key".into()),
        },
        _ => return Err("document is neither an object nor an array".into()),
    };
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let Value::Object(o) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |k: &str| o.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let name = match get("name") {
            Some(Value::String(s)) => s.clone(),
            _ => return Err(format!("event {i}: missing string name")),
        };
        let ph = match get("ph") {
            Some(Value::String(s)) => s.clone(),
            _ => return Err(format!("event {i}: missing string ph")),
        };
        let ts_us = match get("ts") {
            Some(Value::Number(n)) => *n,
            _ => return Err(format!("event {i}: missing numeric ts")),
        };
        let dur_us = match get("dur") {
            Some(Value::Number(n)) => *n,
            None => 0.0,
            _ => return Err(format!("event {i}: dur is not numeric")),
        };
        let tid = match get("tid") {
            Some(Value::Number(n)) => *n as u64,
            _ => return Err(format!("event {i}: missing numeric tid")),
        };
        let mut args = Vec::new();
        if let Some(Value::Object(a)) = get("args") {
            for (k, v) in a {
                if let Value::Number(n) = v {
                    args.push((k.clone(), *n));
                }
            }
        }
        out.push(ParsedEvent {
            name,
            ph,
            ts_us,
            dur_us,
            tid,
            args,
        });
    }
    Ok(out)
}

/// Parse `json` and require at least one event per name in `required`.
/// Returns the parsed events on success.
pub fn check(json: &str, required: &[&str]) -> Result<Vec<ParsedEvent>, String> {
    let events = parse(json)?;
    if events.is_empty() {
        return Err("trace contains no events".into());
    }
    for want in required {
        if !events.iter().any(|e| e.name == *want) {
            return Err(format!("trace has no span named {want:?}"));
        }
    }
    Ok(events)
}

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser (reader side only). Vendored
// here because the build is offline: no serde.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value, String> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing data at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by our
                            // renderer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape \\{}", esc as char)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid utf8 in string")?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(format!("expected , or ] at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            out.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(format!("expected , or }} at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn ev(name: &'static str, ts: u64, dur: Option<u64>, tid: u64) -> Event {
        Event {
            trace_id: 42,
            name: Cow::Borrowed(name),
            cat: "",
            ts_ns: ts,
            dur_ns: dur,
            tid,
            args: vec![("chunk", 3)],
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let events = vec![
            ev("mct", 1_000, Some(2_500), 1),
            ev("queue-pop", 4_000, None, 2),
        ];
        let json = render(&events);
        let parsed = parse(&json).expect("parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "mct");
        assert_eq!(parsed[0].ph, "X");
        assert!((parsed[0].ts_us - 1.0).abs() < 1e-9);
        assert!((parsed[0].dur_us - 2.5).abs() < 1e-9);
        assert_eq!(parsed[0].tid, 1);
        assert_eq!(parsed[0].trace_id(), Some(42));
        assert_eq!(parsed[1].ph, "i");
        assert_eq!(parsed[1].dur_us, 0.0);
    }

    #[test]
    fn render_escapes_names() {
        let mut e = ev("bad\"name\\with\nstuff", 0, Some(1), 1);
        e.name = Cow::Owned("bad\"name\\with\nstuff".to_string());
        let json = render(&[e]);
        let parsed = parse(&json).expect("escaped names survive");
        assert_eq!(parsed[0].name, "bad\"name\\with\nstuff");
    }

    #[test]
    fn check_requires_names() {
        let json = render(&[ev("mct", 0, Some(1), 1), ev("tier1", 2, Some(1), 1)]);
        assert!(check(&json, &["mct", "tier1"]).is_ok());
        let err = check(&json, &["dwt"]).unwrap_err();
        assert!(err.contains("dwt"), "{err}");
        assert!(
            check("{\"traceEvents\":[]}", &[]).is_err(),
            "empty trace fails"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{\"traceEvents\":12}").is_err());
        assert!(parse("[{\"name\":1}]").is_err());
        assert!(parse("[{}] trailing").is_err());
        assert!(parse("[{\"name\":\"a\",\"ph\":\"X\",\"ts\":\"oops\",\"tid\":1}]").is_err());
    }

    #[test]
    fn parses_bare_array_and_unicode() {
        let parsed = parse(
            "[{\"name\":\"caf\\u00e9 \\u2603\",\"ph\":\"i\",\"ts\":0.5,\"tid\":7,\
             \"args\":{\"trace\":9,\"note\":\"text arg skipped\"}}]",
        )
        .expect("bare array form");
        assert_eq!(parsed[0].name, "caf\u{e9} \u{2603}");
        assert_eq!(parsed[0].trace_id(), Some(9));
        assert_eq!(parsed[0].args.len(), 1, "string args skipped");
    }
}
