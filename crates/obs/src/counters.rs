//! Per-kernel perf counters behind one relaxed-atomic gate.
//!
//! The paper's argument is per-kernel (Table 1 cycle costs, §4 DWT
//! tuning); this module is the host-side analogue: every hot kernel —
//! MCT/level-shift, the four DWT lifting directions, quantization, and
//! both Tier-1 coders — accounts samples, bytes, coded symbols, and
//! wall nanoseconds into a fixed table of relaxed `AtomicU64` cells,
//! from which derived GB/s and symbols/s figures feed the Prometheus
//! endpoint, `MetricsSnapshot` JSON, and `BENCH_kernels.json`.
//!
//! Cost discipline (mirrors [`crate::trace`] and `faultsim`):
//!
//! * One global enable flag, read with a single relaxed load at every
//!   site ([`enabled`]). Disabled, [`measure`] returns a disarmed guard
//!   without reading the clock — the flag load is the *entire* cost, so
//!   instrumentation stays in release hot paths (asserted by the
//!   disabled-path test below).
//! * Kernels are a closed enum indexed into a static array — the armed
//!   record path is a handful of relaxed `fetch_add`s, no name lookup,
//!   no locks, no allocation. Counting never touches sample data, so
//!   instrumented kernels stay byte-identical to uninstrumented ones.
//! * Dynamic, user-named series go through [`Registry`] — a named
//!   counter/gauge map in the style of [`crate::hist::Registry`]: the
//!   mutex guards only name interning; handles update lock-free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn kernel accounting on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Cheap global gate — one relaxed atomic load. While this returns
/// false, [`measure`] does not read the clock and [`Measure::drop`]
/// records nothing.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The closed set of accounted kernels. Order is the export order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Kernel {
    /// Reversible color transform + DC level shift (lossless path).
    MctRct = 0,
    /// Irreversible color transform + DC level shift (lossy path).
    MctIct,
    /// 5/3 vertical lifting (all fused-variant entry points).
    Dwt53Vertical,
    /// 5/3 horizontal lifting.
    Dwt53Horizontal,
    /// 9/7 vertical lifting (float or fixed Q13).
    Dwt97Vertical,
    /// 9/7 horizontal lifting (float or fixed Q13).
    Dwt97Horizontal,
    /// Scalar dead-zone quantization.
    Quantize,
    /// MQ bit-plane Tier-1 block coding (symbols = MQ decisions).
    Tier1Mq,
    /// HT quad Tier-1 block coding (symbols = quads + emissions).
    Tier1Ht,
}

/// Number of accounted kernels (the fixed table size).
pub const KERNEL_COUNT: usize = 9;

impl Kernel {
    /// All kernels, in export order.
    pub const ALL: [Kernel; KERNEL_COUNT] = [
        Kernel::MctRct,
        Kernel::MctIct,
        Kernel::Dwt53Vertical,
        Kernel::Dwt53Horizontal,
        Kernel::Dwt97Vertical,
        Kernel::Dwt97Horizontal,
        Kernel::Quantize,
        Kernel::Tier1Mq,
        Kernel::Tier1Ht,
    ];

    /// Stable snake_case name (used as the Prometheus `kernel` label and
    /// the JSON key, so it is a schema contract).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::MctRct => "mct_rct",
            Kernel::MctIct => "mct_ict",
            Kernel::Dwt53Vertical => "dwt53_vertical",
            Kernel::Dwt53Horizontal => "dwt53_horizontal",
            Kernel::Dwt97Vertical => "dwt97_vertical",
            Kernel::Dwt97Horizontal => "dwt97_horizontal",
            Kernel::Quantize => "quantize",
            Kernel::Tier1Mq => "tier1_mq",
            Kernel::Tier1Ht => "tier1_ht",
        }
    }
}

/// One kernel's accumulation cells.
struct KernelCell {
    invocations: AtomicU64,
    samples: AtomicU64,
    bytes: AtomicU64,
    symbols: AtomicU64,
    ns: AtomicU64,
}

impl KernelCell {
    const fn new() -> KernelCell {
        KernelCell {
            invocations: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            symbols: AtomicU64::new(0),
            ns: AtomicU64::new(0),
        }
    }
}

static CELLS: [KernelCell; KERNEL_COUNT] = [const { KernelCell::new() }; KERNEL_COUNT];

/// Record one kernel invocation directly (caller-measured duration).
/// Gated: a no-op beyond the flag load while disabled.
pub fn record(kernel: Kernel, samples: u64, bytes: u64, symbols: u64, ns: u64) {
    if !enabled() {
        return;
    }
    record_armed(kernel, samples, bytes, symbols, ns);
}

fn record_armed(kernel: Kernel, samples: u64, bytes: u64, symbols: u64, ns: u64) {
    let c = &CELLS[kernel as usize];
    c.invocations.fetch_add(1, Ordering::Relaxed);
    c.samples.fetch_add(samples, Ordering::Relaxed);
    c.bytes.fetch_add(bytes, Ordering::Relaxed);
    c.symbols.fetch_add(symbols, Ordering::Relaxed);
    c.ns.fetch_add(ns, Ordering::Relaxed);
}

/// RAII measurement guard: wall time from construction to drop lands in
/// the kernel's `ns` cell together with the declared work. Disarmed
/// (no clock read, no-op drop) while accounting is disabled.
#[must_use = "a measure records until dropped"]
pub struct Measure {
    armed: Option<(Kernel, u64, u64, u64, Instant)>,
}

impl Measure {
    /// Attach coded symbols discovered during the measured region
    /// (Tier-1 knows its symbol count only after coding the block).
    pub fn add_symbols(&mut self, n: u64) {
        if let Some((_, _, _, symbols, _)) = self.armed.as_mut() {
            *symbols += n;
        }
    }
}

impl Drop for Measure {
    fn drop(&mut self) {
        if let Some((kernel, samples, bytes, symbols, start)) = self.armed.take() {
            record_armed(
                kernel,
                samples,
                bytes,
                symbols,
                start.elapsed().as_nanos() as u64,
            );
        }
    }
}

/// Open a measurement for `kernel` over `samples` work items moving
/// `bytes` through the kernel. One relaxed load when disabled.
#[inline]
pub fn measure(kernel: Kernel, samples: u64, bytes: u64) -> Measure {
    if !enabled() {
        return Measure { armed: None };
    }
    Measure {
        armed: Some((kernel, samples, bytes, 0, Instant::now())),
    }
}

/// Point-in-time copy of one kernel's counters with derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSnapshot {
    /// Which kernel.
    pub kernel: Kernel,
    /// Measured regions recorded.
    pub invocations: u64,
    /// Work items (samples for transforms, code-block samples for
    /// Tier-1).
    pub samples: u64,
    /// Bytes moved through the kernel.
    pub bytes: u64,
    /// Coded symbols (Tier-1 only; 0 elsewhere).
    pub symbols: u64,
    /// Accumulated wall nanoseconds inside the kernel.
    pub ns: u64,
}

impl KernelSnapshot {
    /// Derived throughput in gigabytes per second (0 when unmeasured).
    pub fn gb_per_sec(&self) -> f64 {
        if self.ns == 0 {
            0.0
        } else {
            self.bytes as f64 / self.ns as f64
        }
    }

    /// Derived sample throughput per second (0 when unmeasured).
    pub fn samples_per_sec(&self) -> f64 {
        if self.ns == 0 {
            0.0
        } else {
            self.samples as f64 * 1e9 / self.ns as f64
        }
    }

    /// Derived symbol throughput per second (0 when unmeasured).
    pub fn symbols_per_sec(&self) -> f64 {
        if self.ns == 0 {
            0.0
        } else {
            self.symbols as f64 * 1e9 / self.ns as f64
        }
    }
}

/// Snapshot every kernel — always the full declared set, including
/// never-touched kernels, so consumers see a stable schema (the same
/// always-emit rule the serve histogram series follow).
pub fn snapshot() -> Vec<KernelSnapshot> {
    Kernel::ALL
        .iter()
        .map(|&kernel| {
            let c = &CELLS[kernel as usize];
            KernelSnapshot {
                kernel,
                invocations: c.invocations.load(Ordering::Relaxed),
                samples: c.samples.load(Ordering::Relaxed),
                bytes: c.bytes.load(Ordering::Relaxed),
                symbols: c.symbols.load(Ordering::Relaxed),
                ns: c.ns.load(Ordering::Relaxed),
            }
        })
        .collect()
}

/// Zero every kernel cell (bench / test isolation; the table is
/// process-global).
pub fn reset() {
    for c in &CELLS {
        c.invocations.store(0, Ordering::Relaxed);
        c.samples.store(0, Ordering::Relaxed);
        c.bytes.store(0, Ordering::Relaxed);
        c.symbols.store(0, Ordering::Relaxed);
        c.ns.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Named counter/gauge registry (dynamic series).
// ---------------------------------------------------------------------

/// A monotonic counter; increments are relaxed atomic adds.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Named counters and gauges. Like [`crate::hist::Registry`], the lock
/// guards only name interning; updates through the returned handles are
/// lock-free, so concurrent incrementers never lose updates (asserted
/// by the concurrency proptest in `crates/obs/tests`).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Every counter, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Every gauge, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, u64)> {
        let map = self.gauges.lock().unwrap_or_else(|p| p.into_inner());
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The kernel table is process-global; tests that touch it serialise
    // and reset around themselves.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_path_records_nothing_and_reads_no_clock() {
        let _g = guard();
        set_enabled(false);
        reset();
        // The disarmed guard holds no Instant — the disabled cost is the
        // single relaxed flag load, nothing else.
        let mut m = measure(Kernel::Quantize, 1_000_000, 4_000_000);
        assert!(m.armed.is_none(), "disabled measure must not arm");
        m.add_symbols(99);
        drop(m);
        record(Kernel::Tier1Mq, 1, 2, 3, 4);
        for s in snapshot() {
            assert_eq!(
                (s.invocations, s.samples, s.bytes, s.symbols, s.ns),
                (0, 0, 0, 0, 0),
                "{} recorded while disabled",
                s.kernel.name()
            );
        }
    }

    #[test]
    fn armed_measure_accumulates_and_derives() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let mut m = measure(Kernel::Tier1Ht, 4096, 8192);
            m.add_symbols(1234);
        }
        record(Kernel::Tier1Ht, 4096, 8192, 766, 1_000_000);
        set_enabled(false);
        let s = snapshot()
            .into_iter()
            .find(|s| s.kernel == Kernel::Tier1Ht)
            .expect("full set");
        assert_eq!(s.invocations, 2);
        assert_eq!(s.samples, 8192);
        assert_eq!(s.bytes, 16384);
        assert_eq!(s.symbols, 2000);
        assert!(s.ns >= 1_000_000);
        assert!(s.gb_per_sec() > 0.0);
        assert!(s.symbols_per_sec() > 0.0);
        reset();
    }

    #[test]
    fn snapshot_always_carries_the_full_kernel_set() {
        let _g = guard();
        let snap = snapshot();
        assert_eq!(snap.len(), KERNEL_COUNT);
        for (s, k) in snap.iter().zip(Kernel::ALL) {
            assert_eq!(s.kernel, k, "export order is Kernel::ALL order");
        }
        // Names are unique and snake_case (Prometheus label values).
        let mut names: Vec<&str> = Kernel::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KERNEL_COUNT);
    }

    #[test]
    fn zero_ns_derives_zero_rates() {
        let s = KernelSnapshot {
            kernel: Kernel::Quantize,
            invocations: 0,
            samples: 10,
            bytes: 10,
            symbols: 10,
            ns: 0,
        };
        assert_eq!(s.gb_per_sec(), 0.0);
        assert_eq!(s.samples_per_sec(), 0.0);
        assert_eq!(s.symbols_per_sec(), 0.0);
    }

    #[test]
    fn registry_interns_counters_and_gauges() {
        let r = Registry::new();
        r.counter("jobs").add(3);
        r.counter("jobs").inc();
        r.gauge("depth").set(7);
        r.gauge("depth").set(5);
        assert_eq!(r.counter("jobs").get(), 4);
        assert_eq!(r.counter_values(), vec![("jobs".to_string(), 4)]);
        assert_eq!(r.gauge_values(), vec![("depth".to_string(), 5)]);
    }
}
