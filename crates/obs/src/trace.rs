//! Lock-free per-thread span recording behind one global enable flag.
//!
//! Recording model:
//!
//! * A global [`enabled`] flag (relaxed `AtomicBool`) gates every site.
//!   Disabled, [`span`] returns a disarmed guard whose `Drop` does
//!   nothing and [`instant`] returns immediately — the flag load is the
//!   whole cost, so instrumentation can stay in the hot path.
//! * Armed events are pushed into a thread-local `Vec` (no locks). The
//!   buffer drains into a bounded global sink when the thread exits
//!   (TLS destructor), when it grows past a watermark, or on an explicit
//!   [`flush_thread`]. Scoped threads must call [`flush_thread`] before
//!   their closure returns: `thread::scope` does not wait for TLS
//!   destructors, so the exit flush alone can lose a race against the
//!   parent's drain. The sink is bounded ([`MAX_SINK_EVENTS`]); events
//!   beyond the bound are counted in [`dropped`] instead of growing
//!   memory without limit.
//! * Each event carries a `trace_id` minted per encode job
//!   ([`next_trace_id`]) and inherited from the thread-local
//!   [`current`] id. Scoped worker threads do **not** inherit TLS —
//!   parents capture `current()` and call [`set_current`] inside the
//!   spawned closure.
//!
//! Timestamps are nanoseconds since a process-wide epoch (first use),
//! so events from different threads order correctly in one timeline.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Upper bound on buffered events process-wide; beyond it new events
/// are dropped (and counted) rather than ballooning memory.
pub const MAX_SINK_EVENTS: usize = 1 << 20;

/// Thread-local buffers flush to the sink once they reach this size.
const LOCAL_FLUSH_WATERMARK: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn sink() -> &'static Mutex<Vec<Event>> {
    static SINK: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Nanoseconds since the process trace epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Turn recording on or off. Enabling pins the epoch so the first
/// event does not pay the `OnceLock` initialisation inside a span.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// Cheap global gate — one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Mint a fresh u64 trace id (one per encode job).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Events dropped because the sink was full.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// One recorded trace event. `dur_ns: Some(_)` is a complete span
/// (Chrome phase `"X"`), `None` an instant (phase `"i"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Job correlation id (0 = outside any job).
    pub trace_id: u64,
    /// Span/instant name; owned names support dynamic labels
    /// (`dwt-level-2`) without leaking.
    pub name: Cow<'static, str>,
    /// Category tag (Chrome `cat` field).
    pub cat: &'static str,
    /// Start (or occurrence) time, ns since the trace epoch.
    pub ts_ns: u64,
    /// Duration for complete spans.
    pub dur_ns: Option<u64>,
    /// Recording thread's obs-local id (dense, stable per thread).
    pub tid: u64,
    /// Small numeric payload, rendered as Chrome `args`.
    pub args: Vec<(&'static str, u64)>,
}

struct LocalBuf {
    events: RefCell<Vec<Event>>,
    tid: u64,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        flush_into_sink(&mut self.events.borrow_mut());
    }
}

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    static LOCAL: LocalBuf = LocalBuf {
        events: RefCell::new(Vec::new()),
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
    };
}

fn flush_into_sink(buf: &mut Vec<Event>) {
    if buf.is_empty() {
        return;
    }
    let mut sink = sink().lock().unwrap_or_else(|p| p.into_inner());
    let room = MAX_SINK_EVENTS.saturating_sub(sink.len());
    let take = buf.len().min(room);
    let overflow = buf.len() - take;
    sink.extend(buf.drain(..take));
    buf.clear();
    if overflow > 0 {
        DROPPED.fetch_add(overflow as u64, Ordering::Relaxed);
    }
}

fn push(ev: Event) {
    let mut ev = Some(ev);
    let pushed = LOCAL.try_with(|l| {
        let mut buf = l.events.borrow_mut();
        buf.push(ev.take().expect("event moved once"));
        if buf.len() >= LOCAL_FLUSH_WATERMARK {
            flush_into_sink(&mut buf);
        }
    });
    if pushed.is_err() {
        // TLS already torn down (event during thread destruction):
        // spill straight to the sink.
        if let Some(ev) = ev {
            flush_into_sink(&mut vec![ev]);
        }
    }
}

fn local_tid() -> u64 {
    LOCAL.try_with(|l| l.tid).unwrap_or(0)
}

/// The trace id inherited by spans recorded on this thread.
pub fn current() -> u64 {
    CURRENT.with(|c| c.get())
}

/// Set this thread's trace id. Spawned threads start at 0; parents
/// capture [`current`] and re-set it inside the spawned closure.
pub fn set_current(id: u64) {
    CURRENT.with(|c| c.set(id));
}

/// RAII span guard: measures from construction to drop and records a
/// complete event. Disarmed (free) while tracing is disabled.
#[must_use = "a span measures until dropped"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: Cow<'static, str>,
    cat: &'static str,
    trace_id: u64,
    start_ns: u64,
    args: Vec<(&'static str, u64)>,
}

impl Span {
    /// A guard that records nothing; use at call sites that must build
    /// a dynamic name only when tracing is on.
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// Whether this guard will record on drop.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a numeric argument (builder style).
    pub fn arg(mut self, key: &'static str, value: u64) -> Span {
        if let Some(i) = self.inner.as_mut() {
            i.args.push((key, value));
        }
        self
    }

    /// Attach a numeric argument after construction (e.g. a result
    /// count known only at the end of the measured region).
    pub fn set_arg(&mut self, key: &'static str, value: u64) {
        if let Some(i) = self.inner.as_mut() {
            i.args.push((key, value));
        }
    }

    /// Set the category tag (builder style).
    pub fn cat(mut self, cat: &'static str) -> Span {
        if let Some(i) = self.inner.as_mut() {
            i.cat = cat;
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            let end = now_ns();
            push(Event {
                trace_id: i.trace_id,
                name: i.name,
                cat: i.cat,
                ts_ns: i.start_ns,
                dur_ns: Some(end.saturating_sub(i.start_ns)),
                tid: local_tid(),
                args: i.args,
            });
        }
    }
}

/// Open a span named `name` under this thread's current trace id.
/// Returns a disarmed guard when tracing is disabled — but note the
/// `name` argument is still evaluated, so guard dynamic
/// (`format!`-built) names behind [`enabled`] and use
/// [`Span::disabled`] on the cold arm.
pub fn span(name: impl Into<Cow<'static, str>>) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    Span {
        inner: Some(SpanInner {
            name: name.into(),
            cat: "",
            trace_id: current(),
            start_ns: now_ns(),
            args: Vec::new(),
        }),
    }
}

/// Record an instant event under this thread's current trace id.
pub fn instant(name: impl Into<Cow<'static, str>>, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    push(Event {
        trace_id: current(),
        name: name.into(),
        cat: "",
        ts_ns: now_ns(),
        dur_ns: None,
        tid: local_tid(),
        args: args.to_vec(),
    });
}

/// Record an instant under an explicit trace id, written straight to
/// the global sink (bypassing TLS). For cold cross-thread events —
/// crash handling, supervisor respawns — where the recording thread
/// is about to die and deterministic visibility to the next reader
/// matters more than lock-freedom.
pub fn instant_for(
    trace_id: u64,
    name: impl Into<Cow<'static, str>>,
    args: &[(&'static str, u64)],
) {
    if !enabled() {
        return;
    }
    flush_into_sink(&mut vec![Event {
        trace_id,
        name: name.into(),
        cat: "",
        ts_ns: now_ns(),
        dur_ns: None,
        tid: local_tid(),
        args: args.to_vec(),
    }]);
}

/// Record a complete span whose begin and end were observed on
/// different threads (e.g. queue-wait: push on the acceptor, pop on a
/// worker). The caller supplies the start timestamp.
pub fn complete_with(
    trace_id: u64,
    name: impl Into<Cow<'static, str>>,
    cat: &'static str,
    start_ns: u64,
    dur_ns: u64,
    args: &[(&'static str, u64)],
) {
    if !enabled() {
        return;
    }
    push(Event {
        trace_id,
        name: name.into(),
        cat,
        ts_ns: start_ns,
        dur_ns: Some(dur_ns),
        tid: local_tid(),
        args: args.to_vec(),
    });
}

/// Drain this thread's local buffer into the global sink.
pub fn flush_thread() {
    let _ = LOCAL.try_with(|l| flush_into_sink(&mut l.events.borrow_mut()));
}

/// Flush this thread, then take everything accumulated in the sink.
/// Buffers of *other live threads* are not visible until those threads
/// flush or exit. Note `thread::scope` joins closures, **not** TLS
/// destructors — a scoped worker must call [`flush_thread`] at the end
/// of its closure (the pipeline's workers do) or its tail of events can
/// miss a drain that runs right after the scope; the `Drop` flush is
/// only a backstop for ordinary (OS-joined) threads.
pub fn drain_all() -> Vec<Event> {
    flush_thread();
    let mut sink = sink().lock().unwrap_or_else(|p| p.into_inner());
    std::mem::take(&mut *sink)
}

/// Flush this thread, then extract only events carrying `trace_id`,
/// leaving other jobs' events in the sink.
pub fn take_job(trace_id: u64) -> Vec<Event> {
    flush_thread();
    let mut sink = sink().lock().unwrap_or_else(|p| p.into_inner());
    let mut taken = Vec::new();
    sink.retain(|ev| {
        if ev.trace_id == trace_id {
            taken.push(ev.clone());
            false
        } else {
            true
        }
    });
    taken
}

/// Clear the sink and drop counter (test isolation).
pub fn reset() {
    flush_thread();
    sink().lock().unwrap_or_else(|p| p.into_inner()).clear();
    DROPPED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace tests share the global sink, so they serialise on a lock
    // and scope themselves to ids they minted.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guard();
        set_enabled(false);
        let id = next_trace_id();
        set_current(id);
        {
            let _s = span("noop").arg("k", 1);
        }
        instant("noop-i", &[]);
        assert!(take_job(id).is_empty());
        set_current(0);
    }

    #[test]
    fn span_and_instant_roundtrip() {
        let _g = guard();
        set_enabled(true);
        let id = next_trace_id();
        set_current(id);
        {
            let mut s = span("work").cat("test").arg("k", 7);
            assert!(s.is_armed());
            s.set_arg("late", 9);
        }
        instant("mark", &[("n", 3)]);
        let evs = take_job(id);
        set_current(0);
        set_enabled(false);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "work");
        assert_eq!(evs[0].cat, "test");
        assert!(evs[0].dur_ns.is_some());
        assert_eq!(evs[0].args, vec![("k", 7), ("late", 9)]);
        assert_eq!(evs[1].name, "mark");
        assert_eq!(evs[1].dur_ns, None);
        assert!(evs[1].ts_ns >= evs[0].ts_ns);
    }

    #[test]
    fn scoped_threads_carry_explicit_id() {
        let _g = guard();
        set_enabled(true);
        let id = next_trace_id();
        set_current(id);
        std::thread::scope(|scope| {
            for w in 0..3u64 {
                let tid = current();
                scope.spawn(move || {
                    set_current(tid);
                    drop(span("chunk").arg("worker", w));
                    // The scoped-worker contract: flush before returning
                    // (`thread::scope` doesn't wait for TLS destructors).
                    flush_thread();
                });
            }
        });
        let evs = take_job(id);
        set_current(0);
        set_enabled(false);
        assert_eq!(evs.len(), 3, "scoped threads flush before the barrier");
        let mut tids: Vec<u64> = evs.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each thread gets its own tid");
    }

    #[test]
    fn take_job_leaves_other_jobs() {
        let _g = guard();
        set_enabled(true);
        let a = next_trace_id();
        let b = next_trace_id();
        set_current(a);
        instant("ev-a", &[]);
        set_current(b);
        instant("ev-b", &[]);
        set_current(0);
        let got_a = take_job(a);
        assert_eq!(got_a.len(), 1);
        assert_eq!(got_a[0].name, "ev-a");
        let got_b = take_job(b);
        assert_eq!(got_b.len(), 1);
        assert_eq!(got_b[0].name, "ev-b");
        set_enabled(false);
    }

    #[test]
    fn instant_for_bypasses_tls() {
        let _g = guard();
        set_enabled(true);
        let id = next_trace_id();
        instant_for(id, "crash", &[("job", 5)]);
        // Visible without any flush: written straight to the sink.
        let sink_len = sink()
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.trace_id == id)
            .count();
        assert_eq!(sink_len, 1);
        let evs = take_job(id);
        assert_eq!(evs[0].name, "crash");
        set_enabled(false);
    }

    #[test]
    fn dynamic_names_are_owned() {
        let _g = guard();
        set_enabled(true);
        let id = next_trace_id();
        set_current(id);
        let lev = 2;
        {
            let _s = if enabled() {
                span(format!("dwt-level-{lev}"))
            } else {
                Span::disabled()
            };
        }
        let evs = take_job(id);
        set_current(0);
        set_enabled(false);
        assert_eq!(evs[0].name, "dwt-level-2");
    }
}
