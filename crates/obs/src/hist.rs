//! Fixed 64-bucket log₂ histograms and a named-series registry.
//!
//! The record path is integer-only and lock-free: a value lands in
//! bucket `64 - leading_zeros(v)` (clamped), three relaxed atomic adds
//! and a CAS-free max update. Bucket `i` covers `(2^(i-1), 2^i - 1]`
//! with bucket 0 holding exactly 0 and bucket 63 absorbing everything
//! from `2^62` up to `u64::MAX`. Percentiles are reconstructed from
//! bucket upper bounds — coarse (≤ 2× relative error) but mergeable
//! and allocation-free, which is what a per-job hot path needs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets (fixed; snapshots merge bucket-wise).
pub const BUCKETS: usize = 64;

/// Index of the bucket recording value `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A concurrent log₂-bucketed histogram. All operations are relaxed
/// atomics; `record` never allocates, locks, or touches floats.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Integer-only; sums saturate rather than wrap.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating atomic add: one retry loop only near u64::MAX.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Consistent-enough copy for reporting (relaxed reads; exact once
    /// writers quiesce).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Owned, mergeable copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_upper`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Bucket-wise merge; associative and commutative, so shard
    /// snapshots can fold in any order.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = self.clone();
        for (b, o) in out.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        out.count += other.count;
        out.sum = out.sum.saturating_add(other.sum);
        out.max = out.max.max(other.max);
        out
    }

    /// Quantile estimate: the upper bound of the bucket containing the
    /// `q`-th ranked sample, clamped to the observed max. `q` in
    /// `[0, 1]`; returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The fixed summary quartet reported per series.
    pub fn stats(&self) -> HistogramStats {
        HistogramStats {
            count: self.count,
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            max: self.max,
        }
    }

    /// Mean sample (0 when empty); reporting-path only.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Percentile summary of one series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramStats {
    /// Total samples.
    pub count: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th percentile estimate.
    pub p95: u64,
    /// 99th percentile estimate.
    pub p99: u64,
    /// 99.9th percentile estimate.
    pub p999: u64,
    /// Exact maximum.
    pub max: u64,
}

/// Named histogram series. `histogram(name)` interns on first use and
/// hands back a shared handle; recording through the handle is
/// lock-free (the registry lock guards only the name map).
#[derive(Debug, Default)]
pub struct Registry {
    series: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The series named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.series.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Snapshot every series, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        let map = self.series.lock().unwrap_or_else(|p| p.into_inner());
        map.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        // Every value falls inside its bucket's range.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn zero_samples() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.percentile(0.999), 0);
        assert_eq!(s.stats(), HistogramStats::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_is_exact() {
        let h = Histogram::new();
        h.record(1234);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 1234);
        assert_eq!(s.max, 1234);
        // Clamp-to-max makes every percentile exact for one sample.
        assert_eq!(s.percentile(0.0), 1234);
        assert_eq!(s.percentile(0.5), 1234);
        assert_eq!(s.percentile(1.0), 1234);
    }

    #[test]
    fn u64_max_sample() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.percentile(0.99), u64::MAX);
        assert_eq!(s.sum, u64::MAX, "sum saturates instead of wrapping");
    }

    #[test]
    fn percentiles_bounded_by_bucket_width() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        // p50 of 1..=1000 is 500; the estimate is the containing
        // bucket's upper bound, so within 2x.
        let p50 = s.percentile(0.5);
        assert!((500..=1023).contains(&p50), "p50={p50}");
        let p99 = s.percentile(0.99);
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.percentile(1.0), 1000);
    }

    #[test]
    fn merge_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[0, 1, 5]);
        let b = mk(&[1 << 20, u64::MAX]);
        let c = mk(&[7, 7, 7, 9000]);
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left, right, "merge is associative");
        assert_eq!(a.merge(&b), b.merge(&a), "merge is commutative");
        assert_eq!(left.count, 9);
        assert_eq!(left.max, u64::MAX);
        let empty = HistogramSnapshot::default();
        assert_eq!(a.merge(&empty), a, "empty is the identity");
    }

    #[test]
    fn registry_interns_and_snapshots_sorted() {
        let r = Registry::new();
        r.histogram("zzz").record(1);
        r.histogram("aaa").record(2);
        let h = r.histogram("zzz");
        h.record(3);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "aaa");
        assert_eq!(snap[1].0, "zzz");
        assert_eq!(snap[1].1.count, 2);
    }
}
