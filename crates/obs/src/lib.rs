//! `obs` — zero-dependency observability for the JPEG2000 pipeline.
//!
//! Two halves, both hand-rolled for the offline build:
//!
//! * [`trace`] — per-thread span recorders behind one global enable flag.
//!   Every recording site starts with a relaxed atomic load; while tracing
//!   is disabled that load is the *entire* cost (the span constructor
//!   returns a disarmed guard and `Drop` is a no-op), mirroring the
//!   stub discipline of `faultsim` but switchable at runtime so stock
//!   builds can honour `--trace-out`. Armed threads push events into a
//!   thread-local buffer — no locks, no allocation beyond the `Vec` —
//!   which drains into a bounded global sink on thread exit or explicit
//!   flush. [`chrome`] renders the sink as Chrome trace-event JSON
//!   (loadable in `chrome://tracing` / Perfetto).
//!
//! * [`hist`] — a fixed 64-bucket log₂ histogram (`AtomicU64` buckets,
//!   no floats on the record path, mergeable) plus a named-series
//!   [`Registry`]. [`prom`] renders a registry in Prometheus text
//!   exposition format 0.0.4 and validates scraped output for tests.
//!
//! Plus the perf-observability layer (DESIGN.md §17):
//!
//! * [`counters`] — per-kernel samples/bytes/symbols/ns accounting
//!   behind the same single relaxed-atomic gate discipline as
//!   [`trace`], with derived GB/s and symbols/s, and a named
//!   counter/gauge registry for dynamic series.
//! * [`slo`] — multi-window burn-rate evaluation over cumulative
//!   good/total counts (latency and error-rate objectives).

pub mod chrome;
pub mod counters;
pub mod hist;
pub mod prom;
pub mod slo;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot, HistogramStats, Registry};
pub use trace::Span;

/// Escape `s` for embedding inside a JSON string literal (quotes not
/// included). Handles quotes, backslashes and control characters.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("uni\u{e9}"), "uni\u{e9}");
    }
}
