//! Concurrency and algebra properties of the perf-counter layer:
//! concurrent increments through `counters::Registry` handles lose no
//! updates, and histogram snapshot merging stays associative and
//! commutative under arbitrary inputs (the fold-in-any-order contract
//! shard aggregation relies on).

use obs::counters::Registry;
use obs::hist::{Histogram, HistogramSnapshot};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// N threads hammering the same named counter: the final value is
    /// exactly the sum of everything added (no lost updates), because
    /// the registry hands out shared handles over one atomic cell.
    #[test]
    fn concurrent_increments_lose_nothing(
        threads in 2usize..8,
        per_thread in prop::collection::vec(1u64..1000, 1..50),
    ) {
        let reg = Arc::new(Registry::new());
        let adds = Arc::new(per_thread);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let reg = Arc::clone(&reg);
                let adds = Arc::clone(&adds);
                scope.spawn(move || {
                    let c = reg.counter("shared");
                    for &n in adds.iter() {
                        c.add(n);
                    }
                    reg.counter("per_call_lookup").inc();
                });
            }
        });
        let want: u64 = adds.iter().sum::<u64>() * threads as u64;
        prop_assert_eq!(reg.counter("shared").get(), want);
        prop_assert_eq!(reg.counter("per_call_lookup").get(), threads as u64);
    }

    /// Gauges are last-write-wins; under concurrent writers the final
    /// value is one of the written values, never a torn mix.
    #[test]
    fn concurrent_gauge_writes_land_on_a_written_value(
        values in prop::collection::vec(0u64..1_000_000, 2..12),
    ) {
        let reg = Arc::new(Registry::new());
        std::thread::scope(|scope| {
            for &v in &values {
                let reg = Arc::clone(&reg);
                scope.spawn(move || reg.gauge("g").set(v));
            }
        });
        let got = reg.gauge("g").get();
        prop_assert!(values.contains(&got), "gauge {got} not among writes");
    }

    /// Histogram snapshot merge is associative and commutative with the
    /// empty snapshot as identity, for arbitrary sample sets.
    #[test]
    fn histogram_merge_is_a_commutative_monoid(
        a in prop::collection::vec(0u64..u64::MAX, 0..40),
        b in prop::collection::vec(0u64..u64::MAX, 0..40),
        c in prop::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (mk(&a), mk(&b), mk(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        let empty = HistogramSnapshot::default();
        prop_assert_eq!(sa.merge(&empty), sa.clone());
        prop_assert_eq!(empty.merge(&sa), sa);
        // Merged count is the sum of parts.
        prop_assert_eq!(
            sa.merge(&sb).count,
            (a.len() + b.len()) as u64
        );
    }
}
