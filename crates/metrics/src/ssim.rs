//! Structural similarity (SSIM), Wang et al. 2004.
//!
//! The reference formulation: an 11×11 Gaussian window (σ = 1.5) slides
//! over every fully-interior position ("valid" mode), local weighted
//! means/variances/covariance feed the per-window index
//!
//! ```text
//! SSIM = (2·μa·μb + C1)(2·σab + C2) / ((μa² + μb² + C1)(σa² + σb² + C2))
//! ```
//!
//! and the score is the plain mean over windows. `C1 = (0.01·L)²`,
//! `C2 = (0.03·L)²` with `L` the reference image's peak value. Images
//! smaller than the window shrink the window to the image (down to a
//! single luminance-only window for a 1×1 image), so every valid
//! geometry scores without panicking — the comparator sits behind
//! fuzzed decoder output.

use crate::comparator::MetricsError;
use imgio::Image;

const K1: f64 = 0.01;
const K2: f64 = 0.03;
const WINDOW: usize = 11;
const SIGMA: f64 = 1.5;

/// Normalized 1-D Gaussian taps for a window of `n` samples.
fn gaussian(n: usize) -> Vec<f64> {
    let c = (n as f64 - 1.0) / 2.0;
    let mut k: Vec<f64> = (0..n)
        .map(|i| (-(i as f64 - c) * (i as f64 - c) / (2.0 * SIGMA * SIGMA)).exp())
        .collect();
    let s: f64 = k.iter().sum();
    for v in &mut k {
        *v /= s;
    }
    k
}

/// SSIM of one component plane pair, in `[-1, 1]` (1 = identical).
pub fn ssim_plane(a: &Image, b: &Image, comp: usize) -> Result<f64, MetricsError> {
    crate::check_geometry(a, b)?;
    let (w, h) = (a.width, a.height);
    let wx = WINDOW.min(w);
    let wy = WINDOW.min(h);
    let kx = gaussian(wx);
    let ky = gaussian(wy);
    let peak = a.max_value() as f64;
    let c1 = (K1 * peak) * (K1 * peak);
    let c2 = (K2 * peak) * (K2 * peak);
    let pa = &a.planes[comp];
    let pb = &b.planes[comp];

    let mut acc = 0.0;
    let mut windows = 0u64;
    for y0 in 0..=(h - wy) {
        for x0 in 0..=(w - wx) {
            let (mut ma, mut mb) = (0.0f64, 0.0f64);
            for (j, &wyj) in ky.iter().enumerate() {
                let row = (y0 + j) * w + x0;
                for (i, &wxi) in kx.iter().enumerate() {
                    let wgt = wyj * wxi;
                    ma += wgt * pa[row + i] as f64;
                    mb += wgt * pb[row + i] as f64;
                }
            }
            let (mut va, mut vb, mut cov) = (0.0f64, 0.0f64, 0.0f64);
            for (j, &wyj) in ky.iter().enumerate() {
                let row = (y0 + j) * w + x0;
                for (i, &wxi) in kx.iter().enumerate() {
                    let wgt = wyj * wxi;
                    let da = pa[row + i] as f64 - ma;
                    let db = pb[row + i] as f64 - mb;
                    va += wgt * da * da;
                    vb += wgt * db * db;
                    cov += wgt * da * db;
                }
            }
            acc += ((2.0 * ma * mb + c1) * (2.0 * cov + c2))
                / ((ma * ma + mb * mb + c1) * (va + vb + c2));
            windows += 1;
        }
    }
    Ok(acc / windows as f64)
}

/// SSIM across all components: the mean of the per-plane scores.
pub fn ssim(a: &Image, b: &Image) -> Result<f64, MetricsError> {
    crate::check_geometry(a, b)?;
    let mut acc = 0.0;
    for c in 0..a.comps() {
        acc += ssim_plane(a, b, c)?;
    }
    Ok(acc / a.comps() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imgio::synth;

    #[test]
    fn identical_images_score_one() {
        for im in [synth::natural(32, 24, 3), synth::natural_rgb(16, 16, 5)] {
            let s = ssim(&im, &im).unwrap();
            assert!((s - 1.0).abs() < 1e-12, "{s}");
        }
    }

    #[test]
    fn scores_stay_in_range_and_order_by_damage() {
        let a = synth::natural(48, 48, 9);
        let mut light = a.clone();
        let mut heavy = a.clone();
        let mut x = 1u32;
        for i in 0..light.planes[0].len() {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let n = (x >> 28) as i32; // 0..16
            light.planes[0][i] = (light.planes[0][i] as i32 + n % 4).clamp(0, 255) as u16;
            heavy.planes[0][i] = (heavy.planes[0][i] as i32 + n * 8 - 64).clamp(0, 255) as u16;
        }
        let sl = ssim(&a, &light).unwrap();
        let sh = ssim(&a, &heavy).unwrap();
        assert!(sl > sh, "light {sl} <= heavy {sh}");
        for s in [sl, sh] {
            assert!((-1.0..=1.0).contains(&s), "{s}");
        }
        assert!(sl > 0.9, "mild noise should stay close to 1: {sl}");
    }

    #[test]
    fn structure_loss_hurts_more_than_psnr_equivalent_bias() {
        // A constant +10 bias keeps structure (SSIM stays high); shuffling
        // the same energy into structured damage does not.
        let a = synth::natural(40, 40, 2);
        let mut bias = a.clone();
        for v in &mut bias.planes[0] {
            *v = (*v + 10).min(255);
        }
        let mut scramble = a.clone();
        for (i, v) in scramble.planes[0].iter_mut().enumerate() {
            if (i / 4) % 2 == 0 {
                *v = v.saturating_sub(14);
            } else {
                *v = (*v + 14).min(255);
            }
        }
        let sb = ssim(&a, &bias).unwrap();
        let ss = ssim(&a, &scramble).unwrap();
        assert!(sb > ss, "bias {sb} <= scramble {ss}");
    }

    #[test]
    fn tiny_images_score_without_panicking() {
        for (w, h) in [(1usize, 1usize), (2, 2), (1, 17), (16, 1), (5, 5)] {
            let mut a = imgio::Image::new(w, h, 1, 8).unwrap();
            for (i, v) in a.planes[0].iter_mut().enumerate() {
                *v = ((i * 37) % 256) as u16;
            }
            let s = ssim(&a, &a).unwrap();
            assert!((s - 1.0).abs() < 1e-12, "{w}x{h}: {s}");
            let mut b = a.clone();
            b.planes[0][0] = 255 - b.planes[0][0];
            let s = ssim(&a, &b).unwrap();
            assert!((-1.0..1.0).contains(&s), "{w}x{h}: {s}");
        }
    }

    #[test]
    fn geometry_mismatch_is_typed() {
        let a = synth::flat(8, 8, 0);
        assert!(matches!(
            ssim(&a, &synth::flat(8, 9, 0)),
            Err(MetricsError::Geometry(_))
        ));
    }
}
