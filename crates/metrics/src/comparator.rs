//! A/B image comparator: the full metric battery in one call.
//!
//! [`compare`] is what the closed-loop consumers use — `j2kcell compare`,
//! the golden-corpus conformance suite, and the decode bench — so its
//! output carries everything at once: aggregate and per-component MSE /
//! PSNR / SSIM, the worst absolute sample error, and an `identical` flag
//! that makes the lossless bit-exactness oracle a field read. JSON is
//! hand-rolled in the workspace house style (no serde); infinite PSNR
//! (identical planes) serializes as `null`.

use crate::psnr::{max_abs_err, mse_plane, psnr_from_mse};
use crate::ssim::ssim_plane;
use imgio::Image;

/// Typed metric failures. Nothing in this crate panics on valid
/// [`Image`]s; the only failure mode is comparing incomparable
/// geometries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// The two images differ in width, height, or component count.
    Geometry(String),
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::Geometry(m) => write!(f, "incomparable geometry: {m}"),
        }
    }
}

impl std::error::Error for MetricsError {}

/// One component plane's quality readings.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaneQuality {
    /// Mean squared error.
    pub mse: f64,
    /// PSNR in dB (`f64::INFINITY` for identical planes).
    pub psnr: f64,
    /// SSIM in `[-1, 1]`.
    pub ssim: f64,
    /// Largest absolute sample difference.
    pub max_abs_err: u16,
}

/// Full A/B comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Shared width.
    pub width: usize,
    /// Shared height.
    pub height: usize,
    /// Shared component count.
    pub comps: usize,
    /// Peak sample value (from the reference image's bit depth).
    pub peak: u16,
    /// Aggregate mean squared error across components.
    pub mse: f64,
    /// Aggregate PSNR in dB (`f64::INFINITY` when identical).
    pub psnr: f64,
    /// Aggregate SSIM (mean of per-plane scores).
    pub ssim: f64,
    /// Worst absolute sample difference anywhere.
    pub max_abs_err: u16,
    /// Bit-exact equality — the lossless round-trip oracle.
    pub identical: bool,
    /// Per-component readings, in plane order.
    pub planes: Vec<PlaneQuality>,
}

/// Compare reference `a` against candidate `b`.
pub fn compare(a: &Image, b: &Image) -> Result<Comparison, MetricsError> {
    crate::check_geometry(a, b)?;
    let peak = a.max_value();
    let mut planes = Vec::with_capacity(a.comps());
    let mut mse_acc = 0.0;
    let mut ssim_acc = 0.0;
    for c in 0..a.comps() {
        let m = mse_plane(a, b, c)?;
        let s = ssim_plane(a, b, c)?;
        let worst = a.planes[c]
            .iter()
            .zip(&b.planes[c])
            .map(|(&va, &vb)| va.abs_diff(vb))
            .max()
            .unwrap_or(0);
        mse_acc += m;
        ssim_acc += s;
        planes.push(PlaneQuality {
            mse: m,
            psnr: psnr_from_mse(m, peak),
            ssim: s,
            max_abs_err: worst,
        });
    }
    let mse = mse_acc / a.comps() as f64;
    let worst = max_abs_err(a, b)?;
    Ok(Comparison {
        width: a.width,
        height: a.height,
        comps: a.comps(),
        peak,
        mse,
        psnr: psnr_from_mse(mse, peak),
        ssim: ssim_acc / a.comps() as f64,
        max_abs_err: worst,
        identical: worst == 0,
        planes,
    })
}

/// A float as JSON: finite values verbatim, infinities as `null` (JSON
/// has no Infinity literal).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

impl Comparison {
    /// Hand-rolled JSON in the workspace house style.
    pub fn to_json(&self) -> String {
        let planes: Vec<String> = self
            .planes
            .iter()
            .map(|p| {
                format!(
                    "{{\"mse\":{},\"psnr\":{},\"ssim\":{},\"max_abs_err\":{}}}",
                    json_f64(p.mse),
                    json_f64(p.psnr),
                    json_f64(p.ssim),
                    p.max_abs_err
                )
            })
            .collect();
        format!(
            "{{\"width\":{},\"height\":{},\"comps\":{},\"peak\":{},\"identical\":{},\
             \"mse\":{},\"psnr\":{},\"ssim\":{},\"max_abs_err\":{},\"planes\":[{}]}}",
            self.width,
            self.height,
            self.comps,
            self.peak,
            self.identical,
            json_f64(self.mse),
            json_f64(self.psnr),
            json_f64(self.ssim),
            self.max_abs_err,
            planes.join(",")
        )
    }
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}x{} x{} @ peak {}{}",
            self.width,
            self.height,
            self.comps,
            self.peak,
            if self.identical { "  (bit-exact)" } else { "" }
        )?;
        let db = |v: f64| {
            if v.is_finite() {
                format!("{v:7.2} dB")
            } else {
                "     inf".into()
            }
        };
        writeln!(
            f,
            "  all: PSNR {}  SSIM {:.4}  MSE {:.3}  max|err| {}",
            db(self.psnr),
            self.ssim,
            self.mse,
            self.max_abs_err
        )?;
        if self.comps > 1 {
            for (c, p) in self.planes.iter().enumerate() {
                writeln!(
                    f,
                    "  c{c}:  PSNR {}  SSIM {:.4}  MSE {:.3}  max|err| {}",
                    db(p.psnr),
                    p.ssim,
                    p.mse,
                    p.max_abs_err
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imgio::synth;

    #[test]
    fn identical_comparison_is_exact() {
        let im = synth::natural_rgb(24, 18, 4);
        let c = compare(&im, &im).unwrap();
        assert!(c.identical);
        assert_eq!(c.psnr, f64::INFINITY);
        assert_eq!(c.max_abs_err, 0);
        assert!((c.ssim - 1.0).abs() < 1e-12);
        assert_eq!(c.planes.len(), 3);
        let j = c.to_json();
        assert!(j.contains("\"identical\":true"));
        assert!(j.contains("\"psnr\":null"), "{j}");
        assert!(j.contains("\"max_abs_err\":0"));
    }

    #[test]
    fn damage_is_reported_and_localized() {
        let a = synth::natural_rgb(32, 32, 8);
        let mut b = a.clone();
        for v in &mut b.planes[1] {
            *v = v.saturating_add(12);
        }
        let c = compare(&a, &b).unwrap();
        assert!(!c.identical);
        assert_eq!(c.max_abs_err, 12);
        assert!(c.psnr.is_finite());
        assert_eq!(c.planes[0].max_abs_err, 0);
        assert_eq!(c.planes[2].max_abs_err, 0);
        assert_eq!(c.planes[1].max_abs_err, 12);
        assert!(c.planes[1].psnr < c.planes[0].psnr);
        let j = c.to_json();
        assert!(j.contains("\"identical\":false"));
        assert!(!j.contains("inf"), "no raw infinities in JSON: {j}");
        // The human rendering carries every section.
        let text = c.to_string();
        assert!(text.contains("PSNR"), "{text}");
        assert!(text.contains("c1:"), "{text}");
    }

    #[test]
    fn geometry_mismatch_is_typed_not_a_panic() {
        let a = synth::flat(8, 8, 0);
        let b = synth::flat(9, 8, 0);
        let e = compare(&a, &b).unwrap_err();
        assert!(matches!(e, MetricsError::Geometry(_)));
        assert!(e.to_string().contains("8x8"));
    }

    #[test]
    fn aggregate_is_mean_of_planes() {
        let a = synth::natural_rgb(16, 16, 3);
        let mut b = a.clone();
        for v in &mut b.planes[0] {
            *v = v.saturating_add(6);
        }
        let c = compare(&a, &b).unwrap();
        let mean_mse = c.planes.iter().map(|p| p.mse).sum::<f64>() / 3.0;
        assert!((c.mse - mean_mse).abs() < 1e-12);
        let mean_ssim = c.planes.iter().map(|p| p.ssim).sum::<f64>() / 3.0;
        assert!((c.ssim - mean_ssim).abs() < 1e-12);
    }
}
