//! Mean-squared error and peak signal-to-noise ratio.
//!
//! The PSNR peak comes from the *reference* image's bit depth (the `a`
//! argument), matching the convention of the encoder's rate-distortion
//! machinery: an 8-bit reference scores against 255 even if the decoder
//! widened the representation.

use crate::comparator::MetricsError;
use imgio::Image;

/// Mean squared error of one component plane pair.
pub fn mse_plane(a: &Image, b: &Image, comp: usize) -> Result<f64, MetricsError> {
    crate::check_geometry(a, b)?;
    let pa = &a.planes[comp];
    let pb = &b.planes[comp];
    let acc: f64 = pa
        .iter()
        .zip(pb)
        .map(|(&va, &vb)| {
            let d = va as f64 - vb as f64;
            d * d
        })
        .sum();
    Ok(acc / pa.len() as f64)
}

/// Mean squared error across all components.
pub fn mse(a: &Image, b: &Image) -> Result<f64, MetricsError> {
    crate::check_geometry(a, b)?;
    let mut acc = 0.0;
    for c in 0..a.comps() {
        acc += mse_plane(a, b, c)?;
    }
    Ok(acc / a.comps() as f64)
}

/// PSNR of one component plane pair in dB; `f64::INFINITY` when the
/// planes are identical.
pub fn psnr_plane(a: &Image, b: &Image, comp: usize) -> Result<f64, MetricsError> {
    Ok(psnr_from_mse(mse_plane(a, b, comp)?, a.max_value()))
}

/// PSNR across all components in dB; `f64::INFINITY` for identical
/// images.
pub fn psnr(a: &Image, b: &Image) -> Result<f64, MetricsError> {
    Ok(psnr_from_mse(mse(a, b)?, a.max_value()))
}

/// Largest absolute sample difference across all components.
pub fn max_abs_err(a: &Image, b: &Image) -> Result<u16, MetricsError> {
    crate::check_geometry(a, b)?;
    let mut worst = 0u16;
    for (pa, pb) in a.planes.iter().zip(&b.planes) {
        for (&va, &vb) in pa.iter().zip(pb) {
            worst = worst.max(va.abs_diff(vb));
        }
    }
    Ok(worst)
}

pub(crate) fn psnr_from_mse(mse: f64, peak: u16) -> f64 {
    if mse == 0.0 {
        return f64::INFINITY;
    }
    let p = peak as f64;
    10.0 * (p * p / mse).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imgio::synth;

    #[test]
    fn identical_images_are_infinite() {
        let im = synth::natural(16, 16, 1);
        assert_eq!(mse(&im, &im).unwrap(), 0.0);
        assert_eq!(psnr(&im, &im).unwrap(), f64::INFINITY);
        assert_eq!(max_abs_err(&im, &im).unwrap(), 0);
    }

    #[test]
    fn known_error_matches_closed_form() {
        let a = synth::flat(4, 4, 100);
        let b = synth::flat(4, 4, 110);
        assert_eq!(mse(&a, &b).unwrap(), 100.0);
        let p = psnr(&a, &b).unwrap();
        assert!((p - 10.0 * (255.0f64 * 255.0 / 100.0).log10()).abs() < 1e-9);
        assert_eq!(max_abs_err(&a, &b).unwrap(), 10);
    }

    #[test]
    fn agrees_with_imgio_reference() {
        // imgio::psnr is the legacy single-number metric used across the
        // encoder's own tests; the crates must never disagree.
        let a = synth::natural_rgb(33, 21, 5);
        let mut b = a.clone();
        for v in &mut b.planes[1] {
            *v = v.saturating_add(3);
        }
        assert!((mse(&a, &b).unwrap() - imgio::mse(&a, &b).unwrap()).abs() < 1e-12);
        assert!((psnr(&a, &b).unwrap() - imgio::psnr(&a, &b).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn per_plane_localizes_damage() {
        let a = synth::natural_rgb(24, 24, 7);
        let mut b = a.clone();
        for v in &mut b.planes[2] {
            *v = v.saturating_add(20);
        }
        assert_eq!(psnr_plane(&a, &b, 0).unwrap(), f64::INFINITY);
        assert_eq!(psnr_plane(&a, &b, 1).unwrap(), f64::INFINITY);
        assert!(psnr_plane(&a, &b, 2).unwrap() < 30.0);
    }

    #[test]
    fn geometry_mismatch_is_typed() {
        let a = synth::flat(4, 4, 0);
        let b = synth::flat(4, 5, 0);
        assert!(matches!(mse(&a, &b), Err(MetricsError::Geometry(_))));
        assert!(psnr(&a, &synth::natural_rgb(4, 4, 0)).is_err());
    }

    #[test]
    fn peak_follows_reference_depth() {
        let mut a = imgio::Image::new(4, 4, 1, 12).unwrap();
        let mut b = a.clone();
        a.planes[0].fill(2000);
        b.planes[0].fill(2010);
        // Same MSE as the 8-bit case, but a 4095 peak: +24.1 dB.
        let p12 = psnr(&a, &b).unwrap();
        let p8 = 10.0 * (255.0f64 * 255.0 / 100.0).log10();
        assert!((p12 - p8 - 20.0 * (4095.0f64 / 255.0).log10()).abs() < 1e-9);
    }
}
