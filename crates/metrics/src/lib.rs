//! `j2k-metrics` — image quality metrics and an A/B comparator
//! (std-only, like the rest of the workspace).
//!
//! The encoder's conformance story is closed-loop: every codestream the
//! test estate pins is *decoded and measured*, not trusted by stored
//! constants. This crate is the measuring instrument:
//!
//! * [`psnr`] — mean-squared error and peak signal-to-noise ratio,
//!   aggregate and per component;
//! * [`ssim`] — the Wang et al. structural similarity index (11×11
//!   Gaussian window, σ = 1.5), aggregate and per component;
//! * [`comparator`] — [`compare`] runs the full A/B battery in one pass
//!   and returns a [`Comparison`] with hand-rolled JSON and a human
//!   rendering, used by `j2kcell compare`, the golden-corpus suite, and
//!   the decode bench.
//!
//! All metrics operate on [`imgio::Image`] pairs of identical geometry
//! (width, height, components); geometry mismatches are typed
//! [`MetricsError`]s, never panics, so the comparator can sit directly
//! behind fuzzed decoder output.

pub mod comparator;
pub mod psnr;
pub mod ssim;

pub use comparator::{compare, Comparison, MetricsError, PlaneQuality};
pub use psnr::{max_abs_err, mse, mse_plane, psnr, psnr_plane};
pub use ssim::{ssim, ssim_plane};

/// Check that two images are comparable: identical geometry and
/// component count. Every metric entry point funnels through this.
pub(crate) fn check_geometry(
    a: &imgio::Image,
    b: &imgio::Image,
) -> Result<(), comparator::MetricsError> {
    if a.width != b.width || a.height != b.height || a.comps() != b.comps() {
        return Err(comparator::MetricsError::Geometry(format!(
            "{}x{} x{} vs {}x{} x{}",
            a.width,
            a.height,
            a.comps(),
            b.width,
            b.height,
            b.comps()
        )));
    }
    Ok(())
}
