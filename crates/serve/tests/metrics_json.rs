//! Schema-stability and escaping tests for the hand-rolled
//! [`MetricsSnapshot::to_json`] encoder.
//!
//! The wire `Metrics` reply is consumed by external tooling
//! (`serve_load`, dashboards), so its key set and shape are a contract:
//! the golden file pins the exact serialization of a fully populated
//! snapshot. If this test fails because the schema changed *on
//! purpose*, update `tests/golden/metrics_snapshot.json` in the same
//! commit and call the change out in the PR.

use j2k_serve::MetricsSnapshot;
use obs::counters::{Kernel, KernelSnapshot};
use obs::hist::HistogramStats;

fn populated() -> MetricsSnapshot {
    MetricsSnapshot {
        queue_depth: 3,
        queue_capacity: 64,
        accepted: 100,
        rejected: 7,
        completed: 88,
        timed_out: 2,
        cancelled: 1,
        failed: 2,
        jobs_retried: 5,
        jobs_poisoned: 1,
        decoded: 21,
        decode_failed: 3,
        workers_respawned: 4,
        workers_alive: 2,
        pressure_level: 1,
        pressure_transitions: 6,
        jobs_shed: 5,
        jobs_degraded: 2,
        pixels_in_flight: 16384,
        connections_active: 3,
        connections_rejected: 1,
        stage_seconds: vec![("dwt".to_string(), 0.125), ("tier1".to_string(), 1.5)],
        histograms: vec![
            (
                "job_e2e_us".to_string(),
                HistogramStats {
                    count: 88,
                    p50: 1023,
                    p95: 4095,
                    p99: 8191,
                    p999: 8191,
                    max: 7777,
                },
            ),
            (
                "queue_wait_us".to_string(),
                HistogramStats {
                    count: 95,
                    p50: 255,
                    p95: 511,
                    p99: 1023,
                    p999: 2047,
                    max: 1999,
                },
            ),
        ],
        kernels: vec![
            // One measured kernel and one idle kernel: pins both the
            // derived-rate formatting and the all-zeros rendering (the
            // live service always emits the full Kernel::ALL set).
            KernelSnapshot {
                kernel: Kernel::Dwt97Horizontal,
                invocations: 12,
                samples: 3_145_728,
                bytes: 12_582_912,
                symbols: 0,
                ns: 8_000_000,
            },
            KernelSnapshot {
                kernel: Kernel::Tier1Ht,
                invocations: 0,
                samples: 0,
                bytes: 0,
                symbols: 0,
                ns: 0,
            },
        ],
    }
}

#[test]
fn golden_schema_is_stable() {
    let got = populated().to_json();
    let want = include_str!("golden/metrics_snapshot.json").trim_end();
    assert_eq!(
        got, want,
        "MetricsSnapshot::to_json schema drifted from the golden file \
         (crates/serve/tests/golden/metrics_snapshot.json); if intentional, \
         regenerate the golden file in the same commit"
    );
}

#[test]
fn dynamic_names_are_escaped() {
    let mut snap = populated();
    snap.stage_seconds = vec![("we\"ird\\stage\n".to_string(), 1.0)];
    snap.histograms = vec![(
        "se\"ries".to_string(),
        HistogramStats {
            count: 1,
            p50: 1,
            p95: 1,
            p99: 1,
            p999: 1,
            max: 1,
        },
    )];
    let j = snap.to_json();
    assert!(j.contains(r#""we\"ird\\stage\n":1.000000"#));
    assert!(j.contains(r#""se\"ries":{"count":1"#));
    // No raw control characters or unescaped interior quotes survive.
    assert!(!j.contains('\n'));
}

#[test]
fn empty_collections_serialize_as_empty_objects() {
    let mut snap = populated();
    snap.stage_seconds.clear();
    snap.histograms.clear();
    snap.kernels.clear();
    let j = snap.to_json();
    assert!(j.contains("\"stage_seconds\":{}"));
    assert!(j.contains("\"histograms\":{}"));
    assert!(j.contains("\"kernels\":{}"));
}
