//! Wire-protocol robustness, mirroring the decoder's codestream-mutation
//! suite (`crates/core/tests/codestream_robustness.rs`): truncated
//! headers, oversized length claims, mid-frame disconnects, and random
//! payload mutations must produce typed errors — never panics, never
//! allocation beyond the admitted frame.

use j2k_serve::wire::{
    call, encode_request, parse_request, read_frame, write_frame, EncodeRequest, Request,
    WireError, DEFAULT_MAX_FRAME, HEADER_LEN,
};
use rand::{Rng, SeedableRng};

fn valid_frame() -> Vec<u8> {
    let req = Request::Encode(EncodeRequest {
        priority: 1,
        allow_degraded: false,
        timeout_ms: 250,
        params: j2k_core::EncoderParams::lossless(),
        image: imgio::synth::natural_rgb(12, 10, 5),
    });
    let mut buf = Vec::new();
    write_frame(&mut buf, &encode_request(&req)).unwrap();
    buf
}

#[test]
fn truncated_header_every_prefix() {
    let frame = valid_frame();
    for cut in 0..HEADER_LEN {
        let r = read_frame(&mut &frame[..cut], DEFAULT_MAX_FRAME);
        assert!(
            matches!(r, Err(WireError::Truncated)),
            "header prefix {cut}: {r:?}"
        );
    }
}

#[test]
fn mid_frame_disconnect_every_payload_prefix() {
    let frame = valid_frame();
    // Every cut strictly inside the payload: the reader sees a complete
    // header whose length promises more bytes than the peer ever sends.
    for cut in HEADER_LEN..frame.len() {
        let r = read_frame(&mut &frame[..cut], DEFAULT_MAX_FRAME);
        assert!(
            matches!(r, Err(WireError::Truncated)),
            "payload cut {cut}: {r:?}"
        );
    }
}

#[test]
fn oversized_length_claim_errors_before_allocating() {
    // A header claiming u32::MAX payload bytes against a 1 MiB limit:
    // must refuse from the 8 header bytes alone (nothing else exists to
    // read, so completing proves no payload allocation was attempted).
    let mut hdr = Vec::new();
    hdr.extend_from_slice(&j2k_serve::wire::MAGIC.to_be_bytes());
    hdr.push(j2k_serve::wire::VERSION);
    hdr.push(0);
    hdr.extend_from_slice(&u32::MAX.to_be_bytes());
    match read_frame(&mut hdr.as_slice(), 1 << 20) {
        Err(WireError::Oversized { len, max }) => {
            assert_eq!(len, u64::from(u32::MAX));
            assert_eq!(max, 1 << 20);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn bad_magic_and_version_are_rejected() {
    let mut frame = valid_frame();
    frame[0] ^= 0xFF;
    assert!(matches!(
        read_frame(&mut frame.as_slice(), DEFAULT_MAX_FRAME),
        Err(WireError::BadMagic(_))
    ));
    let mut frame = valid_frame();
    frame[2] = 99;
    assert!(matches!(
        read_frame(&mut frame.as_slice(), DEFAULT_MAX_FRAME),
        Err(WireError::BadVersion(99))
    ));
}

#[test]
fn every_single_byte_truncation_of_payload_is_handled() {
    let payload = {
        let frame = valid_frame();
        frame[HEADER_LEN..].to_vec()
    };
    for cut in 0..payload.len() {
        // Must never panic; truncating a variable-length field errors,
        // and no prefix may parse as the full request.
        assert!(parse_request(&payload[..cut]).is_err(), "cut {cut}");
    }
}

#[test]
fn random_payload_mutations_never_panic() {
    let base = {
        let frame = valid_frame();
        frame[HEADER_LEN..].to_vec()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EEDED);
    for _ in 0..2000 {
        let mut p = base.clone();
        for _ in 0..rng.gen_range(1..8usize) {
            let i = rng.gen_range(0..p.len());
            p[i] = (rng.gen_range(0..256u32)) as u8;
        }
        let _ = parse_request(&p); // Ok or Err, never a panic.
    }
}

#[test]
fn geometry_lies_are_rejected_not_allocated() {
    // Inflate the claimed width far beyond the carried samples: the
    // length cross-check must fire before any plane is built.
    let mut payload = {
        let frame = valid_frame();
        frame[HEADER_LEN..].to_vec()
    };
    // Width field lives right after
    // tag(1)+priority(1)+flags(1)+timeout(4)+params(15).
    let woff = 1 + 1 + 1 + 4 + 15;
    payload[woff..woff + 4].copy_from_slice(&0x00FF_FFFFu32.to_be_bytes());
    match parse_request(&payload) {
        Err(WireError::Malformed(m)) => assert!(m.contains("sample"), "{m}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn mutated_decode_requests_never_panic_and_responses_stay_typed() {
    use j2k_serve::wire::{encode_response, parse_response, DecodeRequest, Response};
    // A Decode request whose codestream tail is a real encode, then
    // mutated: the wire layer must parse (the tail is opaque bytes) and
    // the decoder behind it must answer with an image or a typed error —
    // this is the serve-side mirror of the codec fuzz suite.
    let cs = j2k_core::encode(
        &imgio::synth::natural(24, 16, 8),
        &j2k_core::EncoderParams::lossless(),
    )
    .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDEC0DE);
    for _ in 0..300 {
        let mut stream = cs.clone();
        for _ in 0..rng.gen_range(1..6usize) {
            let i = rng.gen_range(0..stream.len());
            stream[i] = rng.gen_range(0..256u32) as u8;
        }
        let payload = encode_request(&Request::Decode(DecodeRequest {
            max_layers: rng.gen_range(0..4u32),
            discard_levels: rng.gen_range(0..3u32) as u8,
            codestream: stream,
        }));
        let Ok(Request::Decode(d)) = parse_request(&payload) else {
            panic!("decode request with opaque tail must reparse");
        };
        // Server-side handling: decode, then serialize whichever response
        // results. Ok or Err — never a panic, and the response reparses.
        let resp = match j2k_core::decode_opts(
            &d.codestream,
            if d.max_layers == 0 {
                usize::MAX
            } else {
                d.max_layers as usize
            },
            usize::from(d.discard_levels),
        ) {
            Ok(im) => Response::DecodeOk(im),
            Err(e) => Response::Failed(e.to_string()),
        };
        assert_eq!(parse_response(&encode_response(&resp)).unwrap(), resp);
    }
}

#[test]
fn random_garbage_frames_never_panic() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for _ in 0..500 {
        let n = rng.gen_range(0..64usize);
        let junk: Vec<u8> = (0..n).map(|_| rng.gen_range(0..256u32) as u8).collect();
        let _ = read_frame(&mut junk.as_slice(), DEFAULT_MAX_FRAME);
        let _ = parse_request(&junk);
    }
}

#[test]
fn call_surfaces_disconnect_as_error() {
    // A "connection" that accepts the request then hangs up mid-reply.
    struct HalfDead {
        reply: std::io::Cursor<Vec<u8>>,
    }
    impl std::io::Read for HalfDead {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.reply.read(buf)
        }
    }
    impl std::io::Write for HalfDead {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    // Reply stream: a valid header promising 100 bytes, then 3 bytes.
    let mut reply = Vec::new();
    reply.extend_from_slice(&j2k_serve::wire::MAGIC.to_be_bytes());
    reply.push(j2k_serve::wire::VERSION);
    reply.push(0);
    reply.extend_from_slice(&100u32.to_be_bytes());
    reply.extend_from_slice(&[1, 2, 3]);
    let mut conn = HalfDead {
        reply: std::io::Cursor::new(reply),
    };
    assert!(matches!(
        call(&mut conn, &Request::Ping, DEFAULT_MAX_FRAME),
        Err(WireError::Truncated)
    ));
}
