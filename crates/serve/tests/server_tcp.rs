//! End-to-end TCP coverage of the daemon loop: encode round trips with
//! byte-identity, metrics over the wire, rejection under pressure, and a
//! server that survives abusive connections.

use j2k_core::EncoderParams;
use j2k_serve::wire::{call, DecodeRequest, EncodeRequest, Request, Response, DEFAULT_MAX_FRAME};
use j2k_serve::{serve, EncodeService, ServerConfig, ServiceConfig};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn start_server(cfg: ServiceConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    start_server_with(cfg, ServerConfig::default())
}

fn start_server_with(
    cfg: ServiceConfig,
    server_cfg: ServerConfig,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let service = Arc::new(EncodeService::start(cfg));
    let t = std::thread::spawn(move || {
        serve(listener, service, server_cfg).unwrap();
    });
    (addr, t)
}

fn encode_req(seed: u64) -> Request {
    Request::Encode(EncodeRequest {
        priority: 0,
        allow_degraded: false,
        timeout_ms: 0,
        params: EncoderParams::lossless(),
        image: imgio::synth::natural(40, 40, seed),
    })
}

#[test]
fn tcp_encode_roundtrip_is_byte_identical_and_shutdown_works() {
    let (addr, server) = start_server(ServiceConfig::default());
    let mut conn = TcpStream::connect(addr).unwrap();

    // Ping.
    assert_eq!(
        call(&mut conn, &Request::Ping, DEFAULT_MAX_FRAME).unwrap(),
        Response::Pong
    );

    // Encode twice over one connection; verify byte-identity + decode.
    for seed in [3u64, 4] {
        match call(&mut conn, &encode_req(seed), DEFAULT_MAX_FRAME).unwrap() {
            Response::EncodeOk {
                codestream: cs,
                degraded,
            } => {
                assert!(!degraded);
                let im = imgio::synth::natural(40, 40, seed);
                assert_eq!(
                    cs,
                    j2k_core::encode(&im, &EncoderParams::lossless()).unwrap()
                );
                assert_eq!(j2k_core::decode(&cs).unwrap(), im);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    // Metrics over the wire reflect the work.
    match call(&mut conn, &Request::Metrics, DEFAULT_MAX_FRAME).unwrap() {
        Response::MetricsJson(j) => {
            assert!(j.contains("\"completed\":2"), "{j}");
            assert!(j.contains("\"tier1\""), "{j}");
        }
        other => panic!("unexpected response {other:?}"),
    }

    // Shutdown drains and the serve loop returns.
    assert_eq!(
        call(&mut conn, &Request::Shutdown, DEFAULT_MAX_FRAME).unwrap(),
        Response::Pong
    );
    server.join().unwrap();
}

#[test]
fn tcp_decode_closes_the_loop() {
    let (addr, server) = start_server(ServiceConfig::default());
    let mut conn = TcpStream::connect(addr).unwrap();

    // Encode on the server, decode on the server, compare locally: the
    // service round-trips losslessly without the client ever touching
    // the codec.
    let im = imgio::synth::natural_rgb(48, 36, 9);
    let cs = match call(
        &mut conn,
        &Request::Encode(EncodeRequest {
            priority: 0,
            allow_degraded: false,
            timeout_ms: 0,
            params: EncoderParams::lossless(),
            image: im.clone(),
        }),
        DEFAULT_MAX_FRAME,
    )
    .unwrap()
    {
        Response::EncodeOk { codestream: cs, .. } => cs,
        other => panic!("unexpected response {other:?}"),
    };
    match call(
        &mut conn,
        &Request::Decode(DecodeRequest {
            max_layers: 0,
            discard_levels: 0,
            codestream: cs.clone(),
        }),
        DEFAULT_MAX_FRAME,
    )
    .unwrap()
    {
        Response::DecodeOk(back) => assert_eq!(back, im),
        other => panic!("unexpected response {other:?}"),
    }

    // A garbage codestream comes back as a typed failure, not a dead
    // connection.
    match call(
        &mut conn,
        &Request::Decode(DecodeRequest {
            max_layers: 0,
            discard_levels: 0,
            codestream: vec![0xDE, 0xAD, 0xBE, 0xEF],
        }),
        DEFAULT_MAX_FRAME,
    )
    .unwrap()
    {
        Response::Failed(m) => assert!(!m.is_empty()),
        other => panic!("unexpected response {other:?}"),
    }

    // Both outcomes are visible in the metrics.
    match call(&mut conn, &Request::Metrics, DEFAULT_MAX_FRAME).unwrap() {
        Response::MetricsJson(j) => {
            assert!(j.contains("\"decoded\":1"), "{j}");
            assert!(j.contains("\"decode_failed\":1"), "{j}");
        }
        other => panic!("unexpected response {other:?}"),
    }

    assert_eq!(
        call(&mut conn, &Request::Shutdown, DEFAULT_MAX_FRAME).unwrap(),
        Response::Pong
    );
    server.join().unwrap();
}

#[test]
fn server_survives_garbage_and_mid_frame_disconnects() {
    let (addr, server) = start_server(ServiceConfig::default());

    // Garbage bytes: server drops the connection, stays alive.
    {
        use std::io::Write;
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"not a frame at all").unwrap();
    }
    // Mid-frame disconnect: header promises more than we send.
    {
        use std::io::Write;
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut partial = Vec::new();
        partial.extend_from_slice(&j2k_serve::wire::MAGIC.to_be_bytes());
        partial.push(j2k_serve::wire::VERSION);
        partial.push(0);
        partial.extend_from_slice(&1000u32.to_be_bytes());
        partial.extend_from_slice(&[0u8; 10]);
        conn.write_all(&partial).unwrap();
    }

    // A healthy client still gets served.
    let mut conn = TcpStream::connect(addr).unwrap();
    assert!(matches!(
        call(&mut conn, &encode_req(5), DEFAULT_MAX_FRAME).unwrap(),
        Response::EncodeOk { .. }
    ));
    assert_eq!(
        call(&mut conn, &Request::Shutdown, DEFAULT_MAX_FRAME).unwrap(),
        Response::Pong
    );
    server.join().unwrap();
}

#[test]
fn slow_loris_connection_is_deadlined_and_server_stays_responsive() {
    use std::io::{Read, Write};
    // A short io deadline: the stalled peer must be cut loose quickly.
    let (addr, server) = start_server_with(
        ServiceConfig::default(),
        ServerConfig {
            io_timeout: Some(std::time::Duration::from_millis(100)),
            ..ServerConfig::default()
        },
    );

    // The slow loris: send the 2 magic bytes of the 8-byte header, then
    // stall.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris
        .write_all(&j2k_serve::wire::MAGIC.to_be_bytes())
        .unwrap();

    // A healthy client is served while the loris dangles.
    let mut conn = TcpStream::connect(addr).unwrap();
    assert!(matches!(
        call(&mut conn, &encode_req(6), DEFAULT_MAX_FRAME).unwrap(),
        Response::EncodeOk { .. }
    ));

    // The loris's read deadline fires: its connection gets closed (read
    // returns 0/err), never a reply frame.
    loris
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    match loris.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("stalled peer unexpectedly got {n} bytes back"),
    }

    assert_eq!(
        call(&mut conn, &Request::Shutdown, DEFAULT_MAX_FRAME).unwrap(),
        Response::Pong
    );
    server.join().unwrap();
}

#[test]
fn connection_cap_refuses_excess_conns_with_overloaded() {
    use j2k_serve::wire::RejectReason;
    let (addr, server) = start_server_with(
        ServiceConfig::default(),
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    );

    // First connection occupies the only slot...
    let mut held = TcpStream::connect(addr).unwrap();
    assert_eq!(
        call(&mut held, &Request::Ping, DEFAULT_MAX_FRAME).unwrap(),
        Response::Pong
    );
    // ...so the next one is refused with a typed reply carrying a retry
    // hint, not a silent close or a hang. The accept loop only counts a
    // connection after a successful handshake of the previous one, so
    // poll until the reject (the spawn that frees/occupies the slot is
    // asynchronous only on *close*, which never happens here).
    let mut reader = std::io::BufReader::new(TcpStream::connect(addr).unwrap());
    let payload = j2k_serve::wire::read_frame(&mut reader, DEFAULT_MAX_FRAME).unwrap();
    match j2k_serve::wire::parse_response(&payload).unwrap() {
        Response::Rejected(RejectReason::Overloaded { retry_after_ms: _ }) => {}
        other => panic!("expected Overloaded reject, got {other:?}"),
    }

    // The held connection still works, and can shut the server down.
    assert_eq!(
        call(&mut held, &Request::Shutdown, DEFAULT_MAX_FRAME).unwrap(),
        Response::Pong
    );
    server.join().unwrap();
}
