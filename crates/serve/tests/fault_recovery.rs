//! Deterministic recovery tests: every fault path of the self-healing
//! service driven by `faultsim` failpoint schedules — no sleeps, no
//! timing assumptions. Requires `--features failpoints`; without it the
//! whole file compiles away (matching the production build, where the
//! failpoints themselves compile to nothing).
//!
//! The failpoint registry is process-global, so the tests in this binary
//! serialize on a static lock and reset the registry on entry and exit
//! (drop guard — survives asserts mid-test).

#![cfg(feature = "failpoints")]

use faultsim::{random_schedule, FaultAction, FaultSpec};
use imgio::Image;
use j2k_core::EncoderParams;
use j2k_serve::wire::{call, write_frame, EncodeRequest, Request, Response};
use j2k_serve::{serve, EncodeJob, EncodeService, JobOutcome, ServerConfig, ServiceConfig};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

/// Serialize on the registry and guarantee a clean slate before *and*
/// after, even when the test body asserts out early.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultGuard {
    fn take() -> Self {
        let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        faultsim::reset();
        FaultGuard(g)
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faultsim::reset();
    }
}

fn image(seed: u64) -> Image {
    imgio::synth::natural(40, 40, seed)
}

/// One worker, zero backoff, default retry budget of one — the tightest
/// deterministic arena: every queue event is sequenced by that single
/// worker.
fn one_worker_cfg() -> ServiceConfig {
    ServiceConfig {
        queue_capacity: 8,
        pool_threads: 1,
        workers_per_job: 1,
        default_timeout: None,
        max_crash_retries: 1,
        retry_backoff: Duration::ZERO,
        ..ServiceConfig::default()
    }
}

fn sequential(im: &Image, params: &EncoderParams) -> Vec<u8> {
    j2k_core::encode(im, params).unwrap()
}

/// ISSUE scenario 1: a panic mid-Tier-1 kills the worker; the supervisor
/// respawns it and the retried job completes **byte-identical** to the
/// sequential encoder.
#[test]
fn panic_mid_tier1_respawns_worker_and_retries_byte_identical() {
    let _g = FaultGuard::take();
    faultsim::arm(
        "tier1.block",
        FaultSpec::once(FaultAction::Panic("tier1 chaos".into())),
    );
    let svc = EncodeService::start(one_worker_cfg());
    let im = image(1);
    let params = EncoderParams::lossless();
    let h = svc.submit(EncodeJob::new(im.clone(), params)).unwrap();
    match h.wait() {
        JobOutcome::Completed { codestream, .. } => {
            assert_eq!(
                codestream,
                sequential(&im, &params),
                "retry must be byte-identical"
            );
        }
        other => panic!("expected Completed after respawn+retry, got {other:?}"),
    }
    let m = svc.metrics();
    assert_eq!(m.completed, 1);
    assert_eq!(m.jobs_retried, 1, "one crash retry was scheduled");
    assert_eq!(m.workers_respawned, 1, "the crashed worker was replaced");
    assert_eq!(m.jobs_poisoned, 0);
    let health = svc.health();
    assert_eq!(health.workers_alive, 1, "pool back at strength");
    assert!(health.ready());
    svc.shutdown();
}

/// ISSUE scenario 2: a job that crashes its worker twice exhausts the
/// retry budget and is quarantined with a typed `Poisoned` outcome; the
/// service keeps serving.
#[test]
fn double_crash_quarantines_job_as_poisoned() {
    let _g = FaultGuard::take();
    // Fire on hits 1 and 2 of `worker.job_start`: the first attempt and
    // its retry both crash; the budget (1 retry) is then spent.
    faultsim::arm(
        "worker.job_start",
        FaultSpec::at(FaultAction::Panic("job_start chaos".into()), 1, 2),
    );
    let svc = EncodeService::start(one_worker_cfg());
    let h = svc
        .submit(EncodeJob::new(image(2), EncoderParams::lossless()))
        .unwrap();
    let id = h.id();
    match h.wait() {
        JobOutcome::Poisoned { message } => {
            assert!(message.contains("quarantined"), "got: {message}");
        }
        other => panic!("expected Poisoned after double crash, got {other:?}"),
    }
    let m = svc.metrics();
    assert_eq!(m.jobs_poisoned, 1);
    assert_eq!(m.jobs_retried, 1, "only the first crash earned a retry");
    assert_eq!(svc.health().jobs_poisoned, 1);
    assert!(svc.quarantined().contains(&id));
    // The quarantine is per-job: the pool is intact and fresh work runs.
    let im = image(3);
    let params = EncoderParams::lossless();
    let h2 = svc.submit(EncodeJob::new(im.clone(), params)).unwrap();
    match h2.wait() {
        JobOutcome::Completed { codestream, .. } => {
            assert_eq!(codestream, sequential(&im, &params));
        }
        other => panic!("service should still serve after a quarantine, got {other:?}"),
    }
    // h2 completed, so the second respawn demonstrably happened (a dead
    // pool of one cannot encode) — the count is now deterministic.
    assert_eq!(
        svc.metrics().workers_respawned,
        2,
        "both crashed workers were replaced"
    );
    svc.shutdown();
}

/// ISSUE scenario 4: a deadline that would expire during the retry's
/// backoff resolves `TimedOut` immediately — the job is not retried and
/// nothing waits out the backoff.
#[test]
fn deadline_expiring_during_backoff_is_timeout_not_retry() {
    let _g = FaultGuard::take();
    faultsim::arm(
        "worker.job_start",
        FaultSpec::once(FaultAction::Panic("crash before encode".into())),
    );
    let svc = EncodeService::start(ServiceConfig {
        // Backoff far beyond the deadline: a scheduled retry could never
        // start in time, so the crash must resolve as a timeout *now*.
        retry_backoff: Duration::from_secs(3600),
        max_crash_retries: 3,
        ..one_worker_cfg()
    });
    let h = svc
        .submit(EncodeJob {
            timeout: Some(Duration::from_secs(5)),
            ..EncodeJob::new(image(4), EncoderParams::lossless())
        })
        .unwrap();
    assert!(matches!(h.wait(), JobOutcome::TimedOut));
    let m = svc.metrics();
    assert_eq!(m.timed_out, 1);
    assert_eq!(
        m.jobs_retried, 0,
        "no retry may be scheduled past the deadline"
    );
    assert_eq!(m.jobs_poisoned, 0);
    // (workers_respawned is not asserted here: the job resolves before
    // the supervisor necessarily processes the worker's exit, and a
    // shutdown racing the respawn may legitimately skip it.)
    svc.shutdown();
}

/// An injected *error* (as opposed to a panic) is an ordinary encoder
/// failure: typed `Failed`, no crash, no respawn, no retry.
#[test]
fn injected_error_fails_job_without_crashing_worker() {
    let _g = FaultGuard::take();
    faultsim::arm(
        "dwt.level",
        FaultSpec::once(FaultAction::Error("dwt fault".into())),
    );
    let svc = EncodeService::start(one_worker_cfg());
    let h = svc
        .submit(EncodeJob::new(image(5), EncoderParams::lossless()))
        .unwrap();
    match h.wait() {
        JobOutcome::Failed(m) => assert!(m.contains("injected"), "got: {m}"),
        other => panic!("expected Failed, got {other:?}"),
    }
    let m = svc.metrics();
    assert_eq!(m.failed, 1);
    assert_eq!(m.workers_respawned, 0);
    assert_eq!(m.jobs_retried, 0);
    assert_eq!(m.workers_alive, 1);
    svc.shutdown();
}

/// ISSUE scenario 3: a wire-read fault mid-connection drops that
/// connection cleanly — the accept loop, the service, and subsequent
/// connections are untouched.
#[test]
fn wire_read_fault_drops_connection_cleanly() {
    let _g = FaultGuard::take();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let service = Arc::new(EncodeService::start(one_worker_cfg()));
    let server = std::thread::spawn(move || {
        serve(listener, service, ServerConfig::default()).unwrap();
    });
    // Arm *after* the server is up: hit 1 of `wire.read` is the handler's
    // first read on the next connection, which dies as if the transport
    // failed mid-frame.
    faultsim::arm(
        "wire.read",
        FaultSpec::once(FaultAction::Error("transport chaos".into())),
    );
    let max = ServerConfig::default().max_frame;
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        // The handler's read already failed; the write may or may not be
        // accepted by the dying socket. Only the observable contract
        // matters: the server closes the connection without replying.
        let _ = write_frame(&mut conn, &j2k_serve::wire::encode_request(&Request::Ping));
        let mut buf = [0u8; 1];
        match conn.read(&mut buf) {
            Ok(0) => {} // clean FIN
            Ok(n) => panic!("server replied {n} bytes on a dead connection"),
            Err(_) => {} // RST — equally a closed connection
        }
    }
    // The failpoint is spent; a fresh connection gets full service, and
    // an encode proves the worker pool never noticed the wire fault.
    let mut conn = TcpStream::connect(addr).unwrap();
    assert!(matches!(
        call(&mut conn, &Request::Ping, max),
        Ok(Response::Pong)
    ));
    let im = image(6);
    let params = EncoderParams::lossless();
    let resp = call(
        &mut conn,
        &Request::Encode(EncodeRequest {
            priority: 0,
            allow_degraded: false,
            timeout_ms: 0,
            params,
            image: im.clone(),
        }),
        max,
    )
    .unwrap();
    match resp {
        Response::EncodeOk { codestream: cs, .. } => assert_eq!(cs, sequential(&im, &params)),
        other => panic!("expected EncodeOk, got {other:?}"),
    }
    match call(&mut conn, &Request::Health, max).unwrap() {
        Response::Health(h) => {
            assert_eq!(h.workers_alive, 1);
            assert_eq!(h.jobs_poisoned, 0);
            assert!(h.accepting);
        }
        other => panic!("expected Health, got {other:?}"),
    }
    assert!(matches!(
        call(&mut conn, &Request::Shutdown, max),
        Ok(Response::Pong)
    ));
    server.join().unwrap();
}

/// Observability satellite: a traced, failpoint-crashed, retried job
/// yields **one** retained trace that tells the whole story — the armed
/// failpoint firing, the worker crash, the retry backoff instant, the
/// requeue — and the retried result is still byte-identical. No sleeps:
/// zero backoff sequences every event through the single worker.
#[test]
fn traced_crash_retry_trace_tells_the_story_and_stays_byte_identical() {
    let _g = FaultGuard::take();
    // The trace sink is process-global like the failpoint registry; the
    // FaultGuard lock already serializes this binary's tests around it.
    obs::trace::reset();
    obs::trace::set_enabled(true);
    struct TraceOff;
    impl Drop for TraceOff {
        fn drop(&mut self) {
            obs::trace::set_enabled(false);
            obs::trace::reset();
        }
    }
    let _t = TraceOff;
    faultsim::arm(
        "tier1.block",
        FaultSpec::once(FaultAction::Panic("traced tier1 chaos".into())),
    );
    let svc = EncodeService::start(one_worker_cfg());
    let im = image(7);
    let params = EncoderParams::lossless();
    let h = svc.submit(EncodeJob::new(im.clone(), params)).unwrap();
    let id = h.id();
    match h.wait() {
        JobOutcome::Completed { codestream, .. } => {
            assert_eq!(
                codestream,
                sequential(&im, &params),
                "traced retry must stay byte-identical"
            );
        }
        other => panic!("expected Completed after respawn+retry, got {other:?}"),
    }
    let json = svc
        .trace_json(id)
        .expect("a traced completed job retains its trace");
    assert_eq!(
        svc.trace_json(0).as_deref(),
        Some(json.as_str()),
        "job 0 aliases the most recent trace"
    );
    let events = obs::chrome::check(
        &json,
        &[
            "queue-push",
            "queue-pop",
            "queue-wait",
            "failpoint:tier1.block",
            "worker-crash",
            "retry-backoff",
            "queue-requeue",
            "encode",
            "tier1",
        ],
    )
    .expect("trace must parse as Chrome JSON with the full crash story");
    // One trace, one story: every event belongs to this job's trace id,
    // and the crash precedes the backoff which precedes the requeue.
    let tid = events
        .iter()
        .find_map(|e| e.trace_id())
        .expect("events carry the trace id");
    assert!(events.iter().all(|e| e.trace_id() == Some(tid)));
    let ts_of = |name: &str| {
        events
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.ts_us)
            .unwrap()
    };
    assert!(ts_of("failpoint:tier1.block") <= ts_of("worker-crash"));
    assert!(ts_of("worker-crash") <= ts_of("retry-backoff"));
    assert!(ts_of("retry-backoff") <= ts_of("queue-requeue"));
    svc.shutdown();
}

/// Seeded chaos: a random schedule over every service-level failpoint.
/// Every job must reach a terminal outcome, completed jobs must stay
/// byte-identical, and shutdown must drain — whatever the faults did.
/// Reproduce a failure with `CHAOS_SEED=<printed seed>`.
#[test]
fn seeded_chaos_schedule_resolves_every_job() {
    let _g = FaultGuard::take();
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    println!("chaos seed: {seed}");
    let schedule = random_schedule(
        seed,
        // `wire.read` is excluded: this test's in-process client shares
        // the global registry, so wire faults would fire on the test's
        // own reads rather than a victim the test controls.
        &["worker.job_start", "tier1.block", "dwt.level", "queue.pop"],
        6,
        8,
        2,
    );
    assert_eq!(faultsim::arm_schedule(&schedule), schedule.len());
    let svc = EncodeService::start(ServiceConfig {
        queue_capacity: 16,
        pool_threads: 2,
        workers_per_job: 1,
        default_timeout: None,
        max_crash_retries: 2,
        retry_backoff: Duration::ZERO,
        ..ServiceConfig::default()
    });
    let jobs: Vec<(Image, EncoderParams)> = (0..8)
        .map(|i| {
            (
                imgio::synth::natural(24, 24, 100 + i),
                EncoderParams::lossless(),
            )
        })
        .collect();
    let handles: Vec<_> = jobs
        .iter()
        .map(|(im, p)| svc.submit(EncodeJob::new(im.clone(), *p)).unwrap())
        .collect();
    for (h, (im, p)) in handles.into_iter().zip(&jobs) {
        match h.wait() {
            JobOutcome::Completed { codestream, .. } => {
                assert_eq!(
                    codestream,
                    sequential(im, p),
                    "chaos must never corrupt a completed encode (seed {seed})"
                );
            }
            // Injected errors and exhausted retry budgets are legitimate
            // terminal outcomes under chaos; hangs and corruption are not.
            JobOutcome::Failed(_) | JobOutcome::Poisoned { .. } => {}
            other => panic!("unexpected outcome {other:?} (seed {seed})"),
        }
    }
    // Drain invariant: shutdown completes no matter what the schedule
    // did to the pool.
    svc.shutdown();
    let m = svc.metrics();
    assert_eq!(
        m.completed + m.failed + m.jobs_poisoned,
        8,
        "every job reached exactly one terminal state (seed {seed})"
    );
}
