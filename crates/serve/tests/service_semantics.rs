//! Service-semantics coverage: queue-full rejection, deadline firing
//! mid-encode, cancellation, priority scheduling, and graceful shutdown
//! with in-flight jobs. All deterministic — synchronization goes through
//! the service's pause/resume drain hook and blocking waits, never
//! through sleeps.

use j2k_core::EncoderParams;
use j2k_serve::{
    EncodeJob, EncodeService, JobOutcome, PressureConfig, PressureLevel, ServiceConfig, SubmitError,
};
use std::time::Duration;

fn job(seed: u64) -> EncodeJob {
    EncodeJob::new(
        imgio::synth::natural(48, 48, seed),
        EncoderParams::lossless(),
    )
}

#[test]
fn queue_full_rejects_with_overloaded_and_drains_byte_identical() {
    let svc = EncodeService::start(ServiceConfig {
        queue_capacity: 2,
        pool_threads: 1,
        ..ServiceConfig::default()
    });
    // Hold the pool at the queue so submissions stay queued: the queue
    // state is exact, not racing the workers.
    svc.pause();
    let h1 = svc.submit(job(1)).unwrap();
    let h2 = svc.submit(job(2)).unwrap();
    assert_eq!(svc.queue_depth(), 2);
    // Third job: admission control must refuse with the typed error,
    // carrying a machine-usable retry hint...
    match svc.submit(job(3)).unwrap_err() {
        SubmitError::Overloaded {
            capacity,
            retry_after_ms,
        } => {
            assert_eq!(capacity, 2);
            assert!(retry_after_ms > 0, "retry hint must be actionable");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // ...without having buffered anything.
    assert_eq!(svc.queue_depth(), 2);
    let m = svc.metrics();
    assert_eq!((m.accepted, m.rejected), (2, 1));

    svc.resume();
    for (h, seed) in [(h1, 1), (h2, 2)] {
        match h.wait() {
            JobOutcome::Completed { codestream, .. } => {
                // Every accepted job's output is byte-identical to the
                // sequential encoder for the same input.
                let seq = j2k_core::encode(
                    &imgio::synth::natural(48, 48, seed),
                    &EncoderParams::lossless(),
                )
                .unwrap();
                assert_eq!(codestream, seq);
            }
            other => panic!("job {seed}: unexpected outcome {other:?}"),
        }
    }
    assert_eq!(svc.metrics().completed, 2);
}

#[test]
fn deadline_fires_mid_encode() {
    let svc = EncodeService::start(ServiceConfig {
        pool_threads: 1,
        ..ServiceConfig::default()
    });
    // Zero timeout: the deadline is already behind the encode when a
    // worker claims the job, so the control's first in-encode checkpoint
    // fires — the timeout path runs *inside* the encoder, not in the
    // queue, and needs no wall-clock coordination to be exercised.
    let h = svc
        .submit(EncodeJob {
            timeout: Some(Duration::ZERO),
            ..job(7)
        })
        .unwrap();
    assert!(matches!(h.wait(), JobOutcome::TimedOut));
    let m = svc.metrics();
    assert_eq!((m.timed_out, m.completed), (1, 0));
}

#[test]
fn default_timeout_applies_when_job_sets_none() {
    let svc = EncodeService::start(ServiceConfig {
        pool_threads: 1,
        default_timeout: Some(Duration::ZERO),
        ..ServiceConfig::default()
    });
    let h = svc.submit(job(8)).unwrap();
    assert!(matches!(h.wait(), JobOutcome::TimedOut));
}

#[test]
fn cancel_stops_job() {
    let svc = EncodeService::start(ServiceConfig {
        pool_threads: 1,
        ..ServiceConfig::default()
    });
    svc.pause();
    let h = svc.submit(job(9)).unwrap();
    // Cancel while the job is still queued: the worker claims it after
    // resume and the control stops the encode at its first checkpoint.
    h.cancel();
    svc.resume();
    assert!(matches!(h.wait(), JobOutcome::Cancelled));
    assert_eq!(svc.metrics().cancelled, 1);
}

#[test]
fn priorities_order_the_queue() {
    let svc = EncodeService::start(ServiceConfig {
        queue_capacity: 8,
        pool_threads: 1,
        ..ServiceConfig::default()
    });
    svc.pause();
    let lo = svc
        .submit(EncodeJob {
            priority: 0,
            ..job(10)
        })
        .unwrap();
    let hi = svc
        .submit(EncodeJob {
            priority: 9,
            ..job(11)
        })
        .unwrap();
    svc.resume();
    // With one pool thread, completion order == queue order; the
    // higher-priority job must finish with a lower completion count
    // observed when it resolves. Both must complete regardless.
    assert!(matches!(hi.wait(), JobOutcome::Completed { .. }));
    assert!(matches!(lo.wait(), JobOutcome::Completed { .. }));
    assert_eq!(svc.metrics().completed, 2);
}

#[test]
fn graceful_shutdown_drains_in_flight_and_queued_jobs() {
    let svc = EncodeService::start(ServiceConfig {
        queue_capacity: 8,
        pool_threads: 2,
        ..ServiceConfig::default()
    });
    svc.pause();
    let handles: Vec<_> = (0..3).map(|s| svc.submit(job(20 + s)).unwrap()).collect();
    assert_eq!(svc.queue_depth(), 3);

    // Close intake: synchronous, so the rejection below cannot race.
    svc.begin_shutdown();
    assert_eq!(svc.submit(job(99)).unwrap_err(), SubmitError::ShuttingDown);

    // Drain: every already-admitted job must still complete.
    for h in handles {
        assert!(matches!(h.wait(), JobOutcome::Completed { .. }));
    }
    svc.shutdown();
    let m = svc.metrics();
    assert_eq!((m.completed, m.queue_depth), (3, 0));
}

/// Pressure thresholds driven purely by queue depth: the wait-p95 signal
/// is disabled so the tests control the level exactly through `pause()`
/// and submit counts — fully deterministic, no sleeps, no manual clock.
fn depth_only_pressure(elevated: f64, critical: f64) -> PressureConfig {
    PressureConfig {
        elevated_depth: elevated,
        critical_depth: critical,
        elevated_wait_p95_us: u64::MAX,
        critical_wait_p95_us: u64::MAX,
        min_sample_interval: Duration::ZERO,
        cool_samples: 1,
        ..PressureConfig::default()
    }
}

#[test]
fn drain_during_overload_completes_in_flight_byte_identical() {
    // Graceful shutdown racing active shedding: jobs admitted before the
    // storm must all complete, byte-identical, while late low-priority
    // work is shed with a retry hint and pressure decays back to Nominal
    // as the drain empties the queue.
    let svc = EncodeService::start(ServiceConfig {
        queue_capacity: 4,
        pool_threads: 1,
        high_priority_min: 5,
        pressure: depth_only_pressure(0.5, 0.9),
        ..ServiceConfig::default()
    });
    svc.pause();
    let handles: Vec<_> = (0..4)
        .map(|s| {
            svc.submit(EncodeJob {
                priority: 9,
                ..job(40 + s)
            })
            .unwrap()
        })
        .collect();
    // Depth 4/4 at the fifth submit's sample: Critical. Low priority is
    // shed with an actionable hint; the high-priority admissions above
    // were not (priority 9 >= high_priority_min).
    match svc
        .submit(EncodeJob {
            priority: 0,
            ..job(99)
        })
        .unwrap_err()
    {
        SubmitError::Overloaded { retry_after_ms, .. } => {
            assert!(retry_after_ms > 0, "shed must carry a retry hint")
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(svc.pressure().level(), PressureLevel::Critical);

    // Shut down while shedding: everything already admitted still drains.
    svc.begin_shutdown();
    svc.resume();
    for (s, h) in handles.into_iter().enumerate() {
        match h.wait() {
            JobOutcome::Completed {
                codestream,
                degraded,
            } => {
                assert!(!degraded);
                let seq = j2k_core::encode(
                    &imgio::synth::natural(48, 48, 40 + s as u64),
                    &EncoderParams::lossless(),
                )
                .unwrap();
                assert_eq!(codestream, seq, "job {s} not byte-identical");
            }
            other => panic!("job {s}: unexpected outcome {other:?}"),
        }
    }
    svc.shutdown();
    // The worker re-samples after each completion, so the drain itself
    // cooled the controller: Critical -> Elevated -> Nominal.
    assert_eq!(svc.pressure().level(), PressureLevel::Nominal);
    let m = svc.metrics();
    assert_eq!((m.completed, m.jobs_shed, m.rejected), (4, 1, 1));
    assert!(
        m.pressure_transitions >= 3,
        "expected a full Nominal->Critical->Nominal arc, saw {} transitions",
        m.pressure_transitions
    );
}

#[test]
fn elevated_pressure_degrades_opted_in_jobs_and_sheds_the_rest() {
    let svc = EncodeService::start(ServiceConfig {
        queue_capacity: 8,
        pool_threads: 1,
        high_priority_min: 5,
        pressure: depth_only_pressure(0.25, 0.9),
        ..ServiceConfig::default()
    });
    svc.pause();
    // Fill to Elevated: by the third submit the sampled depth is 2/8 =
    // 0.25, at the threshold.
    let fillers: Vec<_> = (0..3)
        .map(|s| {
            svc.submit(EncodeJob {
                priority: 9,
                ..job(50 + s)
            })
            .unwrap()
        })
        .collect();
    assert_eq!(svc.pressure().level(), PressureLevel::Elevated);

    // Low priority, opted in: admitted, transparently downgraded to the
    // HT coder.
    let degraded_h = svc
        .submit(EncodeJob {
            priority: 0,
            allow_degraded: true,
            ..job(60)
        })
        .unwrap();
    // Low priority, no opt-in: shed.
    assert!(matches!(
        svc.submit(EncodeJob {
            priority: 0,
            ..job(61)
        }),
        Err(SubmitError::Overloaded { .. })
    ));
    // High priority, no opt-in: admitted at full fidelity even Elevated.
    let hi_h = svc
        .submit(EncodeJob {
            priority: 9,
            ..job(62)
        })
        .unwrap();

    svc.resume();
    match degraded_h.wait() {
        JobOutcome::Completed {
            codestream,
            degraded,
        } => {
            assert!(degraded, "opted-in job must be marked degraded");
            // Degradation is a policy change, not a correctness one: the
            // bytes equal the sequential encode under the degraded params.
            let (dparams, switched) = EncoderParams::lossless().degrade_for_load();
            assert!(switched);
            let seq = j2k_core::encode(&imgio::synth::natural(48, 48, 60), &dparams).unwrap();
            assert_eq!(codestream, seq);
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    match hi_h.wait() {
        JobOutcome::Completed {
            codestream,
            degraded,
        } => {
            assert!(!degraded, "high-priority job must keep full fidelity");
            let seq = j2k_core::encode(
                &imgio::synth::natural(48, 48, 62),
                &EncoderParams::lossless(),
            )
            .unwrap();
            assert_eq!(codestream, seq);
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    for h in fillers {
        assert!(matches!(h.wait(), JobOutcome::Completed { .. }));
    }
    let m = svc.metrics();
    assert_eq!((m.jobs_degraded, m.jobs_shed), (1, 1));
}

#[test]
fn shutdown_is_idempotent_and_drop_safe() {
    let svc = EncodeService::start(ServiceConfig::default());
    let h = svc.submit(job(30)).unwrap();
    svc.shutdown();
    svc.shutdown();
    assert!(matches!(h.wait(), JobOutcome::Completed { .. }));
    drop(svc); // Drop runs shutdown again; must not hang or panic.
}
