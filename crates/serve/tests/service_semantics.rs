//! Service-semantics coverage: queue-full rejection, deadline firing
//! mid-encode, cancellation, priority scheduling, and graceful shutdown
//! with in-flight jobs. All deterministic — synchronization goes through
//! the service's pause/resume drain hook and blocking waits, never
//! through sleeps.

use j2k_core::EncoderParams;
use j2k_serve::{EncodeJob, EncodeService, JobOutcome, ServiceConfig, SubmitError};
use std::time::Duration;

fn job(seed: u64) -> EncodeJob {
    EncodeJob::new(
        imgio::synth::natural(48, 48, seed),
        EncoderParams::lossless(),
    )
}

#[test]
fn queue_full_rejects_with_overloaded_and_drains_byte_identical() {
    let svc = EncodeService::start(ServiceConfig {
        queue_capacity: 2,
        pool_threads: 1,
        ..ServiceConfig::default()
    });
    // Hold the pool at the queue so submissions stay queued: the queue
    // state is exact, not racing the workers.
    svc.pause();
    let h1 = svc.submit(job(1)).unwrap();
    let h2 = svc.submit(job(2)).unwrap();
    assert_eq!(svc.queue_depth(), 2);
    // Third job: admission control must refuse with the typed error...
    assert_eq!(
        svc.submit(job(3)).unwrap_err(),
        SubmitError::Overloaded { capacity: 2 }
    );
    // ...without having buffered anything.
    assert_eq!(svc.queue_depth(), 2);
    let m = svc.metrics();
    assert_eq!((m.accepted, m.rejected), (2, 1));

    svc.resume();
    for (h, seed) in [(h1, 1), (h2, 2)] {
        match h.wait() {
            JobOutcome::Completed { codestream } => {
                // Every accepted job's output is byte-identical to the
                // sequential encoder for the same input.
                let seq = j2k_core::encode(
                    &imgio::synth::natural(48, 48, seed),
                    &EncoderParams::lossless(),
                )
                .unwrap();
                assert_eq!(codestream, seq);
            }
            other => panic!("job {seed}: unexpected outcome {other:?}"),
        }
    }
    assert_eq!(svc.metrics().completed, 2);
}

#[test]
fn deadline_fires_mid_encode() {
    let svc = EncodeService::start(ServiceConfig {
        pool_threads: 1,
        ..ServiceConfig::default()
    });
    // Zero timeout: the deadline is already behind the encode when a
    // worker claims the job, so the control's first in-encode checkpoint
    // fires — the timeout path runs *inside* the encoder, not in the
    // queue, and needs no wall-clock coordination to be exercised.
    let h = svc
        .submit(EncodeJob {
            timeout: Some(Duration::ZERO),
            ..job(7)
        })
        .unwrap();
    assert!(matches!(h.wait(), JobOutcome::TimedOut));
    let m = svc.metrics();
    assert_eq!((m.timed_out, m.completed), (1, 0));
}

#[test]
fn default_timeout_applies_when_job_sets_none() {
    let svc = EncodeService::start(ServiceConfig {
        pool_threads: 1,
        default_timeout: Some(Duration::ZERO),
        ..ServiceConfig::default()
    });
    let h = svc.submit(job(8)).unwrap();
    assert!(matches!(h.wait(), JobOutcome::TimedOut));
}

#[test]
fn cancel_stops_job() {
    let svc = EncodeService::start(ServiceConfig {
        pool_threads: 1,
        ..ServiceConfig::default()
    });
    svc.pause();
    let h = svc.submit(job(9)).unwrap();
    // Cancel while the job is still queued: the worker claims it after
    // resume and the control stops the encode at its first checkpoint.
    h.cancel();
    svc.resume();
    assert!(matches!(h.wait(), JobOutcome::Cancelled));
    assert_eq!(svc.metrics().cancelled, 1);
}

#[test]
fn priorities_order_the_queue() {
    let svc = EncodeService::start(ServiceConfig {
        queue_capacity: 8,
        pool_threads: 1,
        ..ServiceConfig::default()
    });
    svc.pause();
    let lo = svc
        .submit(EncodeJob {
            priority: 0,
            ..job(10)
        })
        .unwrap();
    let hi = svc
        .submit(EncodeJob {
            priority: 9,
            ..job(11)
        })
        .unwrap();
    svc.resume();
    // With one pool thread, completion order == queue order; the
    // higher-priority job must finish with a lower completion count
    // observed when it resolves. Both must complete regardless.
    assert!(matches!(hi.wait(), JobOutcome::Completed { .. }));
    assert!(matches!(lo.wait(), JobOutcome::Completed { .. }));
    assert_eq!(svc.metrics().completed, 2);
}

#[test]
fn graceful_shutdown_drains_in_flight_and_queued_jobs() {
    let svc = EncodeService::start(ServiceConfig {
        queue_capacity: 8,
        pool_threads: 2,
        ..ServiceConfig::default()
    });
    svc.pause();
    let handles: Vec<_> = (0..3).map(|s| svc.submit(job(20 + s)).unwrap()).collect();
    assert_eq!(svc.queue_depth(), 3);

    // Close intake: synchronous, so the rejection below cannot race.
    svc.begin_shutdown();
    assert_eq!(svc.submit(job(99)).unwrap_err(), SubmitError::ShuttingDown);

    // Drain: every already-admitted job must still complete.
    for h in handles {
        assert!(matches!(h.wait(), JobOutcome::Completed { .. }));
    }
    svc.shutdown();
    let m = svc.metrics();
    assert_eq!((m.completed, m.queue_depth), (3, 0));
}

#[test]
fn shutdown_is_idempotent_and_drop_safe() {
    let svc = EncodeService::start(ServiceConfig::default());
    let h = svc.submit(job(30)).unwrap();
    svc.shutdown();
    svc.shutdown();
    assert!(matches!(h.wait(), JobOutcome::Completed { .. }));
    drop(svc); // Drop runs shutdown again; must not hang or panic.
}
