//! Seeded overload-storm chaos test (DESIGN.md §16): a low-priority
//! flood plus slow-loris connections plus injected handler stalls, all
//! at once, against a small queue. The invariants under fire:
//!
//! 1. Every high-priority job completes **byte-identical** to the
//!    sequential encoder — overload never trades correctness.
//! 2. Low-priority work is shed with typed `Overloaded` replies, not
//!    hung connections or memory growth.
//! 3. Pressure transitions are observable: trace instants under job id 0
//!    and the Prometheus exposition both carry the arc.
//! 4. No thread is permanently pinned: the storm ends, the daemon drains
//!    on Shutdown, and the serve loop joins.
//!
//! Seeded via `CHAOS_SEED` (printed on entry) so a CI failure replays
//! locally. Requires `--features failpoints`; the whole file compiles
//! away without it — the release leg of the `overload` CI job asserts
//! exactly that.

#![cfg(feature = "failpoints")]

use faultsim::{FaultAction, FaultSpec};
use j2k_core::EncoderParams;
use j2k_serve::wire::{call, EncodeRequest, RejectReason, Request, Response, DEFAULT_MAX_FRAME};
use j2k_serve::{serve, EncodeService, PressureConfig, PressureLevel, ServerConfig, ServiceConfig};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn seed_from_env() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20080906)
}

fn encode_req(size: usize, seed: u64, priority: u8, allow_degraded: bool) -> Request {
    Request::Encode(EncodeRequest {
        priority,
        allow_degraded,
        timeout_ms: 0,
        params: EncoderParams::lossless(),
        image: imgio::synth::natural(size, size, seed),
    })
}

#[test]
fn overload_storm_sheds_low_priority_and_keeps_high_priority_byte_identical() {
    let seed = seed_from_env();
    println!("CHAOS_SEED={seed}");
    faultsim::reset();
    obs::trace::set_enabled(true);

    // Small queue, depth-only pressure (the wait signal is disabled so
    // the storm's pressure arc is driven by the queue alone and the
    // decay at the end is deterministic), quick escalation.
    let svc = Arc::new(EncodeService::start(ServiceConfig {
        queue_capacity: 4,
        pool_threads: 2,
        high_priority_min: 5,
        pressure: PressureConfig {
            elevated_depth: 0.5,
            critical_depth: 0.95,
            elevated_wait_p95_us: u64::MAX,
            critical_wait_p95_us: u64::MAX,
            min_sample_interval: Duration::ZERO,
            cool_samples: 2,
            ..PressureConfig::default()
        },
        ..ServiceConfig::default()
    }));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || {
            serve(
                listener,
                svc,
                ServerConfig {
                    io_timeout: Some(Duration::from_millis(300)),
                    max_connections: 32,
                    ..ServerConfig::default()
                },
            )
            .unwrap();
        })
    };

    // Injected handler stalls: the first three requests across the
    // server stall 50ms at the top of their handler loop — past nothing
    // fatal, but enough to skew the storm's interleaving run to run.
    faultsim::arm(
        "wire.stall",
        FaultSpec::at(FaultAction::Delay(Duration::from_millis(50)), 1, 3),
    );

    // Open the high-priority client's connection *before* the storm so
    // a Critical accept-gate can never refuse it mid-run.
    let mut hi_conn = TcpStream::connect(addr).unwrap();

    // Slow-loris peers: partial header, then silence. Their handlers
    // must be reclaimed by the 300ms io deadline, not held forever.
    let lorises: Vec<TcpStream> = (0..3)
        .map(|_| {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&j2k_serve::wire::MAGIC.to_be_bytes()).unwrap();
            c
        })
        .collect();

    let shed_seen = AtomicU64::new(0);
    let degraded_seen = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Low-priority flood: 8 threads x 8 jobs, alternate jobs opted
        // into degradation. One request is in flight per connection, so
        // the flood's *concurrency* (8 conns vs a 4-deep queue drained by
        // 2 workers) is what drives the queue into Elevated/Critical.
        // Sheds and degrades are both expected and tallied; what is
        // *not* tolerated is a hang or an untyped error.
        for t in 0..8u64 {
            let (shed_seen, degraded_seen) = (&shed_seen, &degraded_seen);
            scope.spawn(move || {
                let Ok(mut conn) = TcpStream::connect(addr) else {
                    return;
                };
                for j in 0..8u64 {
                    let req = encode_req(48, seed ^ (t * 100 + j), 0, j % 2 == 0);
                    match call(&mut conn, &req, DEFAULT_MAX_FRAME) {
                        Ok(Response::EncodeOk { degraded, .. }) => {
                            if degraded {
                                degraded_seen.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(Response::Rejected(RejectReason::Overloaded { retry_after_ms })) => {
                            assert!(retry_after_ms > 0, "shed must carry a retry hint");
                            shed_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(other) => panic!("flood job {t}/{j}: unexpected {other:?}"),
                        // A blown deadline or stalled handler closed the
                        // conn: reconnect and keep flooding; if the
                        // accept gate refuses (Critical), stop this
                        // thread — that *is* load shedding working.
                        Err(_) => match TcpStream::connect(addr) {
                            Ok(c) => conn = c,
                            Err(_) => return,
                        },
                    }
                }
            });
        }

        // High-priority client: six jobs, each retried until admitted.
        // These must never be shed into oblivion — the retry loop is
        // bounded and every job must complete byte-identically.
        for j in 0..6u64 {
            let req = encode_req(32, seed ^ (7000 + j), 9, false);
            let mut attempts = 0u32;
            loop {
                attempts += 1;
                assert!(attempts <= 100, "high-priority job {j} starved");
                match call(&mut hi_conn, &req, DEFAULT_MAX_FRAME) {
                    Ok(Response::EncodeOk {
                        codestream,
                        degraded,
                    }) => {
                        assert!(!degraded, "high-priority job {j} must not degrade");
                        let im = imgio::synth::natural(32, 32, seed ^ (7000 + j));
                        let sequential = j2k_core::encode(&im, &EncoderParams::lossless()).unwrap();
                        assert_eq!(
                            codestream, sequential,
                            "high-priority job {j} not byte-identical under storm"
                        );
                        break;
                    }
                    // Queue momentarily full even for high priority:
                    // honor the hint (capped so the test stays fast).
                    Ok(Response::Rejected(RejectReason::Overloaded { retry_after_ms })) => {
                        std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms).min(20)))
                    }
                    Ok(other) => panic!("high-priority job {j}: unexpected {other:?}"),
                    Err(_) => {
                        // The persistent conn died (stall + deadline):
                        // reconnect. An accept-gate refusal surfaces as
                        // a read error on the next call and retries here.
                        if let Ok(c) = TcpStream::connect(addr) {
                            hi_conn = c;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
        }
    });
    drop(lorises);

    // The stall failpoint fired (the first three handler passes).
    assert!(faultsim::hits("wire.stall") >= 3);

    // Decay: with the storm over, probing the controller with an empty
    // queue steps the level down one notch per sample (cool_samples = 2,
    // no rate limit) — six probes reach Nominal from anywhere.
    for _ in 0..6 {
        svc.pressure_level();
    }
    assert_eq!(svc.pressure().level(), PressureLevel::Nominal);

    let m = svc.metrics();
    assert!(
        m.jobs_shed > 0 || shed_seen.load(Ordering::Relaxed) > 0,
        "a 64-job low-priority flood against a 4-deep queue must shed"
    );
    assert!(
        m.pressure_transitions >= 2,
        "expected at least Nominal->Elevated and a decay, saw {}",
        m.pressure_transitions
    );
    // The queue-wait tail stayed sane: nothing was parked forever.
    if let Some((_, wait)) = m.histograms.iter().find(|(n, _)| n == "queue_wait_us") {
        assert!(
            wait.p99 < 60_000_000,
            "queue wait p99 {}us: something was pinned",
            wait.p99
        );
    }

    // The pressure arc is observable on both surfaces: trace instants
    // under job id 0, and the Prometheus exposition.
    let events = obs::trace::take_job(0);
    assert!(
        events.iter().any(|e| e.name == "pressure-level"),
        "pressure transitions must emit trace instants"
    );
    let prom = j2k_serve::render_prometheus(&svc);
    for series in [
        "j2k_pressure_level",
        "j2k_pressure_transitions_total",
        "j2k_jobs_shed_total",
        "j2k_connections_rejected_total",
    ] {
        assert!(prom.contains(series), "missing {series} in exposition");
    }

    // Drain and join: the daemon must come down clean after the storm.
    let mut conn = TcpStream::connect(addr).unwrap();
    assert_eq!(
        call(&mut conn, &Request::Shutdown, DEFAULT_MAX_FRAME).unwrap(),
        Response::Pong
    );
    server.join().unwrap();
    obs::trace::set_enabled(false);
    faultsim::reset();
}
