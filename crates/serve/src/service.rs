//! The encode service: admission control in front of a worker pool that
//! drains the bounded [`JobQueue`](crate::queue::JobQueue).
//!
//! Life of a job: [`EncodeService::submit`] computes the job's deadline,
//! wraps image + params + a shared [`EncodeControl`] into a queue task,
//! and either enqueues it (returning a [`JobHandle`]) or refuses with a
//! typed [`SubmitError`] — the service never buffers beyond the
//! configured queue capacity. A pool thread claims the task, runs
//! [`encode_parallel_ctl`] with the per-job `workers_per_job` budget, and
//! publishes the [`JobOutcome`] through the handle. Deadlines are
//! enforced *inside* the encode (the control is polled per stage and per
//! Tier-1 code block), so a job whose deadline passes mid-encode stops at
//! the next checkpoint and reports [`JobOutcome::TimedOut`]; a job that
//! expires while still queued fails the control's very first checkpoint
//! the same way — one mechanism, no timer thread.
//!
//! Shutdown is graceful by construction: [`EncodeService::begin_shutdown`]
//! closes the queue (new submissions refuse with
//! [`SubmitError::ShuttingDown`]) while queued and in-flight jobs drain;
//! [`EncodeService::shutdown`] additionally joins the pool.

use crate::queue::{JobQueue, PushError};
use imgio::Image;
use j2k_core::{encode_parallel_ctl, CodecError, EncodeControl, EncoderParams, ParallelOptions};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One encode request.
#[derive(Debug, Clone)]
pub struct EncodeJob {
    /// Input image.
    pub image: Image,
    /// Encoder parameters (validated by the encoder, not at submit).
    pub params: EncoderParams,
    /// Scheduling priority: higher runs first; FIFO within a priority.
    pub priority: u8,
    /// Per-job deadline, measured from submission. `None` falls back to
    /// [`ServiceConfig::default_timeout`].
    pub timeout: Option<Duration>,
}

impl EncodeJob {
    /// A default-priority job with no per-job timeout.
    pub fn new(image: Image, params: EncoderParams) -> Self {
        EncodeJob {
            image,
            params,
            priority: 0,
            timeout: None,
        }
    }
}

/// Terminal state of a submitted job.
#[derive(Debug)]
pub enum JobOutcome {
    /// Encode finished; the codestream is byte-identical to the
    /// sequential encoder's output for the same input.
    Completed {
        /// The JPEG2000 codestream.
        codestream: Vec<u8>,
    },
    /// The job's deadline passed (queued or mid-encode).
    TimedOut,
    /// [`JobHandle::cancel`] stopped the job.
    Cancelled,
    /// The encoder rejected the job (bad params/image) or failed.
    Failed(String),
}

/// Typed admission-control refusal from [`EncodeService::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; retry later or shed load.
    Overloaded {
        /// The configured queue bound.
        capacity: usize,
    },
    /// [`EncodeService::begin_shutdown`] has run; no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { capacity } => {
                write!(f, "overloaded: queue at capacity {capacity}")
            }
            SubmitError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Debug)]
struct JobShared {
    id: u64,
    ctl: EncodeControl,
    outcome: Mutex<Option<JobOutcome>>,
    cv: Condvar,
}

impl JobShared {
    fn complete(&self, outcome: JobOutcome) {
        *self.outcome.lock().unwrap() = Some(outcome);
        self.cv.notify_all();
    }
}

/// Caller's side of a submitted job: wait for the outcome or cancel.
#[derive(Debug)]
pub struct JobHandle {
    shared: Arc<JobShared>,
}

impl JobHandle {
    /// Service-assigned job id (monotonic per service).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Request cancellation; the encode stops at its next checkpoint and
    /// the outcome becomes [`JobOutcome::Cancelled`].
    pub fn cancel(&self) {
        self.shared.ctl.cancel();
    }

    /// Block until the job reaches a terminal state and take the outcome.
    pub fn wait(self) -> JobOutcome {
        let mut g = self.shared.outcome.lock().unwrap();
        loop {
            if let Some(o) = g.take() {
                return o;
            }
            g = self.shared.cv.wait(g).unwrap();
        }
    }
}

struct Task {
    image: Image,
    params: EncoderParams,
    shared: Arc<JobShared>,
}

/// Tuning of an [`EncodeService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Bounded queue capacity; submissions beyond it are
    /// [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Pool threads draining the queue (>= 1): the concurrency of whole
    /// jobs.
    pub pool_threads: usize,
    /// `workers` budget handed to [`encode_parallel_ctl`] per job: the
    /// parallelism *within* one encode.
    pub workers_per_job: usize,
    /// Deadline for jobs that set none.
    pub default_timeout: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            pool_threads: 2,
            workers_per_job: 1,
            default_timeout: None,
        }
    }
}

#[derive(Default)]
struct Metrics {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    timed_out: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    /// Accumulated per-stage encode wall time (name -> seconds) and
    /// completed-job latency samples, both fed from finished jobs.
    stage_seconds: Mutex<BTreeMap<&'static str, f64>>,
}

/// Point-in-time counters of a service, JSON-serializable for the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Jobs queued right now (admitted, not yet claimed).
    pub queue_depth: usize,
    /// The admission bound.
    pub queue_capacity: usize,
    /// Jobs admitted since start.
    pub accepted: u64,
    /// Jobs refused by admission control since start.
    pub rejected: u64,
    /// Jobs that returned a codestream.
    pub completed: u64,
    /// Jobs stopped by their deadline.
    pub timed_out: u64,
    /// Jobs stopped by [`JobHandle::cancel`].
    pub cancelled: u64,
    /// Jobs the encoder refused or failed.
    pub failed: u64,
    /// Accumulated encode wall time per pipeline stage, seconds
    /// (stage names from [`j2k_core::WorkloadProfile::stage_times`]).
    pub stage_seconds: Vec<(String, f64)>,
}

impl MetricsSnapshot {
    /// Hand-rolled JSON (the workspace builds offline, without serde).
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stage_seconds
            .iter()
            .map(|(n, s)| format!("\"{n}\":{s:.6}"))
            .collect();
        format!(
            "{{\"queue_depth\":{},\"queue_capacity\":{},\"accepted\":{},\"rejected\":{},\
             \"completed\":{},\"timed_out\":{},\"cancelled\":{},\"failed\":{},\
             \"stage_seconds\":{{{}}}}}",
            self.queue_depth,
            self.queue_capacity,
            self.accepted,
            self.rejected,
            self.completed,
            self.timed_out,
            self.cancelled,
            self.failed,
            stages.join(",")
        )
    }
}

/// The embeddable encode service. See the module docs for the lifecycle.
pub struct EncodeService {
    cfg: ServiceConfig,
    queue: Arc<JobQueue<Task>>,
    metrics: Arc<Metrics>,
    pool: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
}

impl EncodeService {
    /// Start the worker pool and return the running service.
    pub fn start(cfg: ServiceConfig) -> Self {
        let queue = Arc::new(JobQueue::new(cfg.queue_capacity));
        let metrics = Arc::new(Metrics::default());
        let pool = (0..cfg.pool_threads.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                let workers = cfg.workers_per_job;
                std::thread::spawn(move || worker_loop(&queue, &metrics, workers))
            })
            .collect();
        EncodeService {
            cfg,
            queue,
            metrics,
            pool: Mutex::new(pool),
            next_id: AtomicU64::new(1),
        }
    }

    /// Admission control: enqueue `job` or refuse. Never blocks and never
    /// buffers beyond `queue_capacity`.
    pub fn submit(&self, job: EncodeJob) -> Result<JobHandle, SubmitError> {
        let timeout = job.timeout.or(self.cfg.default_timeout);
        let ctl = match timeout {
            Some(t) => EncodeControl::with_deadline(Instant::now() + t),
            None => EncodeControl::new(),
        };
        let shared = Arc::new(JobShared {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            ctl,
            outcome: Mutex::new(None),
            cv: Condvar::new(),
        });
        let task = Task {
            image: job.image,
            params: job.params,
            shared: Arc::clone(&shared),
        };
        match self.queue.try_push(task, job.priority) {
            Ok(()) => {
                self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle { shared })
            }
            Err((_, PushError::Full { capacity })) => {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded { capacity })
            }
            Err((_, PushError::Closed)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Current queue depth (admitted, unclaimed jobs).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Hold the pool at the queue: claimed jobs finish, queued jobs wait.
    /// Operational drain hook; also makes queue-state tests deterministic.
    pub fn pause(&self) {
        self.queue.pause();
    }

    /// Undo [`pause`](Self::pause).
    pub fn resume(&self) {
        self.queue.resume();
    }

    /// Counters right now.
    pub fn metrics(&self) -> MetricsSnapshot {
        let m = &self.metrics;
        MetricsSnapshot {
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            accepted: m.accepted.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            completed: m.completed.load(Ordering::Relaxed),
            timed_out: m.timed_out.load(Ordering::Relaxed),
            cancelled: m.cancelled.load(Ordering::Relaxed),
            failed: m.failed.load(Ordering::Relaxed),
            stage_seconds: m
                .stage_seconds
                .lock()
                .unwrap()
                .iter()
                .map(|(&n, &s)| (n.to_string(), s))
                .collect(),
        }
    }

    /// Close intake: new submissions get [`SubmitError::ShuttingDown`];
    /// queued and in-flight jobs keep draining (a paused service resumes
    /// so the drain can proceed). Returns immediately; idempotent.
    pub fn begin_shutdown(&self) {
        self.queue.close();
    }

    /// [`begin_shutdown`](Self::begin_shutdown), then block until every
    /// queued and in-flight job has completed and the pool has exited.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        let handles: Vec<_> = self.pool.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for EncodeService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(queue: &JobQueue<Task>, metrics: &Metrics, workers_per_job: usize) {
    while let Some(task) = queue.pop() {
        let outcome = match encode_parallel_ctl(
            &task.image,
            &task.params,
            workers_per_job,
            &ParallelOptions::default(),
            Some(&task.shared.ctl),
        ) {
            Ok((codestream, profile)) => {
                metrics.completed.fetch_add(1, Ordering::Relaxed);
                let mut stages = metrics.stage_seconds.lock().unwrap();
                for st in &profile.stage_times {
                    *stages.entry(st.name).or_insert(0.0) += st.seconds;
                }
                JobOutcome::Completed { codestream }
            }
            Err(CodecError::Deadline) => {
                metrics.timed_out.fetch_add(1, Ordering::Relaxed);
                JobOutcome::TimedOut
            }
            Err(CodecError::Cancelled) => {
                metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                JobOutcome::Cancelled
            }
            Err(e) => {
                metrics.failed.fetch_add(1, Ordering::Relaxed);
                JobOutcome::Failed(e.to_string())
            }
        };
        task.shared.complete(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_wait_roundtrip() {
        let svc = EncodeService::start(ServiceConfig::default());
        let im = imgio::synth::natural(48, 48, 3);
        let h = svc
            .submit(EncodeJob::new(im.clone(), EncoderParams::lossless()))
            .unwrap();
        match h.wait() {
            JobOutcome::Completed { codestream } => {
                assert_eq!(j2k_core::decode(&codestream).unwrap(), im);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let m = svc.metrics();
        assert_eq!((m.accepted, m.completed), (1, 1));
        assert!(m.stage_seconds.iter().any(|(n, _)| n == "tier1"));
    }

    #[test]
    fn invalid_params_fail_cleanly() {
        let svc = EncodeService::start(ServiceConfig::default());
        let im = imgio::synth::natural(16, 16, 1);
        let bad = EncoderParams {
            levels: 0,
            ..EncoderParams::lossless()
        };
        let h = svc.submit(EncodeJob::new(im, bad)).unwrap();
        assert!(matches!(h.wait(), JobOutcome::Failed(_)));
        assert_eq!(svc.metrics().failed, 1);
    }

    #[test]
    fn metrics_json_shape() {
        let snap = MetricsSnapshot {
            queue_depth: 1,
            queue_capacity: 8,
            accepted: 5,
            rejected: 2,
            completed: 3,
            timed_out: 1,
            cancelled: 0,
            failed: 0,
            stage_seconds: vec![("dwt".into(), 0.25)],
        };
        let j = snap.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rejected\":2"));
        assert!(j.contains("\"dwt\":0.250000"));
    }
}
