//! The encode service: admission control in front of a **self-healing**
//! worker pool that drains the bounded [`JobQueue`](crate::queue::JobQueue).
//!
//! Life of a job: [`EncodeService::submit`] computes the job's deadline,
//! wraps image + params + a shared [`EncodeControl`] into a queue task,
//! and either enqueues it (returning a [`JobHandle`]) or refuses with a
//! typed [`SubmitError`] — the service never buffers beyond the
//! configured queue capacity. A pool thread claims the task, runs
//! [`encode_parallel_ctl`] with the per-job `workers_per_job` budget, and
//! publishes the [`JobOutcome`] through the handle. Deadlines are
//! enforced *inside* the encode (the control is polled per stage and per
//! Tier-1 code block), so a job whose deadline passes mid-encode stops at
//! the next checkpoint and reports [`JobOutcome::TimedOut`]; a job that
//! expires while still queued fails the control's very first checkpoint
//! the same way — one mechanism, no timer thread.
//!
//! # Fault model (DESIGN.md §11)
//!
//! Every worker iteration runs under `catch_unwind`: a panicking encode
//! (bad geometry reaching a kernel, a future SIMD bug, an injected
//! `faultsim` failpoint) is **isolated** — it retires that one worker
//! thread instead of silently shrinking the pool. The crash path:
//!
//! 1. the dying worker hands its claimed job to the crash handler, which
//!    either **re-enqueues** it (bounded retry budget, exponential
//!    backoff, bypassing the admission bound — the slot was paid at
//!    submit) or **quarantines** it after repeated crashes, completing
//!    the handle with a typed [`JobOutcome::Poisoned`];
//! 2. a retry whose backoff would end past the job's deadline resolves
//!    [`JobOutcome::TimedOut`] immediately — no doomed wait;
//! 3. the worker notifies the **supervisor** and exits; the supervisor
//!    joins the dead thread and spawns a fresh replacement (fresh stack,
//!    no suspect state), keeping the pool at strength;
//! 4. delayed retries park at the supervisor until due, holding a queue
//!    *reservation* so graceful shutdown still drains them.
//!
//! **Unwind-safety argument** for the `AssertUnwindSafe`: the encode
//! call owns every piece of mutable state it touches — planes, chunk
//! plans, Tier-1 slots all live in the call frame and die in the unwind.
//! The state shared across the boundary is (a) the job queue, whose
//! mutex is never held while user code runs, (b) the claimed-task slot,
//! written only between `pop` and the encode call, and (c) the metrics
//! atomics, which are monotone counters. A panic can therefore leave no
//! torn invariant behind; locks that could in principle observe a
//! panicking test thread are recovered with `into_inner` instead of
//! unwrapping the poison flag.
//!
//! Shutdown is graceful by construction: [`EncodeService::begin_shutdown`]
//! closes the queue (new submissions refuse with
//! [`SubmitError::ShuttingDown`]) while queued, in-flight, *and pending
//! retry* jobs drain; [`EncodeService::shutdown`] additionally joins the
//! supervisor (and with it every worker, original or respawned).

use crate::queue::{JobQueue, PushError};
use imgio::Image;
use j2k_core::{encode_parallel_ctl, CodecError, EncodeControl, EncoderParams, ParallelOptions};
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Quarantined job ids kept for [`EncodeService::quarantined`] (the
/// count itself is unbounded; see `jobs_poisoned`).
const QUARANTINE_KEEP: usize = 64;

/// One encode request.
#[derive(Debug, Clone)]
pub struct EncodeJob {
    /// Input image.
    pub image: Image,
    /// Encoder parameters (validated by the encoder, not at submit).
    pub params: EncoderParams,
    /// Scheduling priority: higher runs first; FIFO within a priority.
    pub priority: u8,
    /// Per-job deadline, measured from submission. `None` falls back to
    /// [`ServiceConfig::default_timeout`].
    pub timeout: Option<Duration>,
}

impl EncodeJob {
    /// A default-priority job with no per-job timeout.
    pub fn new(image: Image, params: EncoderParams) -> Self {
        EncodeJob {
            image,
            params,
            priority: 0,
            timeout: None,
        }
    }
}

/// Terminal state of a submitted job.
#[derive(Debug)]
pub enum JobOutcome {
    /// Encode finished; the codestream is byte-identical to the
    /// sequential encoder's output for the same input.
    Completed {
        /// The JPEG2000 codestream.
        codestream: Vec<u8>,
    },
    /// The job's deadline passed (queued, mid-encode, or during a crash
    /// retry's backoff).
    TimedOut,
    /// [`JobHandle::cancel`] stopped the job.
    Cancelled,
    /// The encoder rejected the job (bad params/image) or failed.
    Failed(String),
    /// The job crashed its worker more than the retry budget allows and
    /// is quarantined: the service refuses to run it again.
    Poisoned {
        /// Human-readable crash summary.
        message: String,
    },
}

/// Typed admission-control refusal from [`EncodeService::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; retry later or shed load.
    Overloaded {
        /// The configured queue bound.
        capacity: usize,
    },
    /// [`EncodeService::begin_shutdown`] has run; no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { capacity } => {
                write!(f, "overloaded: queue at capacity {capacity}")
            }
            SubmitError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Debug)]
struct JobShared {
    id: u64,
    ctl: EncodeControl,
    outcome: Mutex<Option<JobOutcome>>,
    cv: Condvar,
}

impl JobShared {
    fn complete(&self, outcome: JobOutcome) {
        *self.outcome.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
        self.cv.notify_all();
    }
}

/// Caller's side of a submitted job: wait for the outcome or cancel.
#[derive(Debug)]
pub struct JobHandle {
    shared: Arc<JobShared>,
}

impl JobHandle {
    /// Service-assigned job id (monotonic per service).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Request cancellation; the encode stops at its next checkpoint and
    /// the outcome becomes [`JobOutcome::Cancelled`].
    pub fn cancel(&self) {
        self.shared.ctl.cancel();
    }

    /// Block until the job reaches a terminal state and take the outcome.
    pub fn wait(self) -> JobOutcome {
        let mut g = self
            .shared
            .outcome
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(o) = g.take() {
                return o;
            }
            g = self.shared.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A queued unit of work. Shared as `Arc` so a crashing worker's handler
/// and the retry path hand the *same* job (with its crash count) around
/// without copying the image.
struct Task {
    image: Image,
    params: EncoderParams,
    priority: u8,
    /// Times this job has crashed a worker.
    crashes: AtomicU32,
    shared: Arc<JobShared>,
}

/// Tuning of an [`EncodeService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Bounded queue capacity; submissions beyond it are
    /// [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Pool threads draining the queue (>= 1): the concurrency of whole
    /// jobs.
    pub pool_threads: usize,
    /// `workers` budget handed to [`encode_parallel_ctl`] per job: the
    /// parallelism *within* one encode.
    pub workers_per_job: usize,
    /// Deadline for jobs that set none.
    pub default_timeout: Option<Duration>,
    /// How many times a job that *crashes a worker* is retried before it
    /// is quarantined as [`JobOutcome::Poisoned`]. 1 (the default) means
    /// a job that crashes twice is poisoned.
    pub max_crash_retries: u32,
    /// Base backoff before a crash retry re-enters the queue; doubles per
    /// crash (`base << (crashes-1)`). Zero retries immediately.
    pub retry_backoff: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            pool_threads: 2,
            workers_per_job: 1,
            default_timeout: None,
            max_crash_retries: 1,
            retry_backoff: Duration::from_millis(100),
        }
    }
}

#[derive(Default)]
struct Metrics {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    timed_out: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    retried: AtomicU64,
    poisoned: AtomicU64,
    workers_respawned: AtomicU64,
    workers_alive: AtomicU64,
    /// Accumulated per-stage encode wall time (name -> seconds) and
    /// completed-job latency samples, both fed from finished jobs.
    stage_seconds: Mutex<BTreeMap<&'static str, f64>>,
    /// Most recent quarantined job ids (bounded at [`QUARANTINE_KEEP`]).
    quarantine: Mutex<Vec<u64>>,
}

/// Point-in-time counters of a service, JSON-serializable for the wire.
///
/// Every counter lives in service-owned atomics shared by reference with
/// the pool — nothing is held in worker-local state, so the numbers
/// survive any number of worker crashes and respawns.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Jobs queued right now (admitted, not yet claimed).
    pub queue_depth: usize,
    /// The admission bound.
    pub queue_capacity: usize,
    /// Jobs admitted since start.
    pub accepted: u64,
    /// Jobs refused by admission control since start.
    pub rejected: u64,
    /// Jobs that returned a codestream.
    pub completed: u64,
    /// Jobs stopped by their deadline.
    pub timed_out: u64,
    /// Jobs stopped by [`JobHandle::cancel`].
    pub cancelled: u64,
    /// Jobs the encoder refused or failed.
    pub failed: u64,
    /// Crash retries scheduled (a job that crashed once and completed on
    /// retry contributes 1 here and 1 to `completed`).
    pub jobs_retried: u64,
    /// Jobs quarantined after exhausting the crash-retry budget.
    pub jobs_poisoned: u64,
    /// Worker threads respawned after a crash.
    pub workers_respawned: u64,
    /// Worker threads currently live.
    pub workers_alive: u64,
    /// Accumulated encode wall time per pipeline stage, seconds
    /// (stage names from [`j2k_core::WorkloadProfile::stage_times`]).
    pub stage_seconds: Vec<(String, f64)>,
}

impl MetricsSnapshot {
    /// Hand-rolled JSON (the workspace builds offline, without serde).
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stage_seconds
            .iter()
            .map(|(n, s)| format!("\"{n}\":{s:.6}"))
            .collect();
        format!(
            "{{\"queue_depth\":{},\"queue_capacity\":{},\"accepted\":{},\"rejected\":{},\
             \"completed\":{},\"timed_out\":{},\"cancelled\":{},\"failed\":{},\
             \"jobs_retried\":{},\"jobs_poisoned\":{},\"workers_respawned\":{},\
             \"workers_alive\":{},\"stage_seconds\":{{{}}}}}",
            self.queue_depth,
            self.queue_capacity,
            self.accepted,
            self.rejected,
            self.completed,
            self.timed_out,
            self.cancelled,
            self.failed,
            self.jobs_retried,
            self.jobs_poisoned,
            self.workers_respawned,
            self.workers_alive,
            stages.join(",")
        )
    }
}

/// Readiness probe payload for the wire `Health` request: is the pool at
/// strength, is anything quarantined, how deep is the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Worker threads currently live.
    pub workers_alive: u64,
    /// Configured pool size (the target for `workers_alive`).
    pub pool_threads: u64,
    /// Workers respawned after crashes since start.
    pub workers_respawned: u64,
    /// Jobs queued right now.
    pub queue_depth: u64,
    /// The admission bound.
    pub queue_capacity: u64,
    /// Crash retries scheduled since start.
    pub jobs_retried: u64,
    /// Jobs quarantined after exhausting the crash-retry budget — the
    /// quarantine count.
    pub jobs_poisoned: u64,
    /// Whether the service still accepts submissions (false once
    /// shutdown has begun).
    pub accepting: bool,
}

impl HealthSnapshot {
    /// Hand-rolled JSON, mirroring [`MetricsSnapshot::to_json`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers_alive\":{},\"pool_threads\":{},\"workers_respawned\":{},\
             \"queue_depth\":{},\"queue_capacity\":{},\"jobs_retried\":{},\
             \"jobs_poisoned\":{},\"accepting\":{}}}",
            self.workers_alive,
            self.pool_threads,
            self.workers_respawned,
            self.queue_depth,
            self.queue_capacity,
            self.jobs_retried,
            self.jobs_poisoned,
            self.accepting,
        )
    }

    /// Ready to take traffic: accepting, with the full pool live.
    pub fn ready(&self) -> bool {
        self.accepting && self.workers_alive >= self.pool_threads
    }
}

/// Worker → supervisor notifications.
enum SupMsg {
    /// A worker thread exited (cleanly on drain, or crashed).
    Exited { id: u64, crashed: bool },
    /// A crashed job's retry parks until `due`, then re-enters the queue.
    /// The sender already holds a queue reservation for it.
    RetryAt { task: Arc<Task>, due: Instant },
}

/// The embeddable encode service. See the module docs for the lifecycle
/// and fault model.
pub struct EncodeService {
    cfg: ServiceConfig,
    queue: Arc<JobQueue<Arc<Task>>>,
    metrics: Arc<Metrics>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    next_id: AtomicU64,
}

impl EncodeService {
    /// Start the worker pool (under its supervisor) and return the
    /// running service.
    pub fn start(cfg: ServiceConfig) -> Self {
        let queue = Arc::new(JobQueue::new(cfg.queue_capacity));
        let metrics = Arc::new(Metrics::default());
        let (tx, rx) = channel::<SupMsg>();
        let mut handles = HashMap::new();
        let pool = cfg.pool_threads.max(1) as u64;
        for id in 0..pool {
            handles.insert(id, spawn_worker(id, &queue, &metrics, cfg, &tx));
        }
        let supervisor = {
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                supervisor_main(Supervisor {
                    rx,
                    tx,
                    queue,
                    metrics,
                    cfg,
                    handles,
                    next_worker_id: pool,
                    live: pool as usize,
                    pending: Vec::new(),
                })
            })
        };
        EncodeService {
            cfg,
            queue,
            metrics,
            supervisor: Mutex::new(Some(supervisor)),
            next_id: AtomicU64::new(1),
        }
    }

    /// Admission control: enqueue `job` or refuse. Never blocks and never
    /// buffers beyond `queue_capacity`.
    pub fn submit(&self, job: EncodeJob) -> Result<JobHandle, SubmitError> {
        let timeout = job.timeout.or(self.cfg.default_timeout);
        let ctl = match timeout {
            Some(t) => EncodeControl::with_deadline(Instant::now() + t),
            None => EncodeControl::new(),
        };
        let shared = Arc::new(JobShared {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            ctl,
            outcome: Mutex::new(None),
            cv: Condvar::new(),
        });
        let task = Arc::new(Task {
            image: job.image,
            params: job.params,
            priority: job.priority,
            crashes: AtomicU32::new(0),
            shared: Arc::clone(&shared),
        });
        match self.queue.try_push(task, job.priority) {
            Ok(()) => {
                self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle { shared })
            }
            Err((_, PushError::Full { capacity })) => {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded { capacity })
            }
            Err((_, PushError::Closed)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Current queue depth (admitted, unclaimed jobs).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Hold the pool at the queue: claimed jobs finish, queued jobs wait.
    /// Operational drain hook; also makes queue-state tests deterministic.
    pub fn pause(&self) {
        self.queue.pause();
    }

    /// Undo [`pause`](Self::pause).
    pub fn resume(&self) {
        self.queue.resume();
    }

    /// Counters right now.
    pub fn metrics(&self) -> MetricsSnapshot {
        let m = &self.metrics;
        MetricsSnapshot {
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            accepted: m.accepted.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            completed: m.completed.load(Ordering::Relaxed),
            timed_out: m.timed_out.load(Ordering::Relaxed),
            cancelled: m.cancelled.load(Ordering::Relaxed),
            failed: m.failed.load(Ordering::Relaxed),
            jobs_retried: m.retried.load(Ordering::Relaxed),
            jobs_poisoned: m.poisoned.load(Ordering::Relaxed),
            workers_respawned: m.workers_respawned.load(Ordering::Relaxed),
            workers_alive: m.workers_alive.load(Ordering::Relaxed),
            stage_seconds: m
                .stage_seconds
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(&n, &s)| (n.to_string(), s))
                .collect(),
        }
    }

    /// Readiness probe: pool strength, quarantine count, queue depth.
    pub fn health(&self) -> HealthSnapshot {
        let m = &self.metrics;
        HealthSnapshot {
            workers_alive: m.workers_alive.load(Ordering::Relaxed),
            pool_threads: self.cfg.pool_threads.max(1) as u64,
            workers_respawned: m.workers_respawned.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            queue_capacity: self.queue.capacity() as u64,
            jobs_retried: m.retried.load(Ordering::Relaxed),
            jobs_poisoned: m.poisoned.load(Ordering::Relaxed),
            accepting: !self.queue.is_closed(),
        }
    }

    /// Most recent quarantined job ids (up to [`QUARANTINE_KEEP`]).
    pub fn quarantined(&self) -> Vec<u64> {
        self.metrics
            .quarantine
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Close intake: new submissions get [`SubmitError::ShuttingDown`];
    /// queued, in-flight, and pending-retry jobs keep draining (a paused
    /// service resumes so the drain can proceed). Returns immediately;
    /// idempotent.
    pub fn begin_shutdown(&self) {
        self.queue.close();
    }

    /// [`begin_shutdown`](Self::begin_shutdown), then block until every
    /// admitted job has completed and the pool — including any workers
    /// respawned after crashes — has exited.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        let sup = self
            .supervisor
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = sup {
            let _ = h.join();
        }
    }
}

impl Drop for EncodeService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Worker pool + supervisor
// ---------------------------------------------------------------------------

fn spawn_worker(
    id: u64,
    queue: &Arc<JobQueue<Arc<Task>>>,
    metrics: &Arc<Metrics>,
    cfg: ServiceConfig,
    tx: &Sender<SupMsg>,
) -> JoinHandle<()> {
    // Counted on the spawning side so `workers_alive` never transiently
    // under-reports a worker that exists but has not yet scheduled.
    metrics.workers_alive.fetch_add(1, Ordering::Relaxed);
    let queue = Arc::clone(queue);
    let metrics = Arc::clone(metrics);
    let tx = tx.clone();
    std::thread::spawn(move || worker_main(id, &queue, &metrics, &cfg, &tx))
}

fn worker_main(
    id: u64,
    queue: &JobQueue<Arc<Task>>,
    metrics: &Metrics,
    cfg: &ServiceConfig,
    tx: &Sender<SupMsg>,
) {
    // The task claimed by the current iteration; after a panic the crash
    // handler takes it from here. Written only between claim and encode,
    // never while a lock is held across user code (see the module-level
    // unwind-safety argument).
    let current: Mutex<Option<Arc<Task>>> = Mutex::new(None);
    loop {
        let r = catch_unwind(AssertUnwindSafe(|| {
            worker_iteration(queue, metrics, cfg, &current)
        }));
        match r {
            Ok(true) => continue,
            Ok(false) => {
                // Queue closed and drained: clean exit.
                metrics.workers_alive.fetch_sub(1, Ordering::Relaxed);
                let _ = tx.send(SupMsg::Exited { id, crashed: false });
                return;
            }
            Err(_) => {
                // The iteration panicked. A crashed worker always retires
                // (fresh stack and state beat an unwound one); the
                // supervisor replaces it. Its claimed job, if any, goes
                // through the retry/quarantine state machine first.
                let task = current.lock().unwrap_or_else(|e| e.into_inner()).take();
                if let Some(task) = task {
                    handle_crash(task, queue, metrics, cfg, tx);
                }
                metrics.workers_alive.fetch_sub(1, Ordering::Relaxed);
                let _ = tx.send(SupMsg::Exited { id, crashed: true });
                return;
            }
        }
    }
}

/// One claim-encode-complete cycle. Returns `false` when the queue is
/// closed and drained (worker should exit cleanly).
fn worker_iteration(
    queue: &JobQueue<Arc<Task>>,
    metrics: &Metrics,
    cfg: &ServiceConfig,
    current: &Mutex<Option<Arc<Task>>>,
) -> bool {
    let Some(task) = queue.pop() else {
        return false;
    };
    *current.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&task));
    // Failpoint `worker.job_start`: between claim and encode. A panic
    // here crashes the worker while it holds a claimed job — the
    // narrowest reproduction of "worker dies mid-job".
    if let Some(msg) = faultsim::eval("worker.job_start") {
        current.lock().unwrap_or_else(|e| e.into_inner()).take();
        metrics.failed.fetch_add(1, Ordering::Relaxed);
        task.shared
            .complete(JobOutcome::Failed(format!("injected fault: {msg}")));
        return true;
    }
    let outcome = match encode_parallel_ctl(
        &task.image,
        &task.params,
        cfg.workers_per_job,
        &ParallelOptions::default(),
        Some(&task.shared.ctl),
    ) {
        Ok((codestream, profile)) => {
            metrics.completed.fetch_add(1, Ordering::Relaxed);
            let mut stages = metrics
                .stage_seconds
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for st in &profile.stage_times {
                *stages.entry(st.name).or_insert(0.0) += st.seconds;
            }
            JobOutcome::Completed { codestream }
        }
        Err(CodecError::Deadline) => {
            metrics.timed_out.fetch_add(1, Ordering::Relaxed);
            JobOutcome::TimedOut
        }
        Err(CodecError::Cancelled) => {
            metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            JobOutcome::Cancelled
        }
        Err(e) => {
            metrics.failed.fetch_add(1, Ordering::Relaxed);
            JobOutcome::Failed(e.to_string())
        }
    };
    current.lock().unwrap_or_else(|e| e.into_inner()).take();
    task.shared.complete(outcome);
    true
}

/// The retry/quarantine state machine, run by a dying worker for the job
/// it crashed on:
///
/// ```text
/// crash -> crashes+1 > budget ----------------> Poisoned (quarantine)
///       -> deadline <= retry due time --------> TimedOut (no doomed wait)
///       -> backoff == 0 ----------------------> requeue now
///       -> else: reserve + park at supervisor -> requeue at due
/// ```
fn handle_crash(
    task: Arc<Task>,
    queue: &JobQueue<Arc<Task>>,
    metrics: &Metrics,
    cfg: &ServiceConfig,
    tx: &Sender<SupMsg>,
) {
    let crashes = task.crashes.fetch_add(1, Ordering::Relaxed) + 1;
    let id = task.shared.id;
    if crashes > cfg.max_crash_retries {
        metrics.poisoned.fetch_add(1, Ordering::Relaxed);
        {
            let mut q = metrics.quarantine.lock().unwrap_or_else(|e| e.into_inner());
            q.push(id);
            if q.len() > QUARANTINE_KEEP {
                let excess = q.len() - QUARANTINE_KEEP;
                q.drain(..excess);
            }
        }
        task.shared.complete(JobOutcome::Poisoned {
            message: format!(
                "job {id} crashed its worker {crashes} times (budget {}); quarantined",
                cfg.max_crash_retries
            ),
        });
        return;
    }
    // Exponential backoff: base << (crashes - 1), saturating.
    let backoff = cfg
        .retry_backoff
        .saturating_mul(1u32 << (crashes - 1).min(16));
    let due = Instant::now() + backoff;
    // A retry that cannot begin before the job's deadline is a timeout
    // *now*: completing the handle immediately beats parking the job for
    // a wait it is guaranteed to lose.
    if let Some(d) = task.shared.ctl.deadline() {
        if d <= due {
            metrics.timed_out.fetch_add(1, Ordering::Relaxed);
            task.shared.complete(JobOutcome::TimedOut);
            return;
        }
    }
    metrics.retried.fetch_add(1, Ordering::Relaxed);
    let priority = task.priority;
    if backoff.is_zero() {
        queue.requeue(task, priority);
        return;
    }
    queue.reserve();
    if let Err(e) = tx.send(SupMsg::RetryAt { task, due }) {
        // Supervisor already gone (late crash during teardown): run the
        // retry immediately rather than dropping an admitted job.
        if let SupMsg::RetryAt { task, .. } = e.0 {
            queue.requeue(task, priority);
        }
    }
}

struct Supervisor {
    rx: Receiver<SupMsg>,
    /// Kept for cloning into respawned workers; never used to send.
    tx: Sender<SupMsg>,
    queue: Arc<JobQueue<Arc<Task>>>,
    metrics: Arc<Metrics>,
    cfg: ServiceConfig,
    handles: HashMap<u64, JoinHandle<()>>,
    next_worker_id: u64,
    live: usize,
    /// Delayed crash retries: (due, task). Each holds a queue
    /// reservation.
    pending: Vec<(Instant, Arc<Task>)>,
}

fn supervisor_main(mut s: Supervisor) {
    loop {
        // Re-enqueue every retry that has come due.
        let now = Instant::now();
        let mut i = 0;
        while i < s.pending.len() {
            if s.pending[i].0 <= now {
                let (_, task) = s.pending.swap_remove(i);
                let priority = task.priority;
                s.queue.requeue(task, priority);
            } else {
                i += 1;
            }
        }
        // Shutdown complete: intake closed, every worker exited (clean
        // exits only happen once the queue is drained), nothing parked.
        if s.queue.is_closed() && s.live == 0 && s.pending.is_empty() {
            break;
        }
        let next_due = s.pending.iter().map(|(d, _)| *d).min();
        let msg = match next_due {
            Some(d) => match s
                .rx
                .recv_timeout(d.saturating_duration_since(Instant::now()))
            {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            },
            // Nothing parked: block until a worker reports.
            None => match s.rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break,
            },
        };
        match msg {
            None => {} // a retry came due; the loop head fires it
            Some(SupMsg::RetryAt { task, due }) => s.pending.push((due, task)),
            Some(SupMsg::Exited { id, crashed }) => {
                if let Some(h) = s.handles.remove(&id) {
                    let _ = h.join();
                }
                s.live -= 1;
                // Respawn after a crash while there is (or may be) work:
                // anything queued, reserved, pending, or still accepting.
                // Once the queue is fully drained post-shutdown, a
                // replacement would exit immediately — skip it.
                if crashed && (!s.queue.is_drained() || !s.pending.is_empty()) {
                    let id = s.next_worker_id;
                    s.next_worker_id += 1;
                    s.metrics.workers_respawned.fetch_add(1, Ordering::Relaxed);
                    s.handles
                        .insert(id, spawn_worker(id, &s.queue, &s.metrics, s.cfg, &s.tx));
                    s.live += 1;
                }
            }
        }
    }
    // Defensive teardown: resolve anything still parked (unreachable in
    // the normal protocol — the loop only exits with `pending` empty or
    // on a disconnected channel, which cannot happen while workers hold
    // senders) and join any stragglers.
    for (_, task) in s.pending.drain(..) {
        s.queue.unreserve();
        task.shared.complete(JobOutcome::Failed(
            "service shut down during retry backoff".into(),
        ));
    }
    for (_, h) in s.handles.drain() {
        let _ = h.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_wait_roundtrip() {
        let svc = EncodeService::start(ServiceConfig::default());
        let im = imgio::synth::natural(48, 48, 3);
        let h = svc
            .submit(EncodeJob::new(im.clone(), EncoderParams::lossless()))
            .unwrap();
        match h.wait() {
            JobOutcome::Completed { codestream } => {
                assert_eq!(j2k_core::decode(&codestream).unwrap(), im);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let m = svc.metrics();
        assert_eq!((m.accepted, m.completed), (1, 1));
        assert_eq!(
            (m.jobs_retried, m.jobs_poisoned, m.workers_respawned),
            (0, 0, 0)
        );
        assert!(m.stage_seconds.iter().any(|(n, _)| n == "tier1"));
    }

    #[test]
    fn invalid_params_fail_cleanly() {
        let svc = EncodeService::start(ServiceConfig::default());
        let im = imgio::synth::natural(16, 16, 1);
        let bad = EncoderParams {
            levels: 0,
            ..EncoderParams::lossless()
        };
        let h = svc.submit(EncodeJob::new(im, bad)).unwrap();
        assert!(matches!(h.wait(), JobOutcome::Failed(_)));
        assert_eq!(svc.metrics().failed, 1);
    }

    #[test]
    fn health_reports_full_pool_and_ready() {
        let svc = EncodeService::start(ServiceConfig {
            pool_threads: 3,
            ..ServiceConfig::default()
        });
        let h = svc.health();
        assert_eq!(h.workers_alive, 3);
        assert_eq!(h.pool_threads, 3);
        assert_eq!(h.jobs_poisoned, 0);
        assert!(h.accepting);
        assert!(h.ready());
        svc.begin_shutdown();
        assert!(!svc.health().accepting);
        assert!(!svc.health().ready());
    }

    #[test]
    fn metrics_json_shape() {
        let snap = MetricsSnapshot {
            queue_depth: 1,
            queue_capacity: 8,
            accepted: 5,
            rejected: 2,
            completed: 3,
            timed_out: 1,
            cancelled: 0,
            failed: 0,
            jobs_retried: 4,
            jobs_poisoned: 1,
            workers_respawned: 2,
            workers_alive: 2,
            stage_seconds: vec![("dwt".into(), 0.25)],
        };
        let j = snap.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rejected\":2"));
        assert!(j.contains("\"jobs_retried\":4"));
        assert!(j.contains("\"jobs_poisoned\":1"));
        assert!(j.contains("\"workers_respawned\":2"));
        assert!(j.contains("\"workers_alive\":2"));
        assert!(j.contains("\"dwt\":0.250000"));
    }

    #[test]
    fn health_json_shape() {
        let h = HealthSnapshot {
            workers_alive: 2,
            pool_threads: 2,
            workers_respawned: 1,
            queue_depth: 0,
            queue_capacity: 64,
            jobs_retried: 1,
            jobs_poisoned: 1,
            accepting: true,
        };
        let j = h.to_json();
        assert!(j.contains("\"workers_alive\":2"));
        assert!(j.contains("\"jobs_poisoned\":1"));
        assert!(j.contains("\"accepting\":true"));
    }
}
