//! The encode service: admission control in front of a **self-healing**
//! worker pool that drains the bounded [`JobQueue`](crate::queue::JobQueue).
//!
//! Life of a job: [`EncodeService::submit`] computes the job's deadline,
//! wraps image + params + a shared [`EncodeControl`] into a queue task,
//! and either enqueues it (returning a [`JobHandle`]) or refuses with a
//! typed [`SubmitError`] — the service never buffers beyond the
//! configured queue capacity. A pool thread claims the task, runs
//! [`encode_parallel_ctl`] with the per-job `workers_per_job` budget, and
//! publishes the [`JobOutcome`] through the handle. Deadlines are
//! enforced *inside* the encode (the control is polled per stage and per
//! Tier-1 code block), so a job whose deadline passes mid-encode stops at
//! the next checkpoint and reports [`JobOutcome::TimedOut`]; a job that
//! expires while still queued fails the control's very first checkpoint
//! the same way — one mechanism, no timer thread.
//!
//! # Fault model (DESIGN.md §11)
//!
//! Every worker iteration runs under `catch_unwind`: a panicking encode
//! (bad geometry reaching a kernel, a future SIMD bug, an injected
//! `faultsim` failpoint) is **isolated** — it retires that one worker
//! thread instead of silently shrinking the pool. The crash path:
//!
//! 1. the dying worker hands its claimed job to the crash handler, which
//!    either **re-enqueues** it (bounded retry budget, exponential
//!    backoff, bypassing the admission bound — the slot was paid at
//!    submit) or **quarantines** it after repeated crashes, completing
//!    the handle with a typed [`JobOutcome::Poisoned`];
//! 2. a retry whose backoff would end past the job's deadline resolves
//!    [`JobOutcome::TimedOut`] immediately — no doomed wait;
//! 3. the worker notifies the **supervisor** and exits; the supervisor
//!    joins the dead thread and spawns a fresh replacement (fresh stack,
//!    no suspect state), keeping the pool at strength;
//! 4. delayed retries park at the supervisor until due, holding a queue
//!    *reservation* so graceful shutdown still drains them.
//!
//! **Unwind-safety argument** for the `AssertUnwindSafe`: the encode
//! call owns every piece of mutable state it touches — planes, chunk
//! plans, Tier-1 slots all live in the call frame and die in the unwind.
//! The state shared across the boundary is (a) the job queue, whose
//! mutex is never held while user code runs, (b) the claimed-task slot,
//! written only between `pop` and the encode call, and (c) the metrics
//! atomics, which are monotone counters. A panic can therefore leave no
//! torn invariant behind; locks that could in principle observe a
//! panicking test thread are recovered with `into_inner` instead of
//! unwrapping the poison flag.
//!
//! Shutdown is graceful by construction: [`EncodeService::begin_shutdown`]
//! closes the queue (new submissions refuse with
//! [`SubmitError::ShuttingDown`]) while queued, in-flight, *and pending
//! retry* jobs drain; [`EncodeService::shutdown`] additionally joins the
//! supervisor (and with it every worker, original or respawned).

use crate::pressure::{PixelReservation, PressureConfig, PressureController, PressureLevel};
use crate::queue::{JobQueue, PushError};
use imgio::Image;
use j2k_core::{encode_parallel_ctl, CodecError, EncodeControl, EncoderParams, ParallelOptions};
use obs::hist::{HistogramSnapshot, HistogramStats};
use obs::trace;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Quarantined job ids kept for [`EncodeService::quarantined`] (the
/// count itself is unbounded; see `jobs_poisoned`).
const QUARANTINE_KEEP: usize = 64;

/// One encode request.
#[derive(Debug, Clone)]
pub struct EncodeJob {
    /// Input image.
    pub image: Image,
    /// Encoder parameters (validated by the encoder, not at submit).
    pub params: EncoderParams,
    /// Scheduling priority: higher runs first; FIFO within a priority.
    pub priority: u8,
    /// Per-job deadline, measured from submission. `None` falls back to
    /// [`ServiceConfig::default_timeout`].
    pub timeout: Option<Duration>,
    /// Opt-in graceful degradation: under Elevated pressure the service
    /// may transparently re-run this job with the cheaper HT coder
    /// instead of shedding it. The response carries a `degraded` marker,
    /// and byte-identity is then against the *degraded* params —
    /// which is why the flag is opt-in (DESIGN.md §16).
    pub allow_degraded: bool,
}

impl EncodeJob {
    /// A default-priority job with no per-job timeout and no degradation.
    pub fn new(image: Image, params: EncoderParams) -> Self {
        EncodeJob {
            image,
            params,
            priority: 0,
            timeout: None,
            allow_degraded: false,
        }
    }
}

/// Terminal state of a submitted job.
#[derive(Debug)]
pub enum JobOutcome {
    /// Encode finished; the codestream is byte-identical to the
    /// sequential encoder's output for the same input and effective
    /// params (the submitted params, or their degraded form when
    /// `degraded` is set).
    Completed {
        /// The JPEG2000 codestream.
        codestream: Vec<u8>,
        /// True when overload admission downgraded this `allow_degraded`
        /// job to the HT coder (DESIGN.md §16).
        degraded: bool,
    },
    /// The job's deadline passed (queued, mid-encode, or during a crash
    /// retry's backoff).
    TimedOut,
    /// [`JobHandle::cancel`] stopped the job.
    Cancelled,
    /// The encoder rejected the job (bad params/image) or failed.
    Failed(String),
    /// The job crashed its worker more than the retry budget allows and
    /// is quarantined: the service refuses to run it again.
    Poisoned {
        /// Human-readable crash summary.
        message: String,
    },
}

/// Typed admission-control refusal from [`EncodeService::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity or the pressure policy shed the job;
    /// retry after the hint, degrade, or drop the request.
    Overloaded {
        /// The configured queue bound.
        capacity: usize,
        /// Client backoff hint (scales with the pressure level).
        retry_after_ms: u64,
    },
    /// [`EncodeService::begin_shutdown`] has run; no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded {
                capacity,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "overloaded: queue at capacity {capacity}, retry after {retry_after_ms}ms"
                )
            }
            SubmitError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Debug)]
struct JobShared {
    id: u64,
    ctl: EncodeControl,
    outcome: Mutex<Option<JobOutcome>>,
    cv: Condvar,
}

impl JobShared {
    fn complete(&self, outcome: JobOutcome) {
        *self.outcome.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
        self.cv.notify_all();
    }
}

/// Caller's side of a submitted job: wait for the outcome or cancel.
#[derive(Debug)]
pub struct JobHandle {
    shared: Arc<JobShared>,
}

impl JobHandle {
    /// Service-assigned job id (monotonic per service).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Request cancellation; the encode stops at its next checkpoint and
    /// the outcome becomes [`JobOutcome::Cancelled`].
    pub fn cancel(&self) {
        self.shared.ctl.cancel();
    }

    /// Block until the job reaches a terminal state and take the outcome.
    pub fn wait(self) -> JobOutcome {
        let mut g = self
            .shared
            .outcome
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(o) = g.take() {
                return o;
            }
            g = self.shared.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A queued unit of work. Shared as `Arc` so a crashing worker's handler
/// and the retry path hand the *same* job (with its crash count) around
/// without copying the image.
struct Task {
    image: Image,
    params: EncoderParams,
    priority: u8,
    /// True when admission downgraded the params to the HT coder.
    degraded: bool,
    /// Share of the in-flight pixel budget. Released explicitly *before*
    /// the outcome is fulfilled (so a waiter that reads metrics right
    /// after `wait()` sees the pixels gone), with the `Drop` of the last
    /// `Arc` as the backstop for retry, quarantine, and shutdown paths.
    pixels: Mutex<Option<PixelReservation>>,
    /// Times this job has crashed a worker.
    crashes: AtomicU32,
    /// Submission time, for the queue-wait histogram.
    submitted: Instant,
    /// Submission time on the trace clock (ns since trace epoch), so the
    /// cross-thread queue-wait span has an explicit start timestamp.
    submitted_ns: u64,
    /// Trace correlation id minted at submit; every span and instant the
    /// job produces — on any thread — carries it.
    trace_id: u64,
    shared: Arc<JobShared>,
}

/// Service-level objectives evaluated by the embedded burn-rate monitor
/// (DESIGN.md §17). Two objectives are tracked: *latency* (fraction of
/// finished jobs whose end-to-end time stays under a threshold) and
/// *errors* (fraction of finished jobs that complete). Each is watched
/// over [`obs::slo::default_windows`] — a fast 5-minute window and a
/// slow 1-hour window — and reports **breached** only when every window
/// burns error budget faster than its threshold, the standard
/// multi-window guard against paging on blips.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Latency objective: this fraction of finished jobs must complete
    /// within [`latency_threshold_us`](Self::latency_threshold_us).
    pub latency_objective: f64,
    /// The latency SLO threshold, microseconds of job end-to-end time.
    pub latency_threshold_us: u64,
    /// Error objective: this fraction of finished jobs must complete
    /// (rather than time out or fail).
    pub error_objective: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_objective: 0.99,
            latency_threshold_us: 500_000,
            error_objective: 0.999,
        }
    }
}

/// Tuning of an [`EncodeService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bounded queue capacity; submissions beyond it are
    /// [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Pool threads draining the queue (>= 1): the concurrency of whole
    /// jobs.
    pub pool_threads: usize,
    /// `workers` budget handed to [`encode_parallel_ctl`] per job: the
    /// parallelism *within* one encode.
    pub workers_per_job: usize,
    /// Deadline for jobs that set none.
    pub default_timeout: Option<Duration>,
    /// How many times a job that *crashes a worker* is retried before it
    /// is quarantined as [`JobOutcome::Poisoned`]. 1 (the default) means
    /// a job that crashes twice is poisoned.
    pub max_crash_retries: u32,
    /// Base backoff before a crash retry re-enters the queue; doubles per
    /// crash (`base << (crashes-1)`). Zero retries immediately.
    pub retry_backoff: Duration,
    /// When set (and tracing is enabled), each finished job's trace is
    /// also written to `DIR/trace-job-<id>.json`, keeping at most
    /// [`trace_keep`](Self::trace_keep) files.
    pub trace_dir: Option<PathBuf>,
    /// How many per-job traces the service retains — both in memory (for
    /// the wire `Trace` request) and on disk under
    /// [`trace_dir`](Self::trace_dir).
    pub trace_keep: usize,
    /// Overload-pressure thresholds and damping (DESIGN.md §16).
    pub pressure: PressureConfig,
    /// Jobs with `priority >= high_priority_min` are *high priority*:
    /// admitted even at Critical pressure and never shed by the pressure
    /// policy (the queue bound still applies).
    pub high_priority_min: u8,
    /// Burn-rate SLO monitoring (DESIGN.md §17); `None` disables it
    /// (`slo_breached` then reports false everywhere).
    pub slo: Option<SloConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            pool_threads: 2,
            workers_per_job: 1,
            default_timeout: None,
            max_crash_retries: 1,
            retry_backoff: Duration::from_millis(100),
            trace_dir: None,
            trace_keep: 16,
            pressure: PressureConfig::default(),
            high_priority_min: 128,
            slo: Some(SloConfig::default()),
        }
    }
}

/// Mutable burn-rate monitor state, sampled under one short lock from
/// [`EncodeService::slo_status`]. `epoch` anchors the monitors' virtual
/// millisecond clock so wall time never goes backwards on them.
struct SloState {
    latency: obs::slo::SloMonitor,
    errors: obs::slo::SloMonitor,
    epoch: Instant,
}

#[derive(Default)]
struct Metrics {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    timed_out: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    retried: AtomicU64,
    poisoned: AtomicU64,
    decoded: AtomicU64,
    decode_failed: AtomicU64,
    workers_respawned: AtomicU64,
    workers_alive: AtomicU64,
    /// Jobs refused by the *pressure* policy (a subset of `rejected`,
    /// which also counts queue-full refusals).
    shed: AtomicU64,
    /// `allow_degraded` jobs downgraded to the HT coder at admission.
    degraded: AtomicU64,
    /// Wire connections currently open (maintained by the server loop).
    conns_active: AtomicU64,
    /// Wire connections refused (cap reached or Critical pressure).
    conns_rejected: AtomicU64,
    /// Accumulated per-stage encode wall time (name -> seconds) and
    /// completed-job latency samples, both fed from finished jobs.
    stage_seconds: Mutex<BTreeMap<String, f64>>,
    /// Most recent quarantined job ids (bounded at [`QUARANTINE_KEEP`]).
    quarantine: Mutex<Vec<u64>>,
    /// Latency / throughput distributions: queue-wait, per-stage, whole
    /// job, Tier-1 symbol throughput. Recording is lock-free.
    hist: obs::Registry,
    /// Retained per-job Chrome traces, newest last, bounded at
    /// `trace_keep` (wire `Trace(job_id)` serves from here).
    traces: Mutex<VecDeque<(u64, String)>>,
    /// Trace files written under `trace_dir`, oldest first, for pruning.
    trace_files: Mutex<VecDeque<PathBuf>>,
}

/// Point-in-time counters of a service, JSON-serializable for the wire.
///
/// Every counter lives in service-owned atomics shared by reference with
/// the pool — nothing is held in worker-local state, so the numbers
/// survive any number of worker crashes and respawns.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Jobs queued right now (admitted, not yet claimed).
    pub queue_depth: usize,
    /// The admission bound.
    pub queue_capacity: usize,
    /// Jobs admitted since start.
    pub accepted: u64,
    /// Jobs refused by admission control since start.
    pub rejected: u64,
    /// Jobs that returned a codestream.
    pub completed: u64,
    /// Jobs stopped by their deadline.
    pub timed_out: u64,
    /// Jobs stopped by [`JobHandle::cancel`].
    pub cancelled: u64,
    /// Jobs the encoder refused or failed.
    pub failed: u64,
    /// Crash retries scheduled (a job that crashed once and completed on
    /// retry contributes 1 here and 1 to `completed`).
    pub jobs_retried: u64,
    /// Jobs quarantined after exhausting the crash-retry budget.
    pub jobs_poisoned: u64,
    /// Decode requests that returned an image.
    pub decoded: u64,
    /// Decode requests the decoder rejected.
    pub decode_failed: u64,
    /// Worker threads respawned after a crash.
    pub workers_respawned: u64,
    /// Worker threads currently live.
    pub workers_alive: u64,
    /// Current pressure classification (0 nominal / 1 elevated /
    /// 2 critical).
    pub pressure_level: u8,
    /// Pressure level transitions since start (each step counts one).
    pub pressure_transitions: u64,
    /// Jobs refused by the pressure policy (subset of `rejected`).
    pub jobs_shed: u64,
    /// `allow_degraded` jobs downgraded to the HT coder at admission.
    pub jobs_degraded: u64,
    /// Pixels admitted and not yet completed (the budget accountant).
    pub pixels_in_flight: u64,
    /// Wire connections currently open.
    pub connections_active: u64,
    /// Wire connections refused (cap or Critical pressure).
    pub connections_rejected: u64,
    /// Accumulated encode wall time per pipeline stage, seconds
    /// (stage names from [`j2k_core::WorkloadProfile::stage_times`]).
    pub stage_seconds: Vec<(String, f64)>,
    /// Percentile summaries per histogram series (`queue_wait_us`,
    /// `job_e2e_us`, `stage_*_us`, `tier1_symbols_per_sec` plus its
    /// per-coder splits `tier1_symbols_per_sec_mq` /
    /// `tier1_symbols_per_sec_ht`), sorted by series name.
    pub histograms: Vec<(String, HistogramStats)>,
    /// Per-kernel perf counters ([`obs::counters`]) — always the full
    /// declared kernel set in [`obs::counters::Kernel::ALL`] order, all
    /// zeros unless counting was enabled with
    /// [`obs::counters::set_enabled`] (as `j2kserved` does).
    pub kernels: Vec<obs::counters::KernelSnapshot>,
}

impl MetricsSnapshot {
    /// Hand-rolled JSON (the workspace builds offline, without serde).
    /// Keys are a stable schema (golden-file tested); dynamic names —
    /// stage and series names — are JSON-escaped.
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stage_seconds
            .iter()
            .map(|(n, s)| format!("\"{}\":{s:.6}", obs::json_escape(n)))
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(n, h)| {
                format!(
                    "\"{}\":{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
                    obs::json_escape(n),
                    h.count,
                    h.p50,
                    h.p95,
                    h.p99,
                    h.p999,
                    h.max
                )
            })
            .collect();
        let kernels: Vec<String> = self
            .kernels
            .iter()
            .map(|k| {
                format!(
                    "\"{}\":{{\"invocations\":{},\"samples\":{},\"bytes\":{},\"symbols\":{},\
                     \"ns\":{},\"gb_per_sec\":{:.6},\"symbols_per_sec\":{:.3}}}",
                    k.kernel.name(),
                    k.invocations,
                    k.samples,
                    k.bytes,
                    k.symbols,
                    k.ns,
                    k.gb_per_sec(),
                    k.symbols_per_sec()
                )
            })
            .collect();
        format!(
            "{{\"queue_depth\":{},\"queue_capacity\":{},\"accepted\":{},\"rejected\":{},\
             \"completed\":{},\"timed_out\":{},\"cancelled\":{},\"failed\":{},\
             \"jobs_retried\":{},\"jobs_poisoned\":{},\"decoded\":{},\"decode_failed\":{},\
             \"workers_respawned\":{},\
             \"workers_alive\":{},\"pressure_level\":{},\"pressure_transitions\":{},\
             \"jobs_shed\":{},\"jobs_degraded\":{},\"pixels_in_flight\":{},\
             \"connections_active\":{},\"connections_rejected\":{},\
             \"stage_seconds\":{{{}}},\"histograms\":{{{}}},\"kernels\":{{{}}}}}",
            self.queue_depth,
            self.queue_capacity,
            self.accepted,
            self.rejected,
            self.completed,
            self.timed_out,
            self.cancelled,
            self.failed,
            self.jobs_retried,
            self.jobs_poisoned,
            self.decoded,
            self.decode_failed,
            self.workers_respawned,
            self.workers_alive,
            self.pressure_level,
            self.pressure_transitions,
            self.jobs_shed,
            self.jobs_degraded,
            self.pixels_in_flight,
            self.connections_active,
            self.connections_rejected,
            stages.join(","),
            hists.join(","),
            kernels.join(",")
        )
    }
}

/// Readiness probe payload for the wire `Health` request: is the pool at
/// strength, is anything quarantined, how deep is the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Worker threads currently live.
    pub workers_alive: u64,
    /// Configured pool size (the target for `workers_alive`).
    pub pool_threads: u64,
    /// Workers respawned after crashes since start.
    pub workers_respawned: u64,
    /// Jobs queued right now.
    pub queue_depth: u64,
    /// The admission bound.
    pub queue_capacity: u64,
    /// Crash retries scheduled since start.
    pub jobs_retried: u64,
    /// Jobs quarantined after exhausting the crash-retry budget — the
    /// quarantine count.
    pub jobs_poisoned: u64,
    /// Whether the service still accepts submissions (false once
    /// shutdown has begun).
    pub accepting: bool,
    /// Current pressure classification (0 nominal / 1 elevated /
    /// 2 critical).
    pub pressure: u8,
    /// True when any configured SLO's burn-rate monitor reports breach
    /// (every window burning — DESIGN.md §17). An alerting signal, not a
    /// routing one: it does not affect [`ready`](Self::ready), because a
    /// replica already burning budget only burns faster if its traffic
    /// is routed to the remaining replicas.
    pub slo_breached: bool,
}

impl HealthSnapshot {
    /// Hand-rolled JSON, mirroring [`MetricsSnapshot::to_json`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers_alive\":{},\"pool_threads\":{},\"workers_respawned\":{},\
             \"queue_depth\":{},\"queue_capacity\":{},\"jobs_retried\":{},\
             \"jobs_poisoned\":{},\"accepting\":{},\"pressure\":{},\"slo_breached\":{}}}",
            self.workers_alive,
            self.pool_threads,
            self.workers_respawned,
            self.queue_depth,
            self.queue_capacity,
            self.jobs_retried,
            self.jobs_poisoned,
            self.accepting,
            self.pressure,
            self.slo_breached,
        )
    }

    /// Ready to take traffic: accepting, full pool live, and pressure
    /// below Critical — a shedding replica should not receive new routed
    /// traffic.
    pub fn ready(&self) -> bool {
        self.accepting
            && self.workers_alive >= self.pool_threads
            && self.pressure < PressureLevel::Critical.as_u8()
    }
}

/// Worker → supervisor notifications.
enum SupMsg {
    /// A worker thread exited (cleanly on drain, or crashed).
    Exited { id: u64, crashed: bool },
    /// A crashed job's retry parks until `due`, then re-enters the queue.
    /// The sender already holds a queue reservation for it.
    RetryAt { task: Arc<Task>, due: Instant },
}

/// The embeddable encode service. See the module docs for the lifecycle
/// and fault model.
pub struct EncodeService {
    cfg: ServiceConfig,
    queue: Arc<JobQueue<Arc<Task>>>,
    metrics: Arc<Metrics>,
    pressure: Arc<PressureController>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    next_id: AtomicU64,
    slo: Option<Mutex<SloState>>,
}

/// Every histogram series the service ever records, declared up front in
/// [`EncodeService::start`] so `MetricsSnapshot` JSON and the Prometheus
/// exposition carry the **full series set from the first scrape** —
/// zero-count histograms included. Recording lazily (as the workers do)
/// would otherwise make the schema depend on which coder or pipeline
/// happened to run first, breaking dashboards that join on series names.
/// Stage names cover the parallel driver's stages plus the sequential
/// pipeline's fused `transform` stage.
const DECLARED_HISTOGRAMS: &[&str] = &[
    "queue_wait_us",
    "job_e2e_us",
    "stage_convert_us",
    "stage_mct_us",
    "stage_dwt_us",
    "stage_quantize_us",
    "stage_transform_us",
    "stage_tier1_us",
    "stage_rate_control_us",
    "stage_tier2_us",
    "tier1_symbols_per_sec",
    "tier1_symbols_per_sec_mq",
    "tier1_symbols_per_sec_ht",
];

impl EncodeService {
    /// Start the worker pool (under its supervisor) and return the
    /// running service.
    pub fn start(cfg: ServiceConfig) -> Self {
        let queue = Arc::new(JobQueue::new(cfg.queue_capacity));
        let metrics = Arc::new(Metrics::default());
        for series in DECLARED_HISTOGRAMS {
            metrics.hist.histogram(series);
        }
        let pressure = Arc::new(PressureController::new(cfg.pressure.clone()));
        let (tx, rx) = channel::<SupMsg>();
        let mut handles = HashMap::new();
        let pool = cfg.pool_threads.max(1) as u64;
        for id in 0..pool {
            handles.insert(id, spawn_worker(id, &queue, &metrics, &pressure, &cfg, &tx));
        }
        let supervisor = {
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            let pressure = Arc::clone(&pressure);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                supervisor_main(Supervisor {
                    rx,
                    tx,
                    queue,
                    metrics,
                    pressure,
                    cfg,
                    handles,
                    next_worker_id: pool,
                    live: pool as usize,
                    pending: Vec::new(),
                })
            })
        };
        let slo = cfg.slo.as_ref().map(|s| {
            Mutex::new(SloState {
                latency: obs::slo::SloMonitor::new(
                    obs::slo::SloSpec {
                        name: "latency_p99".to_string(),
                        objective: s.latency_objective,
                    },
                    obs::slo::default_windows(),
                ),
                errors: obs::slo::SloMonitor::new(
                    obs::slo::SloSpec {
                        name: "error_rate".to_string(),
                        objective: s.error_objective,
                    },
                    obs::slo::default_windows(),
                ),
                epoch: Instant::now(),
            })
        });
        EncodeService {
            cfg,
            queue,
            metrics,
            pressure,
            supervisor: Mutex::new(Some(supervisor)),
            next_id: AtomicU64::new(1),
            slo,
        }
    }

    /// Refuse a job under pressure: counted as both `rejected` and
    /// `jobs_shed`, with a level-scaled backoff hint.
    fn shed(&self, priority: u8, level: PressureLevel) -> SubmitError {
        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        self.metrics.shed.fetch_add(1, Ordering::Relaxed);
        trace::instant_for(
            0,
            "job-shed",
            &[
                ("priority", u64::from(priority)),
                ("level", u64::from(level.as_u8())),
            ],
        );
        SubmitError::Overloaded {
            capacity: self.queue.capacity(),
            retry_after_ms: self.pressure.retry_after_ms(),
        }
    }

    /// Admission control: enqueue `job`, degrade it, or refuse. Never
    /// blocks and never buffers beyond `queue_capacity`.
    ///
    /// The degradation policy (DESIGN.md §16), applied in order:
    /// 1. at **Elevated+** pressure, an `allow_degraded` job is
    ///    downgraded to the HT coder (response marked `degraded`);
    /// 2. at **Elevated**, a low-priority job that did not opt in is
    ///    shed with [`SubmitError::Overloaded`]`{ retry_after_ms }`;
    /// 3. at **Critical**, only high-priority jobs
    ///    ([`ServiceConfig::high_priority_min`]) are admitted at all;
    /// 4. a job that would push in-flight pixels past the budget is shed
    ///    regardless of priority (hard envelope).
    pub fn submit(&self, job: EncodeJob) -> Result<JobHandle, SubmitError> {
        if self.queue.is_closed() {
            return Err(SubmitError::ShuttingDown);
        }
        let wait = self.metrics.hist.histogram("queue_wait_us").snapshot();
        let level = self
            .pressure
            .sample(self.queue.len(), self.queue.capacity(), &wait);
        let high = job.priority >= self.cfg.high_priority_min;
        let mut params = job.params;
        let mut degraded = false;
        if level >= PressureLevel::Elevated && job.allow_degraded {
            let (p, d) = params.degrade_for_load();
            if d {
                params = p;
                degraded = true;
            }
        }
        if !high {
            let shed_now = match level {
                PressureLevel::Critical => true,
                PressureLevel::Elevated => !degraded,
                PressureLevel::Nominal => false,
            };
            if shed_now {
                return Err(self.shed(job.priority, level));
            }
        }
        let pixels = (job.image.width as u64).saturating_mul(job.image.height as u64);
        if !self.pressure.pixels_admittable(pixels) {
            return Err(self.shed(job.priority, level));
        }
        let timeout = job.timeout.or(self.cfg.default_timeout);
        let ctl = match timeout {
            Some(t) => EncodeControl::with_deadline(Instant::now() + t),
            None => EncodeControl::new(),
        };
        let shared = Arc::new(JobShared {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            ctl,
            outcome: Mutex::new(None),
            cv: Condvar::new(),
        });
        let trace_id = trace::next_trace_id();
        let task = Arc::new(Task {
            image: job.image,
            params,
            priority: job.priority,
            degraded,
            pixels: Mutex::new(Some(PixelReservation::new(
                Arc::clone(&self.pressure),
                pixels,
            ))),
            crashes: AtomicU32::new(0),
            submitted: Instant::now(),
            submitted_ns: trace::now_ns(),
            trace_id,
            shared: Arc::clone(&shared),
        });
        let (id, priority) = (shared.id, job.priority);
        match self.queue.try_push(task, job.priority) {
            Ok(()) => {
                self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                if degraded {
                    self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                    trace::instant_for(
                        trace_id,
                        "degraded-admit",
                        &[("job", id), ("level", u64::from(level.as_u8()))],
                    );
                }
                trace::instant_for(
                    trace_id,
                    "queue-push",
                    &[("job", id), ("priority", u64::from(priority))],
                );
                Ok(JobHandle { shared })
            }
            Err((_, PushError::Full { capacity })) => {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded {
                    capacity,
                    retry_after_ms: self.pressure.retry_after_ms(),
                })
            }
            Err((_, PushError::Closed)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Current queue depth (admitted, unclaimed jobs).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Decode a codestream inline on the calling thread — decode carries
    /// no shared rate-control state and is cheap next to an encode, so it
    /// bypasses the queue, admission control, and the crash-retry
    /// machinery. `max_layers == usize::MAX` keeps every quality layer;
    /// `discard_levels` drops the finest resolution levels. Outcomes land
    /// in [`MetricsSnapshot::decoded`] /
    /// [`MetricsSnapshot::decode_failed`].
    pub fn decode(
        &self,
        data: &[u8],
        max_layers: usize,
        discard_levels: usize,
    ) -> Result<Image, CodecError> {
        let r = j2k_core::decode_opts(data, max_layers, discard_levels);
        let ctr = match r {
            Ok(_) => &self.metrics.decoded,
            Err(_) => &self.metrics.decode_failed,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
        r
    }

    /// Hold the pool at the queue: claimed jobs finish, queued jobs wait.
    /// Operational drain hook; also makes queue-state tests deterministic.
    pub fn pause(&self) {
        self.queue.pause();
    }

    /// Undo [`pause`](Self::pause).
    pub fn resume(&self) {
        self.queue.resume();
    }

    /// Counters right now.
    pub fn metrics(&self) -> MetricsSnapshot {
        let m = &self.metrics;
        MetricsSnapshot {
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            accepted: m.accepted.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            completed: m.completed.load(Ordering::Relaxed),
            timed_out: m.timed_out.load(Ordering::Relaxed),
            cancelled: m.cancelled.load(Ordering::Relaxed),
            failed: m.failed.load(Ordering::Relaxed),
            jobs_retried: m.retried.load(Ordering::Relaxed),
            jobs_poisoned: m.poisoned.load(Ordering::Relaxed),
            decoded: m.decoded.load(Ordering::Relaxed),
            decode_failed: m.decode_failed.load(Ordering::Relaxed),
            workers_respawned: m.workers_respawned.load(Ordering::Relaxed),
            workers_alive: m.workers_alive.load(Ordering::Relaxed),
            pressure_level: self.pressure.level().as_u8(),
            pressure_transitions: self.pressure.transitions(),
            jobs_shed: m.shed.load(Ordering::Relaxed),
            jobs_degraded: m.degraded.load(Ordering::Relaxed),
            pixels_in_flight: self.pressure.pixels_in_flight(),
            connections_active: m.conns_active.load(Ordering::Relaxed),
            connections_rejected: m.conns_rejected.load(Ordering::Relaxed),
            stage_seconds: m
                .stage_seconds
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(n, &s)| (n.clone(), s))
                .collect(),
            histograms: m
                .hist
                .snapshot()
                .into_iter()
                .map(|(n, h)| (n, h.stats()))
                .collect(),
            kernels: obs::counters::snapshot(),
        }
    }

    /// Full (bucketed) histogram snapshots, for Prometheus exposition.
    pub fn histogram_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        self.metrics.hist.snapshot()
    }

    /// Retained Chrome trace JSON for `job_id`, or — with `job_id == 0` —
    /// the most recently finished traced job. `None` when tracing is off,
    /// the job is unknown, or its trace has been evicted.
    pub fn trace_json(&self, job_id: u64) -> Option<String> {
        let t = self
            .metrics
            .traces
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if job_id == 0 {
            return t.back().map(|(_, j)| j.clone());
        }
        t.iter()
            .rev()
            .find(|(id, _)| *id == job_id)
            .map(|(_, j)| j.clone())
    }

    /// Feed the burn-rate monitors from the live counters and evaluate
    /// every configured SLO (empty when monitoring is disabled).
    ///
    /// The monitors consume *cumulative* good/total pairs: latency reads
    /// the `job_e2e_us` histogram (good = samples at or under the
    /// threshold bucket, via [`obs::slo::good_below`]); errors read the
    /// outcome counters (good = completed, total = completed + timed-out
    /// + failed — cancellations are caller-initiated, not errors).
    pub fn slo_status(&self) -> Vec<obs::slo::SloStatus> {
        let Some(state) = self.slo.as_ref() else {
            return Vec::new();
        };
        let cfg = self.cfg.slo.as_ref().expect("slo state implies config");
        let m = &self.metrics;
        let e2e = self.metrics.hist.histogram("job_e2e_us").snapshot();
        let lat_total: u64 = e2e.buckets.iter().sum();
        let lat_good = obs::slo::good_below(&e2e, cfg.latency_threshold_us);
        let completed = m.completed.load(Ordering::Relaxed);
        let err_total =
            completed + m.timed_out.load(Ordering::Relaxed) + m.failed.load(Ordering::Relaxed);
        let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
        let now_ms = st.epoch.elapsed().as_millis() as u64;
        st.latency.observe(now_ms, lat_good, lat_total);
        st.errors.observe(now_ms, completed, err_total);
        vec![st.latency.evaluate(now_ms), st.errors.evaluate(now_ms)]
    }

    /// Readiness probe: pool strength, quarantine count, queue depth,
    /// pressure. Probing re-samples the controller, so pressure decays
    /// even when no submissions arrive.
    pub fn health(&self) -> HealthSnapshot {
        let m = &self.metrics;
        let level = self.pressure_level();
        let slo_breached = self.slo_status().iter().any(|s| s.breached);
        HealthSnapshot {
            workers_alive: m.workers_alive.load(Ordering::Relaxed),
            pool_threads: self.cfg.pool_threads.max(1) as u64,
            workers_respawned: m.workers_respawned.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            queue_capacity: self.queue.capacity() as u64,
            jobs_retried: m.retried.load(Ordering::Relaxed),
            jobs_poisoned: m.poisoned.load(Ordering::Relaxed),
            accepting: !self.queue.is_closed(),
            pressure: level.as_u8(),
            slo_breached,
        }
    }

    /// Re-sample and return the pressure level (rate-limited by the
    /// controller's sample interval). The server accept loop gates new
    /// connections on this.
    pub fn pressure_level(&self) -> PressureLevel {
        let wait = self.metrics.hist.histogram("queue_wait_us").snapshot();
        self.pressure
            .sample(self.queue.len(), self.queue.capacity(), &wait)
    }

    /// The backoff hint for a client refused at the current pressure.
    pub fn retry_after_ms(&self) -> u64 {
        self.pressure.retry_after_ms()
    }

    /// The pressure controller (shared with the workers).
    pub fn pressure(&self) -> &Arc<PressureController> {
        &self.pressure
    }

    /// Server loop bookkeeping: a wire connection was accepted.
    pub fn conn_opened(&self) {
        self.metrics.conns_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Server loop bookkeeping: a wire connection closed.
    pub fn conn_closed(&self) {
        self.metrics.conns_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Server loop bookkeeping: a wire connection was refused (cap
    /// reached or Critical pressure).
    pub fn conn_rejected(&self) {
        self.metrics.conns_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Most recent quarantined job ids (up to [`QUARANTINE_KEEP`]).
    pub fn quarantined(&self) -> Vec<u64> {
        self.metrics
            .quarantine
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Close intake: new submissions get [`SubmitError::ShuttingDown`];
    /// queued, in-flight, and pending-retry jobs keep draining (a paused
    /// service resumes so the drain can proceed). Returns immediately;
    /// idempotent.
    pub fn begin_shutdown(&self) {
        self.queue.close();
    }

    /// [`begin_shutdown`](Self::begin_shutdown), then block until every
    /// admitted job has completed and the pool — including any workers
    /// respawned after crashes — has exited.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        let sup = self
            .supervisor
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = sup {
            let _ = h.join();
        }
    }
}

impl Drop for EncodeService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Worker pool + supervisor
// ---------------------------------------------------------------------------

fn spawn_worker(
    id: u64,
    queue: &Arc<JobQueue<Arc<Task>>>,
    metrics: &Arc<Metrics>,
    pressure: &Arc<PressureController>,
    cfg: &ServiceConfig,
    tx: &Sender<SupMsg>,
) -> JoinHandle<()> {
    // Counted on the spawning side so `workers_alive` never transiently
    // under-reports a worker that exists but has not yet scheduled.
    metrics.workers_alive.fetch_add(1, Ordering::Relaxed);
    let queue = Arc::clone(queue);
    let metrics = Arc::clone(metrics);
    let pressure = Arc::clone(pressure);
    let cfg = cfg.clone();
    let tx = tx.clone();
    std::thread::spawn(move || worker_main(id, &queue, &metrics, &pressure, &cfg, &tx))
}

fn worker_main(
    id: u64,
    queue: &JobQueue<Arc<Task>>,
    metrics: &Metrics,
    pressure: &Arc<PressureController>,
    cfg: &ServiceConfig,
    tx: &Sender<SupMsg>,
) {
    // The task claimed by the current iteration; after a panic the crash
    // handler takes it from here. Written only between claim and encode,
    // never while a lock is held across user code (see the module-level
    // unwind-safety argument).
    let current: Mutex<Option<Arc<Task>>> = Mutex::new(None);
    loop {
        let r = catch_unwind(AssertUnwindSafe(|| {
            worker_iteration(queue, metrics, pressure, cfg, &current)
        }));
        match r {
            Ok(true) => continue,
            Ok(false) => {
                // Queue closed and drained: clean exit.
                metrics.workers_alive.fetch_sub(1, Ordering::Relaxed);
                let _ = tx.send(SupMsg::Exited { id, crashed: false });
                return;
            }
            Err(_) => {
                // The iteration panicked. A crashed worker always retires
                // (fresh stack and state beat an unwound one); the
                // supervisor replaces it. Its claimed job, if any, goes
                // through the retry/quarantine state machine first.
                // Flush this thread's span buffer *before* the crash
                // handler so the crash/backoff instants land after the
                // events already recorded — and so a terminal outcome's
                // trace export sees them.
                trace::flush_thread();
                trace::set_current(0);
                let task = current.lock().unwrap_or_else(|e| e.into_inner()).take();
                if let Some(task) = task {
                    handle_crash(task, queue, metrics, cfg, tx);
                }
                metrics.workers_alive.fetch_sub(1, Ordering::Relaxed);
                let _ = tx.send(SupMsg::Exited { id, crashed: true });
                return;
            }
        }
    }
}

/// One claim-encode-complete cycle. Returns `false` when the queue is
/// closed and drained (worker should exit cleanly).
fn worker_iteration(
    queue: &JobQueue<Arc<Task>>,
    metrics: &Metrics,
    pressure: &Arc<PressureController>,
    cfg: &ServiceConfig,
    current: &Mutex<Option<Arc<Task>>>,
) -> bool {
    let Some(task) = queue.pop() else {
        return false;
    };
    *current.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&task));
    let wait = task.submitted.elapsed();
    metrics
        .hist
        .histogram("queue_wait_us")
        .record(wait.as_micros() as u64);
    trace::set_current(task.trace_id);
    if trace::enabled() {
        // Cross-thread span: the push timestamp was captured at submit,
        // the popping worker emits the complete event.
        trace::complete_with(
            task.trace_id,
            "queue-wait",
            "queue",
            task.submitted_ns,
            wait.as_nanos() as u64,
            &[("job", task.shared.id)],
        );
        trace::instant("queue-pop", &[("job", task.shared.id)]);
    }
    // Failpoint `worker.job_start`: between claim and encode. A panic
    // here crashes the worker while it holds a claimed job — the
    // narrowest reproduction of "worker dies mid-job".
    let outcome = if let Some(msg) = faultsim::eval("worker.job_start") {
        metrics.failed.fetch_add(1, Ordering::Relaxed);
        JobOutcome::Failed(format!("injected fault: {msg}"))
    } else {
        let encode_span = trace::span("encode")
            .cat("job")
            .arg("job", task.shared.id)
            .arg("coder", task.params.coder.id())
            .arg("crashes", u64::from(task.crashes.load(Ordering::Relaxed)));
        let started = Instant::now();
        let outcome = match encode_parallel_ctl(
            &task.image,
            &task.params,
            cfg.workers_per_job,
            &ParallelOptions::default(),
            Some(&task.shared.ctl),
        ) {
            Ok((codestream, profile)) => {
                metrics.completed.fetch_add(1, Ordering::Relaxed);
                let mut tier1_secs = 0.0f64;
                {
                    let mut stages = metrics
                        .stage_seconds
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    for st in &profile.stage_times {
                        *stages.entry(st.name.to_string()).or_insert(0.0) += st.seconds;
                    }
                }
                for st in &profile.stage_times {
                    if st.name == "tier1" {
                        tier1_secs += st.seconds;
                    }
                    // Series name: dashes to underscores so the name is a
                    // legal Prometheus identifier (`stage_rate_control_us`).
                    let series = format!("stage_{}_us", st.name.replace('-', "_"));
                    metrics
                        .hist
                        .histogram(&series)
                        .record((st.seconds * 1e6) as u64);
                }
                if tier1_secs > 0.0 {
                    let symbols = profile.tier1_symbols();
                    let rate = (symbols as f64 / tier1_secs) as u64;
                    metrics.hist.histogram("tier1_symbols_per_sec").record(rate);
                    // Per-coder series so an MQ/HT mix stays separable;
                    // the unsuffixed series keeps its pre-HT meaning of
                    // "all Tier-1 work" for existing dashboards.
                    let series = format!("tier1_symbols_per_sec_{}", task.params.coder.name());
                    metrics.hist.histogram(&series).record(rate);
                }
                // Only completed jobs feed the e2e series, so its +Inf
                // bucket count equals the completed-jobs counter (the
                // acceptance tie checked by the `observe` CI job).
                metrics
                    .hist
                    .histogram("job_e2e_us")
                    .record((wait + started.elapsed()).as_micros() as u64);
                JobOutcome::Completed {
                    codestream,
                    degraded: task.degraded,
                }
            }
            Err(CodecError::Deadline) => {
                metrics.timed_out.fetch_add(1, Ordering::Relaxed);
                JobOutcome::TimedOut
            }
            Err(CodecError::Cancelled) => {
                metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                JobOutcome::Cancelled
            }
            Err(e) => {
                metrics.failed.fetch_add(1, Ordering::Relaxed);
                JobOutcome::Failed(e.to_string())
            }
        };
        drop(encode_span);
        outcome
    };
    export_trace(&task, metrics, cfg);
    trace::set_current(0);
    current.lock().unwrap_or_else(|e| e.into_inner()).take();
    // Release the pixel reservation before fulfilling the outcome: a
    // submitter that reads metrics right after `wait()` returns must see
    // the pixels gone (the budget is a statement about in-flight work).
    task.pixels.lock().unwrap_or_else(|e| e.into_inner()).take();
    task.shared.complete(outcome);
    drop(task);
    // Re-sample: pressure decays as work completes even when no new
    // submissions (or probes) arrive to drive the controller.
    let wait = metrics.hist.histogram("queue_wait_us").snapshot();
    pressure.sample(queue.len(), queue.capacity(), &wait);
    true
}

/// Collect the finished (or terminally failed) job's events into a Chrome
/// trace, retain it in the in-memory ring, and optionally persist it under
/// `cfg.trace_dir`. No-op while tracing is disabled.
fn export_trace(task: &Task, metrics: &Metrics, cfg: &ServiceConfig) {
    if !trace::enabled() {
        return;
    }
    // The encode's scoped threads flushed their buffers when they exited;
    // flush this worker's own buffer so take_job sees everything.
    trace::flush_thread();
    let events = trace::take_job(task.trace_id);
    if events.is_empty() {
        return;
    }
    let json = obs::chrome::render(&events);
    let keep = cfg.trace_keep.max(1);
    {
        let mut t = metrics.traces.lock().unwrap_or_else(|e| e.into_inner());
        t.push_back((task.shared.id, json.clone()));
        while t.len() > keep {
            t.pop_front();
        }
    }
    if let Some(dir) = &cfg.trace_dir {
        let path = dir.join(format!("trace-job-{}.json", task.shared.id));
        if std::fs::create_dir_all(dir).is_ok() && std::fs::write(&path, &json).is_ok() {
            let mut f = metrics
                .trace_files
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            f.push_back(path);
            while f.len() > keep {
                if let Some(old) = f.pop_front() {
                    let _ = std::fs::remove_file(old);
                }
            }
        }
    }
}

/// The retry/quarantine state machine, run by a dying worker for the job
/// it crashed on:
///
/// ```text
/// crash -> crashes+1 > budget ----------------> Poisoned (quarantine)
///       -> deadline <= retry due time --------> TimedOut (no doomed wait)
///       -> backoff == 0 ----------------------> requeue now
///       -> else: reserve + park at supervisor -> requeue at due
/// ```
fn handle_crash(
    task: Arc<Task>,
    queue: &JobQueue<Arc<Task>>,
    metrics: &Metrics,
    cfg: &ServiceConfig,
    tx: &Sender<SupMsg>,
) {
    let crashes = task.crashes.fetch_add(1, Ordering::Relaxed) + 1;
    let id = task.shared.id;
    trace::instant_for(
        task.trace_id,
        "worker-crash",
        &[("job", id), ("crashes", u64::from(crashes))],
    );
    if crashes > cfg.max_crash_retries {
        metrics.poisoned.fetch_add(1, Ordering::Relaxed);
        {
            let mut q = metrics.quarantine.lock().unwrap_or_else(|e| e.into_inner());
            q.push(id);
            if q.len() > QUARANTINE_KEEP {
                let excess = q.len() - QUARANTINE_KEEP;
                q.drain(..excess);
            }
        }
        export_trace(&task, metrics, cfg);
        task.shared.complete(JobOutcome::Poisoned {
            message: format!(
                "job {id} crashed its worker {crashes} times (budget {}); quarantined",
                cfg.max_crash_retries
            ),
        });
        return;
    }
    // Exponential backoff: base << (crashes - 1), saturating.
    let backoff = cfg
        .retry_backoff
        .saturating_mul(1u32 << (crashes - 1).min(16));
    let due = Instant::now() + backoff;
    // A retry that cannot begin before the job's deadline is a timeout
    // *now*: completing the handle immediately beats parking the job for
    // a wait it is guaranteed to lose.
    if let Some(d) = task.shared.ctl.deadline() {
        if d <= due {
            metrics.timed_out.fetch_add(1, Ordering::Relaxed);
            export_trace(&task, metrics, cfg);
            task.shared.complete(JobOutcome::TimedOut);
            return;
        }
    }
    metrics.retried.fetch_add(1, Ordering::Relaxed);
    trace::instant_for(
        task.trace_id,
        "retry-backoff",
        &[("job", id), ("backoff_ms", backoff.as_millis() as u64)],
    );
    let priority = task.priority;
    if backoff.is_zero() {
        trace::instant_for(task.trace_id, "queue-requeue", &[("job", id)]);
        queue.requeue(task, priority);
        return;
    }
    queue.reserve();
    if let Err(e) = tx.send(SupMsg::RetryAt { task, due }) {
        // Supervisor already gone (late crash during teardown): run the
        // retry immediately rather than dropping an admitted job.
        if let SupMsg::RetryAt { task, .. } = e.0 {
            queue.requeue(task, priority);
        }
    }
}

struct Supervisor {
    rx: Receiver<SupMsg>,
    /// Kept for cloning into respawned workers; never used to send.
    tx: Sender<SupMsg>,
    queue: Arc<JobQueue<Arc<Task>>>,
    metrics: Arc<Metrics>,
    pressure: Arc<PressureController>,
    cfg: ServiceConfig,
    handles: HashMap<u64, JoinHandle<()>>,
    next_worker_id: u64,
    live: usize,
    /// Delayed crash retries: (due, task). Each holds a queue
    /// reservation.
    pending: Vec<(Instant, Arc<Task>)>,
}

fn supervisor_main(mut s: Supervisor) {
    loop {
        // Re-enqueue every retry that has come due.
        let now = Instant::now();
        let mut i = 0;
        while i < s.pending.len() {
            if s.pending[i].0 <= now {
                let (_, task) = s.pending.swap_remove(i);
                let priority = task.priority;
                trace::instant_for(task.trace_id, "queue-requeue", &[("job", task.shared.id)]);
                s.queue.requeue(task, priority);
            } else {
                i += 1;
            }
        }
        // Shutdown complete: intake closed, every worker exited (clean
        // exits only happen once the queue is drained), nothing parked.
        if s.queue.is_closed() && s.live == 0 && s.pending.is_empty() {
            break;
        }
        let next_due = s.pending.iter().map(|(d, _)| *d).min();
        let msg = match next_due {
            Some(d) => match s
                .rx
                .recv_timeout(d.saturating_duration_since(Instant::now()))
            {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            },
            // Nothing parked: block until a worker reports.
            None => match s.rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break,
            },
        };
        match msg {
            None => {} // a retry came due; the loop head fires it
            Some(SupMsg::RetryAt { task, due }) => s.pending.push((due, task)),
            Some(SupMsg::Exited { id, crashed }) => {
                if let Some(h) = s.handles.remove(&id) {
                    let _ = h.join();
                }
                s.live -= 1;
                // Respawn after a crash while there is (or may be) work:
                // anything queued, reserved, pending, or still accepting.
                // Once the queue is fully drained post-shutdown, a
                // replacement would exit immediately — skip it.
                if crashed && (!s.queue.is_drained() || !s.pending.is_empty()) {
                    let id = s.next_worker_id;
                    s.next_worker_id += 1;
                    s.metrics.workers_respawned.fetch_add(1, Ordering::Relaxed);
                    trace::instant_for(0, "worker-respawn", &[("worker", id)]);
                    s.handles.insert(
                        id,
                        spawn_worker(id, &s.queue, &s.metrics, &s.pressure, &s.cfg, &s.tx),
                    );
                    s.live += 1;
                }
            }
        }
    }
    // Defensive teardown: resolve anything still parked (unreachable in
    // the normal protocol — the loop only exits with `pending` empty or
    // on a disconnected channel, which cannot happen while workers hold
    // senders) and join any stragglers.
    for (_, task) in s.pending.drain(..) {
        s.queue.unreserve();
        task.shared.complete(JobOutcome::Failed(
            "service shut down during retry backoff".into(),
        ));
    }
    for (_, h) in s.handles.drain() {
        let _ = h.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_wait_roundtrip() {
        let svc = EncodeService::start(ServiceConfig::default());
        let im = imgio::synth::natural(48, 48, 3);
        let h = svc
            .submit(EncodeJob::new(im.clone(), EncoderParams::lossless()))
            .unwrap();
        match h.wait() {
            JobOutcome::Completed {
                codestream,
                degraded,
            } => {
                assert!(!degraded, "nominal pressure never degrades");
                assert_eq!(j2k_core::decode(&codestream).unwrap(), im);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let m = svc.metrics();
        assert_eq!((m.accepted, m.completed), (1, 1));
        assert_eq!(
            (m.jobs_retried, m.jobs_poisoned, m.workers_respawned),
            (0, 0, 0)
        );
        assert!(m.stage_seconds.iter().any(|(n, _)| n == "tier1"));
        // Stage names flow dynamically from the encoder's profile: the
        // parallel rate-control/Tier-2 tail reports both of its stages.
        for want in ["rate-control", "tier2"] {
            assert!(
                m.stage_seconds.iter().any(|(n, _)| n == want),
                "missing stage {want} in {:?}",
                m.stage_seconds
            );
        }
    }

    #[test]
    fn invalid_params_fail_cleanly() {
        let svc = EncodeService::start(ServiceConfig::default());
        let im = imgio::synth::natural(16, 16, 1);
        let bad = EncoderParams {
            levels: 0,
            ..EncoderParams::lossless()
        };
        let h = svc.submit(EncodeJob::new(im, bad)).unwrap();
        assert!(matches!(h.wait(), JobOutcome::Failed(_)));
        assert_eq!(svc.metrics().failed, 1);
    }

    #[test]
    fn health_reports_full_pool_and_ready() {
        let svc = EncodeService::start(ServiceConfig {
            pool_threads: 3,
            ..ServiceConfig::default()
        });
        let h = svc.health();
        assert_eq!(h.workers_alive, 3);
        assert_eq!(h.pool_threads, 3);
        assert_eq!(h.jobs_poisoned, 0);
        assert!(h.accepting);
        assert!(h.ready());
        svc.begin_shutdown();
        assert!(!svc.health().accepting);
        assert!(!svc.health().ready());
    }

    #[test]
    fn fresh_service_declares_the_full_histogram_series_set() {
        let svc = EncodeService::start(ServiceConfig {
            pool_threads: 1,
            ..ServiceConfig::default()
        });
        let m = svc.metrics();
        let names: Vec<&str> = m.histograms.iter().map(|(n, _)| n.as_str()).collect();
        let mut want: Vec<&str> = DECLARED_HISTOGRAMS.to_vec();
        want.sort_unstable();
        assert_eq!(
            names, want,
            "metrics must carry every declared series before anything runs"
        );
        assert!(m.histograms.iter().all(|(_, h)| h.count == 0));
        assert_eq!(m.kernels.len(), obs::counters::KERNEL_COUNT);
        svc.begin_shutdown();
    }

    #[test]
    fn slo_monitor_evaluates_and_feeds_health() {
        let svc = EncodeService::start(ServiceConfig {
            pool_threads: 1,
            ..ServiceConfig::default()
        });
        let st = svc.slo_status();
        assert_eq!(st.len(), 2);
        assert_eq!(st[0].name, "latency_p99");
        assert_eq!(st[1].name, "error_rate");
        assert!(
            st.iter().all(|s| !s.breached),
            "an idle service must not breach"
        );
        assert!(!svc.health().slo_breached);
        svc.begin_shutdown();

        let off = EncodeService::start(ServiceConfig {
            pool_threads: 1,
            slo: None,
            ..ServiceConfig::default()
        });
        assert!(off.slo_status().is_empty());
        assert!(!off.health().slo_breached);
        off.begin_shutdown();
    }

    #[test]
    fn metrics_json_shape() {
        let snap = MetricsSnapshot {
            queue_depth: 1,
            queue_capacity: 8,
            accepted: 5,
            rejected: 2,
            completed: 3,
            timed_out: 1,
            cancelled: 0,
            failed: 0,
            jobs_retried: 4,
            jobs_poisoned: 1,
            decoded: 6,
            decode_failed: 2,
            workers_respawned: 2,
            workers_alive: 2,
            pressure_level: 1,
            pressure_transitions: 3,
            jobs_shed: 7,
            jobs_degraded: 2,
            pixels_in_flight: 4096,
            connections_active: 3,
            connections_rejected: 1,
            stage_seconds: vec![("dwt".into(), 0.25)],
            histograms: vec![(
                "job_e2e_us".into(),
                HistogramStats {
                    count: 3,
                    p50: 100,
                    p95: 200,
                    p99: 200,
                    p999: 200,
                    max: 180,
                },
            )],
            kernels: vec![obs::counters::KernelSnapshot {
                kernel: obs::counters::Kernel::Tier1Mq,
                invocations: 2,
                samples: 4096,
                bytes: 16384,
                symbols: 9000,
                ns: 1_000_000,
            }],
        };
        let j = snap.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rejected\":2"));
        assert!(j.contains("\"jobs_retried\":4"));
        assert!(j.contains("\"jobs_poisoned\":1"));
        assert!(j.contains("\"decoded\":6"));
        assert!(j.contains("\"decode_failed\":2"));
        assert!(j.contains("\"workers_respawned\":2"));
        assert!(j.contains("\"workers_alive\":2"));
        assert!(j.contains("\"pressure_level\":1"));
        assert!(j.contains("\"pressure_transitions\":3"));
        assert!(j.contains("\"jobs_shed\":7"));
        assert!(j.contains("\"jobs_degraded\":2"));
        assert!(j.contains("\"pixels_in_flight\":4096"));
        assert!(j.contains("\"connections_active\":3"));
        assert!(j.contains("\"connections_rejected\":1"));
        assert!(j.contains("\"dwt\":0.250000"));
        assert!(j.contains("\"histograms\":{\"job_e2e_us\":{\"count\":3,\"p50\":100"));
        assert!(j.contains(
            "\"kernels\":{\"tier1_mq\":{\"invocations\":2,\"samples\":4096,\"bytes\":16384,\
             \"symbols\":9000,\"ns\":1000000,\"gb_per_sec\":0.016384,\
             \"symbols_per_sec\":9000000.000}}"
        ));
    }

    #[test]
    fn health_json_shape() {
        let h = HealthSnapshot {
            workers_alive: 2,
            pool_threads: 2,
            workers_respawned: 1,
            queue_depth: 0,
            queue_capacity: 64,
            jobs_retried: 1,
            jobs_poisoned: 1,
            accepting: true,
            pressure: 0,
            slo_breached: false,
        };
        let j = h.to_json();
        assert!(j.contains("\"workers_alive\":2"));
        assert!(j.contains("\"jobs_poisoned\":1"));
        assert!(j.contains("\"accepting\":true"));
        assert!(j.contains("\"pressure\":0"));
        assert!(j.contains("\"slo_breached\":false"));
    }

    #[test]
    fn critical_pressure_makes_health_not_ready() {
        let h = HealthSnapshot {
            workers_alive: 2,
            pool_threads: 2,
            workers_respawned: 0,
            queue_depth: 8,
            queue_capacity: 8,
            jobs_retried: 0,
            jobs_poisoned: 0,
            accepting: true,
            pressure: 2,
            slo_breached: false,
        };
        assert!(!h.ready(), "Critical pressure must fail readiness");
        assert!(HealthSnapshot { pressure: 1, ..h }.ready());
    }
}
