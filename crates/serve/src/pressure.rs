//! Overload pressure controller: deterministic classification of service
//! load as [`Nominal`](PressureLevel::Nominal) /
//! [`Elevated`](PressureLevel::Elevated) /
//! [`Critical`](PressureLevel::Critical), with hysteresis.
//!
//! The paper's Cell port survives saturation because every stage runs
//! inside a fixed resource envelope (constant Local Store, static chunk
//! widths). The daemon's envelope is enforced here: the controller
//! samples three *measured* signals —
//!
//! * **queue depth** as a fraction of the admission bound,
//! * **queue-wait p95** over the window since the previous sample
//!   (a bucket-wise delta of the cumulative `queue_wait_us` histogram),
//! * **in-flight pixels** against a configurable budget (the accountant
//!   lives here; [`PixelReservation`] releases on job completion) —
//!
//! and classifies the worst of them. Escalation is immediate (one bad
//! sample raises the level); de-escalation is damped twice over:
//! signals must clear the *scaled-down* thresholds
//! ([`PressureConfig::hysteresis`]) for [`PressureConfig::cool_samples`]
//! consecutive samples, and the level steps down one notch at a time.
//! Without that band, a queue hovering at the threshold would flap the
//! admission policy every sample — exactly the oscillation Benoit et
//! al.'s bi-criteria framing says to trade away (see DESIGN.md §16).
//!
//! Determinism: the controller never sleeps and never reads the wall
//! clock directly — time comes from an injectable [`Clock`]
//! ([`ManualClock`] in tests), and all state transitions happen inside
//! explicit [`PressureController::sample`] calls placed at admission and
//! job-completion points, so a test drives the controller entirely with
//! synchronous calls.

use obs::hist::{bucket_upper, HistogramSnapshot, BUCKETS};
use obs::trace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A monotonic time source. Injectable so pressure tests advance time
/// synchronously instead of sleeping.
pub trait Clock: Send + Sync {
    /// Current instant on this clock.
    fn now(&self) -> Instant;
}

/// The real monotonic clock.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A clock that only moves when told to ([`advance`](Self::advance)).
#[derive(Debug)]
pub struct ManualClock {
    now: Mutex<Instant>,
}

impl ManualClock {
    /// A manual clock anchored at the real "now"; only `advance` moves it.
    pub fn new() -> ManualClock {
        ManualClock {
            now: Mutex::new(Instant::now()),
        }
    }

    /// Move the clock forward by `d`.
    pub fn advance(&self, d: Duration) {
        *self.now.lock().unwrap_or_else(|e| e.into_inner()) += d;
    }

    /// A `(handle, clock)` pair: hand the handle to a
    /// [`PressureConfig`], keep the clock to drive time.
    pub fn handle() -> (ClockHandle, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (ClockHandle(Arc::clone(&clock) as Arc<dyn Clock>), clock)
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Instant {
        *self.now.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Shared, cloneable handle to a [`Clock`]. Defaults to [`SystemClock`].
#[derive(Clone)]
pub struct ClockHandle(pub Arc<dyn Clock>);

impl ClockHandle {
    /// Current instant on the wrapped clock.
    pub fn now(&self) -> Instant {
        self.0.now()
    }
}

impl Default for ClockHandle {
    fn default() -> Self {
        ClockHandle(Arc::new(SystemClock))
    }
}

impl std::fmt::Debug for ClockHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ClockHandle(..)")
    }
}

/// Service pressure classification, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum PressureLevel {
    /// Signals below every threshold: admit everything.
    Nominal = 0,
    /// At least one signal past its elevated threshold: shed low-priority
    /// work, downgrade opt-in jobs to the cheap coder.
    Elevated = 1,
    /// At least one signal past its critical threshold: only
    /// high-priority work is admitted and the accept loop sheds new
    /// connections.
    Critical = 2,
}

impl PressureLevel {
    /// Wire/metrics encoding (0/1/2).
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`as_u8`](Self::as_u8); out-of-range values are `None`.
    pub fn from_u8(v: u8) -> Option<PressureLevel> {
        match v {
            0 => Some(PressureLevel::Nominal),
            1 => Some(PressureLevel::Elevated),
            2 => Some(PressureLevel::Critical),
            _ => None,
        }
    }

    /// Lower-case name for logs and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            PressureLevel::Nominal => "nominal",
            PressureLevel::Elevated => "elevated",
            PressureLevel::Critical => "critical",
        }
    }

    fn step_down(self) -> PressureLevel {
        match self {
            PressureLevel::Nominal | PressureLevel::Elevated => PressureLevel::Nominal,
            PressureLevel::Critical => PressureLevel::Elevated,
        }
    }
}

/// Thresholds and damping of a [`PressureController`].
#[derive(Debug, Clone)]
pub struct PressureConfig {
    /// Queue depth / capacity fraction at which pressure is Elevated.
    pub elevated_depth: f64,
    /// Queue depth / capacity fraction at which pressure is Critical.
    pub critical_depth: f64,
    /// Windowed queue-wait p95 (µs) at which pressure is Elevated.
    pub elevated_wait_p95_us: u64,
    /// Windowed queue-wait p95 (µs) at which pressure is Critical.
    pub critical_wait_p95_us: u64,
    /// In-flight pixel budget; `u64::MAX` disables the pixel signal and
    /// the hard admission gate.
    pub pixel_budget: u64,
    /// Fraction of [`pixel_budget`](Self::pixel_budget) at which pressure
    /// is Elevated.
    pub elevated_pixel_frac: f64,
    /// Fraction of [`pixel_budget`](Self::pixel_budget) at which pressure
    /// is Critical.
    pub critical_pixel_frac: f64,
    /// De-escalation band: to step down, every signal must sit below
    /// `threshold * hysteresis` (strictly < 1.0, or the band vanishes).
    pub hysteresis: f64,
    /// Consecutive calm samples required per downward step.
    pub cool_samples: u32,
    /// Minimum clock time between full re-classifications; samples inside
    /// the interval return the cached level. Zero re-classifies every
    /// call (deterministic tests).
    pub min_sample_interval: Duration,
    /// Queue-wait delta windows with fewer samples than this contribute
    /// no wait signal (too noisy to act on).
    pub min_wait_window: u64,
    /// `retry_after_ms` hint attached to jobs shed at Elevated.
    pub retry_after_elevated_ms: u64,
    /// `retry_after_ms` hint attached to jobs shed at Critical.
    pub retry_after_critical_ms: u64,
    /// Time source; swap in a [`ManualClock`] for tests.
    pub clock: ClockHandle,
}

impl Default for PressureConfig {
    fn default() -> Self {
        PressureConfig {
            elevated_depth: 0.75,
            critical_depth: 0.95,
            elevated_wait_p95_us: 750_000,
            critical_wait_p95_us: 3_000_000,
            pixel_budget: u64::MAX,
            elevated_pixel_frac: 0.75,
            critical_pixel_frac: 0.95,
            hysteresis: 0.75,
            cool_samples: 2,
            min_sample_interval: Duration::from_millis(25),
            min_wait_window: 4,
            retry_after_elevated_ms: 250,
            retry_after_critical_ms: 1000,
            clock: ClockHandle::default(),
        }
    }
}

struct CtlState {
    last_sample: Option<Instant>,
    /// Cumulative queue-wait buckets at the previous sample; the current
    /// window's distribution is the bucket-wise difference.
    last_wait_buckets: [u64; BUCKETS],
    last_wait_count: u64,
    calm_streak: u32,
}

/// The controller. Cheap to share (`Arc`); `level` reads are lock-free.
pub struct PressureController {
    cfg: PressureConfig,
    level: AtomicU64,
    transitions: AtomicU64,
    pixels: AtomicU64,
    state: Mutex<CtlState>,
}

impl PressureController {
    /// A controller at Nominal with zero pixels in flight.
    pub fn new(cfg: PressureConfig) -> PressureController {
        PressureController {
            cfg,
            level: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
            pixels: AtomicU64::new(0),
            state: Mutex::new(CtlState {
                last_sample: None,
                last_wait_buckets: [0; BUCKETS],
                last_wait_count: 0,
                calm_streak: 0,
            }),
        }
    }

    /// The thresholds this controller runs with.
    pub fn config(&self) -> &PressureConfig {
        &self.cfg
    }

    /// Last classified level (no re-sampling).
    pub fn level(&self) -> PressureLevel {
        PressureLevel::from_u8(self.level.load(Ordering::Relaxed) as u8)
            .unwrap_or(PressureLevel::Nominal)
    }

    /// Level transitions since start (each up- or down-step counts one).
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Pixels currently admitted and not yet completed.
    pub fn pixels_in_flight(&self) -> u64 {
        self.pixels.load(Ordering::Relaxed)
    }

    /// The backoff hint to attach to a shed job at the current level.
    pub fn retry_after_ms(&self) -> u64 {
        match self.level() {
            PressureLevel::Critical => self.cfg.retry_after_critical_ms,
            _ => self.cfg.retry_after_elevated_ms,
        }
    }

    /// Hard admission gate on the pixel envelope: a job of `pixels` may
    /// be admitted unless it would push in-flight pixels past the budget.
    /// An oversized job is still admissible when nothing is in flight, so
    /// no job is permanently unadmittable.
    pub fn pixels_admittable(&self, pixels: u64) -> bool {
        if self.cfg.pixel_budget == u64::MAX {
            return true;
        }
        let in_flight = self.pixels.load(Ordering::Relaxed);
        in_flight == 0 || in_flight.saturating_add(pixels) <= self.cfg.pixel_budget
    }

    fn add_pixels(&self, n: u64) {
        self.pixels.fetch_add(n, Ordering::Relaxed);
    }

    fn remove_pixels(&self, n: u64) {
        self.pixels.fetch_sub(n, Ordering::Relaxed);
    }

    /// Instantaneous classification of the signals against thresholds
    /// scaled by `scale` (1.0 when deciding to raise, `hysteresis` when
    /// deciding whether things are calm enough to step down).
    fn raw_level(&self, depth_frac: f64, wait_p95_us: u64, scale: f64) -> PressureLevel {
        let c = &self.cfg;
        let pixel_frac = if c.pixel_budget == u64::MAX {
            0.0
        } else {
            self.pixels.load(Ordering::Relaxed) as f64 / c.pixel_budget.max(1) as f64
        };
        let wait = wait_p95_us as f64;
        if depth_frac >= c.critical_depth * scale
            || wait >= c.critical_wait_p95_us as f64 * scale
            || pixel_frac >= c.critical_pixel_frac * scale
        {
            PressureLevel::Critical
        } else if depth_frac >= c.elevated_depth * scale
            || wait >= c.elevated_wait_p95_us as f64 * scale
            || pixel_frac >= c.elevated_pixel_frac * scale
        {
            PressureLevel::Elevated
        } else {
            PressureLevel::Nominal
        }
    }

    /// Re-classify pressure from the signals. Rate-limited by
    /// [`PressureConfig::min_sample_interval`]; calls inside the interval
    /// return the cached level untouched. `wait` is the *cumulative*
    /// queue-wait histogram — the controller windows it internally.
    pub fn sample(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        wait: &HistogramSnapshot,
    ) -> PressureLevel {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let now = self.cfg.clock.now();
        if let Some(last) = st.last_sample {
            if now.duration_since(last) < self.cfg.min_sample_interval {
                return self.level();
            }
        }
        st.last_sample = Some(now);

        // Queue-wait p95 over the window since the previous sample.
        let mut delta = [0u64; BUCKETS];
        let mut delta_count = 0u64;
        for (i, d) in delta.iter_mut().enumerate() {
            *d = wait.buckets[i].saturating_sub(st.last_wait_buckets[i]);
            delta_count += *d;
        }
        st.last_wait_buckets = wait.buckets;
        st.last_wait_count = wait.count;
        let wait_p95_us = if delta_count < self.cfg.min_wait_window.max(1) {
            0
        } else {
            let rank = ((0.95 * delta_count as f64).ceil() as u64).clamp(1, delta_count);
            let mut seen = 0u64;
            let mut p = 0u64;
            for (i, &n) in delta.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    p = bucket_upper(i);
                    break;
                }
            }
            p
        };

        let depth_frac = queue_depth as f64 / queue_capacity.max(1) as f64;
        let cur = self.level();
        let raise = self.raw_level(depth_frac, wait_p95_us, 1.0);
        let next = if raise > cur {
            st.calm_streak = 0;
            raise
        } else {
            let calm = self.raw_level(depth_frac, wait_p95_us, self.cfg.hysteresis);
            if calm < cur {
                st.calm_streak += 1;
                if st.calm_streak >= self.cfg.cool_samples.max(1) {
                    st.calm_streak = 0;
                    cur.step_down()
                } else {
                    cur
                }
            } else {
                st.calm_streak = 0;
                cur
            }
        };
        if next != cur {
            self.level.store(u64::from(next.as_u8()), Ordering::Relaxed);
            self.transitions.fetch_add(1, Ordering::Relaxed);
            trace::instant_for(
                0,
                "pressure-level",
                &[
                    ("from", u64::from(cur.as_u8())),
                    ("to", u64::from(next.as_u8())),
                ],
            );
        }
        next
    }
}

impl std::fmt::Debug for PressureController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PressureController")
            .field("level", &self.level())
            .field("transitions", &self.transitions())
            .field("pixels_in_flight", &self.pixels_in_flight())
            .finish()
    }
}

/// RAII share of the in-flight pixel budget: created at admission,
/// released when the job reaches a terminal state (the owning task is
/// dropped), so crash retries and quarantines can never leak budget.
pub struct PixelReservation {
    ctl: Arc<PressureController>,
    pixels: u64,
}

impl PixelReservation {
    /// Reserve `pixels` against `ctl`'s accountant.
    pub fn new(ctl: Arc<PressureController>, pixels: u64) -> PixelReservation {
        ctl.add_pixels(pixels);
        PixelReservation { ctl, pixels }
    }

    /// The reserved pixel count.
    pub fn pixels(&self) -> u64 {
        self.pixels
    }
}

impl Drop for PixelReservation {
    fn drop(&mut self) {
        self.ctl.remove_pixels(self.pixels);
    }
}

impl std::fmt::Debug for PixelReservation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PixelReservation({})", self.pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::hist::Histogram;

    fn cfg(clock: ClockHandle) -> PressureConfig {
        PressureConfig {
            elevated_depth: 0.5,
            critical_depth: 0.9,
            elevated_wait_p95_us: 1_000,
            critical_wait_p95_us: 10_000,
            hysteresis: 0.5,
            cool_samples: 2,
            min_sample_interval: Duration::ZERO,
            min_wait_window: 2,
            clock,
            ..PressureConfig::default()
        }
    }

    fn empty_wait() -> HistogramSnapshot {
        Histogram::new().snapshot()
    }

    #[test]
    fn depth_raises_immediately_and_cools_with_hysteresis() {
        let (clock, _mc) = ManualClock::handle();
        let ctl = PressureController::new(cfg(clock));
        assert_eq!(ctl.level(), PressureLevel::Nominal);

        // 6/10 >= 0.5: one sample raises to Elevated.
        assert_eq!(ctl.sample(6, 10, &empty_wait()), PressureLevel::Elevated);
        // 10/10 >= 0.9: straight to Critical (multi-step raise is one
        // sample).
        assert_eq!(ctl.sample(10, 10, &empty_wait()), PressureLevel::Critical);
        assert_eq!(ctl.transitions(), 2);

        // 5/10 = 0.5 >= critical*h = 0.45: inside the hysteresis band,
        // the level holds.
        assert_eq!(ctl.sample(5, 10, &empty_wait()), PressureLevel::Critical);
        // 3/10 = 0.3 < 0.45: calm relative to Critical — but one calm
        // sample is not enough (cool_samples = 2)...
        assert_eq!(ctl.sample(3, 10, &empty_wait()), PressureLevel::Critical);
        // ...the second steps down ONE level, not straight to Nominal.
        assert_eq!(ctl.sample(3, 10, &empty_wait()), PressureLevel::Elevated);
        // 0.3 >= elevated*h = 0.25: Elevated now holds; only samples
        // below 0.25 cool further.
        ctl.sample(3, 10, &empty_wait());
        assert_eq!(ctl.level(), PressureLevel::Elevated);
        ctl.sample(2, 10, &empty_wait());
        assert_eq!(ctl.sample(2, 10, &empty_wait()), PressureLevel::Nominal);
        assert_eq!(ctl.transitions(), 4);
    }

    #[test]
    fn calm_streak_resets_on_a_loud_sample() {
        let (clock, _mc) = ManualClock::handle();
        let ctl = PressureController::new(cfg(clock));
        ctl.sample(6, 10, &empty_wait()); // Elevated
        ctl.sample(0, 10, &empty_wait()); // calm 1/2
        ctl.sample(4, 10, &empty_wait()); // loud (0.4 >= 0.25): streak resets
        ctl.sample(0, 10, &empty_wait()); // calm 1/2 again
        assert_eq!(ctl.level(), PressureLevel::Elevated);
        assert_eq!(ctl.sample(0, 10, &empty_wait()), PressureLevel::Nominal);
    }

    #[test]
    fn wait_p95_is_windowed_not_cumulative() {
        let (clock, _mc) = ManualClock::handle();
        let ctl = PressureController::new(cfg(clock));
        let h = Histogram::new();
        // A slow historical window...
        for _ in 0..10 {
            h.record(50_000);
        }
        assert_eq!(
            ctl.sample(0, 10, &h.snapshot()),
            PressureLevel::Critical,
            "first window sees the slow samples"
        );
        // ...followed by fast windows: the cumulative histogram still
        // holds the old samples, but the delta is fast, so the
        // controller cools. (cool_samples = 2, one step per streak.)
        for _ in 0..10 {
            h.record(10);
        }
        ctl.sample(0, 10, &h.snapshot());
        ctl.sample(0, 10, &h.snapshot());
        ctl.sample(0, 10, &h.snapshot());
        assert_eq!(ctl.sample(0, 10, &h.snapshot()), PressureLevel::Nominal);
    }

    #[test]
    fn tiny_wait_windows_are_ignored() {
        let (clock, _mc) = ManualClock::handle();
        let ctl = PressureController::new(cfg(clock));
        let h = Histogram::new();
        h.record(1 << 40); // one absurd sample, window below min_wait_window
        assert_eq!(ctl.sample(0, 10, &h.snapshot()), PressureLevel::Nominal);
    }

    #[test]
    fn sample_interval_returns_cached_level() {
        let (clock, mc) = ManualClock::handle();
        let mut c = cfg(clock);
        c.min_sample_interval = Duration::from_millis(100);
        let ctl = PressureController::new(c);
        assert_eq!(ctl.sample(10, 10, &empty_wait()), PressureLevel::Critical);
        // Inside the interval the depth change is invisible.
        assert_eq!(ctl.sample(0, 10, &empty_wait()), PressureLevel::Critical);
        mc.advance(Duration::from_millis(101));
        // Past the interval the calm streak starts counting.
        ctl.sample(0, 10, &empty_wait());
        mc.advance(Duration::from_millis(101));
        assert_eq!(ctl.sample(0, 10, &empty_wait()), PressureLevel::Elevated);
    }

    #[test]
    fn pixel_budget_drives_pressure_and_admission() {
        let (clock, _mc) = ManualClock::handle();
        let mut c = cfg(clock);
        c.pixel_budget = 1000;
        c.elevated_pixel_frac = 0.5;
        c.critical_pixel_frac = 0.9;
        let ctl = Arc::new(PressureController::new(c));
        assert!(
            ctl.pixels_admittable(5000),
            "empty accountant admits even oversized jobs"
        );
        let r1 = PixelReservation::new(Arc::clone(&ctl), 600);
        assert_eq!(ctl.pixels_in_flight(), 600);
        assert_eq!(ctl.sample(0, 10, &empty_wait()), PressureLevel::Elevated);
        assert!(!ctl.pixels_admittable(600), "601..: past the budget");
        assert!(ctl.pixels_admittable(400));
        let r2 = PixelReservation::new(Arc::clone(&ctl), 400);
        assert_eq!(ctl.sample(0, 10, &empty_wait()), PressureLevel::Critical);
        drop(r1);
        drop(r2);
        assert_eq!(ctl.pixels_in_flight(), 0);
        ctl.sample(0, 10, &empty_wait());
        assert_eq!(ctl.sample(0, 10, &empty_wait()), PressureLevel::Elevated);
    }

    #[test]
    fn retry_hint_tracks_level() {
        let (clock, _mc) = ManualClock::handle();
        let ctl = PressureController::new(cfg(clock));
        assert_eq!(ctl.retry_after_ms(), 250);
        ctl.sample(10, 10, &empty_wait());
        assert_eq!(ctl.retry_after_ms(), 1000);
    }

    #[test]
    fn level_codec_roundtrip() {
        for l in [
            PressureLevel::Nominal,
            PressureLevel::Elevated,
            PressureLevel::Critical,
        ] {
            assert_eq!(PressureLevel::from_u8(l.as_u8()), Some(l));
        }
        assert_eq!(PressureLevel::from_u8(3), None);
        assert!(PressureLevel::Critical > PressureLevel::Elevated);
        assert_eq!(PressureLevel::Critical.step_down(), PressureLevel::Elevated);
        assert_eq!(PressureLevel::Nominal.step_down(), PressureLevel::Nominal);
    }
}
