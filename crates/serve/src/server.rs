//! TCP front end for an [`EncodeService`]: one thread per connection,
//! one frame per request, one frame per reply.
//!
//! The server never buffers more than one in-flight request per
//! connection, and the service's bounded queue provides the global
//! backpressure — a flood of connections turns into
//! [`Response::Rejected`] replies, not memory growth. Framing errors
//! (bad magic, oversized length, mid-frame disconnect) close the
//! connection; payload-local errors get a [`Response::Failed`] reply and
//! the connection lives on.
//!
//! Connection hardening (DESIGN.md §16): every accepted socket gets
//! read/write deadlines ([`ServerConfig::io_timeout`]) so a slow-loris
//! peer — one that opens a connection and trickles or stalls a frame —
//! times out instead of pinning its handler thread forever; the number
//! of concurrent handlers is capped ([`ServerConfig::max_connections`]);
//! and at **Critical** pressure the accept loop sheds new connections
//! with an `Overloaded { retry_after_ms }` reply instead of spawning
//! handlers. The `wire.stall` failpoint injects the stalled-peer path
//! deterministically in chaos tests.

use crate::service::{EncodeJob, EncodeService, JobOutcome, SubmitError};
use crate::wire::{
    encode_response, parse_request, read_frame, write_frame, RejectReason, Request, Response,
    WireError,
};
use crate::PressureLevel;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Per-frame payload ceiling (see [`crate::wire::read_frame`]).
    pub max_frame: usize,
    /// Per-connection read *and* write deadline. A peer that stalls a
    /// frame longer than this gets its connection closed. `None`
    /// disables deadlines (tests that deliberately hold connections).
    pub io_timeout: Option<Duration>,
    /// Concurrent-connection cap; connections beyond it are refused
    /// with an `Overloaded` reply. 0 means unlimited.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame: crate::wire::DEFAULT_MAX_FRAME,
            io_timeout: Some(Duration::from_secs(30)),
            max_connections: 256,
        }
    }
}

/// Accept connections until a [`Request::Shutdown`] arrives, then drain
/// the service and return. Blocks the calling thread; connection
/// handlers run on their own threads.
pub fn serve(
    listener: TcpListener,
    service: Arc<EncodeService>,
    cfg: ServerConfig,
) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let conns = Arc::new(AtomicUsize::new(0));
    let local = listener.local_addr()?;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        // Deadlines first: even the reject reply below is written under
        // a deadline, so a stalled peer cannot pin the accept loop.
        let _ = stream.set_read_timeout(cfg.io_timeout);
        let _ = stream.set_write_timeout(cfg.io_timeout);
        if service.pressure_level() == PressureLevel::Critical {
            service.conn_rejected();
            let _ = write_frame(
                &mut stream,
                &encode_response(&Response::Rejected(RejectReason::Overloaded {
                    retry_after_ms: service.retry_after_ms().min(u64::from(u32::MAX)) as u32,
                })),
            );
            continue;
        }
        if cfg.max_connections > 0 && conns.load(Ordering::SeqCst) >= cfg.max_connections {
            service.conn_rejected();
            let _ = write_frame(
                &mut stream,
                &encode_response(&Response::Rejected(RejectReason::Overloaded {
                    retry_after_ms: service.retry_after_ms().min(u64::from(u32::MAX)) as u32,
                })),
            );
            continue;
        }
        conns.fetch_add(1, Ordering::SeqCst);
        service.conn_opened();
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            let exit = handle_conn(stream, &service, cfg);
            conns.fetch_sub(1, Ordering::SeqCst);
            service.conn_closed();
            if exit == ConnExit::Shutdown {
                stop.store(true, Ordering::SeqCst);
                service.begin_shutdown();
                // Self-connect to pop the accept loop out of `incoming()`.
                let _ = TcpStream::connect(local);
            }
        });
    }
    service.shutdown();
    Ok(())
}

#[derive(Debug, PartialEq, Eq)]
enum ConnExit {
    Closed,
    Shutdown,
}

fn respond(stream: &mut TcpStream, resp: &Response) -> bool {
    write_frame(stream, &encode_response(resp)).is_ok()
}

fn handle_conn(stream: TcpStream, service: &EncodeService, cfg: ServerConfig) -> ConnExit {
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return ConnExit::Closed,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Failpoint `wire.stall`: models a peer that stalls mid-exchange.
        // A Delay holds the handler here (past the io deadline in the
        // storm test) then proceeds; an Error stands in for the deadline
        // expiring — the connection closes, the thread is reclaimed.
        if faultsim::eval("wire.stall").is_some() {
            return ConnExit::Closed;
        }
        let payload = match read_frame(&mut reader, cfg.max_frame) {
            Ok(p) => p,
            // Clean disconnect, mid-frame disconnect, garbage, an
            // oversized claim, or a blown io deadline: the stream is
            // unsynchronized — drop it.
            Err(_) => return ConnExit::Closed,
        };
        let req = match parse_request(&payload) {
            Ok(r) => r,
            Err(e @ WireError::Malformed(_)) => {
                if !respond(&mut writer, &Response::Failed(e.to_string())) {
                    return ConnExit::Closed;
                }
                continue;
            }
            Err(_) => return ConnExit::Closed,
        };
        let resp = match req {
            Request::Ping => Response::Pong,
            Request::Metrics => Response::MetricsJson(service.metrics().to_json()),
            Request::Health => Response::Health(service.health()),
            Request::Trace(job_id) => match service.trace_json(job_id) {
                Some(j) => Response::TraceJson(j),
                None => Response::Failed(format!(
                    "no retained trace for job {job_id} (is the daemon tracing?)"
                )),
            },
            Request::Shutdown => {
                let _ = respond(&mut writer, &Response::Pong);
                return ConnExit::Shutdown;
            }
            Request::Decode(d) => {
                let max_layers = if d.max_layers == 0 {
                    usize::MAX
                } else {
                    d.max_layers as usize
                };
                match service.decode(&d.codestream, max_layers, usize::from(d.discard_levels)) {
                    Ok(image) => Response::DecodeOk(image),
                    Err(e) => Response::Failed(e.to_string()),
                }
            }
            Request::Encode(e) => {
                let job = EncodeJob {
                    image: e.image,
                    params: e.params,
                    priority: e.priority,
                    timeout: (e.timeout_ms > 0)
                        .then(|| Duration::from_millis(u64::from(e.timeout_ms))),
                    allow_degraded: e.allow_degraded,
                };
                match service.submit(job) {
                    Ok(handle) => match handle.wait() {
                        JobOutcome::Completed {
                            codestream,
                            degraded,
                        } => Response::EncodeOk {
                            codestream,
                            degraded,
                        },
                        JobOutcome::TimedOut => Response::TimedOut,
                        JobOutcome::Cancelled => Response::Cancelled,
                        JobOutcome::Failed(m) => Response::Failed(m),
                        JobOutcome::Poisoned { message } => Response::Poisoned(message),
                    },
                    Err(SubmitError::Overloaded { retry_after_ms, .. }) => {
                        Response::Rejected(RejectReason::Overloaded {
                            retry_after_ms: retry_after_ms.min(u64::from(u32::MAX)) as u32,
                        })
                    }
                    Err(SubmitError::ShuttingDown) => {
                        Response::Rejected(RejectReason::ShuttingDown)
                    }
                }
            }
        };
        if !respond(&mut writer, &resp) {
            return ConnExit::Closed;
        }
    }
}
