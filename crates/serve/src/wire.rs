//! Length-prefixed binary wire protocol for the encode service
//! (std::net only; no external serialization crates).
//!
//! Every message travels in one **frame**:
//!
//! ```text
//! +--------+---------+----------+-----------+----------------+
//! | magic  | version | reserved | length    | payload        |
//! | u16 BE | u8 (=2) | u8 (=0)  | u32 BE    | `length` bytes |
//! +--------+---------+----------+-----------+----------------+
//! ```
//!
//! The length field is validated against a caller-supplied ceiling
//! *before* any allocation, so an adversarial 4 GiB length claim costs
//! nothing ([`WireError::Oversized`]). Truncated headers, truncated
//! payloads, and mid-frame disconnects all surface as typed errors —
//! never panics, never unbounded buffering (asserted by the
//! `wire_robustness` fuzz tests, which mirror the decoder's
//! codestream-mutation suite).
//!
//! Payloads: a tag byte, then tag-specific fields, all big-endian,
//! decoded by total functions over `&[u8]`. An encode request carries
//! the full [`EncoderParams`] and the raw image planes; sample counts
//! are cross-checked against the actual payload size before the pixel
//! buffer is built.

use crate::service::HealthSnapshot;
use imgio::Image;
use j2k_core::{Arithmetic, Coder, EncoderParams, Mode, VerticalVariant};
use std::io::{Read, Write};

/// Frame magic: "J2".
pub const MAGIC: u16 = 0x4A32;
/// Protocol version. v2 added the encode-request flags byte
/// (`allow_degraded`), the `degraded` marker on `EncodeOk`, the
/// `retry_after_ms` hint on `Overloaded`, and the health pressure byte.
/// v3 appended the health `slo_breached` byte.
pub const VERSION: u8 = 3;
/// Frame header size in bytes.
pub const HEADER_LEN: usize = 8;
/// Default ceiling on payload size: fits a 3072x3072 RGB u16 image
/// (the paper's full workload) with ample headroom.
pub const DEFAULT_MAX_FRAME: usize = 256 << 20;

const TAG_ENCODE: u8 = 0x01;
const TAG_METRICS: u8 = 0x02;
const TAG_PING: u8 = 0x03;
const TAG_SHUTDOWN: u8 = 0x04;
const TAG_HEALTH: u8 = 0x05;
const TAG_TRACE: u8 = 0x06;
const TAG_DECODE: u8 = 0x07;
const TAG_ENCODE_OK: u8 = 0x81;
const TAG_REJECTED: u8 = 0x82;
const TAG_TIMED_OUT: u8 = 0x83;
const TAG_CANCELLED: u8 = 0x84;
const TAG_FAILED: u8 = 0x85;
const TAG_METRICS_JSON: u8 = 0x86;
const TAG_PONG: u8 = 0x87;
const TAG_HEALTH_OK: u8 = 0x88;
const TAG_POISONED: u8 = 0x89;
const TAG_TRACE_JSON: u8 = 0x8A;
const TAG_DECODE_OK: u8 = 0x8B;

/// Wire-level failures. Framing errors ([`Truncated`](Self::Truncated),
/// [`BadMagic`](Self::BadMagic), [`Oversized`](Self::Oversized),
/// [`Io`](Self::Io)) desynchronize the stream and should close the
/// connection; [`Malformed`](Self::Malformed) is payload-local.
#[derive(Debug)]
pub enum WireError {
    /// Stream ended inside a header or payload (includes mid-frame
    /// disconnects).
    Truncated,
    /// First two header bytes were not [`MAGIC`].
    BadMagic(u16),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Length field exceeds the configured ceiling; nothing was
    /// allocated.
    Oversized {
        /// Claimed payload length.
        len: u64,
        /// The ceiling it exceeded.
        max: usize,
    },
    /// Payload decoded to an inconsistent or unknown message.
    Malformed(String),
    /// Underlying transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds limit {max}")
            }
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
            WireError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Encode one image.
    Encode(EncodeRequest),
    /// Fetch a [`MetricsSnapshot`](crate::service::MetricsSnapshot) as
    /// JSON.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Ask the daemon to drain and exit.
    Shutdown,
    /// Readiness probe: fetch a
    /// [`HealthSnapshot`](crate::service::HealthSnapshot) (live workers,
    /// quarantine count, retry totals, queue depth).
    Health,
    /// Fetch a finished job's Chrome trace JSON by job id (0 = the most
    /// recently finished traced job). Requires the daemon to run with
    /// tracing enabled; answered with [`Response::TraceJson`] or, when no
    /// such trace is retained, [`Response::Failed`].
    Trace(u64),
    /// Decode a codestream back to an image (the closed-loop half of
    /// [`Request::Encode`]). Answered with [`Response::DecodeOk`] or,
    /// on a codestream the decoder rejects, [`Response::Failed`].
    Decode(DecodeRequest),
}

/// Body of [`Request::Encode`].
#[derive(Debug, Clone, PartialEq)]
pub struct EncodeRequest {
    /// Scheduling priority (higher first).
    pub priority: u8,
    /// Opt in to overload degradation: under pressure the server may
    /// encode with the cheaper HT coder instead of shedding the job,
    /// marking the response `degraded` (DESIGN.md §16).
    pub allow_degraded: bool,
    /// Deadline in milliseconds from receipt; 0 = server default.
    pub timeout_ms: u32,
    /// Encoder parameters.
    pub params: EncoderParams,
    /// The image to encode.
    pub image: Image,
}

/// Body of [`Request::Decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeRequest {
    /// Decode only the first N quality layers; 0 = all layers.
    pub max_layers: u32,
    /// Discard this many finest resolution levels (0 = full resolution).
    pub discard_levels: u8,
    /// The codestream to decode.
    pub codestream: Vec<u8>,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The encoded codestream.
    EncodeOk {
        /// The JPEG2000 codestream.
        codestream: Vec<u8>,
        /// True when the server downgraded this `allow_degraded` job to
        /// the HT coder under pressure; byte-identity is then against
        /// the degraded params.
        degraded: bool,
    },
    /// Admission control refused the job.
    Rejected(RejectReason),
    /// The job's deadline passed before the encode finished.
    TimedOut,
    /// The job was cancelled server-side.
    Cancelled,
    /// Encoder or request failure, with a message.
    Failed(String),
    /// Metrics snapshot, JSON-encoded.
    MetricsJson(String),
    /// Reply to [`Request::Ping`] and [`Request::Shutdown`].
    Pong,
    /// Reply to [`Request::Health`]: binary snapshot of pool strength
    /// and fault counters.
    Health(HealthSnapshot),
    /// The job crashed its worker past the retry budget and was
    /// quarantined (see [`crate::service::JobOutcome::Poisoned`]).
    Poisoned(String),
    /// Reply to [`Request::Trace`]: one job's Chrome trace-event JSON.
    TraceJson(String),
    /// Reply to [`Request::Decode`]: the reconstructed image.
    DecodeOk(Image),
}

/// Why a job was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Queue at capacity or the pressure policy shed the job.
    Overloaded {
        /// Client backoff hint: do not retry sooner than this.
        retry_after_ms: u32,
    },
    /// Service is shutting down.
    ShuttingDown,
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one frame (header + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let mut hdr = [0u8; HEADER_LEN];
    hdr[0..2].copy_from_slice(&MAGIC.to_be_bytes());
    hdr[2] = VERSION;
    hdr[3] = 0;
    hdr[4..8].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&hdr)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload, enforcing `max_payload` *before* allocating.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<Vec<u8>, WireError> {
    // Failpoint `wire.read`: an injected error models the transport
    // dying mid-frame (the caller must treat it like any I/O failure —
    // close the connection, leak nothing); a delay models a slow peer.
    if let Some(msg) = faultsim::eval("wire.read") {
        return Err(WireError::Io(std::io::Error::other(msg)));
    }
    let mut hdr = [0u8; HEADER_LEN];
    r.read_exact(&mut hdr)?;
    let magic = u16::from_be_bytes([hdr[0], hdr[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if hdr[2] != VERSION {
        return Err(WireError::BadVersion(hdr[2]));
    }
    let len = u32::from_be_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]) as usize;
    if len > max_payload {
        return Err(WireError::Oversized {
            len: len as u64,
            max: max_payload,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

/// Cursor over a payload with typed, bounds-checked readers.
struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Self {
        Rd { b, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or(WireError::Malformed("field overruns payload".into()))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_be_bytes(s.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        let s = self.take(8)?;
        Ok(f64::from_be_bytes(s.try_into().unwrap()))
    }
    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }
    fn done(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes",
                self.remaining()
            )))
        }
    }
}

fn put_params(out: &mut Vec<u8>, p: &EncoderParams) {
    let (mode, rate) = match p.mode {
        Mode::Lossless => (0u8, 0.0),
        Mode::Lossy { rate } => (1u8, rate),
    };
    out.push(mode);
    out.extend_from_slice(&rate.to_be_bytes());
    out.push(p.levels as u8);
    out.push(p.cb_size as u8);
    out.push(p.layers as u8);
    out.push(u8::from(p.bypass));
    out.push(match p.arithmetic {
        Arithmetic::Float32 => 0,
        Arithmetic::FixedQ13 => 1,
    });
    out.push(match p.variant {
        VerticalVariant::Separate => 0,
        VerticalVariant::Interleaved => 1,
        VerticalVariant::Merged => 2,
    });
    out.push(p.coder.id() as u8);
}

fn get_params(rd: &mut Rd) -> Result<EncoderParams, WireError> {
    let mode = rd.u8()?;
    let rate = rd.f64()?;
    let mode = match mode {
        0 => Mode::Lossless,
        1 => {
            if !rate.is_finite() {
                return Err(WireError::Malformed(format!("non-finite rate {rate}")));
            }
            Mode::Lossy { rate }
        }
        m => return Err(WireError::Malformed(format!("unknown mode {m}"))),
    };
    let levels = rd.u8()? as usize;
    let cb_size = rd.u8()? as usize;
    let layers = rd.u8()? as usize;
    let bypass = match rd.u8()? {
        0 => false,
        1 => true,
        b => return Err(WireError::Malformed(format!("bad bypass flag {b}"))),
    };
    let arithmetic = match rd.u8()? {
        0 => Arithmetic::Float32,
        1 => Arithmetic::FixedQ13,
        a => return Err(WireError::Malformed(format!("unknown arithmetic {a}"))),
    };
    let variant = match rd.u8()? {
        0 => VerticalVariant::Separate,
        1 => VerticalVariant::Interleaved,
        2 => VerticalVariant::Merged,
        v => return Err(WireError::Malformed(format!("unknown variant {v}"))),
    };
    let coder = match rd.u8()? {
        0 => Coder::Mq,
        1 => Coder::Ht,
        c => return Err(WireError::Malformed(format!("unknown coder {c}"))),
    };
    Ok(EncoderParams {
        mode,
        levels,
        cb_size,
        layers,
        bypass,
        arithmetic,
        variant,
        coder,
    })
}

fn put_image(out: &mut Vec<u8>, im: &Image) {
    out.extend_from_slice(&(im.width as u32).to_be_bytes());
    out.extend_from_slice(&(im.height as u32).to_be_bytes());
    out.push(im.comps() as u8);
    out.push(im.bit_depth);
    for plane in &im.planes {
        for &v in plane {
            out.extend_from_slice(&v.to_be_bytes());
        }
    }
}

fn get_image(rd: &mut Rd) -> Result<Image, WireError> {
    let width = rd.u32()? as usize;
    let height = rd.u32()? as usize;
    let comps = rd.u8()? as usize;
    let bit_depth = rd.u8()?;
    if width == 0 || height == 0 || comps == 0 {
        return Err(WireError::Malformed(format!(
            "degenerate geometry {width}x{height} x{comps}"
        )));
    }
    if bit_depth == 0 || bit_depth > 16 {
        return Err(WireError::Malformed(format!("bad bit depth {bit_depth}")));
    }
    // Cross-check the claimed geometry against what actually arrived
    // *before* building planes: sample count lies cannot inflate memory
    // beyond the (already bounded) payload.
    let samples = width
        .checked_mul(height)
        .and_then(|n| n.checked_mul(comps))
        .ok_or(WireError::Malformed("sample count overflow".into()))?;
    let expect = samples
        .checked_mul(2)
        .ok_or(WireError::Malformed("sample byte count overflow".into()))?;
    if rd.remaining() != expect {
        return Err(WireError::Malformed(format!(
            "geometry claims {expect} sample bytes, payload carries {}",
            rd.remaining()
        )));
    }
    let per_plane = width * height;
    let mut planes = Vec::with_capacity(comps);
    for _ in 0..comps {
        let raw = rd.take(per_plane * 2)?;
        planes.push(
            raw.chunks_exact(2)
                .map(|c| u16::from_be_bytes([c[0], c[1]]))
                .collect(),
        );
    }
    let im = Image {
        width,
        height,
        bit_depth,
        planes,
    };
    im.validate()
        .map_err(|e| WireError::Malformed(e.to_string()))?;
    Ok(im)
}

/// Serialize a request payload (frame it with [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Encode(e) => {
            let mut out =
                Vec::with_capacity(32 + 2 * e.image.width * e.image.height * e.image.comps());
            out.push(TAG_ENCODE);
            out.push(e.priority);
            out.push(u8::from(e.allow_degraded));
            out.extend_from_slice(&e.timeout_ms.to_be_bytes());
            put_params(&mut out, &e.params);
            put_image(&mut out, &e.image);
            out
        }
        Request::Metrics => vec![TAG_METRICS],
        Request::Ping => vec![TAG_PING],
        Request::Shutdown => vec![TAG_SHUTDOWN],
        Request::Health => vec![TAG_HEALTH],
        Request::Trace(job_id) => {
            let mut out = vec![TAG_TRACE];
            out.extend_from_slice(&job_id.to_be_bytes());
            out
        }
        Request::Decode(d) => {
            let mut out = Vec::with_capacity(6 + d.codestream.len());
            out.push(TAG_DECODE);
            out.extend_from_slice(&d.max_layers.to_be_bytes());
            out.push(d.discard_levels);
            out.extend_from_slice(&d.codestream);
            out
        }
    }
}

/// Decode a request payload. Total: every byte sequence returns `Ok` or a
/// typed error, never panics, and allocation is bounded by the payload
/// size the framing layer already admitted.
pub fn parse_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut rd = Rd::new(payload);
    let tag = rd.u8()?;
    let req = match tag {
        TAG_ENCODE => {
            let priority = rd.u8()?;
            // A flags byte rather than a bare bool so future per-job
            // options extend the same octet; unknown bits are rejected
            // to keep them available.
            let flags = rd.u8()?;
            if flags & !0x01 != 0 {
                return Err(WireError::Malformed(format!(
                    "unknown encode flags {flags:#04x}"
                )));
            }
            let allow_degraded = flags & 0x01 != 0;
            let timeout_ms = rd.u32()?;
            let params = get_params(&mut rd)?;
            let image = get_image(&mut rd)?;
            Request::Encode(EncodeRequest {
                priority,
                allow_degraded,
                timeout_ms,
                params,
                image,
            })
        }
        TAG_METRICS => Request::Metrics,
        TAG_PING => Request::Ping,
        TAG_SHUTDOWN => Request::Shutdown,
        TAG_HEALTH => Request::Health,
        TAG_TRACE => Request::Trace(rd.u64()?),
        TAG_DECODE => {
            let max_layers = rd.u32()?;
            let discard_levels = rd.u8()?;
            let codestream = rd.take(rd.remaining())?.to_vec();
            Request::Decode(DecodeRequest {
                max_layers,
                discard_levels,
                codestream,
            })
        }
        t => {
            return Err(WireError::Malformed(format!(
                "unknown request tag {t:#04x}"
            )))
        }
    };
    rd.done()?;
    Ok(req)
}

/// Serialize a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::EncodeOk {
            codestream,
            degraded,
        } => {
            let mut out = Vec::with_capacity(2 + codestream.len());
            out.push(TAG_ENCODE_OK);
            out.push(u8::from(*degraded));
            out.extend_from_slice(codestream);
            out
        }
        Response::Rejected(r) => match r {
            RejectReason::Overloaded { retry_after_ms } => {
                let mut out = vec![TAG_REJECTED, 1];
                out.extend_from_slice(&retry_after_ms.to_be_bytes());
                out
            }
            RejectReason::ShuttingDown => vec![TAG_REJECTED, 2],
        },
        Response::TimedOut => vec![TAG_TIMED_OUT],
        Response::Cancelled => vec![TAG_CANCELLED],
        Response::Failed(m) => {
            let mut out = vec![TAG_FAILED];
            out.extend_from_slice(m.as_bytes());
            out
        }
        Response::MetricsJson(j) => {
            let mut out = vec![TAG_METRICS_JSON];
            out.extend_from_slice(j.as_bytes());
            out
        }
        Response::Pong => vec![TAG_PONG],
        Response::Health(h) => {
            let mut out = Vec::with_capacity(1 + 7 * 8 + 3);
            out.push(TAG_HEALTH_OK);
            for v in [
                h.workers_alive,
                h.pool_threads,
                h.workers_respawned,
                h.queue_depth,
                h.queue_capacity,
                h.jobs_retried,
                h.jobs_poisoned,
            ] {
                out.extend_from_slice(&v.to_be_bytes());
            }
            out.push(u8::from(h.accepting));
            out.push(h.pressure);
            out.push(u8::from(h.slo_breached));
            out
        }
        Response::Poisoned(m) => {
            let mut out = vec![TAG_POISONED];
            out.extend_from_slice(m.as_bytes());
            out
        }
        Response::TraceJson(j) => {
            let mut out = vec![TAG_TRACE_JSON];
            out.extend_from_slice(j.as_bytes());
            out
        }
        Response::DecodeOk(im) => {
            let mut out = Vec::with_capacity(11 + 2 * im.width * im.height * im.comps());
            out.push(TAG_DECODE_OK);
            put_image(&mut out, im);
            out
        }
    }
}

/// Decode a response payload (client side). Total, like
/// [`parse_request`].
pub fn parse_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut rd = Rd::new(payload);
    let tag = rd.u8()?;
    match tag {
        TAG_ENCODE_OK => {
            let degraded = match rd.u8()? {
                0 => false,
                1 => true,
                b => return Err(WireError::Malformed(format!("bad degraded flag {b}"))),
            };
            Ok(Response::EncodeOk {
                degraded,
                codestream: rd.take(rd.remaining())?.to_vec(),
            })
        }
        TAG_REJECTED => {
            let reason = match rd.u8()? {
                1 => RejectReason::Overloaded {
                    retry_after_ms: rd.u32()?,
                },
                2 => RejectReason::ShuttingDown,
                r => return Err(WireError::Malformed(format!("unknown reject reason {r}"))),
            };
            rd.done()?;
            Ok(Response::Rejected(reason))
        }
        TAG_TIMED_OUT => {
            rd.done()?;
            Ok(Response::TimedOut)
        }
        TAG_CANCELLED => {
            rd.done()?;
            Ok(Response::Cancelled)
        }
        TAG_FAILED => {
            let m = String::from_utf8(rd.take(rd.remaining())?.to_vec())
                .map_err(|_| WireError::Malformed("non-utf8 failure message".into()))?;
            Ok(Response::Failed(m))
        }
        TAG_METRICS_JSON => {
            let j = String::from_utf8(rd.take(rd.remaining())?.to_vec())
                .map_err(|_| WireError::Malformed("non-utf8 metrics json".into()))?;
            Ok(Response::MetricsJson(j))
        }
        TAG_PONG => {
            rd.done()?;
            Ok(Response::Pong)
        }
        TAG_HEALTH_OK => {
            let h = HealthSnapshot {
                workers_alive: rd.u64()?,
                pool_threads: rd.u64()?,
                workers_respawned: rd.u64()?,
                queue_depth: rd.u64()?,
                queue_capacity: rd.u64()?,
                jobs_retried: rd.u64()?,
                jobs_poisoned: rd.u64()?,
                accepting: match rd.u8()? {
                    0 => false,
                    1 => true,
                    b => {
                        return Err(WireError::Malformed(format!("bad accepting flag {b}")));
                    }
                },
                pressure: match rd.u8()? {
                    p @ 0..=2 => p,
                    p => {
                        return Err(WireError::Malformed(format!("bad pressure level {p}")));
                    }
                },
                slo_breached: match rd.u8()? {
                    0 => false,
                    1 => true,
                    b => {
                        return Err(WireError::Malformed(format!("bad slo_breached flag {b}")));
                    }
                },
            };
            rd.done()?;
            Ok(Response::Health(h))
        }
        TAG_POISONED => {
            let m = String::from_utf8(rd.take(rd.remaining())?.to_vec())
                .map_err(|_| WireError::Malformed("non-utf8 poison message".into()))?;
            Ok(Response::Poisoned(m))
        }
        TAG_TRACE_JSON => {
            let j = String::from_utf8(rd.take(rd.remaining())?.to_vec())
                .map_err(|_| WireError::Malformed("non-utf8 trace json".into()))?;
            Ok(Response::TraceJson(j))
        }
        TAG_DECODE_OK => Ok(Response::DecodeOk(get_image(&mut rd)?)),
        t => Err(WireError::Malformed(format!(
            "unknown response tag {t:#04x}"
        ))),
    }
}

/// Client convenience: send `req` over `io` and read the framed reply.
pub fn call(
    io: &mut (impl Read + Write),
    req: &Request,
    max_frame: usize,
) -> Result<Response, WireError> {
    write_frame(io, &encode_request(req))?;
    let payload = read_frame(io, max_frame)?;
    parse_response(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request::Encode(EncodeRequest {
            priority: 3,
            allow_degraded: true,
            timeout_ms: 1500,
            params: EncoderParams::lossy(0.25),
            image: imgio::synth::natural_rgb(9, 7, 42),
        })
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            sample_request(),
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
            Request::Health,
            Request::Trace(0),
            Request::Trace(42),
            Request::Decode(DecodeRequest {
                max_layers: 0,
                discard_levels: 0,
                codestream: vec![0xFF, 0x4F, 0xFF, 0xD9],
            }),
            Request::Decode(DecodeRequest {
                max_layers: 2,
                discard_levels: 1,
                codestream: Vec::new(),
            }),
        ] {
            assert_eq!(parse_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::EncodeOk {
                codestream: vec![1, 2, 3],
                degraded: false,
            },
            Response::EncodeOk {
                codestream: vec![7; 9],
                degraded: true,
            },
            Response::Rejected(RejectReason::Overloaded {
                retry_after_ms: 250,
            }),
            Response::Rejected(RejectReason::Overloaded { retry_after_ms: 0 }),
            Response::Rejected(RejectReason::ShuttingDown),
            Response::TimedOut,
            Response::Cancelled,
            Response::Failed("boom".into()),
            Response::MetricsJson("{}".into()),
            Response::Pong,
            Response::Health(HealthSnapshot {
                workers_alive: 2,
                pool_threads: 4,
                workers_respawned: 3,
                queue_depth: 1,
                queue_capacity: 64,
                jobs_retried: 5,
                jobs_poisoned: 1,
                accepting: true,
                pressure: 2,
                slo_breached: true,
            }),
            Response::Poisoned("job 7 crashed its worker 2 times".into()),
            Response::TraceJson("{\"traceEvents\":[]}".into()),
            Response::DecodeOk(imgio::synth::natural_rgb(6, 4, 11)),
        ] {
            assert_eq!(parse_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn frame_roundtrip() {
        let payload = encode_request(&sample_request());
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(buf.len(), HEADER_LEN + payload.len());
        let back = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn params_fidelity_across_all_knobs() {
        let p = EncoderParams {
            mode: Mode::Lossy { rate: 0.125 },
            levels: 3,
            cb_size: 32,
            layers: 4,
            bypass: true,
            coder: Coder::Ht,
            arithmetic: Arithmetic::FixedQ13,
            variant: VerticalVariant::Interleaved,
        };
        let req = Request::Encode(EncodeRequest {
            priority: 0,
            allow_degraded: false,
            timeout_ms: 0,
            params: p,
            image: imgio::synth::natural(5, 5, 1),
        });
        let Request::Encode(back) = parse_request(&encode_request(&req)).unwrap() else {
            panic!("wrong tag");
        };
        assert_eq!(back.params, p);
    }

    #[test]
    fn unknown_encode_flag_bits_are_rejected() {
        let mut payload = encode_request(&sample_request());
        // Byte 2 is the flags octet (tag, priority, flags, ...).
        payload[2] |= 0x80;
        assert!(matches!(
            parse_request(&payload),
            Err(WireError::Malformed(_))
        ));
    }
}
