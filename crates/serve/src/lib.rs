//! `j2k-serve` — an embeddable JPEG2000 **encode service**: the paper's
//! dynamic-work-queue discipline applied at the request level.
//!
//! Kang & Bader feed fixed-footprint SPE workers from a dynamic queue of
//! code blocks because Tier-1 cost is data dependent — static assignment
//! stalls the pipeline. A production encoder serving heavy traffic faces
//! the same problem one level up: whole encode requests have
//! data-dependent cost, arrive faster than they finish under overload,
//! and must never grow memory without bound. This crate is that level:
//!
//! * [`queue`] — a **bounded MPMC priority queue** of jobs: the
//!   request-level mirror of the Tier-1 code-block queue, with
//!   reject-when-full instead of unbounded growth;
//! * [`service`] — [`EncodeService`]: admission control, a worker pool
//!   reusing [`j2k_core::encode_parallel`]'s chunk/queue parallelism with
//!   a per-job `workers` budget, per-job deadlines enforced *inside* the
//!   encode via [`j2k_core::EncodeControl`], cancellation, graceful
//!   drain-on-shutdown, and a [`MetricsSnapshot`] (queue depth, job
//!   counters, per-stage wall times);
//! * [`wire`] — a length-prefixed binary protocol (std::net only) with
//!   typed errors and allocation bounded before it happens;
//! * [`server`] — the TCP daemon loop behind the `j2kserved` binary.
//!
//! The service is **self-healing** (DESIGN.md §11): workers run jobs
//! under `catch_unwind`, a supervisor respawns crashed workers and
//! retries their interrupted jobs with a bounded budget and exponential
//! backoff, repeat offenders are quarantined with a typed
//! [`JobOutcome::Poisoned`], and the wire protocol exposes a `Health`
//! probe ([`HealthSnapshot`]). Every recovery path is exercised
//! deterministically by the `fault_recovery` suite through the
//! `failpoints` feature (the [`faultsim`] registry), which compiles to a
//! no-op in release builds.
//!
//! Under sustained overload the service **degrades gracefully**
//! (DESIGN.md §16): a deterministic [`pressure`] controller classifies
//! load as Nominal/Elevated/Critical with hysteresis from queue depth,
//! windowed queue-wait p95, and an in-flight pixel budget; admission
//! sheds low-priority work with a typed
//! [`SubmitError::Overloaded`]`{ retry_after_ms }` hint, transparently
//! downgrades `allow_degraded` jobs to the HT coder (marked `degraded`
//! in the response), and at Critical the accept loop sheds new
//! connections while [`HealthSnapshot::ready`] turns false. The
//! [`breaker`] module gives clients the matching discipline: a circuit
//! breaker that opens after consecutive failures, probes half-open, and
//! honors `retry_after_ms`.
//!
//! Invariant inherited from the codec: every codestream the service
//! returns is **byte-identical** to sequential [`j2k_core::encode`] for
//! the same input — scheduling decisions never touch the output.

pub mod breaker;
pub mod metrics_http;
pub mod pressure;
pub mod queue;
pub mod server;
pub mod service;
pub mod wire;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use metrics_http::{render_prometheus, serve_metrics, serve_metrics_with};
pub use pressure::{
    Clock, ClockHandle, ManualClock, PixelReservation, PressureConfig, PressureController,
    PressureLevel, SystemClock,
};
pub use queue::{JobQueue, PushError};
pub use server::{serve, ServerConfig};
pub use service::{
    EncodeJob, EncodeService, HealthSnapshot, JobHandle, JobOutcome, MetricsSnapshot,
    ServiceConfig, SloConfig, SubmitError,
};
pub use wire::{Request, Response, WireError};
