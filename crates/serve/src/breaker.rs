//! Client-side circuit breaker for daemon clients (`serve_load`, the
//! future shard router).
//!
//! A well-behaved fleet client must stop hammering an overloaded
//! server: after [`BreakerConfig::failure_threshold`] consecutive
//! failures the breaker *opens* and [`CircuitBreaker::poll`] refuses
//! sends for a cool-down period (exponential per consecutive open,
//! capped, and never shorter than the server's `retry_after_ms` hint).
//! When the cool-down elapses the breaker goes *half-open*: exactly one
//! probe request is allowed through; its success closes the breaker,
//! its failure re-opens it with a doubled cool-down.
//!
//! The breaker is single-client state (`&mut self`) and takes its time
//! from an injectable [`Clock`], so tests drive it with a
//! [`ManualClock`] and zero sleeps.

use crate::pressure::ClockHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`CircuitBreaker`].
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Cool-down after the first open; doubles per consecutive open.
    pub open_base: Duration,
    /// Upper bound on the cool-down.
    pub open_max: Duration,
    /// Time source; swap in a [`crate::pressure::ManualClock`] in tests.
    pub clock: ClockHandle,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_base: Duration::from_millis(100),
            open_max: Duration::from_secs(5),
            clock: ClockHandle::default(),
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are refused until the cool-down deadline.
    Open,
    /// Cool-down elapsed; one probe is in flight.
    HalfOpen,
}

/// The breaker. One per client connection identity.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    consecutive_opens: u32,
    opens: u64,
    open_until: Option<Instant>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            consecutive_opens: 0,
            opens: 0,
            open_until: None,
        }
    }

    /// Current state, transitioning Open→HalfOpen if the cool-down has
    /// elapsed.
    pub fn state(&mut self) -> BreakerState {
        if self.state == BreakerState::Open {
            if let Some(until) = self.open_until {
                if self.cfg.clock.now() >= until {
                    self.state = BreakerState::HalfOpen;
                }
            }
        }
        self.state
    }

    /// Times the breaker has opened over its lifetime.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// May a request be sent now? `Ok(())` permits the send (Closed, or
    /// the single HalfOpen probe); `Err(wait)` is the remaining
    /// cool-down.
    pub fn poll(&mut self) -> Result<(), Duration> {
        match self.state() {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open => {
                let now = self.cfg.clock.now();
                let until = self.open_until.unwrap_or(now);
                Err(until.saturating_duration_since(now))
            }
        }
    }

    /// Record a successful request: closes the breaker and clears all
    /// failure history.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.consecutive_opens = 0;
        self.open_until = None;
    }

    /// Record a failed request. `hint` is the server's `retry_after_ms`
    /// (when the failure was an `Overloaded` rejection); an open
    /// cool-down is never shorter than the hint.
    pub fn on_failure(&mut self, hint: Option<Duration>) {
        match self.state() {
            BreakerState::HalfOpen => self.trip(hint),
            BreakerState::Open => {} // already refusing; nothing to count
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold.max(1) {
                    self.trip(hint);
                }
            }
        }
    }

    fn trip(&mut self, hint: Option<Duration>) {
        self.consecutive_opens = self.consecutive_opens.saturating_add(1);
        self.opens += 1;
        let exp = self.consecutive_opens.min(32) - 1;
        let backoff = self
            .cfg
            .open_base
            .saturating_mul(1u32 << exp.min(31))
            .min(self.cfg.open_max)
            .max(hint.unwrap_or(Duration::ZERO));
        self.state = BreakerState::Open;
        self.open_until = Some(self.cfg.clock.now() + backoff);
        self.consecutive_failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pressure::ManualClock;

    fn breaker() -> (CircuitBreaker, std::sync::Arc<ManualClock>) {
        let (clock, mc) = ManualClock::handle();
        let cfg = BreakerConfig {
            failure_threshold: 3,
            open_base: Duration::from_millis(100),
            open_max: Duration::from_millis(400),
            clock,
        };
        (CircuitBreaker::new(cfg), mc)
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let (mut b, _mc) = breaker();
        b.on_failure(None);
        b.on_failure(None);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_success(); // success resets the streak
        b.on_failure(None);
        b.on_failure(None);
        assert_eq!(b.poll(), Ok(()));
        b.on_failure(None);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert_eq!(b.poll(), Err(Duration::from_millis(100)));
    }

    #[test]
    fn half_open_probe_success_closes() {
        let (mut b, mc) = breaker();
        for _ in 0..3 {
            b.on_failure(None);
        }
        mc.advance(Duration::from_millis(100));
        assert_eq!(b.poll(), Ok(()), "half-open admits one probe");
        assert_eq!(b.state, BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        // Back to closed: it takes a full threshold to trip again.
        b.on_failure(None);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_failure_reopens_with_doubled_backoff() {
        let (mut b, mc) = breaker();
        for _ in 0..3 {
            b.on_failure(None);
        }
        mc.advance(Duration::from_millis(100));
        assert_eq!(b.poll(), Ok(()));
        b.on_failure(None); // probe failed
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        assert_eq!(b.poll(), Err(Duration::from_millis(200)), "backoff doubled");
        mc.advance(Duration::from_millis(200));
        b.poll().unwrap();
        b.on_failure(None);
        mc.advance(Duration::from_millis(400));
        b.poll().unwrap();
        b.on_failure(None);
        // Capped at open_max.
        assert_eq!(b.poll(), Err(Duration::from_millis(400)));
    }

    #[test]
    fn retry_after_hint_extends_the_cooldown() {
        let (mut b, mc) = breaker();
        for _ in 0..2 {
            b.on_failure(None);
        }
        b.on_failure(Some(Duration::from_millis(900)));
        assert_eq!(
            b.poll(),
            Err(Duration::from_millis(900)),
            "hint > base wins"
        );
        mc.advance(Duration::from_millis(900));
        assert_eq!(b.poll(), Ok(()));
    }

    #[test]
    fn failures_while_open_do_not_extend_or_recount() {
        let (mut b, mc) = breaker();
        for _ in 0..3 {
            b.on_failure(None);
        }
        b.on_failure(None);
        b.on_failure(None);
        assert_eq!(b.opens(), 1);
        assert_eq!(b.poll(), Err(Duration::from_millis(100)));
        mc.advance(Duration::from_millis(50));
        assert_eq!(b.poll(), Err(Duration::from_millis(50)));
    }
}
