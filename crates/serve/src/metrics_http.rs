//! Prometheus text exposition over a trivial HTTP/1.1 responder.
//!
//! Deliberately minimal (std::net only, no HTTP library): every request —
//! whatever its path or method — is answered with the current metrics in
//! Prometheus text exposition format 0.0.4 and the connection is closed.
//! That is all a scrape loop (`curl`, Prometheus itself) needs, and it
//! keeps the attack surface of the side port near zero: the reader is
//! bounded, nothing in the request is parsed beyond discarding the
//! header block, and the responder never writes anything derived from
//! request bytes.
//!
//! Exposition invariant (checked by `obs::prom::validate` and the
//! `observe` CI job): every histogram's `+Inf` bucket equals its
//! `_count`, and `j2k_job_e2e_us` only ever observes *completed* jobs —
//! so `j2k_job_e2e_us_bucket{le="+Inf"}` equals
//! `j2k_jobs_completed_total`.

use crate::service::EncodeService;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Default read/write deadline of the scrape responder: a stalled
/// scraper may pin the (single) responder thread for at most this long.
const DEFAULT_SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

/// Render the service's counters, gauges, and histogram series as
/// Prometheus text exposition format.
pub fn render_prometheus(svc: &EncodeService) -> String {
    let m = svc.metrics();
    let mut out = String::with_capacity(4096);
    obs::prom::counter(
        &mut out,
        "j2k_jobs_accepted_total",
        "Jobs admitted since start.",
        m.accepted,
    );
    obs::prom::counter(
        &mut out,
        "j2k_jobs_rejected_total",
        "Jobs refused by admission control.",
        m.rejected,
    );
    obs::prom::counter(
        &mut out,
        "j2k_jobs_completed_total",
        "Jobs that returned a codestream.",
        m.completed,
    );
    obs::prom::counter(
        &mut out,
        "j2k_jobs_timed_out_total",
        "Jobs stopped by their deadline.",
        m.timed_out,
    );
    obs::prom::counter(
        &mut out,
        "j2k_jobs_cancelled_total",
        "Jobs cancelled by their submitter.",
        m.cancelled,
    );
    obs::prom::counter(
        &mut out,
        "j2k_jobs_failed_total",
        "Jobs the encoder refused or failed.",
        m.failed,
    );
    obs::prom::counter(
        &mut out,
        "j2k_jobs_retried_total",
        "Crash retries scheduled.",
        m.jobs_retried,
    );
    obs::prom::counter(
        &mut out,
        "j2k_jobs_poisoned_total",
        "Jobs quarantined after exhausting the crash-retry budget.",
        m.jobs_poisoned,
    );
    obs::prom::counter(
        &mut out,
        "j2k_decoded_total",
        "Decode requests answered with an image.",
        m.decoded,
    );
    obs::prom::counter(
        &mut out,
        "j2k_decode_failed_total",
        "Decode requests refused with a typed error.",
        m.decode_failed,
    );
    obs::prom::counter(
        &mut out,
        "j2k_workers_respawned_total",
        "Worker threads respawned after a crash.",
        m.workers_respawned,
    );
    obs::prom::counter(
        &mut out,
        "j2k_jobs_shed_total",
        "Jobs refused by the pressure policy (subset of rejected).",
        m.jobs_shed,
    );
    obs::prom::counter(
        &mut out,
        "j2k_jobs_degraded_total",
        "allow_degraded jobs downgraded to the HT coder at admission.",
        m.jobs_degraded,
    );
    obs::prom::counter(
        &mut out,
        "j2k_pressure_transitions_total",
        "Pressure level transitions since start.",
        m.pressure_transitions,
    );
    obs::prom::counter(
        &mut out,
        "j2k_connections_rejected_total",
        "Wire connections refused (cap reached or Critical pressure).",
        m.connections_rejected,
    );
    obs::prom::gauge(
        &mut out,
        "j2k_pressure_level",
        "Pressure classification: 0 nominal, 1 elevated, 2 critical.",
        u64::from(m.pressure_level),
    );
    obs::prom::gauge(
        &mut out,
        "j2k_pixels_in_flight",
        "Pixels admitted and not yet completed.",
        m.pixels_in_flight,
    );
    obs::prom::gauge(
        &mut out,
        "j2k_connections_active",
        "Wire connections currently open.",
        m.connections_active,
    );
    obs::prom::gauge(
        &mut out,
        "j2k_workers_alive",
        "Worker threads currently live.",
        m.workers_alive,
    );
    obs::prom::gauge(
        &mut out,
        "j2k_queue_depth",
        "Jobs queued right now.",
        m.queue_depth as u64,
    );
    obs::prom::gauge(
        &mut out,
        "j2k_queue_capacity",
        "The admission bound.",
        m.queue_capacity as u64,
    );
    for (name, snap) in svc.histogram_snapshots() {
        let help = match name.as_str() {
            "queue_wait_us" => "Microseconds a job waited queued before a worker claimed it.",
            "job_e2e_us" => {
                "End-to-end latency of completed jobs, microseconds (submit to codestream)."
            }
            "tier1_symbols_per_sec" => "Per-job Tier-1 coding-pass symbol throughput.",
            "tier1_symbols_per_sec_mq" => "Per-job Tier-1 symbol throughput, MQ-coded jobs.",
            "tier1_symbols_per_sec_ht" => "Per-job Tier-1 symbol throughput, HT-coded jobs.",
            _ => "Per-stage encode wall time, microseconds.",
        };
        obs::prom::histogram(&mut out, &format!("j2k_{name}"), help, &snap);
    }
    // Per-kernel perf counters (obs::counters): always the full declared
    // kernel set, all zeros unless counting is enabled (j2kserved turns
    // it on at startup).
    let ks = &m.kernels;
    let labelled = |v: fn(&obs::counters::KernelSnapshot) -> u64| {
        ks.iter()
            .map(|k| (vec![("kernel", k.kernel.name())], v(k)))
            .collect::<Vec<_>>()
    };
    obs::prom::counter_vec(
        &mut out,
        "j2k_kernel_invocations_total",
        "Measured kernel invocations.",
        &labelled(|k| k.invocations),
    );
    obs::prom::counter_vec(
        &mut out,
        "j2k_kernel_samples_total",
        "Work items processed by the kernel.",
        &labelled(|k| k.samples),
    );
    obs::prom::counter_vec(
        &mut out,
        "j2k_kernel_bytes_total",
        "Bytes moved through the kernel.",
        &labelled(|k| k.bytes),
    );
    obs::prom::counter_vec(
        &mut out,
        "j2k_kernel_symbols_total",
        "Coded symbols produced (Tier-1 kernels only).",
        &labelled(|k| k.symbols),
    );
    obs::prom::counter_vec(
        &mut out,
        "j2k_kernel_ns_total",
        "Wall nanoseconds spent inside the kernel.",
        &labelled(|k| k.ns),
    );
    let rates = |v: fn(&obs::counters::KernelSnapshot) -> f64| {
        ks.iter()
            .map(|k| (vec![("kernel", k.kernel.name())], v(k)))
            .collect::<Vec<_>>()
    };
    obs::prom::gauge_vec_f64(
        &mut out,
        "j2k_kernel_gb_per_sec",
        "Derived kernel throughput, gigabytes per second.",
        &rates(|k| k.gb_per_sec()),
    );
    obs::prom::gauge_vec_f64(
        &mut out,
        "j2k_kernel_symbols_per_sec",
        "Derived kernel symbol throughput per second.",
        &rates(|k| k.symbols_per_sec()),
    );
    // Burn-rate SLO status (DESIGN.md §17): one burn-rate sample per
    // (objective, window) and a 0/1 breach flag per objective.
    let slo = svc.slo_status();
    if !slo.is_empty() {
        let windows: Vec<(&str, String, f64)> = slo
            .iter()
            .flat_map(|s| {
                s.windows
                    .iter()
                    .map(|w| (s.name.as_str(), format!("{}s", w.secs), w.burn_rate))
            })
            .collect();
        let burn: Vec<(Vec<(&str, &str)>, f64)> = windows
            .iter()
            .map(|(name, win, rate)| (vec![("slo", *name), ("window", win.as_str())], *rate))
            .collect();
        obs::prom::gauge_vec_f64(
            &mut out,
            "j2k_slo_burn_rate",
            "Error-budget burn rate per SLO window (1.0 = exactly on budget).",
            &burn,
        );
        let breached: Vec<(Vec<(&str, &str)>, f64)> = slo
            .iter()
            .map(|s| {
                (
                    vec![("slo", s.name.as_str())],
                    if s.breached { 1.0 } else { 0.0 },
                )
            })
            .collect();
        obs::prom::gauge_vec_f64(
            &mut out,
            "j2k_slo_breached",
            "1 when every window of the SLO burns over threshold.",
            &breached,
        );
    }
    out
}

/// Serve `render_prometheus` on `listener` until the service shuts down
/// or the listener errors, with the default scrape deadline. One request
/// per connection; blocking reads. Run this on a dedicated thread.
pub fn serve_metrics(listener: TcpListener, svc: Arc<EncodeService>) {
    serve_metrics_with(listener, svc, Some(DEFAULT_SCRAPE_TIMEOUT));
}

/// [`serve_metrics`] with an explicit per-connection read/write deadline.
/// The responder handles one scrape at a time, so without a deadline a
/// scraper that connects and then stalls would pin it forever; with one,
/// the stalled socket errors out and the next scrape proceeds.
pub fn serve_metrics_with(
    listener: TcpListener,
    svc: Arc<EncodeService>,
    timeout: Option<Duration>,
) {
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        let _ = respond(stream, &svc, timeout);
        if !svc.health().accepting {
            return;
        }
    }
}

fn respond(
    mut stream: TcpStream,
    svc: &EncodeService,
    timeout: Option<Duration>,
) -> std::io::Result<()> {
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    // Drain (and ignore) the request head. Bounded: stop at the blank
    // line or after 8 KiB, whichever comes first.
    let mut buf = [0u8; 1024];
    let mut seen = 0usize;
    loop {
        let n = stream.read(&mut buf)?;
        seen += n;
        if n == 0 || seen >= 8192 || buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let body = render_prometheus(svc);
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{EncodeJob, JobOutcome, ServiceConfig};
    use j2k_core::EncoderParams;

    #[test]
    fn exposition_is_valid_and_ties_e2e_to_completed() {
        let svc = EncodeService::start(ServiceConfig {
            pool_threads: 1,
            ..ServiceConfig::default()
        });
        for _ in 0..3 {
            let im = imgio::synth::natural(32, 32, 1);
            let h = svc
                .submit(EncodeJob::new(im, EncoderParams::lossless()))
                .unwrap();
            assert!(matches!(h.wait(), JobOutcome::Completed { .. }));
        }
        let text = render_prometheus(&svc);
        let series = obs::prom::validate(&text).expect("exposition must validate");
        assert!(
            series >= 10,
            "expected a full exposition, got {series} series"
        );
        assert!(text.contains("j2k_jobs_completed_total 3"));
        assert!(text.contains("j2k_decoded_total 0"));
        assert!(text.contains("j2k_job_e2e_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("j2k_job_e2e_us_count 3"));
        assert!(text.contains("j2k_stage_tier1_us_count 3"));
        // Overload surface: pressure gauge + shed/degraded counters.
        assert!(text.contains("j2k_pressure_level 0"));
        assert!(text.contains("j2k_pressure_transitions_total 0"));
        assert!(text.contains("j2k_jobs_shed_total 0"));
        assert!(text.contains("j2k_jobs_degraded_total 0"));
        assert!(text.contains("j2k_pixels_in_flight 0"));
        assert!(text.contains("j2k_connections_active 0"));
        assert!(text.contains("j2k_connections_rejected_total 0"));
        // Satellite schema guarantee: the full declared histogram series
        // set appears even though only the MQ coder ran.
        assert!(text.contains("j2k_tier1_symbols_per_sec_ht_count 0"));
        assert!(text.contains("j2k_tier1_symbols_per_sec_mq_count"));
        assert!(text.contains("j2k_stage_transform_us_count 0"));
        // Per-kernel counters carry the kernel label for the full set.
        assert!(text.contains("j2k_kernel_samples_total{kernel=\"tier1_mq\"}"));
        assert!(text.contains("j2k_kernel_gb_per_sec{kernel=\"dwt53_vertical\"}"));
        // Burn-rate SLO gauges: both objectives over both windows, no
        // breach on a healthy service.
        assert!(text.contains("j2k_slo_burn_rate{slo=\"latency_p99\",window=\"300s\"}"));
        assert!(text.contains("j2k_slo_burn_rate{slo=\"error_rate\",window=\"3600s\"}"));
        assert!(text.contains("j2k_slo_breached{slo=\"latency_p99\"} 0.000000"));
        assert!(text.contains("j2k_slo_breached{slo=\"error_rate\"} 0.000000"));
    }

    #[test]
    fn http_responder_answers_one_scrape() {
        let svc = Arc::new(EncodeService::start(ServiceConfig {
            pool_threads: 1,
            ..ServiceConfig::default()
        }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc2 = Arc::clone(&svc);
        let t = std::thread::spawn(move || serve_metrics(listener, svc2));
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK"));
        let body = resp.split("\r\n\r\n").nth(1).unwrap();
        obs::prom::validate(body).expect("scraped body must validate");
        // Unblock and stop the responder thread.
        svc.begin_shutdown();
        let _ = TcpStream::connect(addr).map(|mut s| s.write_all(b"GET / HTTP/1.1\r\n\r\n"));
        let _ = t.join();
    }

    #[test]
    fn stalled_scraper_cannot_pin_the_responder() {
        let svc = Arc::new(EncodeService::start(ServiceConfig {
            pool_threads: 1,
            ..ServiceConfig::default()
        }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc2 = Arc::clone(&svc);
        let t = std::thread::spawn(move || {
            serve_metrics_with(listener, svc2, Some(Duration::from_millis(50)))
        });
        // A scraper that connects and then sends nothing: before the
        // deadline fix this pinned the single responder thread forever
        // and every later scrape hung.
        let stalled = TcpStream::connect(addr).unwrap();
        // A well-behaved scrape queued behind it must still be answered
        // (the stalled socket errors out after the 50ms deadline).
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "got: {resp:.100}");
        drop(stalled);
        svc.begin_shutdown();
        let _ = TcpStream::connect(addr).map(|mut s| s.write_all(b"GET / HTTP/1.1\r\n\r\n"));
        let _ = t.join();
    }
}
