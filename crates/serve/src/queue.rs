//! Bounded, priority-aware MPMC job queue — the request-level analogue of
//! the paper's Tier-1 code-block queue.
//!
//! The paper feeds fixed-footprint SPE workers from a dynamic queue so
//! that data-dependent EBCOT cost never stalls the pipeline; this queue
//! applies the same discipline one level up, at the granularity of whole
//! encode requests. Two properties carry over:
//!
//! * **fixed footprint** — the queue is bounded; when it is full,
//!   [`JobQueue::try_push`] rejects instead of growing, so offered load
//!   beyond capacity turns into typed backpressure, not memory;
//! * **dynamic assignment** — workers pull the highest-priority job the
//!   moment they go idle, so one slow (data-dependent) encode never
//!   blocks the others.
//!
//! Ordering: higher `priority` first; FIFO among equal priorities
//! (a submission sequence number breaks ties).

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` jobs; admission control rejects.
    Full {
        /// The configured bound.
        capacity: usize,
    },
    /// [`JobQueue::close`] was called; the queue drains but accepts no
    /// more work.
    Closed,
}

struct Entry<T> {
    priority: u8,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority wins; among equals, smaller seq
        // (earlier submission) wins.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Inner<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    closed: bool,
    paused: bool,
    /// Admitted jobs promised back to the queue but not yet re-pushed
    /// (crash retries waiting out a backoff). While nonzero, a closed and
    /// empty queue is *not* drained: workers keep waiting so the retry
    /// still runs — graceful shutdown completes every admitted job.
    reserved: usize,
}

/// Bounded MPMC priority queue with close and pause/resume.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `capacity` (>= 1) queued jobs.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                seq: 0,
                closed: false,
                paused: false,
                reserved: 0,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (not yet claimed by a worker).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().heap.len()
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: enqueue `item`, or refuse with the item
    /// handed back when the queue is full or closed.
    pub fn try_push(&self, item: T, priority: u8) -> Result<(), (T, PushError)> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err((item, PushError::Closed));
        }
        if g.heap.len() >= self.capacity {
            return Err((
                item,
                PushError::Full {
                    capacity: self.capacity,
                },
            ));
        }
        let seq = g.seq;
        g.seq += 1;
        g.heap.push(Entry {
            priority,
            seq,
            item,
        });
        drop(g);
        self.cv.notify_one();
        Ok(())
    }

    /// Promise that one already-admitted job will be [`requeue`d](Self::requeue)
    /// later (a crash retry waiting out its backoff). Keeps a closed queue
    /// from reading as drained in the meantime.
    pub fn reserve(&self) {
        self.inner.lock().unwrap().reserved += 1;
    }

    /// Cancel a [`reserve`](Self::reserve) without re-pushing (the retry
    /// resolved another way — poisoned, timed out, or abandoned).
    pub fn unreserve(&self) {
        let mut g = self.inner.lock().unwrap();
        g.reserved = g.reserved.saturating_sub(1);
        drop(g);
        // A drained-and-closed queue may just have become terminal.
        self.cv.notify_all();
    }

    /// Re-admit a job the service already accepted once (a crash retry),
    /// consuming one reservation if any are held. Bypasses both the
    /// capacity bound (the job's admission slot was paid at submit) and
    /// `closed` (graceful drain completes admitted jobs).
    pub fn requeue(&self, item: T, priority: u8) {
        let mut g = self.inner.lock().unwrap();
        g.reserved = g.reserved.saturating_sub(1);
        let seq = g.seq;
        g.seq += 1;
        g.heap.push(Entry {
            priority,
            seq,
            item,
        });
        drop(g);
        self.cv.notify_one();
    }

    /// Claim the highest-priority job, blocking while the queue is empty
    /// or paused. Returns `None` once the queue is closed *and* drained
    /// (empty with no outstanding retry reservations) — the worker-pool
    /// exit signal.
    pub fn pop(&self) -> Option<T> {
        // Failpoint `queue.pop`: evaluated before the lock is taken, so
        // an injected panic can never poison the queue mutex. A panic
        // here kills a worker *between* jobs (nothing claimed, nothing to
        // retry); a delay models a slow claim. An injected error has no
        // channel at this callsite and is deliberately ignored.
        let _ = faultsim::eval("queue.pop");
        let mut g = self.inner.lock().unwrap();
        loop {
            if !g.paused {
                if let Some(e) = g.heap.pop() {
                    return Some(e.item);
                }
                if g.closed && g.reserved == 0 {
                    return None;
                }
            } else if g.closed && g.heap.is_empty() && g.reserved == 0 {
                return None;
            }
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Stop admitting work; queued jobs still drain. Unpauses, so a
    /// paused queue drains too. Idempotent.
    pub fn close(&self) {
        let mut g = self.inner.lock().unwrap();
        g.closed = true;
        g.paused = false;
        drop(g);
        self.cv.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Whether the queue has reached its terminal state: closed, empty,
    /// and holding no retry reservations — exactly the condition under
    /// which [`pop`](Self::pop) returns `None`.
    pub fn is_drained(&self) -> bool {
        let g = self.inner.lock().unwrap();
        g.closed && g.heap.is_empty() && g.reserved == 0
    }

    /// Hold all workers at the queue even if jobs are available. Jobs
    /// keep accumulating (up to capacity) — the operational drain/test
    /// hook for deterministic queue-state control.
    pub fn pause(&self) {
        self.inner.lock().unwrap().paused = true;
    }

    /// Undo [`pause`](Self::pause).
    pub fn resume(&self) {
        let mut g = self.inner.lock().unwrap();
        g.paused = false;
        drop(g);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_priority_and_priority_order() {
        let q = JobQueue::new(8);
        q.try_push("low-a", 0).unwrap();
        q.try_push("high", 5).unwrap();
        q.try_push("low-b", 0).unwrap();
        q.try_push("mid", 3).unwrap();
        assert_eq!(q.pop(), Some("high"));
        assert_eq!(q.pop(), Some("mid"));
        assert_eq!(q.pop(), Some("low-a"));
        assert_eq!(q.pop(), Some("low-b"));
    }

    #[test]
    fn full_queue_rejects_with_item_back() {
        let q = JobQueue::new(2);
        q.try_push(1, 0).unwrap();
        q.try_push(2, 0).unwrap();
        let (item, err) = q.try_push(3, 9).unwrap_err();
        assert_eq!(item, 3);
        assert_eq!(err, PushError::Full { capacity: 2 });
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_but_drains() {
        let q = JobQueue::new(4);
        q.try_push(1, 0).unwrap();
        q.close();
        assert!(matches!(q.try_push(2, 0), Err((2, PushError::Closed))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // stays terminal
    }

    #[test]
    fn paused_queue_holds_items_until_resume() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        q.pause();
        q.try_push(7, 0).unwrap();
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop());
        // The popper must not complete while paused; resume releases it.
        // (No sleep-based assertion of "still blocked" — we only assert
        // the release path.)
        q.resume();
        assert_eq!(t.join().unwrap(), Some(7));
    }

    #[test]
    fn close_unpauses_for_drain() {
        let q = JobQueue::new(4);
        q.pause();
        q.try_push(1, 0).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn requeue_bypasses_capacity_and_closed() {
        let q = JobQueue::new(1);
        q.try_push(1, 0).unwrap();
        q.close();
        // A retry of an admitted job re-enters past both the bound and
        // the closed gate.
        q.requeue(2, 5);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reservation_holds_drain_open_until_requeue() {
        let q = std::sync::Arc::new(JobQueue::new(2));
        q.reserve();
        q.close();
        // Closed + empty but reserved: pop must wait for the promised
        // retry instead of reading the queue as drained.
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop());
        q.requeue(9, 0);
        assert_eq!(t.join().unwrap(), Some(9));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn unreserve_releases_drain() {
        let q = std::sync::Arc::new(JobQueue::<u32>::new(2));
        q.reserve();
        q.close();
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop());
        q.unreserve();
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = JobQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1, 0).unwrap();
        assert!(q.try_push(2, 0).is_err());
    }
}
