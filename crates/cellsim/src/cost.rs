//! Kernel cost models: cycles per work item, per processor.
//!
//! These tables are the calibrated analytic substitute for SPU-level
//! simulation (see DESIGN.md §2). Work items are *measured* by the real
//! codec (samples transformed, MQ decisions coded, bytes written), so the
//! model's job is only the per-item rate. Calibration anchors, all from the
//! paper:
//!
//! * Tier-1 is branchy and integer-based: "the PPE runs the code faster
//!   than the SPE" — SPE/PPE per-symbol ratio > 1.
//! * A single SPE beats a single PPE "by far" on the DWT (4-wide SIMD,
//!   software-pipelined lifting vs. scalar in-order execution).
//! * The SPE's emulated 32-bit multiply ([`crate::isa`]) makes the Q13
//!   fixed-point 9/7 ~3.5x dearer per lifting step than `f32`.
//! * The Pentium IV runs un-vectorized Jasper: scalar throughput close to
//!   the PPE's but with a better branch predictor and out-of-order window,
//!   so it is markedly faster on Tier-1.

/// Which processor executes a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcKind {
    /// Cell synergistic processing element.
    Spe,
    /// Cell PowerPC element (one hardware thread).
    Ppe,
    /// Intel Pentium IV 3.2 GHz (Figure 9 comparison).
    PentiumIV,
}

/// Algorithmic kernels of the JPEG2000 pipeline, with their work-item unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Jasper intermediate-stream read + type conversion — per sample.
    TypeConvert,
    /// Merged level shift + inter-component transform — per sample.
    LevelShiftIct,
    /// Row split/copy pass of the vertical DWT — per sample moved.
    DwtSplit,
    /// One reversible 5/3 lifting pass — per sample.
    DwtLift53,
    /// One irreversible 9/7 lifting pass in `f32` — per sample.
    DwtLift97F32,
    /// One irreversible 9/7 lifting pass in Q13 fixed point — per sample.
    DwtLift97Fixed,
    /// Scaling pass of the 9/7 — per sample.
    DwtScale,
    /// Convolution-based 9/7 (Muta baseline) — per sample.
    DwtConv97,
    /// Dead-zone quantization — per sample.
    Quantize,
    /// EBCOT Tier-1 bit modeling + MQ coding — per coded decision.
    Tier1,
    /// HTJ2K-style high-throughput Tier-1 (MEL + CxtVLC quad cleanup,
    /// raw refinement) — per work item (quads + MagSgn emissions +
    /// refinement samples).
    Tier1Ht,
    /// EBCOT Tier-2 tag trees + packet headers — per code block.
    Tier2,
    /// PCRD rate control — per coding pass examined.
    RateControl,
    /// Codestream assembly and file I/O — per byte.
    StreamIo,
}

impl Kernel {
    /// Stable lowercase name for traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::TypeConvert => "type_convert",
            Kernel::LevelShiftIct => "level_shift_ict",
            Kernel::DwtSplit => "dwt_split",
            Kernel::DwtLift53 => "dwt_lift53",
            Kernel::DwtLift97F32 => "dwt_lift97_f32",
            Kernel::DwtLift97Fixed => "dwt_lift97_fixed",
            Kernel::DwtScale => "dwt_scale",
            Kernel::DwtConv97 => "dwt_conv97",
            Kernel::Quantize => "quantize",
            Kernel::Tier1 => "tier1",
            Kernel::Tier1Ht => "tier1_ht",
            Kernel::Tier2 => "tier2",
            Kernel::RateControl => "rate_control",
            Kernel::StreamIo => "stream_io",
        }
    }
}

/// Cycles per work item for `kernel` on `proc`.
///
/// SPE streaming kernels assume the aligned, constant-trip-count loops the
/// data decomposition scheme guarantees (SIMD 4-wide, unrolled, compile-time
/// scheduled); the misalignment penalty for schemes that violate those
/// guarantees is applied by the DMA layer, not here.
pub fn cycles_per_item(proc: ProcKind, kernel: Kernel) -> f64 {
    use Kernel::*;
    use ProcKind::*;
    match (proc, kernel) {
        // --- data-parallel streaming kernels (per sample) ---
        (Spe, TypeConvert) => 0.5,
        (Ppe, TypeConvert) => 2.0,
        (PentiumIV, TypeConvert) => 1.5,

        (Spe, LevelShiftIct) => 0.8,
        (Ppe, LevelShiftIct) => 4.0,
        (PentiumIV, LevelShiftIct) => 3.0,

        (Spe, DwtSplit) => 0.4,
        (Ppe, DwtSplit) => 2.0,
        (PentiumIV, DwtSplit) => 2.5,

        // Pentium IV DWT costs include Jasper's cache-hostile column-major
        // vertical traversal ("poor cache behavior in a column-major
        // traversal ... becomes a bottleneck"), hence ~10 cycles/sample.
        (Spe, DwtLift53) => 0.6,
        (Ppe, DwtLift53) => 3.5,
        (PentiumIV, DwtLift53) => 5.4,

        // The in-order PPE is far weaker on scalar single-precision
        // lifting than on integer shifts/adds (long FPU latency, no
        // vectorization in the baseline code) — this is what makes the
        // paper's lossy PPE-only case 2.4x slower than one SPE.
        (Spe, DwtLift97F32) => 0.6,
        (Ppe, DwtLift97F32) => 14.0,
        (PentiumIV, DwtLift97F32) => 6.3,

        // Emulated 32-bit multiply: ~5 instructions vs 1 fm (isa module).
        // On the P4, fixed point is the *faster* representation — the very
        // reason Jasper chose it.
        (Spe, DwtLift97Fixed) => 2.2,
        (Ppe, DwtLift97Fixed) => 8.0,
        (PentiumIV, DwtLift97Fixed) => 5.0,

        (Spe, DwtScale) => 0.3,
        (Ppe, DwtScale) => 1.5,
        (PentiumIV, DwtScale) => 1.2,

        // 16 taps / 2 outputs vs ~5 lifting MACs: ~2x arithmetic, plus
        // the shuffle/permute work that misaligned sliding-window vector
        // loads require on the SPU.
        (Spe, DwtConv97) => 4.0,
        (Ppe, DwtConv97) => 9.0,
        (PentiumIV, DwtConv97) => 7.5,

        (Spe, Quantize) => 0.7,
        (Ppe, Quantize) => 6.0,
        (PentiumIV, Quantize) => 2.5,

        // --- branchy integer kernels ---
        // Per MQ decision, including bit modeling. The SPE pays for absent
        // branch prediction (isa::SPU_BRANCH_MISS amortized over the
        // decision loop); the P4's OoO core is the fastest of the three.
        (Spe, Tier1) => 64.0,
        (Ppe, Tier1) => 57.0,
        (PentiumIV, Tier1) => 16.0,

        // Per HT work item. The quad-oriented cleanup replaces the MQ
        // coder's per-decision dependent branches with table lookups and
        // fixed-width packing, so the SPE's wide registers and cheap
        // shifts finally pay off: the SPE *beats* the PPE here — the
        // opposite ordering from the MQ Tier-1 rows above.
        (Spe, Tier1Ht) => 8.5,
        (Ppe, Tier1Ht) => 11.0,
        (PentiumIV, Tier1Ht) => 4.0,

        // Per code block (tag-tree updates + header emission).
        (Spe, Tier2) => 6_000.0,
        (Ppe, Tier2) => 3_500.0,
        (PentiumIV, Tier2) => 3_000.0,

        // Per coding pass examined by the PCRD search (sequential stage);
        // the item count comes from the real bisection's hull traversals.
        (Spe, RateControl) => 170.0,
        (Ppe, RateControl) => 100.0,
        (PentiumIV, RateControl) => 67.0,

        // Per byte moved/formatted.
        (Spe, StreamIo) => 1.0,
        (Ppe, StreamIo) => 0.8,
        (PentiumIV, StreamIo) => 1.0,
    }
}

/// Total cycles for `items` work items of `kernel` on `proc`.
pub fn cycles(proc: ProcKind, kernel: Kernel, items: u64) -> u64 {
    (cycles_per_item(proc, kernel) * items as f64).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cost_orderings_hold() {
        use Kernel::*;
        use ProcKind::*;
        // Tier-1: PPE beats SPE, P4 beats both per-core.
        assert!(cycles_per_item(Ppe, Tier1) < cycles_per_item(Spe, Tier1));
        assert!(cycles_per_item(PentiumIV, Tier1) < cycles_per_item(Ppe, Tier1));
        // HT Tier-1 inverts the SPE/PPE ordering (SIMD-friendly quad
        // coder) and is far cheaper per item than the MQ coder anywhere.
        assert!(cycles_per_item(Spe, Tier1Ht) < cycles_per_item(Ppe, Tier1Ht));
        assert!(cycles_per_item(Spe, Tier1Ht) * 4.0 < cycles_per_item(Spe, Tier1));
        // DWT: one SPE beats one PPE by far.
        assert!(cycles_per_item(Spe, DwtLift53) * 4.0 < cycles_per_item(Ppe, DwtLift53));
        // Fixed point loses on the SPE but wins on the P4 (Jasper's premise).
        assert!(cycles_per_item(Spe, DwtLift97Fixed) > 3.0 * cycles_per_item(Spe, DwtLift97F32));
        assert!(
            cycles_per_item(PentiumIV, DwtLift97Fixed) <= cycles_per_item(PentiumIV, DwtLift97F32)
        );
        // Convolution is dearer than lifting everywhere.
        assert!(cycles_per_item(Spe, DwtConv97) > cycles_per_item(Spe, DwtLift97F32));
    }

    #[test]
    fn cycles_scales_linearly() {
        assert_eq!(
            cycles(ProcKind::Spe, Kernel::Tier1, 1000),
            (64.0f64 * 1000.0) as u64
        );
        assert_eq!(cycles(ProcKind::Ppe, Kernel::Quantize, 0), 0);
    }
}
