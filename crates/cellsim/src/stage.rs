//! Discrete-event execution of one pipeline stage.
//!
//! A stage is a set of tasks executed by a set of processing elements.
//! Tasks either come pre-assigned per PE (the data decomposition scheme's
//! static chunks) or are pulled from a shared work queue (Tier-1's dynamic
//! load balancing). Each task optionally GETs input, computes, and PUTs
//! output; transfers go through the shared [`MemBus`], and multi-buffering
//! lets a PE overlap the next task's GET with the current compute.

use crate::config::MachineConfig;
use crate::cost::{self, Kernel, ProcKind};
use crate::des::{DmaClass, MemBus};
use crate::timeline::StageReport;
use crate::Cycles;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One schedulable unit of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// Kernel class (drives per-PE compute cost).
    pub kernel: Kernel,
    /// Work items (samples / decisions / bytes — see [`Kernel`] docs).
    pub items: u64,
    /// Bytes transferred in before compute.
    pub dma_in: u64,
    /// Bytes transferred out after compute.
    pub dma_out: u64,
    /// Alignment class of both transfers.
    pub class: DmaClass,
}

impl TaskSpec {
    /// A compute-only task.
    pub fn compute_only(kernel: Kernel, items: u64) -> Self {
        TaskSpec {
            kernel,
            items,
            dma_in: 0,
            dma_out: 0,
            class: DmaClass::LineOptimal,
        }
    }
}

/// How tasks map onto PEs.
#[derive(Debug, Clone)]
pub enum Assignment {
    /// `lists[i]` executes on PE `i` in order (static decomposition).
    Static(Vec<Vec<TaskSpec>>),
    /// All PEs pull from one shared queue (dynamic load balancing).
    Queue(Vec<TaskSpec>),
}

/// Result of simulating a stage.
#[derive(Debug, Clone)]
pub struct StageOutcome {
    /// Stage wall time in cycles (all compute and DMA drained).
    pub makespan: Cycles,
    /// Per-PE compute-busy cycles.
    pub busy: Vec<Cycles>,
    /// Per-PE executed task counts.
    pub tasks_run: Vec<usize>,
    /// Total bytes through the memory bus.
    pub bytes: u64,
    /// Bus service time (cycles).
    pub bus_busy: Cycles,
    /// Number of DMA requests.
    pub dma_requests: u64,
}

impl StageOutcome {
    /// Convert to a named report at a given clock.
    pub fn report(&self, name: &str, cfg: &MachineConfig) -> StageReport {
        StageReport {
            name: name.to_string(),
            makespan_cycles: self.makespan,
            seconds: cfg.cycles_to_secs(self.makespan),
            busy_cycles: self.busy.clone(),
            tasks_run: self.tasks_run.clone(),
            bytes_moved: self.bytes,
            bus_busy_cycles: self.bus_busy,
            dma_requests: self.dma_requests,
        }
    }
}

/// The simulated lifetime of one task on the virtual clock: when its GET
/// was issued and landed, when compute ran, and when the PUT drained.
/// All times are cycles on the stage's local clock (0 = stage start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskEvent {
    /// PE that executed the task.
    pub pe: usize,
    /// Kernel class (for span naming).
    pub kernel: Kernel,
    /// Work items computed.
    pub items: u64,
    /// Cycle the GET was issued (bus queueing starts here).
    pub fetch_issue: Cycles,
    /// Cycle the GET completed (data resident in the Local Store).
    pub fetch_done: Cycles,
    /// Cycle compute started (>= fetch_done; waits for the PE).
    pub compute_start: Cycles,
    /// Cycle compute finished.
    pub compute_end: Cycles,
    /// Cycle the PUT completed (== compute_end when `dma_out` is 0).
    pub put_done: Cycles,
    /// Bytes transferred in.
    pub dma_in: u64,
    /// Bytes transferred out.
    pub dma_out: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// GET finished for (pe, slot-in-fetched-queue is implicit).
    FetchDone { pe: usize, task: usize },
    /// Compute finished for (pe, task).
    ComputeDone { pe: usize, task: usize },
}

/// Per-PE in-flight limit by buffering level (1 = no overlap, 2 = double
/// buffering, ...). The Local Store constraint that makes levels > 1 legal
/// is checked by the *planner* (chunk width x buffering <= LS budget); this
/// runner trusts the plan.
pub fn run_stage(
    cfg: &MachineConfig,
    pes: &[ProcKind],
    assignment: &Assignment,
    buffering: usize,
) -> StageOutcome {
    run_stage_traced(cfg, pes, assignment, buffering).0
}

/// [`run_stage`] that also returns the per-task schedule: one
/// [`TaskEvent`] per task, in task order, timestamped on the stage's
/// virtual clock. This is the raw material for the Chrome-trace export
/// in [`crate::trace`]; `run_stage` itself discards it.
pub fn run_stage_traced(
    cfg: &MachineConfig,
    pes: &[ProcKind],
    assignment: &Assignment,
    buffering: usize,
) -> (StageOutcome, Vec<TaskEvent>) {
    let npe = pes.len();
    let buffering = buffering.max(1);
    let mut bus = MemBus::new(cfg);

    // Task storage: flattened, with per-PE index lists (static) or a shared
    // cursor (queue).
    let (tasks, mut static_lists, queue_mode): (
        Vec<TaskSpec>,
        Vec<std::collections::VecDeque<usize>>,
        bool,
    ) = match assignment {
        Assignment::Static(lists) => {
            assert_eq!(lists.len(), npe, "one task list per PE");
            let mut flat = Vec::new();
            let mut idx = Vec::new();
            for l in lists {
                let mut q = std::collections::VecDeque::new();
                for t in l {
                    q.push_back(flat.len());
                    flat.push(*t);
                }
                idx.push(q);
            }
            (flat, idx, false)
        }
        Assignment::Queue(list) => {
            let mut q = std::collections::VecDeque::new();
            for i in 0..list.len() {
                q.push_back(i);
            }
            let mut lists = vec![std::collections::VecDeque::new(); npe];
            lists[0] = q; // shared queue stored in slot 0
            (list.clone(), lists, true)
        }
    };

    // Per-task schedule record, filled in as the DES fires.
    let mut tev: Vec<TaskEvent> = tasks
        .iter()
        .map(|t| TaskEvent {
            pe: 0,
            kernel: t.kernel,
            items: t.items,
            fetch_issue: 0,
            fetch_done: 0,
            compute_start: 0,
            compute_end: 0,
            put_done: 0,
            dma_in: t.dma_in,
            dma_out: t.dma_out,
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<(Cycles, u64, usize, Ev)>> = BinaryHeap::new();
    let mut seq: u64 = 0; // tie-breaker for determinism

    // Per-PE state.
    let mut fetched: Vec<std::collections::VecDeque<(usize, Cycles)>> =
        vec![std::collections::VecDeque::new(); npe];
    let mut in_flight = vec![0usize; npe];
    let mut computing = vec![false; npe];
    let mut busy = vec![0u64; npe];
    let mut tasks_run = vec![0usize; npe];
    let mut makespan: Cycles = 0;

    // Pop the next task index for `pe`, honoring queue vs static mode.
    macro_rules! next_task {
        ($pe:expr) => {
            if queue_mode {
                static_lists[0].pop_front()
            } else {
                static_lists[$pe].pop_front()
            }
        };
    }

    // Issue a fetch for PE `pe` at time `now` if capacity and work remain.
    macro_rules! try_fetch {
        ($pe:expr, $now:expr) => {
            while in_flight[$pe] < buffering {
                match next_task!($pe) {
                    Some(t) => {
                        in_flight[$pe] += 1;
                        let done = bus.request($now, tasks[t].dma_in, tasks[t].class);
                        tev[t].pe = $pe;
                        tev[t].fetch_issue = $now;
                        tev[t].fetch_done = done;
                        seq += 1;
                        heap.push(Reverse((
                            done,
                            seq,
                            $pe,
                            Ev::FetchDone { pe: $pe, task: t },
                        )));
                        if queue_mode {
                            // Queue mode pulls one task at a time (no
                            // prefetch of an unknown next assignment).
                            break;
                        }
                    }
                    None => break,
                }
            }
        };
    }

    for pe in 0..npe {
        try_fetch!(pe, 0);
    }

    while let Some(Reverse((now, _, _, ev))) = heap.pop() {
        makespan = makespan.max(now);
        match ev {
            Ev::FetchDone { pe, task } => {
                fetched[pe].push_back((task, now));
                if !computing[pe] {
                    let (t, ready) = fetched[pe].pop_front().expect("just pushed");
                    let start = now.max(ready);
                    let dur = cost::cycles(pes[pe], tasks[t].kernel, tasks[t].items);
                    computing[pe] = true;
                    busy[pe] += dur;
                    tev[t].compute_start = start;
                    tev[t].compute_end = start + dur;
                    seq += 1;
                    heap.push(Reverse((
                        start + dur,
                        seq,
                        pe,
                        Ev::ComputeDone { pe, task: t },
                    )));
                }
            }
            Ev::ComputeDone { pe, task } => {
                tasks_run[pe] += 1;
                in_flight[pe] -= 1;
                let put_done = bus.request(now, tasks[task].dma_out, tasks[task].class);
                tev[task].put_done = put_done;
                makespan = makespan.max(put_done);
                // Start the next fetched task, if any.
                if let Some((t, ready)) = fetched[pe].pop_front() {
                    let start = now.max(ready);
                    let dur = cost::cycles(pes[pe], tasks[t].kernel, tasks[t].items);
                    busy[pe] += dur;
                    tev[t].compute_start = start;
                    tev[t].compute_end = start + dur;
                    seq += 1;
                    heap.push(Reverse((
                        start + dur,
                        seq,
                        pe,
                        Ev::ComputeDone { pe, task: t },
                    )));
                } else {
                    computing[pe] = false;
                }
                try_fetch!(pe, now);
            }
        }
    }

    (
        StageOutcome {
            makespan,
            busy,
            tasks_run,
            bytes: bus.bytes_moved(),
            bus_busy: bus.busy_cycles(),
            dma_requests: bus.requests(),
        },
        tev,
    )
}

#[cfg(test)]
mod traced_tests {
    use super::*;

    #[test]
    fn run_stage_matches_traced_outcome() {
        let cfg = MachineConfig::qs20_single();
        let ts: Vec<TaskSpec> = (1..10)
            .map(|i| TaskSpec {
                kernel: Kernel::Tier1,
                items: i * 500,
                dma_in: 4096,
                dma_out: 4096,
                class: DmaClass::LineOptimal,
            })
            .collect();
        let pes = vec![ProcKind::Spe; 3];
        let plain = run_stage(&cfg, &pes, &Assignment::Queue(ts.clone()), 2);
        let (traced, events) = run_stage_traced(&cfg, &pes, &Assignment::Queue(ts), 2);
        assert_eq!(plain.makespan, traced.makespan);
        assert_eq!(plain.tasks_run, traced.tasks_run);
        assert_eq!(events.len(), 9);
        // Every task's busy window is accounted to the PE that ran it.
        let mut busy = vec![0u64; 3];
        for e in &events {
            busy[e.pe] += e.compute_end - e.compute_start;
        }
        assert_eq!(busy, traced.busy);
    }
}

/// Convenience: run a purely sequential stage (one PE, compute only).
pub fn run_sequential(
    cfg: &MachineConfig,
    pe: ProcKind,
    kernel: Kernel,
    items: u64,
) -> StageOutcome {
    run_stage(
        cfg,
        &[pe],
        &Assignment::Static(vec![vec![TaskSpec::compute_only(kernel, items)]]),
        1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::qs20_single()
    }

    fn task(items: u64, dma: u64) -> TaskSpec {
        TaskSpec {
            kernel: Kernel::Quantize,
            items,
            dma_in: dma,
            dma_out: dma,
            class: DmaClass::LineOptimal,
        }
    }

    #[test]
    fn single_pe_compute_only_sums() {
        let ts = vec![TaskSpec::compute_only(Kernel::Tier1, 100); 5];
        let out = run_stage(&cfg(), &[ProcKind::Spe], &Assignment::Static(vec![ts]), 1);
        // 5 tasks x 100 items x 64 cycles.
        assert_eq!(out.makespan, 5 * 6400);
        assert_eq!(out.busy[0], 5 * 6400);
        assert_eq!(out.tasks_run[0], 5);
        assert_eq!(out.bytes, 0);
    }

    #[test]
    fn two_pes_halve_compute_time() {
        let list: Vec<TaskSpec> = vec![TaskSpec::compute_only(Kernel::Quantize, 10_000); 8];
        let one = run_stage(
            &cfg(),
            &[ProcKind::Spe],
            &Assignment::Static(vec![list.clone()]),
            1,
        );
        let half: Vec<Vec<TaskSpec>> = vec![list[..4].to_vec(), list[4..].to_vec()];
        let two = run_stage(
            &cfg(),
            &[ProcKind::Spe, ProcKind::Spe],
            &Assignment::Static(half),
            1,
        );
        assert_eq!(two.makespan * 2, one.makespan);
    }

    #[test]
    fn bandwidth_bound_stage_saturates() {
        // Tiny compute, huge DMA: doubling the PEs cannot beat the bus.
        let mk = |n: usize| {
            let per = vec![task(1, 1 << 20); 4];
            let lists = vec![per; n];
            let pes = vec![ProcKind::Spe; n];
            run_stage(&cfg(), &pes, &Assignment::Static(lists), 2)
        };
        let t1 = mk(1);
        let t8 = mk(8);
        // 8x the data in at most ~8x... the bus limit means t8 >= ~ t1 * 8 * 0.9.
        let total_bytes_ratio = 8.0;
        assert!(
            (t8.makespan as f64) > (t1.makespan as f64) * total_bytes_ratio * 0.7,
            "t1={} t8={}",
            t1.makespan,
            t8.makespan
        );
    }

    #[test]
    fn double_buffering_hides_transfer_latency() {
        // Compute-dominated tasks: with buffering=2 the GETs overlap compute
        // and the makespan approaches pure compute time.
        let ts = vec![task(100_000, 64 * 1024); 6];
        let single = run_stage(
            &cfg(),
            &[ProcKind::Spe],
            &Assignment::Static(vec![ts.clone()]),
            1,
        );
        let double = run_stage(&cfg(), &[ProcKind::Spe], &Assignment::Static(vec![ts]), 2);
        assert!(double.makespan < single.makespan);
        let compute = 6 * cost::cycles(ProcKind::Spe, Kernel::Quantize, 100_000);
        // Within 10% of pure compute once transfers are hidden.
        assert!((double.makespan as f64) < compute as f64 * 1.10);
    }

    #[test]
    fn queue_balances_skewed_work() {
        // One huge task + many small: static contiguous split strands one PE
        // with the big task plus extras; the queue spreads the rest.
        let mut tasks_v = vec![TaskSpec::compute_only(Kernel::Tier1, 100_000)];
        tasks_v.extend(vec![TaskSpec::compute_only(Kernel::Tier1, 5_000); 15]);
        let pes = [ProcKind::Spe, ProcKind::Spe];
        let static_lists = vec![tasks_v[..8].to_vec(), tasks_v[8..].to_vec()];
        let st = run_stage(&cfg(), &pes, &Assignment::Static(static_lists), 1);
        let qu = run_stage(&cfg(), &pes, &Assignment::Queue(tasks_v), 1);
        assert!(
            qu.makespan < st.makespan,
            "queue {} vs static {}",
            qu.makespan,
            st.makespan
        );
    }

    #[test]
    fn queue_on_heterogeneous_pes_respects_speed() {
        // PPE is faster per Tier-1 symbol; with a queue it should complete
        // more tasks than an SPE.
        let tasks_v = vec![TaskSpec::compute_only(Kernel::Tier1, 10_000); 24];
        let pes = [ProcKind::Spe, ProcKind::Ppe];
        let out = run_stage(&cfg(), &pes, &Assignment::Queue(tasks_v), 1);
        assert!(out.tasks_run[1] > out.tasks_run[0]);
        assert_eq!(out.tasks_run[0] + out.tasks_run[1], 24);
    }

    #[test]
    fn work_conservation() {
        let ts: Vec<TaskSpec> = (1..20).map(|i| task(i * 1000, 4096)).collect();
        let pes = vec![ProcKind::Spe; 4];
        let out = run_stage(&cfg(), &pes, &Assignment::Queue(ts.clone()), 1);
        for pe in 0..4 {
            assert!(out.busy[pe] <= out.makespan);
        }
        let total: usize = out.tasks_run.iter().sum();
        assert_eq!(total, ts.len());
        let expected_bytes: u64 = ts.iter().map(|t| t.dma_in + t.dma_out).sum();
        assert_eq!(out.bytes, expected_bytes);
    }

    #[test]
    fn deterministic() {
        let ts: Vec<TaskSpec> = (1..50).map(|i| task(i * 137, (i % 7) * 2048)).collect();
        let pes = vec![ProcKind::Spe; 5];
        let a = run_stage(&cfg(), &pes, &Assignment::Queue(ts.clone()), 2);
        let b = run_stage(&cfg(), &pes, &Assignment::Queue(ts), 2);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.tasks_run, b.tasks_run);
    }

    #[test]
    fn sequential_helper() {
        let out = run_sequential(&cfg(), ProcKind::Ppe, Kernel::RateControl, 100);
        assert_eq!(out.makespan, 100 * 100);
    }
}
