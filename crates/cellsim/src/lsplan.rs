//! Local Store budgeting for Tier-1 code blocks.
//!
//! The paper's §3.2 discussion of code-block size is a Local Store
//! argument: a 64x64 block of 4-byte coefficients needs 16 KiB in and a
//! few KiB out, so one block fits the Local Store comfortably but double
//! buffering two of them plus the Tier-1 state arrays gets tight; Muta et
//! al. chose 32x32 "to reduce the Local Store memory requirements and
//! enable double buffering", at the price of 4x the PPE interaction. This
//! module makes that trade-off computable.

/// Bytes of Local Store needed to Tier-1-encode one `cb x cb` block:
/// coefficient buffer (4 B/sample) + state flags (1 B/sample) + an output
/// buffer sized for the worst case (~2 B/sample) per buffered block.
pub fn tier1_block_footprint(cb: usize) -> usize {
    let samples = cb * cb;
    samples * 4 + samples + samples * 2
}

/// Highest buffering level (1 = single, 2 = double, ...) that fits the
/// given Local Store data budget for `cb x cb` Tier-1 blocks. Returns 0
/// when even a single block does not fit.
pub fn tier1_max_buffering(cb: usize, ls_budget: usize) -> usize {
    let per = tier1_block_footprint(cb);
    if per == 0 {
        return 0;
    }
    ls_budget / per
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;

    #[test]
    fn paper_blocks_fit_single_buffered() {
        let budget = MachineConfig::qs20_single().ls_data_budget();
        // 64x64: one block fits; double buffering is marginal (the paper
        // runs single buffered, accepting it because Tier-1 is compute
        // bound: "efficient DMA data transfer is less important owing to
        // the relatively high computation to communication ratio").
        assert!(tier1_max_buffering(64, budget) >= 1);
        assert!(tier1_max_buffering(64, budget) < 8);
        // 32x32: plenty of room for double buffering — Muta's rationale.
        assert!(tier1_max_buffering(32, budget) >= 2);
    }

    #[test]
    fn footprint_scales_quadratically() {
        assert_eq!(tier1_block_footprint(64), 4 * tier1_block_footprint(32));
        assert_eq!(tier1_block_footprint(0), 0);
        assert_eq!(tier1_max_buffering(0, 1024), 0);
    }

    #[test]
    fn huge_blocks_do_not_fit() {
        assert_eq!(tier1_max_buffering(1024, 192 * 1024), 0);
    }
}
