//! SPU instruction latencies (Table 1 of the paper) and derived operation
//! costs that justify the fixed-point → floating-point switch.

/// Latency of one SPU instruction in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Mnemonic.
    pub name: &'static str,
    /// Description from Table 1.
    pub desc: &'static str,
    /// Result latency in cycles.
    pub latency: u32,
}

/// `mpyh`: two-byte integer multiply high — 7 cycles.
pub const MPYH: Instr = Instr {
    name: "mpyh",
    desc: "two byte integer multiply high",
    latency: 7,
};
/// `mpyu`: two-byte integer multiply unsigned — 7 cycles.
pub const MPYU: Instr = Instr {
    name: "mpyu",
    desc: "two byte integer multiply unsigned",
    latency: 7,
};
/// `a`: word add — 2 cycles.
pub const A: Instr = Instr {
    name: "a",
    desc: "add word",
    latency: 2,
};
/// `fm`: single-precision floating-point multiply — 6 cycles.
pub const FM: Instr = Instr {
    name: "fm",
    desc: "single precision floating point multiply",
    latency: 6,
};

/// Table 1, in paper order.
pub const TABLE1: [Instr; 4] = [MPYH, MPYU, A, FM];

/// Instruction count of an emulated 32-bit integer multiply on the SPU.
///
/// The SPU ISA only multiplies 16-bit halves, so `a * b` (32-bit) becomes
/// `mpyh(a,b) + mpyh(b,a) + mpyu(a,b)` combined with two adds:
/// 3 multiplies + 2 adds = 5 instructions, vs. a single pipelined `fm`
/// for the floating-point path. This asymmetry is why the paper replaces
/// Jasper's fixed-point representation with `f32` (Section 4).
pub const MUL32_EMULATION_INSTRS: u32 = 5;

/// Dependent-chain latency of the emulated 32-bit multiply
/// (`mpyh` || `mpyh` || `mpyu` then two dependent adds).
pub const MUL32_EMULATION_LATENCY: u32 = MPYH.latency + A.latency + A.latency;

/// SIMD width for 32-bit lanes (128-bit registers).
pub const SIMD_LANES: u32 = 4;

/// Branch-miss penalty on the SPU (no dynamic prediction; compiler hints
/// only). ~18 cycles flush per the Cell BE Handbook.
pub const SPU_BRANCH_MISS: u32 = 18;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        assert_eq!(MPYH.latency, 7);
        assert_eq!(MPYU.latency, 7);
        assert_eq!(A.latency, 2);
        assert_eq!(FM.latency, 6);
        assert_eq!(TABLE1.len(), 4);
    }

    #[test]
    fn fixed_point_multiply_is_dearer_than_float() {
        // The whole point of Section 4: emulated integer multiply costs
        // several instructions and a longer dependence chain than fm.
        const { assert!(MUL32_EMULATION_INSTRS > 1) };
        const { assert!(MUL32_EMULATION_LATENCY > FM.latency) };
    }
}
