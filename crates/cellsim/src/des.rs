//! The shared memory/EIB model: a FIFO server with finite bandwidth.
//!
//! All off-chip traffic — SPE DMA and PPE cacheable loads/stores alike —
//! funnels through the XDR memory interface, so the model serializes every
//! transfer through one server whose rate is the configured sustained
//! bandwidth. Misaligned transfers pay an efficiency factor, which is how
//! Muta-style overlapped tiles lose to the paper's cache-line-aligned
//! decomposition.

use crate::config::MachineConfig;
use crate::Cycles;

/// Alignment/size class of a transfer (mirror of `xpart::DmaClass`, kept
/// dependency-free here; `j2k-core` converts between them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaClass {
    /// 128-byte aligned, size a multiple of 128: peak efficiency.
    LineOptimal,
    /// 16-byte aligned, 16-byte multiple: pays partial-line overhead.
    QuadAligned,
    /// Small naturally-aligned transfer (1/2/4/8 bytes).
    SmallNatural,
}

impl DmaClass {
    /// Effective bus-time multiplier relative to a line-optimal transfer.
    ///
    /// QuadAligned: a transfer that is not line-aligned touches up to one
    /// extra line and defeats the memory controller's full-line batching
    /// (~30% penalty measured by Kistler et al. for misaligned streams).
    /// SmallNatural: each tiny transfer occupies a full request slot.
    pub fn efficiency_factor(self) -> f64 {
        match self {
            DmaClass::LineOptimal => 1.0,
            DmaClass::QuadAligned => 1.3,
            DmaClass::SmallNatural => 8.0,
        }
    }
}

/// FIFO memory server. Requests are served in arrival order at the
/// configured bandwidth; each request also pays the fixed MFC/EIB latency.
#[derive(Debug, Clone)]
pub struct MemBus {
    cycles_per_byte: f64,
    latency: Cycles,
    free_at: Cycles,
    bytes: u64,
    busy: Cycles,
    requests: u64,
}

impl MemBus {
    /// A bus for the given machine.
    pub fn new(cfg: &MachineConfig) -> Self {
        MemBus {
            cycles_per_byte: cfg.clock_hz / cfg.mem_bw_bytes_per_s,
            latency: cfg.dma_latency_cycles,
            free_at: 0,
            bytes: 0,
            busy: 0,
            requests: 0,
        }
    }

    /// Request a transfer of `bytes` at time `now`; returns its completion
    /// time. Zero-byte requests complete immediately.
    pub fn request(&mut self, now: Cycles, bytes: u64, class: DmaClass) -> Cycles {
        if bytes == 0 {
            return now;
        }
        let service =
            (bytes as f64 * self.cycles_per_byte * class.efficiency_factor()).ceil() as Cycles;
        let start = self.free_at.max(now);
        let done = start + service;
        self.free_at = done;
        self.bytes += bytes;
        self.busy += service;
        self.requests += 1;
        // The fixed latency overlaps with queueing but always delays the
        // requester's view of completion.
        done + self.latency
    }

    /// Total payload bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes
    }

    /// Cycles the bus spent serving transfers.
    pub fn busy_cycles(&self) -> Cycles {
        self.busy
    }

    /// Number of transfer requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Time the bus becomes idle.
    pub fn free_at(&self) -> Cycles {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> MemBus {
        MemBus::new(&MachineConfig::qs20_single())
    }

    #[test]
    fn single_transfer_timing() {
        let mut b = bus();
        // 25.6 GB/s at 3.2 GHz -> 0.125 cycles/byte; 1024 bytes = 128 cycles.
        let done = b.request(0, 1024, DmaClass::LineOptimal);
        assert_eq!(done, 128 + 200);
        assert_eq!(b.bytes_moved(), 1024);
    }

    #[test]
    fn fifo_serialization() {
        let mut b = bus();
        let d1 = b.request(0, 1024, DmaClass::LineOptimal);
        let d2 = b.request(0, 1024, DmaClass::LineOptimal);
        assert_eq!(d2 - d1, 128, "second transfer queues behind the first");
        // A later request after the bus idles starts immediately.
        let d3 = b.request(10_000, 1024, DmaClass::LineOptimal);
        assert_eq!(d3, 10_000 + 128 + 200);
    }

    #[test]
    fn misalignment_costs_more() {
        let mut a = bus();
        let mut q = bus();
        let da = a.request(0, 4096, DmaClass::LineOptimal);
        let dq = q.request(0, 4096, DmaClass::QuadAligned);
        assert!(dq > da);
        let mut s = bus();
        let ds = s.request(0, 4096, DmaClass::SmallNatural);
        assert!(ds > dq);
    }

    #[test]
    fn zero_bytes_is_free() {
        let mut b = bus();
        assert_eq!(b.request(5, 0, DmaClass::LineOptimal), 5);
        assert_eq!(b.requests(), 0);
    }

    #[test]
    fn busy_accounting() {
        let mut b = bus();
        b.request(0, 1024, DmaClass::LineOptimal);
        b.request(0, 1024, DmaClass::LineOptimal);
        assert_eq!(b.busy_cycles(), 256);
        assert_eq!(b.requests(), 2);
        assert_eq!(b.free_at(), 256);
    }
}
