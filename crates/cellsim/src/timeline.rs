//! Per-stage timing reports and whole-encode timelines.

/// Timing record of one simulated pipeline stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage name (e.g. "dwt-vertical-l1", "tier1").
    pub name: String,
    /// Wall time in cycles.
    pub makespan_cycles: u64,
    /// Wall time in seconds at the machine clock.
    pub seconds: f64,
    /// Per-PE compute-busy cycles.
    pub busy_cycles: Vec<u64>,
    /// Per-PE task counts.
    pub tasks_run: Vec<usize>,
    /// Bytes through the memory bus.
    pub bytes_moved: u64,
    /// Bus service cycles.
    pub bus_busy_cycles: u64,
    /// DMA request count.
    pub dma_requests: u64,
}

impl StageReport {
    /// Average PE utilization during the stage (busy / makespan).
    pub fn utilization(&self) -> f64 {
        if self.makespan_cycles == 0 || self.busy_cycles.is_empty() {
            return 0.0;
        }
        let total: u64 = self.busy_cycles.iter().sum();
        total as f64 / (self.makespan_cycles as f64 * self.busy_cycles.len() as f64)
    }

    /// Fraction of the stage the memory bus was busy.
    pub fn bus_utilization(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.bus_busy_cycles as f64 / self.makespan_cycles as f64
    }
}

/// Ordered collection of stage reports for one encode.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Stages in execution order.
    pub stages: Vec<StageReport>,
}

impl Timeline {
    /// Append a stage.
    pub fn push(&mut self, r: StageReport) {
        self.stages.push(r);
    }

    /// Total simulated cycles (stages are sequential phases).
    pub fn total_cycles(&self) -> u64 {
        self.stages.iter().map(|s| s.makespan_cycles).sum()
    }

    /// Total simulated seconds.
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }

    /// Sum of cycles of stages whose name contains `pat`.
    pub fn cycles_matching(&self, pat: &str) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.name.contains(pat))
            .map(|s| s.makespan_cycles)
            .sum()
    }

    /// Fraction of total time spent in stages whose name contains `pat`.
    pub fn fraction_matching(&self, pat: &str) -> f64 {
        let t = self.total_cycles();
        if t == 0 {
            return 0.0;
        }
        self.cycles_matching(pat) as f64 / t as f64
    }

    /// Render as CSV (one row per stage) for external plotting.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from(
            "stage,makespan_cycles,seconds,bytes_moved,bus_busy_cycles,dma_requests,pe_utilization\n",
        );
        for st in &self.stages {
            let _ = writeln!(
                s,
                "{},{},{:.9},{},{},{},{:.4}",
                st.name,
                st.makespan_cycles,
                st.seconds,
                st.bytes_moved,
                st.bus_busy_cycles,
                st.dma_requests,
                st.utilization()
            );
        }
        s
    }

    /// Render a human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let total = self.total_cycles().max(1);
        let _ = writeln!(
            s,
            "{:<24} {:>14} {:>9} {:>7} {:>9} {:>8}",
            "stage", "cycles", "ms", "share", "MB moved", "PE util"
        );
        for st in &self.stages {
            let _ = writeln!(
                s,
                "{:<24} {:>14} {:>9.3} {:>6.1}% {:>9.2} {:>7.1}%",
                st.name,
                st.makespan_cycles,
                st.seconds * 1e3,
                st.makespan_cycles as f64 / total as f64 * 100.0,
                st.bytes_moved as f64 / (1024.0 * 1024.0),
                st.utilization() * 100.0,
            );
        }
        let _ = writeln!(
            s,
            "{:<24} {:>14} {:>9.3}",
            "TOTAL",
            self.total_cycles(),
            self.total_seconds() * 1e3
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, cycles: u64, busy: Vec<u64>) -> StageReport {
        StageReport {
            name: name.into(),
            makespan_cycles: cycles,
            seconds: cycles as f64 / 3.2e9,
            busy_cycles: busy,
            tasks_run: vec![],
            bytes_moved: 1024,
            bus_busy_cycles: cycles / 10,
            dma_requests: 3,
        }
    }

    #[test]
    fn totals_and_fractions() {
        let mut t = Timeline::default();
        t.push(stage("dwt-v", 600, vec![600, 600]));
        t.push(stage("tier1", 400, vec![200, 100]));
        assert_eq!(t.total_cycles(), 1000);
        assert_eq!(t.cycles_matching("dwt"), 600);
        assert!((t.fraction_matching("tier1") - 0.4).abs() < 1e-12);
    }

    #[test]
    fn utilization_math() {
        let s = stage("x", 1000, vec![500, 1000]);
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        assert!((s.bus_utilization() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Timeline::default();
        t.push(stage("tier1", 100, vec![50, 100]));
        t.push(stage("tier2", 10, vec![10]));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("stage,makespan_cycles"));
        assert!(lines[1].starts_with("tier1,100,"));
        assert!(lines[2].starts_with("tier2,10,"));
    }

    #[test]
    fn render_contains_stages() {
        let mut t = Timeline::default();
        t.push(stage("quantize", 100, vec![100]));
        let r = t.render();
        assert!(r.contains("quantize"));
        assert!(r.contains("TOTAL"));
    }
}
