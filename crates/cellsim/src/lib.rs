//! A deterministic machine model of the Sony-Toshiba-IBM Cell Broadband
//! Engine, built to reproduce the scheduling/bandwidth phenomena that
//! Kang & Bader's ICPP 2008 JPEG2000 study measures on real QS20 hardware.
//!
//! # What is modelled
//!
//! * **Processing elements** — one PPE (scalar, branch-predicted) and `N`
//!   SPEs (4-wide SIMD, no dynamic branch prediction, no 32-bit integer
//!   multiply — Table 1 of the paper lives in [`isa`]), plus an Intel
//!   Pentium IV model for the Figure 9 comparison ([`cost`]).
//! * **Local Store** — 256 KiB per SPE; stage planning validates that row
//!   buffers fit ([`config::MachineConfig::ls_data_budget`]).
//! * **DMA & memory** — explicit transfers with the MFC alignment rules
//!   (via `xpart`-style classes), priced and serialized through a shared
//!   FIFO memory/EIB server with finite bandwidth ([`des`]). This is what
//!   produces the DWT's bandwidth ceiling and the benefit of the paper's
//!   lifting-step fusion.
//! * **Scheduling** — static chunk assignment (the data decomposition
//!   scheme) and a dynamic work queue (Tier-1's load balancing), both run
//!   under a discrete-event engine ([`stage`]).
//!
//! # What is not modelled
//!
//! Instruction-level SPU execution. Kernel costs are analytic
//! (cycles-per-work-item tables in [`cost`], documented and calibrated
//! against the paper's single-SPE/PPE ratios) driven by *real* operation
//! counts measured by the actual codec. DESIGN.md §2 documents this
//! substitution.

pub mod config;
pub mod cost;
pub mod des;
pub mod isa;
pub mod lsplan;
pub mod stage;
pub mod timeline;
pub mod trace;

pub use config::MachineConfig;
pub use cost::{Kernel, ProcKind};
pub use des::{DmaClass, MemBus};
pub use stage::{run_stage, run_stage_traced, Assignment, StageOutcome, TaskEvent, TaskSpec};
pub use timeline::{StageReport, Timeline};
pub use trace::ScheduleTrace;

/// Simulated time in processor cycles at the chip clock.
pub type Cycles = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_surface_links() {
        let cfg = MachineConfig::qs20_single();
        assert_eq!(cfg.num_spes, 8);
        let _ = Timeline::default();
    }
}
