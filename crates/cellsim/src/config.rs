//! Machine configurations.

/// Parameters of a simulated Cell/B.E. platform.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of SPEs participating in computation.
    pub num_spes: usize,
    /// Number of PPE hardware threads participating (the QS20 blade exposes
    /// two PPEs; Figures 4/5 add "+1 PPE"/"+2 PPE" Tier-1 helpers).
    pub num_ppes: usize,
    /// Chip clock in Hz (3.2 GHz for the QS20, 2.4 GHz in Muta et al.).
    pub clock_hz: f64,
    /// Cache line / optimal DMA granule in bytes.
    pub cache_line: usize,
    /// Local Store size per SPE in bytes.
    pub ls_bytes: usize,
    /// Sustained off-chip memory bandwidth in bytes/second shared by all
    /// PEs (25.6 GB/s XDR on the Cell).
    pub mem_bw_bytes_per_s: f64,
    /// Fixed per-DMA-request latency in cycles (MFC setup + EIB hop).
    pub dma_latency_cycles: u64,
    /// Bytes reserved in the Local Store for code + stack; the rest is the
    /// data budget for row buffers.
    pub ls_code_stack_bytes: usize,
}

impl MachineConfig {
    /// One Cell/B.E. 3.2 GHz chip of an IBM QS20 blade (8 SPEs + 1 PPE).
    pub fn qs20_single() -> Self {
        MachineConfig {
            num_spes: 8,
            num_ppes: 1,
            clock_hz: 3.2e9,
            cache_line: 128,
            ls_bytes: 256 * 1024,
            mem_bw_bytes_per_s: 25.6e9,
            dma_latency_cycles: 200,
            ls_code_stack_bytes: 64 * 1024,
        }
    }

    /// The full QS20 blade: two chips, 16 SPEs + 2 PPEs, sharing the
    /// XDR memory of one blade (the paper scales to this configuration).
    pub fn qs20_blade() -> Self {
        MachineConfig {
            num_spes: 16,
            num_ppes: 2,
            // Two memory controllers; aggregate bandwidth roughly doubles.
            mem_bw_bytes_per_s: 2.0 * 25.6e9,
            ..Self::qs20_single()
        }
    }

    /// The 2.4 GHz pre-production Cell used by Muta et al. (two chips).
    pub fn muta_blade() -> Self {
        MachineConfig {
            num_spes: 16,
            num_ppes: 2,
            clock_hz: 2.4e9,
            mem_bw_bytes_per_s: 2.0 * 25.6e9,
            ..Self::qs20_single()
        }
    }

    /// A copy with a different number of SPEs (scaling sweeps).
    pub fn with_spes(&self, n: usize) -> Self {
        MachineConfig {
            num_spes: n,
            ..self.clone()
        }
    }

    /// A copy with a different number of PPE threads.
    pub fn with_ppes(&self, n: usize) -> Self {
        MachineConfig {
            num_ppes: n,
            ..self.clone()
        }
    }

    /// Local Store bytes available for data buffers.
    pub fn ls_data_budget(&self) -> usize {
        self.ls_bytes.saturating_sub(self.ls_code_stack_bytes)
    }

    /// Cycles needed to move `bytes` at full memory bandwidth.
    pub fn bytes_to_cycles(&self, bytes: u64) -> u64 {
        ((bytes as f64) * self.clock_hz / self.mem_bw_bytes_per_s).ceil() as u64
    }

    /// Convert cycles to seconds.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let single = MachineConfig::qs20_single();
        let blade = MachineConfig::qs20_blade();
        assert_eq!(single.num_spes, 8);
        assert_eq!(blade.num_spes, 16);
        assert_eq!(blade.num_ppes, 2);
        assert!(blade.mem_bw_bytes_per_s > single.mem_bw_bytes_per_s);
        assert_eq!(MachineConfig::muta_blade().clock_hz, 2.4e9);
    }

    #[test]
    fn bandwidth_conversion() {
        let cfg = MachineConfig::qs20_single();
        // 25.6 GB at 25.6 GB/s = 1 s = 3.2e9 cycles.
        assert_eq!(cfg.bytes_to_cycles(25_600_000_000), 3_200_000_000);
        assert!((cfg.cycles_to_secs(3_200_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ls_budget_subtracts_code() {
        let cfg = MachineConfig::qs20_single();
        assert_eq!(cfg.ls_data_budget(), 192 * 1024);
    }

    #[test]
    fn with_spes_preserves_rest() {
        let cfg = MachineConfig::qs20_single().with_spes(3).with_ppes(2);
        assert_eq!(cfg.num_spes, 3);
        assert_eq!(cfg.num_ppes, 2);
        assert_eq!(cfg.cache_line, 128);
    }
}
