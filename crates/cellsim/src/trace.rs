//! Chrome-trace export of simulated stage schedules.
//!
//! Timestamps live on the **virtual clock**: the DES's cycle counter
//! converted to nanoseconds at the machine's clock rate, not wall time.
//! Each simulated PE gets two tracks — one for compute spans and one
//! for DMA (GET/PUT) spans — so double-buffered overlap is visible as
//! a GET running concurrently with the previous task's compute, which
//! is exactly the phenomenon the paper's multi-buffering buys. Track 0
//! carries one span per pipeline stage. The JSON loads directly in
//! Perfetto / `chrome://tracing` and is validated by
//! `trace_report --check`.

use crate::config::MachineConfig;
use crate::cost::ProcKind;
use crate::stage::{StageOutcome, TaskEvent};
use crate::Cycles;
use obs::trace::Event;
use std::borrow::Cow;

/// One simulated stage placed on the pipeline's shared clock.
#[derive(Debug, Clone)]
pub struct StageTrace {
    /// Stage name (the span on track 0).
    pub name: String,
    /// Cycle offset of the stage start on the pipeline clock.
    pub offset: Cycles,
    /// Stage makespan in cycles.
    pub makespan: Cycles,
    /// The PEs that ran the stage (names the per-PE tracks).
    pub pes: Vec<ProcKind>,
    /// Per-task schedule from [`crate::stage::run_stage_traced`].
    pub events: Vec<TaskEvent>,
}

/// An accumulating schedule trace over a sequence of stages.
///
/// Stages recorded through [`ScheduleTrace::record`] are laid end to
/// end on the virtual clock (offset advances by each stage's
/// makespan), matching how the sequential pipeline driver runs them.
#[derive(Debug, Clone)]
pub struct ScheduleTrace {
    /// Chip clock used to convert cycles to nanoseconds.
    pub clock_hz: f64,
    stages: Vec<StageTrace>,
    cursor: Cycles,
}

impl ScheduleTrace {
    /// An empty trace on `cfg`'s clock.
    pub fn new(cfg: &MachineConfig) -> ScheduleTrace {
        ScheduleTrace {
            clock_hz: cfg.clock_hz,
            stages: Vec::new(),
            cursor: 0,
        }
    }

    /// Append a stage at the current cursor and advance it by the
    /// stage's makespan.
    pub fn record(
        &mut self,
        name: &str,
        pes: &[ProcKind],
        outcome: &StageOutcome,
        events: Vec<TaskEvent>,
    ) {
        self.stages.push(StageTrace {
            name: name.to_string(),
            offset: self.cursor,
            makespan: outcome.makespan,
            pes: pes.to_vec(),
            events,
        });
        self.cursor += outcome.makespan;
    }

    /// The recorded stages.
    pub fn stages(&self) -> &[StageTrace] {
        &self.stages
    }

    /// Total simulated cycles across recorded stages.
    pub fn total_cycles(&self) -> Cycles {
        self.cursor
    }

    fn cycles_to_ns(&self, c: Cycles) -> u64 {
        (c as f64 * 1e9 / self.clock_hz).round() as u64
    }

    /// Flatten into [`obs::trace::Event`]s on the virtual clock.
    ///
    /// Track ids: 0 is the stage track; PE `i` owns compute track
    /// `1 + 2i` and DMA track `2 + 2i`.
    pub fn to_events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for st in &self.stages {
            let base = st.offset;
            out.push(Event {
                trace_id: 0,
                name: Cow::Owned(format!("stage:{}", st.name)),
                cat: "stage",
                ts_ns: self.cycles_to_ns(base),
                dur_ns: Some(self.cycles_to_ns(st.makespan)),
                tid: 0,
                args: vec![("pes", st.pes.len() as u64)],
            });
            for t in &st.events {
                let compute_tid = 1 + 2 * t.pe as u64;
                let dma_tid = 2 + 2 * t.pe as u64;
                if t.dma_in > 0 {
                    out.push(Event {
                        trace_id: 0,
                        name: Cow::Owned(format!("get:{}", t.kernel.name())),
                        cat: "dma",
                        ts_ns: self.cycles_to_ns(base + t.fetch_issue),
                        dur_ns: Some(self.cycles_to_ns(t.fetch_done.saturating_sub(t.fetch_issue))),
                        tid: dma_tid,
                        args: vec![("bytes", t.dma_in)],
                    });
                }
                out.push(Event {
                    trace_id: 0,
                    name: Cow::Borrowed(t.kernel.name()),
                    cat: "compute",
                    ts_ns: self.cycles_to_ns(base + t.compute_start),
                    dur_ns: Some(self.cycles_to_ns(t.compute_end.saturating_sub(t.compute_start))),
                    tid: compute_tid,
                    args: vec![("items", t.items)],
                });
                if t.dma_out > 0 {
                    out.push(Event {
                        trace_id: 0,
                        name: Cow::Owned(format!("put:{}", t.kernel.name())),
                        cat: "dma",
                        ts_ns: self.cycles_to_ns(base + t.compute_end),
                        dur_ns: Some(self.cycles_to_ns(t.put_done.saturating_sub(t.compute_end))),
                        tid: dma_tid,
                        args: vec![("bytes", t.dma_out)],
                    });
                }
            }
        }
        out
    }

    /// Render as Chrome trace-event JSON (Perfetto-loadable).
    pub fn to_chrome_json(&self) -> String {
        obs::chrome::render(&self.to_events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Kernel;
    use crate::stage::{run_stage_traced, Assignment, TaskSpec};
    use crate::DmaClass;

    fn demo_trace() -> ScheduleTrace {
        let cfg = MachineConfig::qs20_single();
        let task = TaskSpec {
            kernel: Kernel::Tier1,
            items: 1000,
            dma_in: 4096,
            dma_out: 2048,
            class: DmaClass::LineOptimal,
        };
        let pes = vec![ProcKind::Spe, ProcKind::Spe];
        let (out, ev) = run_stage_traced(&cfg, &pes, &Assignment::Queue(vec![task; 8]), 2);
        let mut tr = ScheduleTrace::new(&cfg);
        tr.record("tier1", &pes, &out, ev);
        tr
    }

    #[test]
    fn task_events_are_causally_ordered() {
        let tr = demo_trace();
        let st = &tr.stages()[0];
        assert_eq!(st.events.len(), 8);
        for t in &st.events {
            assert!(t.fetch_issue <= t.fetch_done, "{t:?}");
            assert!(t.fetch_done <= t.compute_start, "{t:?}");
            assert!(t.compute_start < t.compute_end, "{t:?}");
            assert!(t.compute_end <= t.put_done, "{t:?}");
            assert!(t.put_done <= st.makespan, "{t:?}");
            assert!(t.pe < 2, "{t:?}");
        }
    }

    #[test]
    fn compute_spans_on_one_pe_never_overlap() {
        let tr = demo_trace();
        let st = &tr.stages()[0];
        for pe in 0..2 {
            let mut spans: Vec<(Cycles, Cycles)> = st
                .events
                .iter()
                .filter(|t| t.pe == pe)
                .map(|t| (t.compute_start, t.compute_end))
                .collect();
            spans.sort();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap on pe {pe}: {w:?}");
            }
        }
    }

    #[test]
    fn chrome_export_parses_and_checks() {
        let tr = demo_trace();
        let json = tr.to_chrome_json();
        let events = obs::chrome::parse(&json).expect("parse");
        // 1 stage span + 8 * (get + compute + put).
        assert_eq!(events.len(), 1 + 8 * 3);
        obs::chrome::check(&json, &["stage:tier1", "tier1", "get:tier1"]).expect("check");
        // Tracks: stage track 0 plus compute/DMA pairs for 2 PEs.
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert!(tids.contains(&0));
        assert!(tids.len() >= 3, "{tids:?}");
    }

    #[test]
    fn stages_lay_end_to_end() {
        let cfg = MachineConfig::qs20_single();
        let pes = vec![ProcKind::Spe];
        let (o1, e1) = run_stage_traced(
            &cfg,
            &pes,
            &Assignment::Static(vec![vec![TaskSpec::compute_only(Kernel::Quantize, 5000)]]),
            1,
        );
        let (o2, e2) = run_stage_traced(
            &cfg,
            &pes,
            &Assignment::Static(vec![vec![TaskSpec::compute_only(Kernel::Tier1, 5000)]]),
            1,
        );
        let mut tr = ScheduleTrace::new(&cfg);
        tr.record("quantize", &pes, &o1, e1);
        tr.record("tier1", &pes, &o2, e2);
        assert_eq!(tr.total_cycles(), o1.makespan + o2.makespan);
        assert_eq!(tr.stages()[1].offset, o1.makespan);
        // The second stage's compute span starts after the first ends.
        let evs = tr.to_events();
        let q = evs.iter().find(|e| e.name == "quantize").unwrap();
        let t = evs.iter().find(|e| e.name == "tier1").unwrap();
        assert!(t.ts_ns >= q.ts_ns + q.dur_ns.unwrap());
    }
}
