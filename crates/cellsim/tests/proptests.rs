//! Property tests for the discrete-event machine model: determinism, work
//! conservation, scheduling sanity, and bandwidth limits.

use cellsim::stage::{run_stage, Assignment, TaskSpec};
use cellsim::{DmaClass, Kernel, MachineConfig, ProcKind};
use proptest::prelude::*;

fn task_strategy() -> impl Strategy<Value = TaskSpec> {
    (1u64..50_000, 0u64..100_000, 0u64..100_000).prop_map(|(items, din, dout)| TaskSpec {
        kernel: Kernel::Tier1,
        items,
        dma_in: din,
        dma_out: dout,
        class: DmaClass::LineOptimal,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn queue_runs_every_task_exactly_once(
        tasks in prop::collection::vec(task_strategy(), 1..60),
        npes in 1usize..12,
        buffering in 1usize..4,
    ) {
        let cfg = MachineConfig::qs20_single();
        let pes = vec![ProcKind::Spe; npes];
        let out = run_stage(&cfg, &pes, &Assignment::Queue(tasks.clone()), buffering);
        prop_assert_eq!(out.tasks_run.iter().sum::<usize>(), tasks.len());
        let expected: u64 = tasks.iter().map(|t| t.dma_in + t.dma_out).sum();
        prop_assert_eq!(out.bytes, expected);
        for &b in &out.busy {
            prop_assert!(b <= out.makespan);
        }
    }

    #[test]
    fn determinism(
        tasks in prop::collection::vec(task_strategy(), 1..40),
        npes in 1usize..8,
    ) {
        let cfg = MachineConfig::qs20_single();
        let pes = vec![ProcKind::Spe; npes];
        let a = run_stage(&cfg, &pes, &Assignment::Queue(tasks.clone()), 2);
        let b = run_stage(&cfg, &pes, &Assignment::Queue(tasks), 2);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.busy, b.busy);
        prop_assert_eq!(a.tasks_run, b.tasks_run);
    }

    #[test]
    fn makespan_never_beats_lower_bounds(
        tasks in prop::collection::vec(task_strategy(), 1..50),
        npes in 1usize..10,
    ) {
        // Two fundamental bounds: total compute / PE count, and total bus
        // service time.
        let cfg = MachineConfig::qs20_single();
        let pes = vec![ProcKind::Spe; npes];
        let out = run_stage(&cfg, &pes, &Assignment::Queue(tasks.clone()), 2);
        let total_compute: u64 = tasks
            .iter()
            .map(|t| cellsim::cost::cycles(ProcKind::Spe, t.kernel, t.items))
            .sum();
        prop_assert!(out.makespan >= total_compute / npes as u64);
        prop_assert!(out.makespan + cfg.dma_latency_cycles >= out.bus_busy);
    }

    #[test]
    fn more_pes_never_hurt_queue_makespan(
        tasks in prop::collection::vec(task_strategy(), 2..40),
    ) {
        // With zero DMA (no bus contention), adding PEs to a queue can
        // only reduce (or keep) the makespan.
        let compute_only: Vec<TaskSpec> = tasks
            .iter()
            .map(|t| TaskSpec { dma_in: 0, dma_out: 0, ..*t })
            .collect();
        let cfg = MachineConfig::qs20_single();
        let mut prev = u64::MAX;
        for n in [1usize, 2, 4, 8] {
            let pes = vec![ProcKind::Spe; n];
            let out = run_stage(&cfg, &pes, &Assignment::Queue(compute_only.clone()), 1);
            prop_assert!(out.makespan <= prev, "{n} PEs: {} > {prev}", out.makespan);
            prev = out.makespan;
        }
    }

    #[test]
    fn static_equals_queue_for_one_pe(
        tasks in prop::collection::vec(task_strategy(), 1..30),
    ) {
        let cfg = MachineConfig::qs20_single();
        let pes = [ProcKind::Spe];
        let q = run_stage(&cfg, &pes, &Assignment::Queue(tasks.clone()), 1);
        let s = run_stage(&cfg, &pes, &Assignment::Static(vec![tasks]), 1);
        prop_assert_eq!(q.makespan, s.makespan);
        prop_assert_eq!(q.busy, s.busy);
    }

    #[test]
    fn misaligned_transfers_never_faster(
        tasks in prop::collection::vec(task_strategy(), 1..30),
        npes in 1usize..6,
    ) {
        let cfg = MachineConfig::qs20_single();
        let pes = vec![ProcKind::Spe; npes];
        let aligned = run_stage(&cfg, &pes, &Assignment::Queue(tasks.clone()), 1);
        let quad: Vec<TaskSpec> = tasks
            .iter()
            .map(|t| TaskSpec { class: DmaClass::QuadAligned, ..*t })
            .collect();
        let mis = run_stage(&cfg, &pes, &Assignment::Queue(quad), 1);
        prop_assert!(mis.makespan >= aligned.makespan);
    }
}
