//! Injection tests for the decoder's `decode.packet` failpoint. Requires
//! `--features failpoints`; without it the file compiles away, matching
//! the production build. Own process, so arming the global registry here
//! cannot leak into the crate's other test binaries.

#![cfg(feature = "failpoints")]

use faultsim::{FaultAction, FaultSpec};
use j2k_core::{decode, decode_layers, decode_prefix, CodecError, EncoderParams};

fn multilayer_stream() -> (imgio::Image, Vec<u8>, usize) {
    let im = imgio::synth::natural(64, 64, 5);
    let params = EncoderParams {
        levels: 2,
        layers: 4,
        ..EncoderParams::lossy(0.5)
    };
    let bytes = j2k_core::encode(&im, &params).unwrap();
    (im, bytes, params.layers)
}

/// Strict decode: a fault on any packet surfaces as `CodecError::Injected`
/// with the armed message — the walk must not swallow it.
#[test]
fn strict_decode_surfaces_injected_packet_fault() {
    let (im, bytes, _) = multilayer_stream();
    faultsim::reset();
    faultsim::arm(
        "decode.packet",
        FaultSpec::once(FaultAction::Error("decode.packet".into())),
    );
    let r = decode(&bytes);
    faultsim::reset();
    match r {
        Err(CodecError::Injected(msg)) => assert_eq!(msg, "decode.packet"),
        other => panic!("expected injected error, got {other:?}"),
    }
    // Registry clean again: the same stream decodes normally.
    assert_eq!(decode(&bytes).unwrap().width, im.width);
}

/// Lenient prefix decode treats an injected packet fault like truncation:
/// it stops the walk and commits only whole layers, and the committed
/// image equals an honest layer-limited decode of the same stream.
#[test]
fn prefix_decode_degrades_instead_of_failing() {
    let (_, bytes, layers) = multilayer_stream();
    let (_, total) = decode_prefix(&bytes).unwrap();
    assert_eq!(total, 4);
    // One packet per (band, comp, layer): grayscale at 2 levels has
    // 1 + 3 + 3 = 7 bands, so hit 10 (1-based) lands in the second layer.
    faultsim::reset();
    faultsim::arm(
        "decode.packet",
        FaultSpec::at(FaultAction::Error("mid-walk".into()), 10, 1),
    );
    let r = decode_prefix(&bytes);
    faultsim::reset();
    let (img, committed) = r.expect("lenient decode must absorb the fault");
    assert!(
        committed >= 1 && committed < layers,
        "expected a partial commit, got {committed}/{layers} layers"
    );
    assert_eq!(
        img,
        decode_layers(&bytes, committed).unwrap(),
        "committed layers must be bit-identical to an honest layer-limited decode"
    );
}

/// A fault on the very first packet leaves lenient decode with zero
/// complete layers: still `Ok`, geometry intact, all-background image.
#[test]
fn prefix_decode_survives_first_packet_fault() {
    let (im, bytes, _) = multilayer_stream();
    faultsim::reset();
    faultsim::arm(
        "decode.packet",
        FaultSpec::once(FaultAction::Error("first".into())),
    );
    let r = decode_prefix(&bytes);
    faultsim::reset();
    let (img, committed) = r.expect("header parsed, so lenient decode must succeed");
    assert_eq!(committed, 0);
    assert_eq!((img.width, img.height), (im.width, im.height));
}
