//! Injection tests for the HT cleanup decoder's `ht.quad` failpoint.
//! Requires `--features failpoints`; without it the file compiles away,
//! matching the production build. Own process, so arming the global
//! registry here cannot leak into the crate's other test binaries.

#![cfg(feature = "failpoints")]

use faultsim::{FaultAction, FaultSpec};
use j2k_core::{decode, decode_prefix, CodecError, Coder, EncoderParams};

fn ht_stream(layers: usize) -> (imgio::Image, Vec<u8>) {
    let im = imgio::synth::natural(64, 64, 9);
    let params = EncoderParams {
        levels: 2,
        layers,
        coder: Coder::Ht,
        ..if layers > 1 {
            EncoderParams::lossy(0.5)
        } else {
            EncoderParams::lossless()
        }
    };
    let bytes = j2k_core::encode(&im, &params).unwrap();
    (im, bytes)
}

/// The failpoint actually sits on the HT decode path: an unarmed decode
/// still *evaluates* `ht.quad` once per quad, so the hit counter moves.
#[test]
fn ht_quad_failpoint_is_on_the_decode_path() {
    let (im, bytes) = ht_stream(1);
    faultsim::reset();
    let before = faultsim::hits("ht.quad");
    let out = decode(&bytes).unwrap();
    assert!(
        faultsim::hits("ht.quad") > before,
        "HT decode evaluated no ht.quad failpoints — the hook is dead"
    );
    assert_eq!(out, im, "lossless HT round trip");
}

/// Strict decode: a fault on any quad surfaces as `CodecError::Injected`
/// with the armed message — the block loop must not swallow it. Matches
/// the `decode.packet` contract.
#[test]
fn strict_decode_surfaces_injected_quad_fault() {
    let (im, bytes) = ht_stream(1);
    faultsim::reset();
    faultsim::arm(
        "ht.quad",
        FaultSpec::once(FaultAction::Error("ht.quad".into())),
    );
    let r = decode(&bytes);
    faultsim::reset();
    match r {
        Err(CodecError::Injected(msg)) => assert_eq!(msg, "ht.quad"),
        other => panic!("expected injected error, got {other:?}"),
    }
    // Registry clean again: the same stream decodes normally.
    assert_eq!(decode(&bytes).unwrap(), im);
}

/// Lenient prefix decode absorbs a quad fault by dropping whole quality
/// layers for the affected block — it must return `Ok` with intact
/// geometry, never surface the injected error.
#[test]
fn prefix_decode_degrades_instead_of_failing() {
    let (im, bytes) = ht_stream(4);
    faultsim::reset();
    faultsim::arm(
        "ht.quad",
        FaultSpec::once(FaultAction::Error("mid-block".into())),
    );
    let r = decode_prefix(&bytes);
    faultsim::reset();
    let (img, committed) = r.expect("lenient decode must absorb the quad fault");
    assert_eq!((img.width, img.height), (im.width, im.height));
    // The packet walk itself saw no damage, so all layers were parsed;
    // only the faulted block privately fell back.
    assert_eq!(committed, 4);
}

/// A persistently-armed fault drives the affected block all the way to
/// zero passes (layer 0 short-circuits before any quad is decoded), so
/// lenient decode still succeeds even when every retry faults.
#[test]
fn prefix_decode_survives_persistent_quad_fault() {
    let (im, bytes) = ht_stream(4);
    faultsim::reset();
    faultsim::arm(
        "ht.quad",
        FaultSpec::at(FaultAction::Error("always".into()), 1, u64::MAX),
    );
    let r = decode_prefix(&bytes);
    faultsim::reset();
    let (img, _) = r.expect("layer-0 fallback must always succeed");
    assert_eq!((img.width, img.height), (im.width, im.height));
}
