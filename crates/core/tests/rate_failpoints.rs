//! Injection tests for the rate-control/Tier-2 failpoints (`rate.block`,
//! `tier2.precinct`). Requires `--features failpoints`; without it the
//! file compiles away, matching the production build. This binary is its
//! own process, so arming the global registry here cannot leak into the
//! crate's other test binaries.

#![cfg(feature = "failpoints")]

use faultsim::{FaultAction, FaultSpec};
use j2k_core::{encode_parallel, CodecError, EncoderParams};

/// Each failpoint fires once and must surface as `CodecError::Injected`
/// with the armed message, from both the sequential-tail (workers=1) and
/// fanned-out paths.
#[test]
fn rate_and_tier2_faults_surface_as_errors() {
    let im = imgio::synth::natural(48, 48, 3);
    let params = EncoderParams::lossy(0.3);
    for fp in ["rate.block", "tier2.precinct"] {
        for workers in [1usize, 3] {
            faultsim::reset();
            faultsim::arm(fp, FaultSpec::once(FaultAction::Error(fp.to_string())));
            let r = encode_parallel(&im, &params, workers);
            faultsim::reset();
            match r {
                Err(CodecError::Injected(msg)) => {
                    assert_eq!(msg, fp, "workers={workers}")
                }
                other => panic!("{fp} workers={workers}: expected injected error, got {other:?}"),
            }
        }
    }
    // Registry clean again: the same encode succeeds and matches the
    // sequential bytes.
    let seq = j2k_core::encode(&im, &params).unwrap();
    assert_eq!(encode_parallel(&im, &params, 3).unwrap(), seq);
}

/// A fault armed to fire deep into the hit sequence still lands (the
/// per-block / per-unit hit counting is wired through the fan-out).
#[test]
fn late_hit_faults_still_fire() {
    let im = imgio::synth::natural_rgb(64, 48, 9);
    let params = EncoderParams {
        levels: 3,
        ..EncoderParams::lossy(0.25)
    };
    faultsim::reset();
    // comps * bands = 3 * 10 units; hit 12 is mid-fan-out.
    faultsim::arm(
        "tier2.precinct",
        FaultSpec::at(FaultAction::Error("late".into()), 12, 1),
    );
    let r = encode_parallel(&im, &params, 4);
    faultsim::reset();
    assert!(
        matches!(r, Err(CodecError::Injected(ref m)) if m == "late"),
        "got {r:?}"
    );
}
