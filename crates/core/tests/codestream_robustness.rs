//! Decoder robustness against malformed main headers: every rejected
//! stream must produce a clean `CodecError`, never a panic or runaway
//! allocation.

use j2k_core::codestream::{parse, write, MainHeader, Quant};
use j2k_core::quant::GUARD_BITS;
use j2k_core::Coder;
use j2k_core::{Arithmetic, EncoderParams};

fn valid_stream() -> Vec<u8> {
    let im = imgio::synth::natural(32, 32, 1);
    j2k_core::encode(
        &im,
        &EncoderParams {
            levels: 2,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Find the byte offset of a marker in the stream.
fn find_marker(data: &[u8], marker: u16) -> usize {
    let m = marker.to_be_bytes();
    data.windows(2).position(|w| w == m).unwrap()
}

#[test]
fn rejects_zero_dimensions() {
    let mut s = valid_stream();
    // SIZ Xsiz at offset: SOC(2) + SIZ marker(2) + Lsiz(2) + Rsiz(2) = 8.
    s[8..12].copy_from_slice(&0u32.to_be_bytes());
    assert!(parse(&s).is_err());
}

#[test]
fn rejects_absurd_dimensions() {
    let mut s = valid_stream();
    s[8..12].copy_from_slice(&0xFFFF_FFFFu32.to_be_bytes());
    s[12..16].copy_from_slice(&0xFFFF_FFFFu32.to_be_bytes());
    assert!(parse(&s).is_err());
}

#[test]
fn rejects_bad_codeblock_exponent() {
    let mut s = valid_stream();
    let cod = find_marker(&s, j2k_core::codestream::COD);
    // COD layout: marker(2) Lcod(2) Scod(1) prog(1) layers(2) mct(1)
    // levels(1) cbw(1) ...
    s[cod + 10] = 0x3F;
    assert!(parse(&s).is_err());
}

#[test]
fn rejects_bad_depth() {
    let mut s = valid_stream();
    // Ssiz of component 0: SOC(2)+SIZ(2)+Lsiz(2)+Rsiz(2)+8 u32 fields(32)
    // + Csiz(2) = 42.
    s[42] = 200;
    assert!(parse(&s).is_err());
}

#[test]
fn rejects_missing_qcd() {
    let im = imgio::synth::natural(16, 16, 1);
    let hdr = MainHeader {
        width: 16,
        height: 16,
        comps: 1,
        depth: 8,
        levels: 2,
        layers: 1,
        cb_size: 16,
        lossless: true,
        mct: false,
        arithmetic: Arithmetic::Float32,
        bypass: false,
        coder: Coder::Mq,
        guard: GUARD_BITS,
        quant: Quant::Reversible(vec![8; wavelet::subbands(16, 16, 2).len()]),
    };
    let bytes = write(&hdr, &[]);
    // Excise the QCD segment entirely.
    let q = find_marker(&bytes, j2k_core::codestream::QCD);
    let l = u16::from_be_bytes([bytes[q + 2], bytes[q + 3]]) as usize;
    let mut cut = bytes[..q].to_vec();
    cut.extend_from_slice(&bytes[q + 2 + l..]);
    assert!(parse(&cut).is_err());
    let _ = im; // silence unused in case of future edits
}

#[test]
fn rejects_truncated_qcd_band_list() {
    let mut s = valid_stream();
    let q = find_marker(&s, j2k_core::codestream::QCD);
    // Shrink Lqcd so the parser sees fewer band exponents than bands.
    s[q + 3] = 4;
    // Parsing may fail at QCD or at the band-count check; either way: Err.
    assert!(parse(&s).is_err());
}

#[test]
fn every_single_byte_truncation_is_handled() {
    let s = valid_stream();
    for cut in 0..s.len() {
        let _ = parse(&s[..cut]); // must never panic
    }
}

#[test]
fn guard_and_exponent_zero_rejected() {
    let mut s = valid_stream();
    let q = find_marker(&s, j2k_core::codestream::QCD);
    s[q + 4] = 0; // Sqcd: guard 0, style 0
    assert!(parse(&s).is_err());
}
