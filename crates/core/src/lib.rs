//! `j2k-core` — a from-scratch JPEG2000 Part-1-shaped still image codec,
//! engineered after Kang & Bader, *Optimizing JPEG2000 Still Image Encoding
//! on the Cell Broadband Engine* (ICPP 2008).
//!
//! The crate provides three interchangeable encoder drivers that produce
//! **byte-identical** codestreams:
//!
//! * [`encode`] — the sequential reference pipeline;
//! * [`parallel::encode_parallel`] — a host-thread implementation of the
//!   paper's parallelization (chunked sample stages + Tier-1 work queue);
//! * [`cell::encode_on_cell`] — the same pipeline mapped onto the
//!   [`cellsim`] machine model, returning a simulated per-stage
//!   [`cellsim::Timeline`] alongside the codestream.
//!
//! plus [`decode`], a full decoder used to *verify* the encoder (lossless
//! round-trip, lossy PSNR) in the absence of the paper's Jasper baseline.
//!
//! Pipeline (paper Figure 2): read + type convert → level shift merged with
//! the inter-component transform ([`mct`]) → DWT ([`wavelet`]) →
//! quantization ([`quant`]) → EBCOT Tier-1 ([`ebcot`]) → rate control →
//! Tier-2 + codestream assembly ([`codestream`]).

pub mod cell;
pub mod coder;
pub mod codestream;
pub mod control;
pub mod jp2;
pub mod kernels;
pub mod mct;
pub mod parallel;
pub mod pipeline;
pub mod profile;
pub mod quant;

pub use cell::encode_on_cell;
pub use coder::{BlockCoder, Coder};
pub use control::EncodeControl;
pub use parallel::{
    encode_parallel, encode_parallel_ctl, encode_parallel_opts, encode_parallel_with_profile,
    transform_coefficients_parallel, ParallelOptions,
};
pub use pipeline::{
    decode, decode_layers, decode_opts, decode_prefix, decode_resolution, encode,
    encode_with_profile, transform_coefficients,
};
pub use profile::{StageTime, WorkloadProfile};

pub use wavelet::VerticalVariant;

/// Compression mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Reversible path: RCT + 5/3, no quantization, exact reconstruction.
    Lossless,
    /// Irreversible path: ICT + 9/7 + dead-zone quantization + PCRD rate
    /// control targeting `rate` output bits per input bit (Jasper's
    /// `-O rate=` convention; 0.1 = 10:1 compression).
    Lossy {
        /// Target compressed size as a fraction of the raw size.
        rate: f64,
    },
}

/// Arithmetic representation of the 9/7 path (Section 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arithmetic {
    /// Single-precision float — the paper's choice for the SPE.
    Float32,
    /// Jasper-style Q13 fixed point — the representation the paper
    /// replaces; kept for the ablation.
    FixedQ13,
}

/// Encoder parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderParams {
    /// Lossless or lossy.
    pub mode: Mode,
    /// DWT decomposition levels.
    pub levels: usize,
    /// Code block width/height (power of two, <= 64). The paper uses 64;
    /// Muta et al. use 32.
    pub cb_size: usize,
    /// Vertical-filter loop schedule.
    pub variant: VerticalVariant,
    /// 9/7 arithmetic (ignored for lossless).
    pub arithmetic: Arithmetic,
    /// Quality layers (>= 1).
    pub layers: usize,
    /// Selective arithmetic-coding bypass ("lazy" mode, Annex D.5):
    /// deep-plane SPP/MRP passes emit raw bits, trading a little rate for
    /// cheaper Tier-1. MQ only; the HT coder's refinement passes are
    /// always raw.
    pub bypass: bool,
    /// Tier-1 block coder backend (MQ bit-plane coder or the
    /// high-throughput quad coder); signalled in COD.
    pub coder: coder::Coder,
}

impl Default for EncoderParams {
    fn default() -> Self {
        EncoderParams {
            mode: Mode::Lossless,
            levels: 5,
            cb_size: 64,
            variant: VerticalVariant::Merged,
            arithmetic: Arithmetic::Float32,
            layers: 1,
            bypass: false,
            coder: coder::Coder::Mq,
        }
    }
}

impl EncoderParams {
    /// Default lossless configuration.
    pub fn lossless() -> Self {
        Self::default()
    }

    /// Default lossy configuration at `rate` (e.g. 0.1).
    pub fn lossy(rate: f64) -> Self {
        EncoderParams {
            mode: Mode::Lossy { rate },
            ..Self::default()
        }
    }

    /// The cheaper form of these params for overload degradation: swap
    /// the Tier-1 backend to the high-throughput coder (≈5× the MQ
    /// symbol rate for ≈ +20% rate; DESIGN.md §15). Returns the degraded
    /// params and whether anything actually changed — params already on
    /// the HT coder cannot be degraded further.
    pub fn degrade_for_load(&self) -> (EncoderParams, bool) {
        if self.coder == coder::Coder::Ht {
            return (*self, false);
        }
        let degraded = EncoderParams {
            coder: coder::Coder::Ht,
            // The HT refinement passes are always raw; the MQ-only
            // bypass flag is meaningless there.
            bypass: false,
            ..*self
        };
        (degraded, true)
    }

    /// Validate parameter combinations.
    pub fn validate(&self) -> Result<(), CodecError> {
        if !(1..=64).contains(&self.cb_size) || !self.cb_size.is_power_of_two() {
            return Err(CodecError::Params(format!(
                "code block size {} must be a power of two in 4..=64",
                self.cb_size
            )));
        }
        if self.levels == 0 || self.levels > 10 {
            return Err(CodecError::Params(format!(
                "levels {} out of 1..=10",
                self.levels
            )));
        }
        if self.layers == 0 || self.layers > 16 {
            return Err(CodecError::Params(format!(
                "layers {} out of 1..=16",
                self.layers
            )));
        }
        if let Mode::Lossy { rate } = self.mode {
            if !(rate > 0.0 && rate <= 1.0) {
                return Err(CodecError::Params(format!("rate {rate} out of (0, 1]")));
            }
        }
        Ok(())
    }
}

/// Codec errors.
#[derive(Debug)]
pub enum CodecError {
    /// Invalid encoder parameters.
    Params(String),
    /// Unsupported or malformed image input.
    Image(String),
    /// Malformed codestream during decode.
    Codestream(String),
    /// Encode stopped by an explicit [`control::EncodeControl::cancel`].
    Cancelled,
    /// Encode stopped because its [`control::EncodeControl`] deadline
    /// passed.
    Deadline,
    /// A `faultsim` failpoint injected this error (test/chaos builds
    /// only; never produced without the `failpoints` feature).
    Injected(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Params(m) => write!(f, "bad parameters: {m}"),
            CodecError::Image(m) => write!(f, "bad image: {m}"),
            CodecError::Codestream(m) => write!(f, "bad codestream: {m}"),
            CodecError::Cancelled => write!(f, "encode cancelled"),
            CodecError::Deadline => write!(f, "encode deadline exceeded"),
            CodecError::Injected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        assert!(EncoderParams::lossless().validate().is_ok());
        assert!(EncoderParams::lossy(0.1).validate().is_ok());
        assert!(EncoderParams {
            cb_size: 48,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EncoderParams {
            levels: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EncoderParams::lossy(0.0).validate().is_err());
        assert!(EncoderParams::lossy(1.5).validate().is_err());
        assert!(EncoderParams {
            layers: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn degrade_for_load_switches_to_ht_once() {
        let mq = EncoderParams {
            bypass: true,
            ..EncoderParams::lossless()
        };
        let (d, changed) = mq.degrade_for_load();
        assert!(changed);
        assert_eq!(d.coder, coder::Coder::Ht);
        assert!(!d.bypass, "MQ-only bypass flag cleared on the HT path");
        assert_eq!(
            (d.mode, d.levels, d.cb_size),
            (mq.mode, mq.levels, mq.cb_size)
        );
        let (d2, changed2) = d.degrade_for_load();
        assert!(!changed2, "already HT: nothing left to degrade");
        assert_eq!(d2, d);
    }
}
