//! Host-thread implementation of the paper's parallelization strategy.
//!
//! Mirrors the Cell mapping with real threads, end to end:
//!
//! * The **sample stages** (level shift + MCT merged, DWT, quantization)
//!   are decomposed by the same column-chunk plan the Cell path uses
//!   ([`xpart::ChunkPlan`]): constant-width chunks (a cache-line multiple)
//!   go round-robin to the spawned workers — the SPE role — while the
//!   arbitrary-width remainder chunk stays on the calling thread — the PPE
//!   role. Vertical lifting runs per column chunk, horizontal lifting per
//!   row band ("an identical number of rows to each SPE").
//! * **Tier-1** uses a dynamic work queue of code blocks (an atomic
//!   cursor), exactly like the paper's SPE/PPE queue.
//!
//! One `workers` knob drives both fan-outs. Output is byte-identical to
//! the sequential encoder for every worker count — parallelization must
//! never change the codestream (asserted by tests and proptests): the
//! vertical filter is column-local, the horizontal filter row-local, and
//! level shift / MCT / quantization are elementwise, so any disjoint
//! partition performs the same arithmetic on the same operands.

use crate::control::EncodeControl;
use crate::pipeline::{
    band_kind, block_grid, build_profile, default_base_step, rate_control_and_assemble,
    BlockRecord, Transformed,
};
use crate::profile::StageTime;
use crate::quant::{band_delta, StepSize, GUARD_BITS};
use crate::{codestream::Quant, Arithmetic, CodecError, EncoderParams, Mode, WorkloadProfile};
use imgio::Image;
use obs::trace;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use wavelet::rowops::{Region, SharedPlane};
use wavelet::{horizontal, norms, vertical};
use xpart::{AlignedPlane, ChunkPlan, Owner, PlanConfig, CACHE_LINE};

/// Tuning knobs of the host-parallel driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelOptions {
    /// Constant column-chunk width in *bytes* for the sample stages; must
    /// be a positive multiple of [`xpart::CACHE_LINE`] (the configurable
    /// "line size"). `None` auto-sizes to roughly four chunks per worker,
    /// like the Cell driver's column grouping.
    pub chunk_width_bytes: Option<usize>,
}

/// Encode with `workers` threads (clamped to at least 1).
pub fn encode_parallel(
    image: &Image,
    params: &EncoderParams,
    workers: usize,
) -> Result<Vec<u8>, CodecError> {
    encode_parallel_opts(image, params, workers, &ParallelOptions::default()).map(|(b, _)| b)
}

/// Encode with `workers` threads and also return the measured
/// [`WorkloadProfile`], including per-stage wall times and per-worker job
/// counts (`worker_jobs`: spawned workers first, calling thread last).
pub fn encode_parallel_with_profile(
    image: &Image,
    params: &EncoderParams,
    workers: usize,
) -> Result<(Vec<u8>, WorkloadProfile), CodecError> {
    encode_parallel_opts(image, params, workers, &ParallelOptions::default())
}

/// [`encode_parallel_with_profile`] with explicit [`ParallelOptions`].
pub fn encode_parallel_opts(
    image: &Image,
    params: &EncoderParams,
    workers: usize,
    opts: &ParallelOptions,
) -> Result<(Vec<u8>, WorkloadProfile), CodecError> {
    encode_parallel_ctl(image, params, workers, opts, None)
}

/// Cancellable / deadline-aware encode: identical to
/// [`encode_parallel_opts`] but polls `ctl` at every stage boundary and,
/// during Tier-1, once per code block, returning
/// [`CodecError::Cancelled`] / [`CodecError::Deadline`] instead of a
/// codestream when the control stops the encode. The produced codestream
/// (when the encode completes) is byte-identical to the sequential
/// encoder — the control adds checkpoints, never arithmetic.
pub fn encode_parallel_ctl(
    image: &Image,
    params: &EncoderParams,
    workers: usize,
    opts: &ParallelOptions,
    ctl: Option<&EncodeControl>,
) -> Result<(Vec<u8>, WorkloadProfile), CodecError> {
    params.validate()?;
    image
        .validate()
        .map_err(|e| CodecError::Image(e.to_string()))?;
    let workers = workers.max(1);
    if let Some(c) = ctl {
        c.check()?;
    }

    // Sample stages, chunk-parallel.
    let (t, stats) = transform_samples_parallel_ctl(image, params, workers, opts, ctl)?;
    let mut stage_times = stats.stage_times;
    let mut worker_jobs = stats.worker_jobs;

    // Build the block job list (comp, band, grid position, geometry).
    struct Job {
        comp: usize,
        band_idx: usize,
        bx: usize,
        by: usize,
        x0: usize,
        y0: usize,
        bw: usize,
        bh: usize,
    }
    let mut jobs = Vec::new();
    for c in 0..t.indices.len() {
        for (bi, b) in t.bands.iter().enumerate() {
            for (bx, by, x0, y0, bw, bh) in block_grid(b, params.cb_size) {
                jobs.push(Job {
                    comp: c,
                    band_idx: bi,
                    bx,
                    by,
                    x0,
                    y0,
                    bw,
                    bh,
                });
            }
        }
    }

    // Tier-1 work queue: workers pull the next job index atomically.
    let stage_span = trace::span("stage:tier1")
        .cat("stage")
        .arg("coder", params.coder.id());
    let t1 = Instant::now();
    let cursor = AtomicUsize::new(0);
    // First injected `tier1.block` error, if the failpoint fires: the
    // erroring worker parks its message here and stops claiming jobs.
    let injected: Mutex<Option<String>> = Mutex::new(None);
    let tier1_counts: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let mut slots: Vec<Option<BlockRecord>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);
    let slot_ptr = SlotVec(slots.as_mut_ptr());
    let njobs = jobs.len();
    let parent_trace = trace::current();
    std::thread::scope(|scope| {
        for wi in 0..workers {
            let cursor = &cursor;
            let jobs = &jobs;
            let t = &t;
            let slot_ptr = &slot_ptr;
            let counts = &tier1_counts;
            let injected = &injected;
            scope.spawn(move || {
                // Scoped threads don't inherit the TLS trace id.
                trace::set_current(parent_trace);
                loop {
                    if ctl.is_some_and(|c| c.is_stopped()) {
                        break;
                    }
                    // Failpoint `tier1.block`: fires once per claimed code
                    // block. A panic here unwinds through the scope join (the
                    // service's catch_unwind lever); an error stops this
                    // worker and fails the whole encode after the barrier.
                    if let Some(msg) = faultsim::eval("tier1.block") {
                        *injected.lock().unwrap_or_else(|e| e.into_inner()) = Some(msg);
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= njobs {
                        break;
                    }
                    counts[wi].fetch_add(1, Ordering::Relaxed);
                    let j = &jobs[i];
                    let plane = &t.indices[j.comp];
                    let mut data = Vec::with_capacity(j.bw * j.bh);
                    for y in j.y0..j.y0 + j.bh {
                        for x in j.x0..j.x0 + j.bw {
                            data.push(plane.get(x, y));
                        }
                    }
                    let enc = params.coder.block_coder().encode(
                        &data,
                        j.bw,
                        j.bh,
                        band_kind(t.bands[j.band_idx].band),
                        params.bypass,
                    );
                    // R-D preparation (truncation rates/distortions + convex
                    // hull) runs here, on the worker that coded the block —
                    // the post-pass slice of rate control rides the queue.
                    let rec = BlockRecord::new(
                        j.comp,
                        j.band_idx,
                        j.bx,
                        j.by,
                        enc,
                        t.weights[j.band_idx],
                    );
                    // SAFETY: each index i is claimed by exactly one worker
                    // (fetch_add), so no two threads write the same slot, and
                    // the main thread only reads after the scope joins.
                    unsafe {
                        *slot_ptr.0.add(i) = Some(rec);
                    }
                }
                // Flush before the closure returns: `thread::scope` only
                // waits for closures, not TLS destructors, so the Drop
                // flush could race the caller's trace drain.
                trace::flush_thread();
            });
        }
    });
    drop(stage_span);
    stage_times.push(StageTime::new("tier1", t1.elapsed().as_secs_f64()));
    let tier1_counts: Vec<u64> = tier1_counts.into_iter().map(|c| c.into_inner()).collect();
    accumulate(&mut worker_jobs, &tier1_counts);
    if let Some(c) = ctl {
        // A stopped Tier-1 leaves unclaimed slots; bail before unwrapping.
        c.check()?;
    }
    // Same for an injected `tier1.block` error: the erroring worker left
    // its claimed slot (and any unclaimed tail) empty.
    if let Some(msg) = injected.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(CodecError::Injected(msg));
    }

    let records: Vec<BlockRecord> = slots
        .into_iter()
        .map(|s| s.expect("every job completed"))
        .collect();
    let rc_span = trace::span("stage:rate-control").cat("stage");
    let raw = image.raw_bytes() as u64;
    let out = rate_control_and_assemble(image, params, &t, &records, raw, workers)?;
    drop(rc_span);
    stage_times.push(StageTime::new("rate-control", out.alloc_secs));
    stage_times.push(StageTime::new("tier2", out.tier2_secs));

    let profile = build_profile(image, params, &records, &out, stage_times, worker_jobs);
    Ok((out.bytes, profile))
}

/// Dense quantizer-index planes from the *chunk-parallel* sample stages.
/// Diagnostic counterpart of [`crate::pipeline::transform_coefficients`];
/// the differential proptests assert the two agree coefficient for
/// coefficient for every worker count and chunk width.
pub fn transform_coefficients_parallel(
    image: &Image,
    params: &EncoderParams,
    workers: usize,
    opts: &ParallelOptions,
) -> Result<Vec<Vec<i32>>, CodecError> {
    params.validate()?;
    image
        .validate()
        .map_err(|e| CodecError::Image(e.to_string()))?;
    let (t, _) = transform_samples_parallel(image, params, workers.max(1), opts)?;
    Ok(t.indices.iter().map(|p| p.to_dense()).collect())
}

/// Shared raw pointer to the result slots; Sync because slot indices are
/// partitioned dynamically but uniquely by the atomic cursor.
struct SlotVec(*mut Option<BlockRecord>);
unsafe impl Sync for SlotVec {}

// ---------------------------------------------------------------------------
// Chunk-parallel sample stages
// ---------------------------------------------------------------------------

/// Measurements of the parallel transform: per-stage wall times plus jobs
/// executed per worker (spawned workers first, calling thread last).
pub(crate) struct TransformStats {
    pub stage_times: Vec<StageTime>,
    pub worker_jobs: Vec<u64>,
}

fn accumulate(totals: &mut [u64], counts: &[u64]) {
    for (t, c) in totals.iter_mut().zip(counts) {
        *t += c;
    }
}

/// Auto-sized chunk width in bytes: roughly four constant-width chunks per
/// worker, floored to one cache line (mirrors the Cell driver's sizing).
fn auto_chunk_bytes(width: usize, workers: usize) -> usize {
    let target = (width * 4) / (4 * workers.max(1));
    (target / CACHE_LINE).max(1) * CACHE_LINE
}

/// Column-chunk plan for an extent of `width` samples: constant-width
/// chunks round-robin over `workers`, remainder to the calling thread.
fn plan_for(width: usize, workers: usize, opts: &ParallelOptions) -> Result<ChunkPlan, CodecError> {
    let chunk = opts
        .chunk_width_bytes
        .unwrap_or_else(|| auto_chunk_bytes(width, workers));
    ChunkPlan::build(
        width,
        1,
        &PlanConfig {
            num_spes: workers,
            elem_size: 4,
            chunk_width_bytes: chunk,
            buffering: 1,
            // Host threads have no Local Store limit.
            ls_budget: usize::MAX / 2,
        },
    )
    .map_err(|e| CodecError::Params(format!("chunk plan: {e}")))
}

/// One unit of chunked work: a component index plus the plane region it
/// covers. For fused multi-component kernels (RCT/ICT) `comp` is 0 and the
/// job covers all components at once.
#[derive(Clone, Copy)]
struct ChunkJob {
    comp: usize,
    region: Region,
    /// Dense chunk index within the stage (the plan's `ChunkDesc::id`
    /// for column chunks, the band index for row bands); rides into
    /// trace span args so a trace can be joined back to the plan.
    chunk: usize,
}

/// Static job assignment for one stage: a list per spawned worker (the SPE
/// role) plus the calling thread's remainder list (the PPE role).
struct Assignment {
    per_worker: Vec<Vec<ChunkJob>>,
    calling: Vec<ChunkJob>,
}

/// Column decomposition: every plan chunk becomes a full-height region.
fn assign_columns(plan: &ChunkPlan, comps: usize, h: usize, workers: usize) -> Assignment {
    let mut per_worker = vec![Vec::new(); workers];
    let mut calling = Vec::new();
    for comp in 0..comps {
        for c in plan.chunks() {
            let job = ChunkJob {
                comp,
                region: Region {
                    x0: c.x0,
                    y0: 0,
                    w: c.width,
                    h,
                },
                chunk: c.id,
            };
            match c.owner {
                Owner::Spe(i) => per_worker[i].push(job),
                Owner::Ppe => calling.push(job),
            }
        }
    }
    Assignment {
        per_worker,
        calling,
    }
}

/// Row decomposition for horizontal filtering: an identical number of rows
/// per worker (the paper assigns no rows to the PPE in this stage).
fn assign_rows(w: usize, h: usize, comps: usize, workers: usize) -> Assignment {
    let mut per_worker = vec![Vec::new(); workers];
    let band = h.div_ceil(workers).max(1);
    for comp in 0..comps {
        let mut y0 = 0;
        let mut wi = 0;
        while y0 < h {
            let bh = band.min(h - y0);
            per_worker[wi % workers].push(ChunkJob {
                comp,
                region: Region {
                    x0: 0,
                    y0,
                    w,
                    h: bh,
                },
                chunk: wi,
            });
            y0 += bh;
            wi += 1;
        }
    }
    Assignment {
        per_worker,
        calling: Vec::new(),
    }
}

impl Assignment {
    /// Run `f` over every job: worker `i` processes its list on its own
    /// thread while the calling thread processes the remainder, then all
    /// threads join (a stage barrier). Returns per-worker job counts with
    /// the calling thread last.
    ///
    /// When tracing is enabled every job runs under a span named
    /// `stage` (args: worker / chunk / comp), and spawned threads
    /// inherit the caller's trace id explicitly (TLS doesn't cross
    /// `thread::scope`). Each closure flushes its local trace buffer
    /// before returning — the scope barrier waits for closures, not
    /// TLS destructors, so the Drop flush alone would race the
    /// caller's trace drain.
    fn run<F>(&self, stage: &'static str, f: F) -> Vec<u64>
    where
        F: Fn(ChunkJob) + Sync,
    {
        let parent_trace = trace::current();
        let traced = |wi: usize, j: ChunkJob| {
            let _sp = trace::span(stage)
                .cat("chunk")
                .arg("worker", wi as u64)
                .arg("chunk", j.chunk as u64)
                .arg("comp", j.comp as u64);
            f(j);
        };
        std::thread::scope(|scope| {
            for (wi, list) in self.per_worker.iter().enumerate() {
                let traced = &traced;
                scope.spawn(move || {
                    trace::set_current(parent_trace);
                    for &j in list {
                        traced(wi, j);
                    }
                    trace::flush_thread();
                });
            }
            let calling_wi = self.per_worker.len();
            for &j in &self.calling {
                traced(calling_wi, j);
            }
        });
        let mut counts: Vec<u64> = self.per_worker.iter().map(|l| l.len() as u64).collect();
        counts.push(self.calling.len() as u64);
        counts
    }
}

/// Forward RCT + level shift over three parallel row segments (identical
/// arithmetic to [`crate::mct::forward_rct_shift`]).
fn rct_shift_rows(py: &mut [i32], pu: &mut [i32], pv: &mut [i32], shift: i32) {
    crate::kernels::rct_forward_row(py, pu, pv, shift);
}

/// Forward ICT + level shift over row segments (identical arithmetic to
/// [`crate::mct::forward_ict_shift`]).
#[allow(clippy::too_many_arguments)]
fn ict_shift_rows(
    r: &[i32],
    g: &[i32],
    b: &[i32],
    yy: &mut [f32],
    cb: &mut [f32],
    cr: &mut [f32],
    shift: f32,
) {
    crate::kernels::ict_forward_row(r, g, b, yy, cb, cr, shift);
}

/// Chunk-parallel version of [`crate::pipeline::transform_samples`]:
/// byte-identical output by construction (same arithmetic on the same
/// operands, only partitioned), plus stage measurements.
pub(crate) fn transform_samples_parallel(
    image: &Image,
    params: &EncoderParams,
    workers: usize,
    opts: &ParallelOptions,
) -> Result<(Transformed, TransformStats), CodecError> {
    transform_samples_parallel_ctl(image, params, workers, opts, None)
}

/// [`transform_samples_parallel`] with an optional [`EncodeControl`]
/// polled after each stage and between DWT levels.
pub(crate) fn transform_samples_parallel_ctl(
    image: &Image,
    params: &EncoderParams,
    workers: usize,
    opts: &ParallelOptions,
    ctl: Option<&EncodeControl>,
) -> Result<(Transformed, TransformStats), CodecError> {
    let (w, h) = (image.width, image.height);
    let comps = image.comps();
    let depth = image.bit_depth;
    let shift = 1i32 << (depth - 1);
    let use_mct = comps == 3;
    let variant = params.variant;
    let bands = wavelet::subbands(w, h, params.levels);
    let mut worker_jobs = vec![0u64; workers + 1];
    let mut stage_times = Vec::new();

    let cv_span = trace::span("stage:convert").cat("stage");
    let t0 = Instant::now();
    let mut int_planes: Vec<AlignedPlane<i32>> = image
        .planes
        .iter()
        .map(|p| {
            let dense: Vec<i32> = p.iter().map(|&v| v as i32).collect();
            AlignedPlane::from_dense(w, h, &dense).map_err(|e| CodecError::Image(e.to_string()))
        })
        .collect::<Result<_, _>>()?;
    drop(cv_span);
    stage_times.push(StageTime::new("convert", t0.elapsed().as_secs_f64()));
    if let Some(c) = ctl {
        c.check()?;
    }

    let plan = plan_for(w, workers, opts)?;
    if trace::enabled() {
        // Record the column-chunk plan itself: one instant per chunk,
        // dynamically named (`chunk-3`), so a trace can be read against
        // the decomposition that produced it.
        for c in plan.chunks() {
            trace::instant(
                c.label(),
                &[
                    ("x0", c.x0 as u64),
                    ("w", c.width as u64),
                    ("remainder", u64::from(c.is_remainder)),
                ],
            );
        }
    }
    let regions = wavelet::level_regions(w, h, params.levels);

    match params.mode {
        Mode::Lossless => {
            // Level shift + RCT, merged, by column chunk.
            let mct_span = trace::span("stage:mct").cat("stage");
            let t1 = Instant::now();
            {
                let shared: Vec<SharedPlane<i32>> =
                    int_planes.iter_mut().map(SharedPlane::new).collect();
                let asg = assign_columns(&plan, if use_mct { 1 } else { comps }, h, workers);
                // SAFETY: plan chunks are pairwise disjoint column ranges
                // and each job is executed by exactly one thread, so live
                // views never overlap.
                let counts = asg.run("mct", |j| unsafe {
                    if use_mct {
                        let mut ry = shared[0].rows(j.region);
                        let mut ru = shared[1].rows(j.region);
                        let mut rv = shared[2].rows(j.region);
                        for y in 0..j.region.h {
                            rct_shift_rows(ry.row_mut(y), ru.row_mut(y), rv.row_mut(y), shift);
                        }
                    } else {
                        let mut rows = shared[j.comp].rows(j.region);
                        for y in 0..j.region.h {
                            for v in rows.row_mut(y) {
                                *v -= shift;
                            }
                        }
                    }
                });
                accumulate(&mut worker_jobs, &counts);
            }
            drop(mct_span);
            stage_times.push(StageTime::new("mct", t1.elapsed().as_secs_f64()));
            if let Some(c) = ctl {
                c.check()?;
            }

            // 5/3 DWT level by level: vertical by column chunk, then (after
            // the barrier) horizontal by row band.
            let dwt_span = trace::span("stage:dwt").cat("stage");
            let t2 = Instant::now();
            {
                let shared: Vec<SharedPlane<i32>> =
                    int_planes.iter_mut().map(SharedPlane::new).collect();
                for (li, r) in regions.iter().enumerate() {
                    if let Some(c) = ctl {
                        c.check()?;
                    }
                    // Failpoint `dwt.level`: fires once per decomposition
                    // level, on the calling thread — the clean-error lever
                    // for the service's failure (not crash) paths.
                    if let Some(msg) = faultsim::eval("dwt.level") {
                        return Err(CodecError::Injected(msg));
                    }
                    let _lvl = if trace::enabled() {
                        trace::span(format!("dwt-level-{}", li + 1)).cat("stage")
                    } else {
                        trace::Span::disabled()
                    };
                    let lplan = plan_for(r.w, workers, opts)?;
                    let vert = assign_columns(&lplan, comps, r.h, workers);
                    // SAFETY: disjoint column chunks, one thread per job.
                    let counts = vert.run("dwt", |j| unsafe {
                        vertical::fwd53_rows(shared[j.comp].rows(j.region), variant);
                    });
                    accumulate(&mut worker_jobs, &counts);
                    let horiz = assign_rows(r.w, r.h, comps, workers);
                    // SAFETY: disjoint row bands, one thread per job.
                    let counts = horiz.run("dwt", |j| unsafe {
                        horizontal::fwd53_rows(shared[j.comp].rows(j.region));
                    });
                    accumulate(&mut worker_jobs, &counts);
                }
            }
            drop(dwt_span);
            stage_times.push(StageTime::new("dwt", t2.elapsed().as_secs_f64()));

            let depth_eff = depth + u8::from(use_mct);
            let exps: Vec<u8> = bands
                .iter()
                .map(|b| depth_eff + b.band.gain_log2())
                .collect();
            let max_planes: Vec<u8> = exps.iter().map(|&e| GUARD_BITS + e - 1).collect();
            let weights: Vec<f64> = bands
                .iter()
                .map(|b| {
                    let n = norms::l2_norm_53(b.band, b.level.max(1));
                    n * n
                })
                .collect();
            Ok((
                Transformed {
                    indices: int_planes,
                    quant: Quant::Reversible(exps),
                    bands,
                    max_planes,
                    weights,
                },
                TransformStats {
                    stage_times,
                    worker_jobs,
                },
            ))
        }
        Mode::Lossy { .. } => {
            let base = default_base_step(depth);

            // Level shift + ICT, merged, by column chunk, straight into the
            // arithmetic's working representation (f32 or Q13).
            let mct_span = trace::span("stage:mct").cat("stage");
            let t1 = Instant::now();
            let fixed = params.arithmetic == Arithmetic::FixedQ13;
            let mut fp: Vec<AlignedPlane<f32>> = if fixed {
                Vec::new()
            } else {
                (0..comps)
                    .map(|_| AlignedPlane::new(w, h).expect("geometry"))
                    .collect()
            };
            let mut q13: Vec<AlignedPlane<i32>> = if fixed {
                (0..comps)
                    .map(|_| AlignedPlane::new(w, h).expect("geometry"))
                    .collect()
            } else {
                Vec::new()
            };
            {
                let src = &int_planes;
                let out_f: Vec<SharedPlane<f32>> = fp.iter_mut().map(SharedPlane::new).collect();
                let out_q: Vec<SharedPlane<i32>> = q13.iter_mut().map(SharedPlane::new).collect();
                let asg = assign_columns(&plan, if use_mct { 1 } else { comps }, h, workers);
                // SAFETY: disjoint column chunks, one thread per job; the
                // int planes are only read (shared borrows).
                let counts = asg.run("mct", |j| unsafe {
                    let (x0, cw) = (j.region.x0, j.region.w);
                    let mut ybuf = vec![0f32; cw];
                    let mut cbuf = vec![0f32; cw];
                    let mut rbuf = vec![0f32; cw];
                    for y in 0..j.region.h {
                        if use_mct {
                            let r = &src[0].row(y)[x0..x0 + cw];
                            let g = &src[1].row(y)[x0..x0 + cw];
                            let b = &src[2].row(y)[x0..x0 + cw];
                            ict_shift_rows(r, g, b, &mut ybuf, &mut cbuf, &mut rbuf, shift as f32);
                            for (c, buf) in [&ybuf, &cbuf, &rbuf].into_iter().enumerate() {
                                if fixed {
                                    let mut rows = out_q[c].rows(j.region);
                                    for (d, &v) in rows.row_mut(y).iter_mut().zip(buf) {
                                        *d = (v * 8192.0).round() as i32;
                                    }
                                } else {
                                    out_f[c].rows(j.region).row_mut(y).copy_from_slice(buf);
                                }
                            }
                        } else {
                            let s = &src[j.comp].row(y)[x0..x0 + cw];
                            if fixed {
                                let mut rows = out_q[j.comp].rows(j.region);
                                for (d, &v) in rows.row_mut(y).iter_mut().zip(s) {
                                    *d = (((v - shift) as f32) * 8192.0).round() as i32;
                                }
                            } else {
                                let mut rows = out_f[j.comp].rows(j.region);
                                for (d, &v) in rows.row_mut(y).iter_mut().zip(s) {
                                    *d = (v - shift) as f32;
                                }
                            }
                        }
                    }
                });
                accumulate(&mut worker_jobs, &counts);
            }
            drop(mct_span);
            stage_times.push(StageTime::new("mct", t1.elapsed().as_secs_f64()));
            if let Some(c) = ctl {
                c.check()?;
            }

            // 9/7 DWT level by level, vertical chunks then horizontal bands.
            let dwt_span = trace::span("stage:dwt").cat("stage");
            let t2 = Instant::now();
            {
                let shared_f: Vec<SharedPlane<f32>> = fp.iter_mut().map(SharedPlane::new).collect();
                let shared_q: Vec<SharedPlane<i32>> =
                    q13.iter_mut().map(SharedPlane::new).collect();
                for (li, r) in regions.iter().enumerate() {
                    if let Some(c) = ctl {
                        c.check()?;
                    }
                    // Failpoint `dwt.level`: fires once per decomposition
                    // level, on the calling thread — the clean-error lever
                    // for the service's failure (not crash) paths.
                    if let Some(msg) = faultsim::eval("dwt.level") {
                        return Err(CodecError::Injected(msg));
                    }
                    let _lvl = if trace::enabled() {
                        trace::span(format!("dwt-level-{}", li + 1)).cat("stage")
                    } else {
                        trace::Span::disabled()
                    };
                    let lplan = plan_for(r.w, workers, opts)?;
                    let vert = assign_columns(&lplan, comps, r.h, workers);
                    // SAFETY: disjoint column chunks, one thread per job.
                    let counts = vert.run("dwt", |j| unsafe {
                        if fixed {
                            vertical::fwd97_rows(shared_q[j.comp].rows(j.region), variant);
                        } else {
                            vertical::fwd97_rows(shared_f[j.comp].rows(j.region), variant);
                        }
                    });
                    accumulate(&mut worker_jobs, &counts);
                    let horiz = assign_rows(r.w, r.h, comps, workers);
                    // SAFETY: disjoint row bands, one thread per job.
                    let counts = horiz.run("dwt", |j| unsafe {
                        if fixed {
                            horizontal::fwd97_fixed_rows(shared_q[j.comp].rows(j.region));
                        } else {
                            horizontal::fwd97_rows(shared_f[j.comp].rows(j.region));
                        }
                    });
                    accumulate(&mut worker_jobs, &counts);
                }
            }
            drop(dwt_span);
            stage_times.push(StageTime::new("dwt", t2.elapsed().as_secs_f64()));
            if let Some(c) = ctl {
                c.check()?;
            }

            // Per-band signalled steps and weights (cheap, calling thread;
            // same order and arithmetic as the sequential pipeline).
            let mut steps = Vec::with_capacity(bands.len());
            let mut weights = Vec::with_capacity(bands.len());
            let mut delta_sigs = Vec::with_capacity(bands.len());
            for b in &bands {
                let lev = b.level.max(1);
                let delta = band_delta(base, b.band, lev);
                let r_bits = depth as i32 + b.band.gain_log2() as i32;
                let step = StepSize::from_delta(delta, r_bits);
                let delta_sig = step.delta(r_bits);
                let nrm = norms::l2_norm_97(b.band, lev);
                steps.push(step);
                weights.push((delta_sig * nrm) * (delta_sig * nrm));
                delta_sigs.push(delta_sig);
            }

            // Quantize by column chunk (elementwise over band rectangles;
            // Q13 coefficients drop back to f32 exactly as sequentially).
            let q_span = trace::span("stage:quantize").cat("stage");
            let t3 = Instant::now();
            let q_samples = (w * h * comps) as u64;
            let qm = obs::counters::measure(
                obs::counters::Kernel::Quantize,
                q_samples,
                q_samples * std::mem::size_of::<i32>() as u64,
            );
            let mut indices: Vec<AlignedPlane<i32>> = (0..comps)
                .map(|_| AlignedPlane::new(w, h).expect("geometry"))
                .collect();
            {
                let fp = &fp;
                let q13 = &q13;
                let bands = &bands;
                let delta_sigs = &delta_sigs;
                let out: Vec<SharedPlane<i32>> = indices.iter_mut().map(SharedPlane::new).collect();
                let asg = assign_columns(&plan, comps, h, workers);
                // SAFETY: disjoint column chunks, one thread per job; the
                // coefficient planes are only read.
                let counts = asg.run("quantize", |j| unsafe {
                    let (x0, cw) = (j.region.x0, j.region.w);
                    let mut rows = out[j.comp].rows(j.region);
                    for (bi, b) in bands.iter().enumerate() {
                        let lo = b.x0.max(x0);
                        let hi = (b.x0 + b.w).min(x0 + cw);
                        if lo >= hi {
                            continue;
                        }
                        let d = delta_sigs[bi];
                        for y in b.y0..b.y0 + b.h {
                            let dst = &mut rows.row_mut(y)[lo - x0..hi - x0];
                            if fixed {
                                let s = q13[j.comp].row(y);
                                crate::kernels::quantize_q13_row(&s[lo..hi], dst, d);
                            } else {
                                let s = fp[j.comp].row(y);
                                crate::kernels::quantize_row(&s[lo..hi], dst, d);
                            }
                        }
                    }
                });
                accumulate(&mut worker_jobs, &counts);
            }
            drop(qm);
            drop(q_span);
            stage_times.push(StageTime::new("quantize", t3.elapsed().as_secs_f64()));

            let max_planes: Vec<u8> = steps.iter().map(|s| GUARD_BITS + s.exponent - 1).collect();
            Ok((
                Transformed {
                    indices,
                    quant: Quant::Scalar(steps),
                    bands,
                    max_planes,
                    weights,
                },
                TransformStats {
                    stage_times,
                    worker_jobs,
                },
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imgio::synth;

    #[test]
    fn parallel_matches_sequential_lossless() {
        let im = synth::natural_rgb(96, 64, 13);
        let params = EncoderParams {
            levels: 3,
            ..EncoderParams::lossless()
        };
        let seq = crate::encode(&im, &params).unwrap();
        for workers in [1usize, 2, 4, 7] {
            let par = encode_parallel(&im, &params, workers).unwrap();
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn parallel_matches_sequential_lossy() {
        let im = synth::natural(80, 80, 21);
        let params = EncoderParams::lossy(0.2);
        let seq = crate::encode(&im, &params).unwrap();
        let par = encode_parallel(&im, &params, 3).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_matches_sequential_lossy_fixed() {
        let im = synth::natural_rgb(72, 56, 5);
        let params = EncoderParams {
            arithmetic: Arithmetic::FixedQ13,
            ..EncoderParams::lossy(0.3)
        };
        let seq = crate::encode(&im, &params).unwrap();
        for workers in [1usize, 2, 5] {
            let par = encode_parallel(&im, &params, workers).unwrap();
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn parallel_output_decodes() {
        let im = synth::natural(64, 64, 30);
        let bytes = encode_parallel(&im, &EncoderParams::lossless(), 4).unwrap();
        let back = crate::decode(&bytes).unwrap();
        assert_eq!(back, im);
    }

    #[test]
    fn explicit_chunk_width_is_honored_and_identical() {
        let im = synth::natural_rgb(100, 40, 8);
        let params = EncoderParams::lossless();
        let seq = crate::pipeline::transform_coefficients(&im, &params).unwrap();
        for cw in [CACHE_LINE, 2 * CACHE_LINE, 5 * CACHE_LINE] {
            let opts = ParallelOptions {
                chunk_width_bytes: Some(cw),
            };
            let par = transform_coefficients_parallel(&im, &params, 3, &opts).unwrap();
            assert_eq!(par, seq, "chunk_width_bytes={cw}");
        }
    }

    #[test]
    fn bad_chunk_width_is_rejected() {
        let im = synth::natural(32, 32, 1);
        let opts = ParallelOptions {
            chunk_width_bytes: Some(CACHE_LINE + 1),
        };
        let err = transform_coefficients_parallel(&im, &EncoderParams::lossless(), 2, &opts);
        assert!(matches!(err, Err(CodecError::Params(_))));
    }

    #[test]
    fn cancelled_control_stops_encode() {
        let im = synth::natural(64, 64, 9);
        let ctl = EncodeControl::new();
        ctl.cancel();
        let r = encode_parallel_ctl(
            &im,
            &EncoderParams::lossless(),
            2,
            &ParallelOptions::default(),
            Some(&ctl),
        );
        assert!(matches!(r, Err(CodecError::Cancelled)));
    }

    #[test]
    fn expired_deadline_stops_encode() {
        let im = synth::natural(64, 64, 9);
        let ctl =
            EncodeControl::with_deadline(Instant::now() - std::time::Duration::from_millis(1));
        let r = encode_parallel_ctl(
            &im,
            &EncoderParams::lossy(0.2),
            2,
            &ParallelOptions::default(),
            Some(&ctl),
        );
        assert!(matches!(r, Err(CodecError::Deadline)));
    }

    #[test]
    fn live_control_is_byte_identical() {
        let im = synth::natural_rgb(80, 48, 17);
        let params = EncoderParams::lossless();
        let seq = crate::encode(&im, &params).unwrap();
        let ctl =
            EncodeControl::with_deadline(Instant::now() + std::time::Duration::from_secs(600));
        let (par, _) =
            encode_parallel_ctl(&im, &params, 3, &ParallelOptions::default(), Some(&ctl)).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn traced_encode_is_byte_identical_and_covers_stages() {
        let im = synth::natural_rgb(96, 64, 11);
        let params = EncoderParams::lossy(0.25);
        let seq = crate::encode(&im, &params).unwrap();
        trace::set_enabled(true);
        let id = trace::next_trace_id();
        trace::set_current(id);
        let par = encode_parallel(&im, &params, 3).unwrap();
        trace::set_current(0);
        let events = trace::take_job(id);
        trace::set_enabled(false);
        assert_eq!(par, seq, "tracing must not perturb the codestream");
        for name in [
            "mct",
            "dwt",
            "quantize",
            "tier1",
            "dwt-level-1",
            "chunk-0",
            "stage:rate-control",
        ] {
            assert!(
                events.iter().any(|e| e.name == name),
                "missing event {name} in {:?}",
                events.iter().map(|e| e.name.clone()).collect::<Vec<_>>()
            );
        }
        // Chunk spans fan out: more than one distinct worker arg.
        let mut workers: Vec<u64> = events
            .iter()
            .filter(|e| e.name == "mct")
            .filter_map(|e| e.args.iter().find(|(k, _)| *k == "worker").map(|&(_, v)| v))
            .collect();
        workers.sort_unstable();
        workers.dedup();
        assert!(
            workers.len() >= 2,
            "mct chunk spans on one worker only: {workers:?}"
        );
    }

    #[test]
    fn profile_reports_multi_worker_jobs_and_stages() {
        let im = synth::natural_rgb(256, 64, 3);
        let workers = 4;
        let (_, prof) =
            encode_parallel_with_profile(&im, &EncoderParams::lossless(), workers).unwrap();
        assert_eq!(prof.worker_jobs.len(), workers + 1);
        let busy = prof.worker_jobs[..workers]
            .iter()
            .filter(|&&c| c > 0)
            .count();
        assert!(
            busy >= 2,
            "sample stages did not fan out: {:?}",
            prof.worker_jobs
        );
        let names: Vec<&str> = prof.stage_times.iter().map(|s| s.name.as_ref()).collect();
        for want in ["convert", "mct", "dwt", "tier1", "rate-control"] {
            assert!(names.contains(&want), "missing stage {want} in {names:?}");
        }
    }
}
