//! Host-thread implementation of the paper's parallelization strategy.
//!
//! Mirrors the Cell mapping with real threads: the per-component sample
//! transforms run concurrently, and Tier-1 uses a dynamic work queue of
//! code blocks (an atomic cursor) exactly like the paper's SPE/PPE queue.
//! Output is byte-identical to the sequential encoder — parallelization
//! must never change the codestream (asserted by tests).

use crate::pipeline::{allocate_layers, assemble, band_kind, block_grid, transform_samples, BlockRecord};
use crate::{CodecError, EncoderParams};
use ebcot::block::encode_block_opts;
use imgio::Image;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Encode with `workers` threads (clamped to at least 1).
pub fn encode_parallel(
    image: &Image,
    params: &EncoderParams,
    workers: usize,
) -> Result<Vec<u8>, CodecError> {
    params.validate()?;
    image.validate().map_err(|e| CodecError::Image(e.to_string()))?;
    let workers = workers.max(1);

    // Sample stages (level shift + MCT + DWT + quantization). The
    // transform is deterministic; the work queue below is where data-
    // dependent imbalance lives.
    let t = transform_samples(image, params)?;

    // Build the block job list (comp, band, grid position, geometry).
    struct Job {
        comp: usize,
        band_idx: usize,
        bx: usize,
        by: usize,
        x0: usize,
        y0: usize,
        bw: usize,
        bh: usize,
    }
    let mut jobs = Vec::new();
    for c in 0..t.indices.len() {
        for (bi, b) in t.bands.iter().enumerate() {
            for (bx, by, x0, y0, bw, bh) in block_grid(b, params.cb_size) {
                jobs.push(Job { comp: c, band_idx: bi, bx, by, x0, y0, bw, bh });
            }
        }
    }

    // Tier-1 work queue: workers pull the next job index atomically.
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<BlockRecord>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);
    let slot_ptr = SlotVec(slots.as_mut_ptr());
    let njobs = jobs.len();
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let cursor = &cursor;
            let jobs = &jobs;
            let t = &t;
            let slot_ptr = &slot_ptr;
            scope.spawn(move |_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= njobs {
                    break;
                }
                let j = &jobs[i];
                let plane = &t.indices[j.comp];
                let mut data = Vec::with_capacity(j.bw * j.bh);
                for y in j.y0..j.y0 + j.bh {
                    for x in j.x0..j.x0 + j.bw {
                        data.push(plane.get(x, y));
                    }
                }
                let enc =
                    encode_block_opts(&data, j.bw, j.bh, band_kind(t.bands[j.band_idx].band), params.bypass);
                let rec = BlockRecord {
                    comp: j.comp,
                    band_idx: j.band_idx,
                    bx: j.bx,
                    by: j.by,
                    enc,
                    weight: t.weights[j.band_idx],
                };
                // SAFETY: each index i is claimed by exactly one worker
                // (fetch_add), so no two threads write the same slot, and
                // the main thread only reads after the scope joins.
                unsafe {
                    *slot_ptr.0.add(i) = Some(rec);
                }
            });
        }
    })
    .map_err(|_| CodecError::Params("worker thread panicked".into()))?;

    let records: Vec<BlockRecord> =
        slots.into_iter().map(|s| s.expect("every job completed")).collect();
    let raw = image.raw_bytes() as u64;
    let (mut kept, _) = allocate_layers(&records, params, raw, 0);
    let mut bytes = assemble(image, params, &t, &records, &kept);
    if let crate::Mode::Lossy { rate } = params.mode {
        let limit = (rate * raw as f64) as usize;
        let mut reserve = 0usize;
        let mut tries = 0;
        while bytes.len() > limit && tries < 8 {
            reserve += (bytes.len() - limit) + 32;
            let (k, _) = allocate_layers(&records, params, raw, reserve);
            kept = k;
            bytes = assemble(image, params, &t, &records, &kept);
            tries += 1;
        }
    }
    Ok(bytes)
}

/// Shared raw pointer to the result slots; Sync because slot indices are
/// partitioned dynamically but uniquely by the atomic cursor.
struct SlotVec(*mut Option<BlockRecord>);
unsafe impl Sync for SlotVec {}

#[cfg(test)]
mod tests {
    use super::*;
    use imgio::synth;

    #[test]
    fn parallel_matches_sequential_lossless() {
        let im = synth::natural_rgb(96, 64, 13);
        let params = EncoderParams { levels: 3, ..EncoderParams::lossless() };
        let seq = crate::encode(&im, &params).unwrap();
        for workers in [1usize, 2, 4, 7] {
            let par = encode_parallel(&im, &params, workers).unwrap();
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn parallel_matches_sequential_lossy() {
        let im = synth::natural(80, 80, 21);
        let params = EncoderParams::lossy(0.2);
        let seq = crate::encode(&im, &params).unwrap();
        let par = encode_parallel(&im, &params, 3).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_output_decodes() {
        let im = synth::natural(64, 64, 30);
        let bytes = encode_parallel(&im, &EncoderParams::lossless(), 4).unwrap();
        let back = crate::decode(&bytes).unwrap();
        assert_eq!(back, im);
    }
}
