//! Mapping the encoder pipeline onto the Cell/B.E. machine model.
//!
//! [`simulate`] schedules a measured [`WorkloadProfile`] under a
//! [`cellsim::MachineConfig`] with the paper's work partitioning
//! (Figure 2): sample stages are chunked with the data decomposition
//! scheme (constant-width cache-line-aligned chunks to the SPEs, remainder
//! to the PPE), Tier-1 uses a dynamic work queue over code blocks run by
//! SPE *and* PPE threads, and rate control / Tier-2 / stream assembly are
//! sequential PPE stages.

use crate::profile::WorkloadProfile;
use crate::{CodecError, EncoderParams, Mode};
use cellsim::stage::{run_stage_traced, Assignment, StageOutcome, TaskEvent, TaskSpec};
use cellsim::{DmaClass, Kernel, MachineConfig, ProcKind, ScheduleTrace, Timeline};
use imgio::Image;
use wavelet::{Filter, VerticalVariant};
use xpart::{ChunkPlan, Owner, PlanConfig, CACHE_LINE};

/// Tunables of the Cell mapping.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Constant chunk / column-group width in bytes (cache-line multiple).
    /// `None` auto-sizes to roughly four chunks per SPE.
    pub chunk_width_bytes: Option<usize>,
    /// Multi-buffering level for the streaming stages.
    pub buffering: usize,
    /// DMA alignment class for chunk transfers. The decomposition scheme
    /// guarantees [`DmaClass::LineOptimal`]; baselines override this.
    pub dma_class: DmaClass,
    /// Whether PPE threads join the Tier-1 work queue. The paper's base
    /// scaling curves use SPEs only; the "+1 PPE"/"+2 PPE" bars of
    /// Figures 4/5 turn this on.
    pub ppe_tier1: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            chunk_width_bytes: None,
            buffering: 2,
            dma_class: DmaClass::LineOptimal,
            ppe_tier1: false,
        }
    }
}

/// The PE roster: SPEs first, then PPE threads.
pub fn roster(cfg: &MachineConfig) -> Vec<ProcKind> {
    let mut v = vec![ProcKind::Spe; cfg.num_spes];
    v.extend(vec![ProcKind::Ppe; cfg.num_ppes.max(1)]);
    v
}

fn auto_chunk_bytes(width: usize, cfg: &MachineConfig) -> usize {
    let row_bytes = width * 4;
    let target = row_bytes / (4 * cfg.num_spes.max(1));
    (target / CACHE_LINE).max(1) * CACHE_LINE
}

fn plan_for(width: usize, cfg: &MachineConfig, opts: &SimOptions) -> ChunkPlan {
    let chunk = opts
        .chunk_width_bytes
        .unwrap_or_else(|| auto_chunk_bytes(width, cfg));
    ChunkPlan::build(
        width,
        1, // height folded into per-task item counts
        &PlanConfig {
            num_spes: cfg.num_spes,
            elem_size: 4,
            chunk_width_bytes: chunk,
            buffering: opts.buffering,
            ls_budget: cfg.ls_data_budget(),
        },
    )
    .expect("chunk plan")
}

/// Build a static assignment from a chunk plan: each chunk becomes one
/// task of `kernel` covering `rows` rows, with in+out DMA of its samples.
#[allow(clippy::too_many_arguments)]
fn chunked_stage(
    plan: &ChunkPlan,
    pes: &[ProcKind],
    num_spes: usize,
    kernel: Kernel,
    rows: u64,
    passes: u64,
    dma_factor: f64,
    class: DmaClass,
) -> Assignment {
    let mut lists: Vec<Vec<TaskSpec>> = vec![Vec::new(); pes.len()];
    for c in plan.chunks() {
        let pe = match c.owner {
            Owner::Spe(i) => i,
            Owner::Ppe => num_spes, // first PPE thread
        };
        let samples = c.width as u64 * rows;
        let bytes = (samples as f64 * 4.0 * dma_factor) as u64;
        lists[pe].push(TaskSpec {
            kernel,
            items: samples * passes,
            dma_in: bytes,
            dma_out: bytes,
            class,
        });
    }
    Assignment::Static(lists)
}

/// Arithmetic work units (MACs) per sample of the fused lifting kernel,
/// identical across loop-schedule variants. Derived from the cost model the
/// wavelet crate publishes ([`wavelet::conv::lifting_macs_per_sample`]) so
/// the simulated stage costs cannot drift from the shipped kernels: 2 for
/// 5/3 (two lifting steps), 5 for 9/7 (four lifting steps plus the K/1/K
/// scaling the fused pass folds in).
fn lift_passes(filter: Filter) -> u64 {
    wavelet::conv::lifting_macs_per_sample(filter).round() as u64
}

/// One-way DMA factor of the vertical stage: total traffic divided by
/// `2 * samples` (so 1.0 means each sample crosses the bus once per
/// direction). Derived from [`wavelet::vertical_traffic`].
fn vertical_dma_factor(variant: VerticalVariant, filter: Filter) -> f64 {
    let t = wavelet::vertical_traffic(variant, filter, 1024, 1024);
    t.total() as f64 / (2.0 * 1024.0 * 1024.0)
}

fn filter_of(params: &EncoderParams) -> Filter {
    match params.mode {
        Mode::Lossless => Filter::Rev53,
        Mode::Lossy { .. } => Filter::Irr97,
    }
}

fn lift_kernel(params: &EncoderParams) -> Kernel {
    match (params.mode, params.arithmetic) {
        (Mode::Lossless, _) => Kernel::DwtLift53,
        (Mode::Lossy { .. }, crate::Arithmetic::Float32) => Kernel::DwtLift97F32,
        (Mode::Lossy { .. }, crate::Arithmetic::FixedQ13) => Kernel::DwtLift97Fixed,
    }
}

/// Simulate the full encode of `profile` on `cfg`.
pub fn simulate(profile: &WorkloadProfile, cfg: &MachineConfig, opts: &SimOptions) -> Timeline {
    simulate_traced(profile, cfg, opts).0
}

/// One task on one PE, traced (the sequential PPE stages).
fn seq_traced(
    cfg: &MachineConfig,
    pe: ProcKind,
    kernel: Kernel,
    items: u64,
) -> (StageOutcome, Vec<TaskEvent>) {
    run_stage_traced(
        cfg,
        &[pe],
        &Assignment::Static(vec![vec![TaskSpec::compute_only(kernel, items)]]),
        1,
    )
}

/// [`simulate`] that also returns the full per-task schedule as a
/// [`ScheduleTrace`] on the virtual clock — stages laid end to end in
/// pipeline order, exportable as Chrome trace-event JSON via
/// [`ScheduleTrace::to_chrome_json`] (`j2kcell --cell-trace-out`).
pub fn simulate_traced(
    profile: &WorkloadProfile,
    cfg: &MachineConfig,
    opts: &SimOptions,
) -> (Timeline, ScheduleTrace) {
    let mut tl = Timeline::default();
    let mut tr = ScheduleTrace::new(cfg);
    let pes = roster(cfg);
    let params = &profile.params;
    let comps = profile.comps as u64;
    let filter = filter_of(params);
    let lift = lift_kernel(params);

    // 1. Read + type conversion: partially parallelized (half the samples
    // stay on the PPE's sequential stream reader).
    let plan_full = plan_for(profile.width, cfg, opts);
    let a = chunked_stage(
        &plan_full,
        &pes,
        cfg.num_spes,
        Kernel::TypeConvert,
        profile.height as u64 * comps / 2,
        1,
        1.0,
        opts.dma_class,
    );
    let (out, ev) = run_stage_traced(cfg, &pes, &a, opts.buffering);
    tr.record("read-convert-par", &pes, &out, ev);
    tl.push(out.report("read-convert-par", cfg));
    let (out, ev) = seq_traced(cfg, ProcKind::Ppe, Kernel::TypeConvert, profile.samples / 2);
    tr.record("read-convert-seq", &[ProcKind::Ppe], &out, ev);
    tl.push(out.report("read-convert-seq", cfg));

    // 2. Level shift merged with the inter-component transform.
    let a = chunked_stage(
        &plan_full,
        &pes,
        cfg.num_spes,
        Kernel::LevelShiftIct,
        profile.height as u64 * comps,
        1,
        1.0,
        opts.dma_class,
    );
    let (out, ev) = run_stage_traced(cfg, &pes, &a, opts.buffering);
    tr.record("levelshift-ict", &pes, &out, ev);
    tl.push(out.report("levelshift-ict", cfg));

    // 3. DWT: per level, vertical (column groups) then horizontal (rows).
    let vfac = vertical_dma_factor(params.variant, filter);
    for (li, lv) in profile.levels.iter().enumerate() {
        let plan = plan_for(lv.w as usize, cfg, opts);
        let a = chunked_stage(
            &plan,
            &pes,
            cfg.num_spes,
            lift,
            lv.h * comps,
            lift_passes(filter),
            vfac,
            opts.dma_class,
        );
        let (out, ev) = run_stage_traced(cfg, &pes, &a, opts.buffering);
        let name = format!("dwt-vertical-l{}", li + 1);
        tr.record(&name, &pes, &out, ev);
        tl.push(out.report(&name, cfg));

        // Horizontal: "we assign an identical number of rows to each SPE";
        // a row is the unit of transfer and computation. The PPE does not
        // take rows here (it only owns the vertical remainder chunk).
        let h_pes: Vec<ProcKind> = if cfg.num_spes > 0 {
            vec![ProcKind::Spe; cfg.num_spes]
        } else {
            vec![ProcKind::Ppe; cfg.num_ppes.max(1)]
        };
        let rows_total = lv.h * comps;
        let mut lists: Vec<Vec<TaskSpec>> = vec![Vec::new(); h_pes.len()];
        let band = rows_total.div_ceil(h_pes.len() as u64).max(1);
        for (pe, list) in lists.iter_mut().enumerate() {
            let r0 = band * pe as u64;
            let r1 = (r0 + band).min(rows_total);
            if r0 >= r1 {
                continue;
            }
            // Tasks of up to 16 rows so double buffering has granularity.
            let mut r = r0;
            while r < r1 {
                let n = 16.min(r1 - r);
                let samples = lv.w * n;
                list.push(TaskSpec {
                    kernel: lift,
                    items: samples * lift_passes(filter),
                    dma_in: samples * 4,
                    dma_out: samples * 4,
                    class: opts.dma_class,
                });
                r += n;
            }
        }
        let (out, ev) = run_stage_traced(cfg, &h_pes, &Assignment::Static(lists), opts.buffering);
        let name = format!("dwt-horizontal-l{}", li + 1);
        tr.record(&name, &h_pes, &out, ev);
        tl.push(out.report(&name, cfg));
    }

    // 4. Quantization (lossy only).
    if matches!(params.mode, Mode::Lossy { .. }) {
        let a = chunked_stage(
            &plan_full,
            &pes,
            cfg.num_spes,
            Kernel::Quantize,
            profile.height as u64 * comps,
            1,
            1.0,
            opts.dma_class,
        );
        let (out, ev) = run_stage_traced(cfg, &pes, &a, opts.buffering);
        tr.record("quantize", &pes, &out, ev);
        tl.push(out.report("quantize", cfg));
    }

    // 5. Tier-1: dynamic work queue over code blocks, SPE + PPE threads.
    let tasks: Vec<TaskSpec> = profile
        .blocks
        .iter()
        .map(|b| TaskSpec {
            kernel: match params.coder {
                crate::coder::Coder::Mq => Kernel::Tier1,
                crate::coder::Coder::Ht => Kernel::Tier1Ht,
            },
            items: b.symbols,
            dma_in: b.samples * 4,
            dma_out: b.bytes,
            class: DmaClass::LineOptimal,
        })
        .collect();
    // The paper's base configurations run Tier-1 on the SPEs only;
    // "additional PPEs participate in Tier-1 encoding" when enabled (or
    // when there are no SPEs at all).
    let t1_pes: Vec<ProcKind> = if opts.ppe_tier1 || cfg.num_spes == 0 {
        pes.clone()
    } else {
        vec![ProcKind::Spe; cfg.num_spes]
    };
    let (out, ev) = run_stage_traced(cfg, &t1_pes, &Assignment::Queue(tasks), 1);
    tr.record("tier1", &t1_pes, &out, ev);
    tl.push(out.report("tier1", cfg));

    // 6. Rate control (lossy): sequential PPE stage between Tier-1 and
    // Tier-2; this is what flattens the lossy scaling curve.
    if profile.rate_control_items > 0 {
        let (out, ev) = seq_traced(
            cfg,
            ProcKind::Ppe,
            Kernel::RateControl,
            profile.rate_control_items,
        );
        tr.record("rate-control", &[ProcKind::Ppe], &out, ev);
        tl.push(out.report("rate-control", cfg));
    }

    // 7. Tier-2 (sequential PPE).
    let (out, ev) = seq_traced(
        cfg,
        ProcKind::Ppe,
        Kernel::Tier2,
        profile.blocks.len() as u64,
    );
    tr.record("tier2", &[ProcKind::Ppe], &out, ev);
    tl.push(out.report("tier2", cfg));

    // 8. Codestream assembly / stream I/O (sequential PPE portion).
    let (out, ev) = seq_traced(cfg, ProcKind::Ppe, Kernel::StreamIo, profile.output_bytes);
    tr.record("stream-io", &[ProcKind::Ppe], &out, ev);
    tl.push(out.report("stream-io", cfg));

    (tl, tr)
}

/// Encode on the host while simulating the Cell schedule; returns the
/// codestream (byte-identical to [`crate::encode`]) and the timeline.
pub fn encode_on_cell(
    image: &Image,
    params: &EncoderParams,
    cfg: &MachineConfig,
    opts: &SimOptions,
) -> Result<(Vec<u8>, Timeline, WorkloadProfile), CodecError> {
    let (bytes, profile) = crate::encode_with_profile(image, params)?;
    let tl = simulate(&profile, cfg, opts);
    Ok((bytes, tl, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use imgio::synth;

    fn profile_for(w: usize, h: usize, params: &EncoderParams) -> WorkloadProfile {
        let im = synth::natural(w, h, 42);
        crate::encode_with_profile(&im, params).unwrap().1
    }

    #[test]
    fn simulate_produces_all_stages() {
        let p = profile_for(128, 128, &EncoderParams::lossless());
        let tl = simulate(&p, &MachineConfig::qs20_single(), &SimOptions::default());
        let names: Vec<&str> = tl.stages.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"tier1"));
        assert!(names.contains(&"levelshift-ict"));
        assert!(names.iter().any(|n| n.starts_with("dwt-vertical")));
        assert!(
            !names.contains(&"rate-control"),
            "lossless has no rate control"
        );
        assert!(tl.total_cycles() > 0);
    }

    #[test]
    fn lossy_has_rate_control_stage() {
        let p = profile_for(128, 128, &EncoderParams::lossy(0.2));
        let tl = simulate(&p, &MachineConfig::qs20_single(), &SimOptions::default());
        assert!(tl.stages.iter().any(|s| s.name == "rate-control"));
        assert!(tl.stages.iter().any(|s| s.name == "quantize"));
    }

    #[test]
    fn more_spes_is_faster_lossless() {
        let params = EncoderParams {
            cb_size: 32,
            ..EncoderParams::lossless()
        };
        let p = profile_for(256, 256, &params);
        let base = MachineConfig::qs20_single();
        let t1 = simulate(&p, &base.with_spes(1), &SimOptions::default());
        let t8 = simulate(&p, &base.with_spes(8), &SimOptions::default());
        let s = t1.total_cycles() as f64 / t8.total_cycles() as f64;
        assert!(s > 3.5, "8-SPE speedup only {s}");
        // Adding PPE threads to the Tier-1 queue helps further.
        let with_ppe = simulate(
            &p,
            &base.with_spes(8),
            &SimOptions {
                ppe_tier1: true,
                ..Default::default()
            },
        );
        assert!(with_ppe.total_cycles() < t8.total_cycles());
    }

    #[test]
    fn merged_variant_beats_separate_on_dwt_time() {
        let im = synth::natural(192, 192, 3);
        let pm = EncoderParams {
            variant: wavelet::VerticalVariant::Merged,
            ..Default::default()
        };
        let ps = EncoderParams {
            variant: wavelet::VerticalVariant::Separate,
            ..Default::default()
        };
        let (_, prof_m) = crate::encode_with_profile(&im, &pm).unwrap();
        let (_, prof_s) = crate::encode_with_profile(&im, &ps).unwrap();
        let cfg = MachineConfig::qs20_single();
        let tm = simulate(&prof_m, &cfg, &SimOptions::default());
        let ts = simulate(&prof_s, &cfg, &SimOptions::default());
        assert!(
            tm.cycles_matching("dwt-vertical") < ts.cycles_matching("dwt-vertical"),
            "merged {} vs separate {}",
            tm.cycles_matching("dwt-vertical"),
            ts.cycles_matching("dwt-vertical")
        );
    }

    #[test]
    fn cell_encode_matches_sequential_bytes() {
        let im = synth::natural_rgb(64, 48, 5);
        let params = EncoderParams {
            levels: 3,
            ..EncoderParams::lossless()
        };
        let seq = crate::encode(&im, &params).unwrap();
        let (bytes, tl, prof) = encode_on_cell(
            &im,
            &params,
            &MachineConfig::qs20_single(),
            &SimOptions::default(),
        )
        .unwrap();
        assert_eq!(bytes, seq);
        assert!(tl.total_seconds() > 0.0);
        assert_eq!(prof.output_bytes as usize, bytes.len());
    }

    #[test]
    fn traced_simulation_exports_a_valid_chrome_trace() {
        let p = profile_for(128, 128, &EncoderParams::lossless());
        let cfg = MachineConfig::qs20_single();
        let (tl, tr) = simulate_traced(&p, &cfg, &SimOptions::default());
        assert_eq!(tr.total_cycles(), tl.total_cycles());
        assert_eq!(tr.stages().len(), tl.stages.len());
        let json = tr.to_chrome_json();
        obs::chrome::check(&json, &["stage:tier1", "stage:levelshift-ict"]).expect("check");
        // Tier-1 compute spans land on SPE tracks (tid >= 1).
        let evs = obs::chrome::parse(&json).unwrap();
        assert!(evs
            .iter()
            .any(|e| e.name == "tier1" && e.ph == "X" && e.tid >= 1));
    }

    #[test]
    fn ppe_only_configuration_runs() {
        let p = profile_for(96, 96, &EncoderParams::lossless());
        let cfg = MachineConfig::qs20_single().with_spes(0);
        let tl = simulate(&p, &cfg, &SimOptions::default());
        assert!(tl.total_cycles() > 0);
    }
}
