//! Codestream syntax: markers, packet sequencing, and parsing.
//!
//! The layout follows JPEG2000 Part 1 Annex A: `SOC`, `SIZ`, `COD`, `QCD`,
//! a `COM` (carrying this implementation's 9/7-arithmetic tag), one tile
//! (`SOT` … `SOD` … packets … ) and `EOC`. Documented simplifications
//! (internally consistent between writer and parser):
//!
//! * one tile, one precinct per subband, and one packet per
//!   (layer, component, subband) in layer → component → subband order
//!   (subbands in [`wavelet::subbands`] order, deepest LL first);
//! * packet headers are byte-aligned per packet (bit-stuffed as in the
//!   standard);
//! * every coding pass is an MQ-terminated segment (signalled in COD's
//!   code-block style as the standard TERMALL bit).

use crate::coder::Coder;
use crate::quant::{StepSize, GUARD_BITS};
use crate::{Arithmetic, CodecError};
use ebcot::header::{decode_packet, encode_packet, Contribution, PrecinctState};
use wavelet::{subbands, Subband};

/// Start of codestream.
pub const SOC: u16 = 0xFF4F;
/// Image and tile size.
pub const SIZ: u16 = 0xFF51;
/// Coding style default.
pub const COD: u16 = 0xFF52;
/// Quantization default.
pub const QCD: u16 = 0xFF5C;
/// Comment (carries the arithmetic tag).
pub const COM: u16 = 0xFF64;
/// Start of tile-part.
pub const SOT: u16 = 0xFF90;
/// Start of data.
pub const SOD: u16 = 0xFF93;
/// End of codestream.
pub const EOC: u16 = 0xFFD9;

/// Everything the decoder needs from the main header.
#[derive(Debug, Clone, PartialEq)]
pub struct MainHeader {
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Component count.
    pub comps: usize,
    /// Bits per sample.
    pub depth: u8,
    /// DWT levels.
    pub levels: usize,
    /// Quality layers.
    pub layers: usize,
    /// Code block size.
    pub cb_size: usize,
    /// Reversible (5/3 + RCT) path?
    pub lossless: bool,
    /// Multi-component transform used?
    pub mct: bool,
    /// 9/7 arithmetic representation.
    pub arithmetic: Arithmetic,
    /// Selective arithmetic-coding bypass enabled?
    pub bypass: bool,
    /// Tier-1 block coder backend (signalled in the COD style byte).
    pub coder: Coder,
    /// Guard bits.
    pub guard: u8,
    /// Per-subband quantization: exponents (lossless) or step sizes
    /// (lossy), in [`wavelet::subbands`] order.
    pub quant: Quant,
}

/// Quantization signalling.
#[derive(Debug, Clone, PartialEq)]
pub enum Quant {
    /// Reversible: per-band exponents (Annex E style 0).
    Reversible(Vec<u8>),
    /// Irreversible: per-band step sizes (Annex E style 2).
    Scalar(Vec<StepSize>),
}

impl MainHeader {
    /// Maximum magnitude bit planes of band `idx` (M_b = guard + eps - 1).
    pub fn max_planes(&self, idx: usize) -> u8 {
        let eps = match &self.quant {
            Quant::Reversible(exps) => exps[idx],
            Quant::Scalar(steps) => steps[idx].exponent,
        };
        self.guard + eps - 1
    }

    /// Subband geometry of each component's transformed plane.
    pub fn bands(&self) -> Vec<Subband> {
        subbands(self.width, self.height, self.levels)
    }
}

/// One code block's full Tier-1 output, ready for packetization.
#[derive(Debug, Clone)]
pub struct BlockStream {
    /// Component.
    pub comp: usize,
    /// Index into the [`MainHeader::bands`] list.
    pub band_idx: usize,
    /// Block grid position within the band.
    pub bx: usize,
    /// See `bx`.
    pub by: usize,
    /// Missing (all-zero) bit planes: `M_b - num_planes`.
    pub zero_planes: u32,
    /// Cumulative passes included per layer (non-decreasing).
    pub layer_passes: Vec<usize>,
    /// Byte length of each pass segment.
    pub pass_lens: Vec<usize>,
    /// All pass segments, concatenated.
    pub data: Vec<u8>,
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Number of code blocks along one axis of extent `n`.
fn grid(n: usize, cb: usize) -> usize {
    n.div_ceil(cb)
}

/// Serialize the complete codestream (single-threaded). Panics only if a
/// `tier2.precinct` fault is injected while calling this infallible entry
/// point directly — drivers that enable failpoints go through
/// [`write_workers`].
pub fn write(hdr: &MainHeader, blocks: &[BlockStream]) -> Vec<u8> {
    write_workers(hdr, blocks, 1).expect("infallible without injected faults")
}

/// Serialize the complete codestream, forming Tier-2 packets in parallel.
///
/// Each (component, subband) pair owns an independent [`PrecinctState`]
/// chain across layers, so packet formation decomposes per pair: every
/// unit produces its per-layer header+body buffers on whichever worker
/// runs it, and the merge concatenates them in the codestream's fixed
/// layer → component → subband order. The bytes are identical to the
/// sequential writer for every worker count because no state crosses a
/// unit boundary and the merge order is the sequential emission order.
///
/// The only error is an injected `tier2.precinct` fault (one evaluation
/// per unit).
pub fn write_workers(
    hdr: &MainHeader,
    blocks: &[BlockStream],
    workers: usize,
) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    put_u16(&mut out, SOC);

    // SIZ
    put_u16(&mut out, SIZ);
    let lsiz = 38 + 3 * hdr.comps;
    put_u16(&mut out, lsiz as u16);
    put_u16(&mut out, 0); // Rsiz
    put_u32(&mut out, hdr.width as u32);
    put_u32(&mut out, hdr.height as u32);
    put_u32(&mut out, 0); // XOsiz
    put_u32(&mut out, 0); // YOsiz
    put_u32(&mut out, hdr.width as u32); // XTsiz
    put_u32(&mut out, hdr.height as u32); // YTsiz
    put_u32(&mut out, 0); // XTOsiz
    put_u32(&mut out, 0); // YTOsiz
    put_u16(&mut out, hdr.comps as u16);
    for _ in 0..hdr.comps {
        out.push(hdr.depth - 1); // Ssiz: unsigned, depth bits
        out.push(1); // XRsiz
        out.push(1); // YRsiz
    }

    // COD
    put_u16(&mut out, COD);
    put_u16(&mut out, 12);
    out.push(0); // Scod: default precincts, no SOP/EPH
    out.push(0); // progression: LRCP
    put_u16(&mut out, hdr.layers as u16);
    out.push(u8::from(hdr.mct));
    out.push(hdr.levels as u8);
    let cb_exp = hdr.cb_size.trailing_zeros() as u8 - 2;
    out.push(cb_exp); // code block width exponent - 2
    out.push(cb_exp); // height
                      // Code block style: terminate on each pass (TERMALL), plus the
                      // selective-bypass bit when enabled; bit 6 selects the
                      // HT block coder (Part 15's SPcod HT flag position).
    out.push(0x04 | u8::from(hdr.bypass) | ((hdr.coder == Coder::Ht) as u8) << 6);
    out.push(u8::from(hdr.lossless)); // transform: 1 = 5/3, 0 = 9/7

    // QCD
    put_u16(&mut out, QCD);
    match &hdr.quant {
        Quant::Reversible(exps) => {
            put_u16(&mut out, (3 + exps.len()) as u16);
            out.push(hdr.guard << 5); // style 0: no quantization
            for &e in exps {
                out.push(e << 3);
            }
        }
        Quant::Scalar(steps) => {
            put_u16(&mut out, (3 + 2 * steps.len()) as u16);
            out.push((hdr.guard << 5) | 2); // style 2: scalar expounded
            for s in steps {
                put_u16(&mut out, s.pack());
            }
        }
    }

    // COM: records the 9/7 arithmetic representation (private tag).
    put_u16(&mut out, COM);
    let tag: &[u8] = match hdr.arithmetic {
        Arithmetic::Float32 => b"arith=f32",
        Arithmetic::FixedQ13 => b"arith=q13",
    };
    put_u16(&mut out, (4 + tag.len()) as u16);
    put_u16(&mut out, 1); // Rcom: general use, latin-1
    out.extend_from_slice(tag);

    // Tile part.
    put_u16(&mut out, SOT);
    put_u16(&mut out, 10);
    put_u16(&mut out, 0); // Isot
    let psot_pos = out.len();
    put_u32(&mut out, 0); // Psot patched below
    out.push(0); // TPsot
    out.push(1); // TNsot
    put_u16(&mut out, SOD);

    // Packets: one independent unit per (component, subband). Grouping the
    // blocks up front also kills the old per-layer × per-band scan over
    // the whole block list.
    let bands = hdr.bands();
    let units: Vec<usize> = (0..hdr.comps * bands.len()).collect();
    let mut unit_blocks: Vec<Vec<&BlockStream>> = vec![Vec::new(); units.len()];
    for blk in blocks {
        unit_blocks[blk.comp * bands.len() + blk.band_idx].push(blk);
    }

    // Per-unit packet formation: the unit's full layer chain, in order
    // (the PrecinctState is unit-local, so layers must stay sequential
    // *within* a unit while units run concurrently).
    let injected: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);
    let form_unit = |&u: &usize| -> Option<Vec<Vec<u8>>> {
        // Failpoint `tier2.precinct`: fires once per (comp, band) unit.
        if let Some(msg) = faultsim::eval("tier2.precinct") {
            *injected.lock().unwrap_or_else(|e| e.into_inner()) = Some(msg);
            return None;
        }
        let bi = u % bands.len();
        let _sp = obs::trace::span("tier2.unit")
            .cat("chunk")
            .arg("comp", (u / bands.len()) as u64)
            .arg("band", bi as u64);
        let b = &bands[bi];
        let (gw, gh) = (grid(b.w, hdr.cb_size), grid(b.h, hdr.cb_size));
        let mut state = PrecinctState::new(gw, gh);
        let mut first = vec![u32::MAX; gw * gh];
        let mut zbp = vec![0u32; gw * gh];
        for blk in &unit_blocks[u] {
            let i = blk.by * gw + blk.bx;
            zbp[i] = blk.zero_planes;
            first[i] = blk
                .layer_passes
                .iter()
                .position(|&p| p > 0)
                .map(|l| l as u32)
                .unwrap_or(u32::MAX);
        }
        state.set_encoder_values(&first, &zbp);
        let mut per_layer = Vec::with_capacity(hdr.layers);
        for layer in 0..hdr.layers {
            let mut contribs = vec![Contribution::default(); gw * gh];
            let mut body: Vec<u8> = Vec::new();
            for blk in &unit_blocks[u] {
                let prev = if layer == 0 {
                    0
                } else {
                    blk.layer_passes[layer - 1]
                };
                let cur = blk.layer_passes[layer];
                if cur > prev {
                    let i = blk.by * gw + blk.bx;
                    let lens = blk.pass_lens[prev..cur].to_vec();
                    let start: usize = blk.pass_lens[..prev].iter().sum();
                    let len: usize = lens.iter().sum();
                    contribs[i] = Contribution {
                        num_passes: cur - prev,
                        pass_lens: lens,
                        zero_planes: blk.zero_planes,
                    };
                    body.extend_from_slice(&blk.data[start..start + len]);
                }
            }
            let mut buf = encode_packet(&mut state, layer as u32, &contribs);
            buf.extend_from_slice(&body);
            per_layer.push(buf);
        }
        Some(per_layer)
    };

    let formed = crate::pipeline::fan_out_map(&units, workers, "tier2", form_unit);
    let formed = match formed {
        Some(f) => f,
        None => {
            return Err(injected
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| "tier2.precinct".into()))
        }
    };

    // Deterministic ordered merge: the sequential emission order is
    // layer-major over units, and each unit's buffers are already in
    // layer order.
    for layer in 0..hdr.layers {
        for per_layer in &formed {
            out.extend_from_slice(&per_layer[layer]);
        }
    }

    // Psot: from the first byte of the SOT marker (6 bytes before the
    // Psot field) to the end of the tile data.
    let psot = (out.len() - (psot_pos - 6)) as u32;
    out[psot_pos..psot_pos + 4].copy_from_slice(&psot.to_be_bytes());
    put_u16(&mut out, EOC);
    Ok(out)
}

struct Reader<'a> {
    d: &'a [u8],
    p: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, CodecError> {
        let v = *self
            .d
            .get(self.p)
            .ok_or_else(|| CodecError::Codestream("unexpected end".into()))?;
        self.p += 1;
        Ok(v)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(((self.u8()? as u16) << 8) | self.u8()? as u16)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(((self.u16()? as u32) << 16) | self.u16()? as u32)
    }

    fn skip(&mut self, n: usize) -> Result<(), CodecError> {
        if self.p + n > self.d.len() {
            return Err(CodecError::Codestream("truncated segment".into()));
        }
        self.p += n;
        Ok(())
    }
}

/// Parsed codestream: header plus recovered per-block streams.
#[derive(Debug)]
pub struct Parsed {
    /// Main header fields.
    pub header: MainHeader,
    /// Recovered blocks (only those that contributed at least one pass).
    pub blocks: Vec<BlockStream>,
}

/// Parse a codestream produced by [`write()`]. Strict: any truncation or
/// corruption anywhere in the packet stream is an error.
pub fn parse(data: &[u8]) -> Result<Parsed, CodecError> {
    parse_opts(data, false).map(|(p, _)| p)
}

/// Best-effort prefix parse for truncated or damaged streams: the main
/// header must be intact (typed error otherwise), but the packet walk
/// stops at the first packet that is truncated or fails to decode, and
/// only **whole layers** are committed — a packet body cut mid-stream
/// never leaks half a layer into the result. Returns the parse plus the
/// number of complete layers recovered (0 ⇒ header-only: the decoder
/// reconstructs the flat level-shift midpoint image).
///
/// This is what makes the fuzz corpus semantically checkable: a
/// progressive stream cut at byte N either yields a degraded-but-
/// measurable image or a typed [`CodecError`], never a panic and never
/// garbage-without-signal.
pub fn parse_prefix(data: &[u8]) -> Result<(Parsed, usize), CodecError> {
    parse_opts(data, true)
}

#[allow(clippy::needless_range_loop)] // comp/band indices are semantic
fn parse_opts(data: &[u8], lenient: bool) -> Result<(Parsed, usize), CodecError> {
    let mut r = Reader { d: data, p: 0 };
    if r.u16()? != SOC {
        return Err(CodecError::Codestream("missing SOC".into()));
    }
    let mut width = 0usize;
    let mut height = 0usize;
    let mut comps = 0usize;
    let mut depth = 0u8;
    let mut levels = 0usize;
    let mut layers = 0usize;
    let mut cb_size = 0usize;
    let mut lossless = false;
    let mut mct = false;
    let mut arithmetic = Arithmetic::Float32;
    let mut bypass = false;
    let mut coder = Coder::Mq;
    let mut guard = GUARD_BITS;
    let mut quant: Option<Quant> = None;

    loop {
        let marker = r.u16()?;
        match marker {
            SIZ => {
                let _l = r.u16()?;
                let _rsiz = r.u16()?;
                width = r.u32()? as usize;
                height = r.u32()? as usize;
                r.skip(8)?; // offsets
                let _xt = r.u32()?;
                let _yt = r.u32()?;
                r.skip(8)?; // tile offsets
                comps = r.u16()? as usize;
                for c in 0..comps {
                    let ssiz = r.u8()?;
                    if c == 0 {
                        depth = ssiz + 1;
                    }
                    r.skip(2)?;
                }
            }
            COD => {
                let _l = r.u16()?;
                let _scod = r.u8()?;
                let _prog = r.u8()?;
                layers = r.u16()? as usize;
                mct = r.u8()? != 0;
                levels = r.u8()? as usize;
                let cbw = r.u8()?;
                let _cbh = r.u8()?;
                if cbw > 4 {
                    return Err(CodecError::Codestream(format!(
                        "code block exponent {cbw} out of range"
                    )));
                }
                cb_size = 1usize << (cbw + 2);
                let style = r.u8()?;
                bypass = style & 0x01 != 0;
                coder = if style & 0x40 != 0 {
                    Coder::Ht
                } else {
                    Coder::Mq
                };
                lossless = r.u8()? != 0;
            }
            QCD => {
                let l = r.u16()? as usize;
                let sqcd = r.u8()?;
                guard = sqcd >> 5;
                let style = sqcd & 0x1F;
                if style == 0 {
                    let n = l - 3;
                    let mut exps = Vec::with_capacity(n);
                    for _ in 0..n {
                        exps.push(r.u8()? >> 3);
                    }
                    quant = Some(Quant::Reversible(exps));
                } else {
                    let n = (l - 3) / 2;
                    let mut steps = Vec::with_capacity(n);
                    for _ in 0..n {
                        steps.push(StepSize::unpack(r.u16()?));
                    }
                    quant = Some(Quant::Scalar(steps));
                }
            }
            COM => {
                let l = r.u16()? as usize;
                let _rcom = r.u16()?;
                let start = r.p;
                r.skip(l - 4)?;
                let tag = &data[start..r.p];
                if tag == b"arith=q13" {
                    arithmetic = Arithmetic::FixedQ13;
                }
            }
            SOT => {
                r.skip(10)?;
                if r.u16()? != SOD {
                    return Err(CodecError::Codestream("expected SOD after SOT".into()));
                }
                break;
            }
            _ => {
                return Err(CodecError::Codestream(format!(
                    "unknown marker {marker:04X}"
                )));
            }
        }
    }

    let header = MainHeader {
        width,
        height,
        comps,
        depth,
        levels,
        layers,
        cb_size,
        lossless,
        mct,
        arithmetic,
        bypass,
        coder,
        guard,
        quant: quant.ok_or_else(|| CodecError::Codestream("missing QCD".into()))?,
    };
    if width == 0 || height == 0 || comps == 0 {
        return Err(CodecError::Codestream("missing or empty SIZ".into()));
    }
    // Bounds that keep a corrupted header from driving shifts or
    // allocations out of range.
    if !(1..=16).contains(&depth) {
        return Err(CodecError::Codestream(format!(
            "depth {depth} out of 1..=16"
        )));
    }
    if levels == 0 || levels > 10 {
        return Err(CodecError::Codestream(format!(
            "levels {levels} out of 1..=10"
        )));
    }
    if layers == 0 || layers > 1024 {
        return Err(CodecError::Codestream(format!(
            "layers {layers} out of range"
        )));
    }
    if comps > 256 {
        return Err(CodecError::Codestream(format!("{comps} components")));
    }
    if width.saturating_mul(height) > (1 << 28) {
        return Err(CodecError::Codestream("image too large".into()));
    }
    let nbands = header.bands().len();
    let quant_len = match &header.quant {
        Quant::Reversible(e) => e.len(),
        Quant::Scalar(st) => st.len(),
    };
    if quant_len < nbands {
        return Err(CodecError::Codestream(format!(
            "QCD has {quant_len} entries for {nbands} bands"
        )));
    }
    // Exponent 0 would underflow M_b = guard + eps - 1.
    let bad_eps = match &header.quant {
        Quant::Reversible(e) => e.contains(&0),
        Quant::Scalar(st) => st.iter().any(|x| x.exponent == 0),
    };
    if bad_eps || header.guard == 0 {
        return Err(CodecError::Codestream(
            "zero quant exponent or guard".into(),
        ));
    }

    // Packets.
    let bands = header.bands();
    let mut states: Vec<Vec<PrecinctState>> = (0..comps)
        .map(|_| {
            bands
                .iter()
                .map(|b| PrecinctState::new(grid(b.w, cb_size), grid(b.h, cb_size)))
                .collect()
        })
        .collect();
    // blocks keyed by (comp, band, by, bx).
    let mut blocks: std::collections::HashMap<(usize, usize, usize, usize), BlockStream> =
        std::collections::HashMap::new();

    // One contribution a fully-parsed layer hands over for commit: block
    // key, the header-decoded contribution, and the body byte range.
    struct Update {
        key: (usize, usize, usize, usize),
        con: Contribution,
        body: std::ops::Range<usize>,
    }

    let mut complete_layers = 0usize;
    'layers: for layer in 0..layers {
        // Stage the whole layer before touching `blocks`: a packet that
        // dies mid-layer must not leave half a layer committed (the
        // lenient path rolls the stream back to the last whole layer).
        let mut updates: Vec<Update> = Vec::new();
        for c in 0..comps {
            for (bi, b) in bands.iter().enumerate() {
                // Failpoint `decode.packet`: one evaluation per packet,
                // so `@nth` schedules pin any packet in the walk.
                if let Some(msg) = faultsim::eval("decode.packet") {
                    if lenient {
                        break 'layers;
                    }
                    return Err(CodecError::Injected(msg));
                }
                let (gw, gh) = (grid(b.w, cb_size), grid(b.h, cb_size));
                let st = &mut states[c][bi];
                let (contribs, used) = match decode_packet(st, layer as u32, &data[r.p..]) {
                    Ok(v) => v,
                    Err(_) if lenient => break 'layers,
                    Err(e) => return Err(CodecError::Codestream(e.to_string())),
                };
                // A truncated packet header "parses" against the raw
                // decoder's 1-bit end padding and reports more bytes
                // consumed than the stream holds — that is the truncation
                // signal for the lenient walk.
                if lenient && used > data.len() - r.p {
                    break 'layers;
                }
                r.skip(used)?;
                for by in 0..gh {
                    for bx in 0..gw {
                        let con = contribs[by * gw + bx].clone();
                        if con.num_passes == 0 {
                            continue;
                        }
                        let body_len: usize = con.pass_lens.iter().sum();
                        if r.p + body_len > data.len() {
                            if lenient {
                                break 'layers;
                            }
                            return Err(CodecError::Codestream("packet body truncated".into()));
                        }
                        updates.push(Update {
                            key: (c, bi, by, bx),
                            con,
                            body: r.p..r.p + body_len,
                        });
                        r.p += body_len;
                    }
                }
            }
        }
        // Commit: the layer parsed end to end.
        for u in updates {
            let (c, bi, by, bx) = u.key;
            let blk = blocks.entry(u.key).or_insert_with(|| BlockStream {
                comp: c,
                band_idx: bi,
                bx,
                by,
                zero_planes: u.con.zero_planes,
                layer_passes: vec![0; layer],
                pass_lens: Vec::new(),
                data: Vec::new(),
            });
            blk.pass_lens.extend_from_slice(&u.con.pass_lens);
            blk.data.extend_from_slice(&data[u.body]);
            let total: usize = blk.pass_lens.len();
            while blk.layer_passes.len() < layer {
                let last = *blk.layer_passes.last().unwrap_or(&0);
                blk.layer_passes.push(last);
            }
            blk.layer_passes.push(total);
        }
        // Blocks without a contribution this layer still record the
        // layer boundary.
        for blk in blocks.values_mut() {
            let last = *blk.layer_passes.last().unwrap_or(&0);
            while blk.layer_passes.len() <= layer {
                blk.layer_passes.push(last);
            }
        }
        complete_layers = layer + 1;
    }

    let mut blocks: Vec<BlockStream> = blocks.into_values().collect();
    blocks.sort_by_key(|b| (b.comp, b.band_idx, b.by, b.bx));
    Ok((Parsed { header, blocks }, complete_layers))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(lossless: bool) -> MainHeader {
        let bands = subbands(40, 24, 2);
        MainHeader {
            width: 40,
            height: 24,
            comps: 3,
            depth: 8,
            levels: 2,
            layers: 2,
            cb_size: 16,
            lossless,
            mct: true,
            arithmetic: Arithmetic::Float32,
            bypass: false,
            coder: Coder::Mq,
            guard: GUARD_BITS,
            quant: if lossless {
                Quant::Reversible(bands.iter().map(|b| 8 + b.band.gain_log2()).collect())
            } else {
                Quant::Scalar(
                    bands
                        .iter()
                        .map(|_| StepSize {
                            exponent: 12,
                            mantissa: 300,
                        })
                        .collect(),
                )
            },
        }
    }

    fn sample_blocks() -> Vec<BlockStream> {
        vec![
            BlockStream {
                comp: 0,
                band_idx: 0,
                bx: 0,
                by: 0,
                zero_planes: 2,
                layer_passes: vec![2, 4],
                pass_lens: vec![3, 5, 2, 7],
                data: vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17],
            },
            BlockStream {
                comp: 1,
                band_idx: 4,
                bx: 1,
                by: 0,
                zero_planes: 0,
                layer_passes: vec![0, 1],
                pass_lens: vec![9],
                data: vec![9; 9],
            },
        ]
    }

    #[test]
    fn roundtrip_header_and_blocks_lossless() {
        let hdr = header(true);
        let blocks = sample_blocks();
        let bytes = write(&hdr, &blocks);
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed.header, hdr);
        assert_eq!(parsed.blocks.len(), 2);
        let b0 = &parsed.blocks[0];
        assert_eq!(b0.pass_lens, vec![3, 5, 2, 7]);
        assert_eq!(b0.layer_passes, vec![2, 4]);
        assert_eq!(b0.zero_planes, 2);
        assert_eq!(b0.data, sample_blocks()[0].data);
        let b1 = &parsed.blocks[1];
        assert_eq!(b1.layer_passes, vec![0, 1]);
        assert_eq!(b1.data, vec![9; 9]);
    }

    #[test]
    fn roundtrip_lossy_quant() {
        let hdr = header(false);
        let bytes = write(&hdr, &sample_blocks());
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed.header, hdr);
        match parsed.header.quant {
            Quant::Scalar(ref s) => {
                assert_eq!(
                    s[0],
                    StepSize {
                        exponent: 12,
                        mantissa: 300
                    }
                )
            }
            _ => panic!("expected scalar quant"),
        }
    }

    #[test]
    fn arithmetic_tag_roundtrip() {
        let mut hdr = header(false);
        hdr.arithmetic = Arithmetic::FixedQ13;
        let parsed = parse(&write(&hdr, &[])).unwrap();
        assert_eq!(parsed.header.arithmetic, Arithmetic::FixedQ13);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&[0, 1, 2, 3]).is_err());
        assert!(parse(&[]).is_err());
        let hdr = header(true);
        let mut bytes = write(&hdr, &sample_blocks());
        bytes.truncate(bytes.len() / 2);
        assert!(parse(&bytes).is_err());
    }

    #[test]
    fn max_planes_derivation() {
        let hdr = header(true);
        // Band 0 (LL): eps = 8 + 0, guard 3 -> M = 10.
        assert_eq!(hdr.max_planes(0), 10);
    }

    #[test]
    fn prefix_parse_of_full_stream_matches_strict() {
        let hdr = header(true);
        let bytes = write(&hdr, &sample_blocks());
        let strict = parse(&bytes).unwrap();
        let (lenient, layers) = parse_prefix(&bytes).unwrap();
        assert_eq!(layers, hdr.layers);
        assert_eq!(lenient.header, strict.header);
        assert_eq!(lenient.blocks.len(), strict.blocks.len());
        for (a, b) in lenient.blocks.iter().zip(&strict.blocks) {
            assert_eq!(a.layer_passes, b.layer_passes);
            assert_eq!(a.pass_lens, b.pass_lens);
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn prefix_parse_never_commits_a_partial_layer() {
        let hdr = header(true);
        let bytes = write(&hdr, &sample_blocks());
        // Chop off the tail so layer 1's packet bodies are gone but the
        // header and layer 0 survive.
        let (parsed, layers) = parse_prefix(&bytes[..bytes.len() - 12]).unwrap();
        assert!(layers < hdr.layers, "truncation must drop a layer");
        for blk in &parsed.blocks {
            assert!(
                blk.layer_passes.len() <= layers,
                "block records {} layers but only {layers} are complete",
                blk.layer_passes.len()
            );
        }
    }

    #[test]
    fn prefix_layers_are_monotone_in_prefix_length() {
        let hdr = header(true);
        let bytes = write(&hdr, &sample_blocks());
        let mut last = 0usize;
        for cut in 0..=bytes.len() {
            match parse_prefix(&bytes[..cut]) {
                // Header damage stays a typed error.
                Err(_) => assert_eq!(last, 0, "errors only before the packet walk"),
                Ok((_, layers)) => {
                    assert!(layers >= last, "layers regressed at cut {cut}");
                    assert!(layers <= hdr.layers);
                    last = layers;
                }
            }
        }
        assert_eq!(last, hdr.layers, "full stream recovers every layer");
    }

    #[test]
    fn starts_with_soc_ends_with_eoc() {
        let bytes = write(&header(true), &[]);
        assert_eq!(&bytes[..2], &[0xFF, 0x4F]);
        assert_eq!(&bytes[bytes.len() - 2..], &[0xFF, 0xD9]);
    }
}
