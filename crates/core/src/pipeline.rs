//! The sequential reference pipeline: encode and decode.
//!
//! This is the ground truth that the host-parallel and Cell-simulated
//! drivers must match byte-for-byte. Stage order follows the paper's
//! Figure 2.

use crate::codestream::{self, BlockStream, MainHeader, Quant};
use crate::profile::{BlockWork, LevelWork, StageTime, WorkloadProfile};
use crate::quant::{band_delta, dequantize, StepSize, GUARD_BITS};
use crate::{mct, Arithmetic, CodecError, EncoderParams, Mode};
use ebcot::block::{BandKind, EncodedBlock};
use ebcot::rate::{search_threshold, BlockSummary, PreparedBlock, Threshold};
use imgio::Image;
use wavelet::{low_len, norms, Band, Subband};
use xpart::AlignedPlane;

/// Map subband orientation to Tier-1 context class.
pub fn band_kind(b: Band) -> BandKind {
    match b {
        Band::LL | Band::LH => BandKind::LlLh,
        Band::HL => BandKind::Hl,
        Band::HH => BandKind::Hh,
    }
}

/// Default base quantizer step for `depth`-bit imagery (image-domain
/// units); per-band steps divide by the basis norm (see [`band_delta`]),
/// so a unit index error costs `base/sqrt(12)` RMSE in every band. The
/// value trades quality ceiling (~41 dB for 8-bit) against the number of
/// magnitude bit planes Tier-1 has to code.
pub fn default_base_step(depth: u8) -> f64 {
    f64::powi(2.0, depth as i32 - 8) / 2.0
}

/// Per-level transform regions, finest first (mirrors the wavelet crate's
/// internal recursion).
pub fn level_dims(w: usize, h: usize, levels: usize) -> Vec<(usize, usize)> {
    let (mut cw, mut ch) = (w, h);
    let mut v = Vec::new();
    for _ in 0..levels {
        if cw < 2 && ch < 2 {
            break;
        }
        v.push((cw, ch));
        cw = low_len(cw);
        ch = low_len(ch);
    }
    v
}

/// One Tier-1-coded block with its placement, R-D weight, and the
/// rate-control preparation (weighted distortion curve + convex hull)
/// finalized the moment Tier-1 finished the block — on the worker that
/// coded it, not in a sequential post-pass.
pub(crate) struct BlockRecord {
    pub comp: usize,
    pub band_idx: usize,
    pub bx: usize,
    pub by: usize,
    pub enc: EncodedBlock,
    /// Per-block PCRD input (weighted distortions + hull), ready for the
    /// λ search.
    pub rd: PreparedBlock,
}

impl BlockRecord {
    /// Assemble a record, running the per-block R-D preparation (the
    /// parallelizable slice of rate control) inline. `weight` is the
    /// image-domain distortion weight, (delta * basis norm)^2.
    pub(crate) fn new(
        comp: usize,
        band_idx: usize,
        bx: usize,
        by: usize,
        enc: EncodedBlock,
        weight: f64,
    ) -> BlockRecord {
        let _sp = obs::trace::span("rate-prep").cat("chunk");
        let rd = PreparedBlock::new(BlockSummary::from_block(&enc, weight));
        BlockRecord {
            comp,
            band_idx,
            bx,
            by,
            enc,
            rd,
        }
    }
}

/// Everything shared between the sample stages and entropy stages.
pub(crate) struct Transformed {
    /// Coefficient planes as quantizer indices (one per component).
    pub indices: Vec<AlignedPlane<i32>>,
    /// Per-band quantization (indexes match `bands`).
    pub quant: Quant,
    /// Subband geometry.
    pub bands: Vec<Subband>,
    /// Per-band M_b (max magnitude bit planes).
    pub max_planes: Vec<u8>,
    /// Per-band distortion weight ((delta * norm)^2).
    pub weights: Vec<f64>,
}

/// Run level shift + MCT + DWT + quantization, producing quantizer-index
/// planes and the quantization signalling. Shared by every driver.
pub(crate) fn transform_samples(
    image: &Image,
    params: &EncoderParams,
) -> Result<Transformed, CodecError> {
    let (w, h) = (image.width, image.height);
    let comps = image.comps();
    let depth = image.bit_depth;
    let shift = 1i32 << (depth - 1);
    let use_mct = comps == 3;
    let bands = wavelet::subbands(w, h, params.levels);

    let mut int_planes: Vec<AlignedPlane<i32>> = image
        .planes
        .iter()
        .map(|p| {
            let dense: Vec<i32> = p.iter().map(|&v| v as i32).collect();
            AlignedPlane::from_dense(w, h, &dense).map_err(|e| CodecError::Image(e.to_string()))
        })
        .collect::<Result<_, _>>()?;

    match params.mode {
        Mode::Lossless => {
            if use_mct {
                mct::forward_rct_shift(&mut int_planes, shift);
            } else {
                for p in &mut int_planes {
                    mct::level_shift(p, shift);
                }
            }
            for p in &mut int_planes {
                wavelet::forward_2d_53(p, params.levels, params.variant);
            }
            let depth_eff = depth + u8::from(use_mct);
            let exps: Vec<u8> = bands
                .iter()
                .map(|b| depth_eff + b.band.gain_log2())
                .collect();
            let max_planes: Vec<u8> = exps.iter().map(|&e| GUARD_BITS + e - 1).collect();
            let weights: Vec<f64> = bands
                .iter()
                .map(|b| {
                    let n = norms::l2_norm_53(b.band, b.level.max(1));
                    n * n
                })
                .collect();
            Ok(Transformed {
                indices: int_planes,
                quant: Quant::Reversible(exps),
                bands,
                max_planes,
                weights,
            })
        }
        Mode::Lossy { .. } => {
            let base = default_base_step(depth);
            // Sample transform in the selected arithmetic.
            let coeff_value: Vec<AlignedPlane<f32>> = match params.arithmetic {
                Arithmetic::Float32 => {
                    let mut fp: Vec<AlignedPlane<f32>> = if use_mct {
                        mct::forward_ict_shift(&int_planes, shift as f32)
                    } else {
                        int_planes
                            .iter_mut()
                            .map(|p| {
                                mct::level_shift(p, shift);
                                p.to_f32()
                            })
                            .collect()
                    };
                    for p in &mut fp {
                        wavelet::forward_2d_97(p, params.levels, params.variant);
                    }
                    fp
                }
                Arithmetic::FixedQ13 => {
                    let fp: Vec<AlignedPlane<f32>> = if use_mct {
                        mct::forward_ict_shift(&int_planes, shift as f32)
                    } else {
                        int_planes
                            .iter_mut()
                            .map(|p| {
                                mct::level_shift(p, shift);
                                p.to_f32()
                            })
                            .collect()
                    };
                    let mut q13: Vec<AlignedPlane<i32>> = fp
                        .iter()
                        .map(|p| p.map(|v| (v * 8192.0).round() as i32))
                        .collect();
                    for p in &mut q13 {
                        wavelet::transform2d::forward_2d_97_fixed(p, params.levels, params.variant);
                    }
                    q13.iter().map(|p| p.map(|v| v as f32 / 8192.0)).collect()
                }
            };
            // Quantize per band.
            let q_samples = (w * h * comps) as u64;
            let qm = obs::counters::measure(
                obs::counters::Kernel::Quantize,
                q_samples,
                q_samples * std::mem::size_of::<i32>() as u64,
            );
            let mut steps = Vec::with_capacity(bands.len());
            let mut weights = Vec::with_capacity(bands.len());
            let mut indices: Vec<AlignedPlane<i32>> = (0..comps)
                .map(|_| AlignedPlane::new(w, h).expect("geometry"))
                .collect();
            for b in &bands {
                let lev = b.level.max(1);
                let delta = band_delta(base, b.band, lev);
                let r_bits = depth as i32 + b.band.gain_log2() as i32;
                let step = StepSize::from_delta(delta, r_bits);
                let delta_sig = step.delta(r_bits); // signalled value
                let nrm = norms::l2_norm_97(b.band, lev);
                steps.push(step);
                weights.push((delta_sig * nrm) * (delta_sig * nrm));
                for (c, plane) in coeff_value.iter().enumerate() {
                    for y in b.y0..b.y0 + b.h {
                        let src = &plane.row(y)[b.x0..b.x0 + b.w];
                        let dst = &mut indices[c].row_mut(y)[b.x0..b.x0 + b.w];
                        crate::kernels::quantize_row(src, dst, delta_sig);
                    }
                }
            }
            drop(qm);
            let max_planes: Vec<u8> = steps.iter().map(|s| GUARD_BITS + s.exponent - 1).collect();
            Ok(Transformed {
                indices,
                quant: Quant::Scalar(steps),
                bands,
                max_planes,
                weights,
            })
        }
    }
}

/// Extract the block grid of one band: `(bx, by, x0, y0, bw, bh)` tuples.
pub(crate) fn block_grid(
    b: &Subband,
    cb: usize,
) -> Vec<(usize, usize, usize, usize, usize, usize)> {
    let mut v = Vec::new();
    let gw = b.w.div_ceil(cb);
    let gh = b.h.div_ceil(cb);
    for by in 0..gh {
        for bx in 0..gw {
            let x0 = b.x0 + bx * cb;
            let y0 = b.y0 + by * cb;
            let bw = cb.min(b.x0 + b.w - x0);
            let bh = cb.min(b.y0 + b.h - y0);
            v.push((bx, by, x0, y0, bw, bh));
        }
    }
    v
}

/// Tier-1 encode every code block of every band/component (sequentially).
pub(crate) fn tier1_all(t: &Transformed, params: &EncoderParams) -> Vec<BlockRecord> {
    let mut out = Vec::new();
    for (c, plane) in t.indices.iter().enumerate() {
        for (bi, b) in t.bands.iter().enumerate() {
            for (bx, by, x0, y0, bw, bh) in block_grid(b, params.cb_size) {
                let mut data = Vec::with_capacity(bw * bh);
                for y in y0..y0 + bh {
                    for x in x0..x0 + bw {
                        data.push(plane.get(x, y));
                    }
                }
                let enc = params.coder.block_coder().encode(
                    &data,
                    bw,
                    bh,
                    band_kind(b.band),
                    params.bypass,
                );
                assert!(
                    enc.num_planes <= t.max_planes[bi],
                    "band {bi}: {} planes exceed M_b {}",
                    enc.num_planes,
                    t.max_planes[bi]
                );
                out.push(BlockRecord::new(c, bi, bx, by, enc, t.weights[bi]));
            }
        }
    }
    out
}

/// What one quality layer keeps: either everything (lossless final
/// layer) or the truncations induced by a searched slope threshold.
enum LayerPlan {
    All,
    Th(Threshold),
}

/// Rate allocation: per-block cumulative kept passes per layer, plus the
/// PCRD work count. The global λ search per layer stays sequential (it
/// needs every block's hull), but the per-block truncation application —
/// the bulk of the loop when blocks are many — fans out over `workers`
/// threads in disjoint block ranges, so the result is identical for every
/// worker count. Errors only when the `rate.block` failpoint injects one.
pub(crate) fn allocate_layers(
    records: &[BlockRecord],
    params: &EncoderParams,
    raw_bytes: u64,
    extra_reserve: usize,
    workers: usize,
) -> Result<(Vec<Vec<usize>>, u64), CodecError> {
    let prepared: Vec<&PreparedBlock> = records.iter().map(|r| &r.rd).collect();
    let mut rc_items = 0u64;

    // Sequential part: one threshold search per layer.
    let search_span = obs::trace::span("rate-search").cat("stage");
    let plans: Vec<LayerPlan> = match params.mode {
        Mode::Lossless => (0..params.layers)
            .map(|l| {
                if l + 1 == params.layers {
                    // All passes, all in the final layer.
                    LayerPlan::All
                } else {
                    // Earlier layers split the total bytes evenly.
                    let frac = (l + 1) as f64 / params.layers as f64;
                    let budget: usize =
                        (records.iter().map(|r| r.enc.data.len() as f64).sum::<f64>() * frac)
                            as usize;
                    let th = search_threshold(&prepared, budget);
                    rc_items += th.passes_examined;
                    LayerPlan::Th(th)
                }
            })
            .collect(),
        Mode::Lossy { rate } => {
            // Reserve a sliver for markers and packet headers.
            let header_estimate = 120 + records.len() * 2 + extra_reserve;
            let budget_total = ((rate * raw_bytes as f64) as usize).saturating_sub(header_estimate);
            (0..params.layers)
                .map(|l| {
                    let frac = (l + 1) as f64 / params.layers as f64;
                    let th = search_threshold(&prepared, (budget_total as f64 * frac) as usize);
                    rc_items += th.passes_examined;
                    LayerPlan::Th(th)
                })
                .collect()
        }
    };
    drop(search_span);

    // Parallel part: apply every layer's plan to each block, including the
    // cross-layer monotonicity fix-up (block-local, so it rides along).
    let apply_block = |r: &BlockRecord| -> Option<Vec<usize>> {
        // Failpoint `rate.block`: fires once per block per allocation.
        if faultsim::eval("rate.block").is_some() {
            return None;
        }
        let mut k: Vec<usize> = plans
            .iter()
            .map(|p| match p {
                LayerPlan::All => r.enc.passes.len(),
                LayerPlan::Th(th) => th.apply(&r.rd),
            })
            .collect();
        for l in 1..k.len() {
            if k[l] < k[l - 1] {
                k[l] = k[l - 1];
            }
        }
        Some(k)
    };

    let kept = fan_out_map(records, workers, "rate-apply", apply_block)
        .ok_or_else(|| CodecError::Injected("rate.block".into()))?;
    Ok((kept, rc_items))
}

/// Map `f` over `items` with `workers` threads on disjoint contiguous
/// ranges, preserving order. `f` returning `None` (an injected fault)
/// makes the whole map `None`. Runs inline without spawning when one
/// worker (or one item) suffices, so the sequential driver never pays for
/// threads it didn't ask for.
pub(crate) fn fan_out_map<T, U, F>(
    items: &[T],
    workers: usize,
    stage: &'static str,
    f: F,
) -> Option<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Option<U> + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let n_chunks = items.len().div_ceil(chunk);
    let parent_trace = obs::trace::current();
    let mut out: Vec<Option<Vec<U>>> = Vec::new();
    out.resize_with(n_chunks, || None);
    std::thread::scope(|scope| {
        for (wi, (slice, slot)) in items.chunks(chunk).zip(out.iter_mut()).enumerate() {
            let f = &f;
            scope.spawn(move || {
                obs::trace::set_current(parent_trace);
                {
                    let _sp = obs::trace::span(stage)
                        .cat("chunk")
                        .arg("worker", wi as u64)
                        .arg("items", slice.len() as u64);
                    *slot = slice.iter().map(f).collect();
                }
                // Scoped threads join closures, not TLS destructors.
                obs::trace::flush_thread();
            });
        }
    });
    let mut all = Vec::with_capacity(items.len());
    for part in out {
        all.extend(part?);
    }
    Some(all)
}

/// Assemble the final codestream from coded blocks + allocations. Tier-2
/// packet formation fans out per (component, subband) precinct chain over
/// `workers` threads inside [`codestream::write_workers`]; the only error
/// is an injected `tier2.precinct` fault.
pub(crate) fn assemble(
    image: &Image,
    params: &EncoderParams,
    t: &Transformed,
    records: &[BlockRecord],
    kept: &[Vec<usize>],
    workers: usize,
) -> Result<Vec<u8>, CodecError> {
    let header = MainHeader {
        width: image.width,
        height: image.height,
        comps: image.comps(),
        depth: image.bit_depth,
        levels: params.levels,
        layers: params.layers,
        cb_size: params.cb_size,
        lossless: matches!(params.mode, Mode::Lossless),
        mct: image.comps() == 3,
        arithmetic: params.arithmetic,
        bypass: params.bypass,
        coder: params.coder,
        guard: GUARD_BITS,
        quant: t.quant.clone(),
    };
    let mut streams = Vec::new();
    for (r, k) in records.iter().zip(kept) {
        let last = *k.last().unwrap_or(&0);
        if last == 0 {
            continue;
        }
        let lens: Vec<usize> = (0..last)
            .map(|i| r.enc.pass_ends[i] - if i == 0 { 0 } else { r.enc.pass_ends[i - 1] })
            .collect();
        streams.push(BlockStream {
            comp: r.comp,
            band_idx: r.band_idx,
            bx: r.bx,
            by: r.by,
            zero_planes: (t.max_planes[r.band_idx] - r.enc.num_planes) as u32,
            layer_passes: k.clone(),
            pass_lens: lens,
            data: r.enc.data[..r.enc.bytes_for_passes(last)].to_vec(),
        });
    }
    codestream::write_workers(&header, &streams, workers).map_err(CodecError::Injected)
}

/// Encode `image` with `params`, returning the codestream.
pub fn encode(image: &Image, params: &EncoderParams) -> Result<Vec<u8>, CodecError> {
    encode_with_profile(image, params).map(|(bytes, _)| bytes)
}

/// Dense quantizer-index planes produced by the sample stages (level
/// shift, MCT, DWT, quantization), one per component, in the sequential
/// reference arithmetic. Diagnostic API for the differential tests: the
/// chunked host-parallel transform must reproduce these coefficient for
/// coefficient (see `parallel::transform_coefficients_parallel`).
pub fn transform_coefficients(
    image: &Image,
    params: &EncoderParams,
) -> Result<Vec<Vec<i32>>, CodecError> {
    params.validate()?;
    image
        .validate()
        .map_err(|e| CodecError::Image(e.to_string()))?;
    let t = transform_samples(image, params)?;
    Ok(t.indices.iter().map(|p| p.to_dense()).collect())
}

/// Encode and also return the measured [`WorkloadProfile`] that drives the
/// machine models.
pub fn encode_with_profile(
    image: &Image,
    params: &EncoderParams,
) -> Result<(Vec<u8>, WorkloadProfile), CodecError> {
    params.validate()?;
    image
        .validate()
        .map_err(|e| CodecError::Image(e.to_string()))?;
    let tr_span = obs::trace::span("stage:transform").cat("stage");
    let t0 = std::time::Instant::now();
    let t = transform_samples(image, params)?;
    let transform_secs = t0.elapsed().as_secs_f64();
    drop(tr_span);
    let t1_span = obs::trace::span("stage:tier1")
        .cat("stage")
        .arg("coder", params.coder.id());
    let t1 = std::time::Instant::now();
    let records = tier1_all(&t, params);
    let tier1_secs = t1.elapsed().as_secs_f64();
    drop(t1_span);
    let rc_span = obs::trace::span("stage:rate-control").cat("stage");
    let raw = image.raw_bytes() as u64;
    let out = rate_control_and_assemble(image, params, &t, &records, raw, 1)?;
    drop(rc_span);
    let stage_times = vec![
        StageTime::new("transform", transform_secs),
        StageTime::new("tier1", tier1_secs),
        StageTime::new("rate-control", out.alloc_secs),
        StageTime::new("tier2", out.tier2_secs),
    ];
    let profile = build_profile(image, params, &records, &out, stage_times, Vec::new());
    Ok((out.bytes, profile))
}

/// Everything the rate-control/Tier-2 tail produced, including the
/// budget-shrink retry history the conformance tests pin down.
pub(crate) struct RateOutcome {
    /// The finished codestream.
    pub bytes: Vec<u8>,
    /// Coding passes examined by every PCRD search (profile work items).
    pub rc_items: u64,
    /// Budget-shrink retries taken (0 = first assembly fit).
    pub retries: u64,
    /// Whether the final stream is within the lossy byte budget
    /// (trivially true for lossless).
    pub converged: bool,
    /// `reserve` after each retry — must grow strictly monotonically.
    /// Only the in-module retry-loop tests read it; the non-test lib
    /// target carries it as diagnostic state.
    #[cfg_attr(not(test), allow(dead_code))]
    pub reserves: Vec<usize>,
    /// Cumulative wall seconds in allocation (search + apply), across
    /// retries.
    pub alloc_secs: f64,
    /// Cumulative wall seconds in Tier-2 packet assembly, across retries.
    pub tier2_secs: f64,
}

/// PCRD rate allocation plus codestream assembly, including the lossy
/// budget-shrink retry loop. Shared by the sequential and parallel drivers
/// so they stay byte-identical by construction; `workers` fans out the
/// per-block truncation application and the per-precinct Tier-2 assembly
/// without changing a byte (disjoint partitions + ordered merge).
pub(crate) fn rate_control_and_assemble(
    image: &Image,
    params: &EncoderParams,
    t: &Transformed,
    records: &[BlockRecord],
    raw: u64,
    workers: usize,
) -> Result<RateOutcome, CodecError> {
    let mut alloc_secs = 0.0;
    let mut tier2_secs = 0.0;
    let ta = std::time::Instant::now();
    let (mut kept, mut rc_items) = allocate_layers(records, params, raw, 0, workers)?;
    alloc_secs += ta.elapsed().as_secs_f64();
    let t2_span = obs::trace::span("tier2").cat("stage");
    let tt = std::time::Instant::now();
    let mut bytes = assemble(image, params, t, records, &kept, workers)?;
    tier2_secs += tt.elapsed().as_secs_f64();
    drop(t2_span);
    let mut retries = 0u64;
    let mut reserves = Vec::new();
    let mut converged = true;
    if let Mode::Lossy { rate } = params.mode {
        // The packet-header overhead is only known after assembly; shrink
        // the payload budget and retry until the target is met.
        let limit = (rate * raw as f64) as usize;
        let mut reserve = 0usize;
        let mut tries = 0;
        while bytes.len() > limit && tries < 8 {
            reserve += (bytes.len() - limit) + 32;
            reserves.push(reserve);
            let ta = std::time::Instant::now();
            let (k, rc) = allocate_layers(records, params, raw, reserve, workers)?;
            alloc_secs += ta.elapsed().as_secs_f64();
            kept = k;
            rc_items += rc;
            let t2_span = obs::trace::span("tier2").cat("stage");
            let tt = std::time::Instant::now();
            bytes = assemble(image, params, t, records, &kept, workers)?;
            tier2_secs += tt.elapsed().as_secs_f64();
            drop(t2_span);
            tries += 1;
        }
        retries = tries;
        converged = bytes.len() <= limit;
    }
    Ok(RateOutcome {
        bytes,
        rc_items,
        retries,
        converged,
        reserves,
        alloc_secs,
        tier2_secs,
    })
}

/// Build the measured [`WorkloadProfile`] from the Tier-1 records and the
/// driver's stage measurements.
pub(crate) fn build_profile(
    image: &Image,
    params: &EncoderParams,
    records: &[BlockRecord],
    out: &RateOutcome,
    stage_times: Vec<StageTime>,
    worker_jobs: Vec<u64>,
) -> WorkloadProfile {
    WorkloadProfile {
        params: *params,
        width: image.width,
        height: image.height,
        comps: image.comps(),
        samples: (image.width * image.height * image.comps()) as u64,
        raw_bytes: image.raw_bytes() as u64,
        levels: level_dims(image.width, image.height, params.levels)
            .into_iter()
            .map(|(w, h)| LevelWork {
                w: w as u64,
                h: h as u64,
            })
            .collect(),
        blocks: records
            .iter()
            .map(|r| {
                let symbols = match params.coder {
                    // Effective MQ Tier-1 work: raw (bypass) bits avoid
                    // the MQ coder's renormalization/byte-out machinery
                    // and cost roughly a quarter of an MQ decision.
                    crate::coder::Coder::Mq => {
                        let (mut mq, mut raw) = (0u64, 0u64);
                        for pi in &r.enc.passes {
                            if ebcot::block::pass_is_raw(
                                params.bypass,
                                pi.pass_type,
                                pi.plane,
                                r.enc.num_planes,
                            ) {
                                raw += pi.symbols;
                            } else {
                                mq += pi.symbols;
                            }
                        }
                        mq + raw / 4
                    }
                    // HT symbols are already work items (quads + MagSgn
                    // emissions + raw-pass sample visits), all of
                    // comparable branch-light cost; the per-item rate
                    // difference lives in the cost model's kernel entry.
                    crate::coder::Coder::Ht => r.enc.total_symbols(),
                };
                BlockWork {
                    samples: (r.enc.w * r.enc.h) as u64,
                    symbols,
                    passes: r.enc.passes.len() as u64,
                    bytes: r.enc.data.len() as u64,
                }
            })
            .collect(),
        rate_control_items: out.rc_items,
        rate_retries: out.retries,
        rate_converged: out.converged,
        output_bytes: out.bytes.len() as u64,
        stage_times,
        worker_jobs,
    }
}

/// Decode a codestream produced by any of this crate's encoders.
pub fn decode(data: &[u8]) -> Result<Image, CodecError> {
    decode_layers(data, usize::MAX)
}

/// Decode only the first `max_layers` quality layers (progressive
/// decoding): the defining JPEG2000 feature that a truncated or partially
/// fetched stream still yields a complete, lower-quality image.
pub fn decode_layers(data: &[u8], max_layers: usize) -> Result<Image, CodecError> {
    decode_inner(data, max_layers, 0)
}

/// Decode at reduced resolution, discarding the `discard_levels` finest
/// resolution levels: the output is the image downscaled by
/// `2^discard_levels` (resolution-progressive decoding).
pub fn decode_resolution(data: &[u8], discard_levels: usize) -> Result<Image, CodecError> {
    decode_inner(data, usize::MAX, discard_levels)
}

/// Decode with both progressive controls at once: keep only the first
/// `max_layers` quality layers (`usize::MAX` = all) *and* discard the
/// `discard_levels` finest resolution levels. The plumbing entry point
/// for the CLI and the serve-level `Decode` request.
pub fn decode_opts(
    data: &[u8],
    max_layers: usize,
    discard_levels: usize,
) -> Result<Image, CodecError> {
    decode_inner(data, max_layers, discard_levels)
}

/// Best-effort decode of a (possibly truncated) codestream prefix.
///
/// The main header must be intact — header damage is unrecoverable and
/// returns the usual typed [`CodecError`]. The packet walk, however, is
/// lenient: parsing stops at the first truncated or undecodable packet,
/// whole quality layers parsed before that point are kept, and the image
/// is reconstructed from them. Returns the image plus the number of
/// complete layers recovered (`0..=layers`); zero recovered layers still
/// yields a valid (flat) image of the right geometry, so the caller can
/// always measure it.
pub fn decode_prefix(data: &[u8]) -> Result<(Image, usize), CodecError> {
    let (parsed, complete_layers) = codestream::parse_prefix(data)?;
    let img = decode_parsed(parsed, usize::MAX, 0, true)?;
    Ok((img, complete_layers))
}

fn decode_inner(
    data: &[u8],
    max_layers: usize,
    discard_levels: usize,
) -> Result<Image, CodecError> {
    decode_parsed(codestream::parse(data)?, max_layers, discard_levels, false)
}

fn decode_parsed(
    parsed: codestream::Parsed,
    max_layers: usize,
    discard_levels: usize,
    lenient: bool,
) -> Result<Image, CodecError> {
    let hdr = &parsed.header;
    let (w, h) = (hdr.width, hdr.height);
    let bands = hdr.bands();
    let cb = hdr.cb_size;

    // Reconstruct quantizer-index planes.
    let mut indices: Vec<AlignedPlane<i32>> = (0..hdr.comps)
        .map(|_| AlignedPlane::new(w, h).map_err(|e| CodecError::Codestream(e.to_string())))
        .collect::<Result<_, _>>()?;
    for blk in &parsed.blocks {
        let b = bands
            .get(blk.band_idx)
            .ok_or_else(|| CodecError::Codestream("band index out of range".into()))?;
        let x0 = b.x0 + blk.bx * cb;
        let y0 = b.y0 + blk.by * cb;
        if x0 >= b.x0 + b.w || y0 >= b.y0 + b.h || blk.comp >= hdr.comps {
            return Err(CodecError::Codestream("block outside band".into()));
        }
        let bw = cb.min(b.x0 + b.w - x0);
        let bh = cb.min(b.y0 + b.h - y0);
        let mp = hdr.max_planes(blk.band_idx) as u32;
        if blk.zero_planes > mp {
            return Err(CodecError::Codestream("zero planes exceed M_b".into()));
        }
        let num_planes = (mp - blk.zero_planes) as u8;
        if num_planes > 31 {
            return Err(CodecError::Codestream(format!(
                "implausible bit-plane count {num_planes}"
            )));
        }
        let layer_idx = max_layers.min(blk.layer_passes.len());
        let mut pass_ends = Vec::with_capacity(blk.pass_lens.len());
        let mut acc = 0usize;
        for &l in &blk.pass_lens {
            acc += l;
            pass_ends.push(acc);
        }
        // On an injected block-decode fault in lenient mode
        // (`decode_prefix`), fall back one whole quality layer at a time
        // — the same commit-only-whole-layers contract the packet walk
        // honors for `decode.packet`. Strict decode surfaces the error.
        let mut li = layer_idx;
        let vals = loop {
            let num_passes = if li == 0 { 0 } else { blk.layer_passes[li - 1] };
            match hdr.coder.block_coder().decode(
                &blk.data,
                &pass_ends,
                num_passes,
                bw,
                bh,
                band_kind(b.band),
                num_planes,
                !hdr.lossless,
                hdr.bypass,
            ) {
                Ok(v) => break v,
                Err(CodecError::Injected(_)) if lenient && li > 0 => li -= 1,
                Err(e) => return Err(e),
            }
        };
        for y in 0..bh {
            for x in 0..bw {
                indices[blk.comp].set(x0 + x, y0 + y, vals[y * bw + x]);
            }
        }
    }

    let depth = hdr.depth;
    let shift = 1i32 << (depth - 1);
    let maxv = ((1u32 << depth) - 1) as i32;
    // Output dimensions after discarding the finest resolution levels.
    let discard = discard_levels.min(hdr.levels);
    let (ow, oh) = {
        let (mut cw, mut ch) = (w, h);
        for _ in 0..discard {
            cw = low_len(cw);
            ch = low_len(ch);
        }
        (cw, ch)
    };
    let mut out =
        Image::new(ow, oh, hdr.comps, depth).map_err(|e| CodecError::Codestream(e.to_string()))?;

    if hdr.lossless {
        let mut planes = indices;
        for p in &mut planes {
            wavelet::transform2d::inverse_2d_53_partial(p, hdr.levels, discard);
        }
        let mut planes: Vec<AlignedPlane<i32>> = planes.iter().map(|p| crop(p, ow, oh)).collect();
        if hdr.mct && hdr.comps == 3 {
            mct::inverse_rct_shift(&mut planes, shift);
        } else {
            for p in &mut planes {
                mct::level_unshift(p, shift);
            }
        }
        for (c, p) in planes.iter().enumerate() {
            for y in 0..oh {
                for x in 0..ow {
                    out.planes[c][y * ow + x] = p.get(x, y).clamp(0, maxv) as u16;
                }
            }
        }
        return Ok(out);
    }

    // Lossy: dequantize then inverse 9/7.
    let steps = match &hdr.quant {
        Quant::Scalar(s) => s.clone(),
        Quant::Reversible(_) => {
            return Err(CodecError::Codestream(
                "lossy stream with reversible quant".into(),
            ))
        }
    };
    let mut planes: Vec<AlignedPlane<f32>> = (0..hdr.comps)
        .map(|_| AlignedPlane::new(w, h).map_err(|e| CodecError::Codestream(e.to_string())))
        .collect::<Result<_, _>>()?;
    for (bi, b) in bands.iter().enumerate() {
        let step = steps
            .get(bi)
            .ok_or_else(|| CodecError::Codestream("missing band step".into()))?;
        let r_bits = depth as i32 + b.band.gain_log2() as i32;
        let delta = step.delta(r_bits);
        for c in 0..hdr.comps {
            for y in b.y0..b.y0 + b.h {
                for x in b.x0..b.x0 + b.w {
                    planes[c].set(x, y, dequantize(indices[c].get(x, y), delta));
                }
            }
        }
    }
    match hdr.arithmetic {
        Arithmetic::Float32 => {
            for p in &mut planes {
                wavelet::transform2d::inverse_2d_97_partial(p, hdr.levels, discard);
            }
        }
        Arithmetic::FixedQ13 => {
            // The fixed inverse has no partial variant; reduced-resolution
            // decode of a fixed-point stream falls back to full inversion
            // followed by DWT-domain cropping via the f32 path.
            let mut q13: Vec<AlignedPlane<i32>> = planes
                .iter()
                .map(|p| p.map(|v| (v * 8192.0).round() as i32))
                .collect();
            for p in &mut q13 {
                wavelet::transform2d::inverse_2d_97_fixed(p, hdr.levels);
            }
            planes = q13.iter().map(|p| p.map(|v| v as f32 / 8192.0)).collect();
            if discard > 0 {
                for p in &mut planes {
                    wavelet::forward_2d_97(p, discard, wavelet::VerticalVariant::Merged);
                }
            }
        }
    }
    let planes: Vec<AlignedPlane<f32>> = planes.iter().map(|p| crop(p, ow, oh)).collect();
    let int_planes: Vec<AlignedPlane<i32>> = if hdr.mct && hdr.comps == 3 {
        mct::inverse_ict_shift(&planes, shift as f32)
    } else {
        planes
            .iter()
            .map(|p| {
                let mut q = p.to_i32_rounded();
                mct::level_unshift(&mut q, shift);
                q
            })
            .collect()
    };
    for (c, p) in int_planes.iter().enumerate() {
        for y in 0..oh {
            for x in 0..ow {
                out.planes[c][y * ow + x] = p.get(x, y).clamp(0, maxv) as u16;
            }
        }
    }
    Ok(out)
}

/// Copy the top-left `cw x ch` region of a plane (no-op-sized copy when
/// the geometry already matches).
fn crop<T: Copy + Default>(p: &AlignedPlane<T>, cw: usize, ch: usize) -> AlignedPlane<T> {
    if cw == p.width() && ch == p.height() {
        return p.clone();
    }
    let mut out = AlignedPlane::<T>::new(cw, ch).expect("crop geometry");
    for y in 0..ch {
        out.row_mut(y).copy_from_slice(&p.row(y)[..cw]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use imgio::synth;

    #[test]
    fn lossless_roundtrip_gray() {
        let im = synth::natural(96, 64, 7);
        let bytes = encode(&im, &EncoderParams::lossless()).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, im);
    }

    #[test]
    fn lossless_roundtrip_rgb() {
        let im = synth::natural_rgb(64, 48, 3);
        let params = EncoderParams {
            levels: 3,
            cb_size: 32,
            ..EncoderParams::lossless()
        };
        let bytes = encode(&im, &params).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, im);
    }

    #[test]
    fn lossless_compresses_natural_images() {
        let im = synth::natural(128, 128, 9);
        let bytes = encode(&im, &EncoderParams::lossless()).unwrap();
        assert!(
            bytes.len() < im.raw_bytes() * 8 / 10,
            "{} vs raw {}",
            bytes.len(),
            im.raw_bytes()
        );
    }

    #[test]
    fn lossy_rate_is_respected_and_quality_reasonable() {
        let im = synth::natural(128, 128, 11);
        for rate in [0.5, 0.25, 0.1] {
            let bytes = encode(&im, &EncoderParams::lossy(rate)).unwrap();
            let limit = (im.raw_bytes() as f64 * rate) as usize;
            assert!(
                bytes.len() <= limit + 64,
                "rate {rate}: {} > {limit}",
                bytes.len()
            );
            let back = decode(&bytes).unwrap();
            let p = imgio::psnr(&im, &back).unwrap();
            assert!(p > 24.0, "rate {rate}: psnr {p}");
        }
    }

    #[test]
    fn lossy_quality_monotone_in_rate() {
        let im = synth::natural(96, 96, 5);
        let mut prev = 0.0;
        for rate in [0.05, 0.15, 0.5] {
            let bytes = encode(&im, &EncoderParams::lossy(rate)).unwrap();
            let back = decode(&bytes).unwrap();
            let p = imgio::psnr(&im, &back).unwrap();
            assert!(p >= prev - 0.2, "rate {rate}: {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn fixed_point_path_works() {
        let im = synth::natural(64, 64, 2);
        let params = EncoderParams {
            arithmetic: Arithmetic::FixedQ13,
            ..EncoderParams::lossy(0.3)
        };
        let bytes = encode(&im, &params).unwrap();
        let back = decode(&bytes).unwrap();
        let p = imgio::psnr(&im, &back).unwrap();
        assert!(p > 25.0, "fixed-point psnr {p}");
    }

    #[test]
    fn fixed_and_float_agree_closely() {
        let im = synth::natural(64, 64, 4);
        let pf = EncoderParams::lossy(0.4);
        let pq = EncoderParams {
            arithmetic: Arithmetic::FixedQ13,
            ..pf
        };
        let f = decode(&encode(&im, &pf).unwrap()).unwrap();
        let q = decode(&encode(&im, &pq).unwrap()).unwrap();
        let p = imgio::psnr(&f, &q).unwrap();
        assert!(p > 35.0, "float-vs-fixed psnr {p}");
    }

    #[test]
    fn progressive_layer_decode_improves_quality() {
        let im = synth::natural(96, 96, 44);
        let params = EncoderParams {
            layers: 4,
            ..EncoderParams::lossy(0.4)
        };
        let bytes = encode(&im, &params).unwrap();
        let mut prev = 0.0f64;
        for l in 1..=4 {
            let partial = decode_layers(&bytes, l).unwrap();
            let p = imgio::psnr(&im, &partial).unwrap();
            assert!(p >= prev - 0.01, "layer {l}: {p} < {prev}");
            prev = p;
        }
        // Full decode equals decode of all layers.
        assert_eq!(decode(&bytes).unwrap(), decode_layers(&bytes, 4).unwrap());
        assert!(prev > 25.0, "final quality {prev}");
    }

    #[test]
    fn prefix_decode_of_full_stream_is_exact() {
        let im = synth::natural(64, 48, 21);
        let params = EncoderParams {
            layers: 3,
            ..EncoderParams::lossy(0.4)
        };
        let bytes = encode(&im, &params).unwrap();
        let (prefix, layers) = decode_prefix(&bytes).unwrap();
        assert_eq!(layers, 3);
        assert_eq!(prefix, decode(&bytes).unwrap());
    }

    #[test]
    fn prefix_decode_of_truncated_stream_degrades_monotonically() {
        let im = synth::natural(80, 64, 33);
        let params = EncoderParams {
            layers: 4,
            ..EncoderParams::lossy(0.5)
        };
        let bytes = encode(&im, &params).unwrap();
        // Walk prefixes from nothing to everything: every successful
        // decode is geometrically valid, layer recovery is monotone, and
        // quality at each recovered layer count matches decode_layers.
        let mut last_layers = 0usize;
        let mut any_partial = false;
        for cut in (0..=bytes.len()).step_by(97) {
            match decode_prefix(&bytes[..cut]) {
                Err(_) => assert_eq!(last_layers, 0, "typed errors only before packets"),
                Ok((img, layers)) => {
                    assert_eq!((img.width, img.height, img.comps()), (80, 64, 1));
                    assert!(layers >= last_layers, "cut {cut}: layer count regressed");
                    if layers > 0 && layers < 4 {
                        any_partial = true;
                        assert_eq!(img, decode_layers(&bytes, layers).unwrap());
                    }
                    last_layers = layers;
                }
            }
        }
        let (full, layers) = decode_prefix(&bytes).unwrap();
        assert_eq!(layers, 4);
        assert_eq!(full, decode(&bytes).unwrap());
        assert!(any_partial, "truncation walk never hit a partial stream");
    }

    #[test]
    fn resolution_progressive_decode() {
        let im = synth::natural(64, 48, 12);
        let bytes = encode(
            &im,
            &EncoderParams {
                levels: 3,
                ..Default::default()
            },
        )
        .unwrap();
        // Full resolution = normal decode.
        assert_eq!(decode_resolution(&bytes, 0).unwrap(), im);
        // Each discarded level halves the dimensions (ceil).
        let half = decode_resolution(&bytes, 1).unwrap();
        assert_eq!((half.width, half.height), (32, 24));
        let eighth = decode_resolution(&bytes, 3).unwrap();
        assert_eq!((eighth.width, eighth.height), (8, 6));
        // Discarding more than `levels` clamps to the deepest LL.
        let floor = decode_resolution(&bytes, 99).unwrap();
        assert_eq!((floor.width, floor.height), (8, 6));
        // The reduced image is a low-pass version: its mean tracks the
        // original's mean closely.
        let mean = |im: &Image| {
            im.planes[0].iter().map(|&v| v as f64).sum::<f64>() / im.planes[0].len() as f64
        };
        assert!((mean(&half) - mean(&im)).abs() < 8.0);
    }

    #[test]
    fn resolution_progressive_decode_lossy_rgb() {
        let im = synth::natural_rgb(64, 64, 9);
        let bytes = encode(
            &im,
            &EncoderParams {
                levels: 3,
                ..EncoderParams::lossy(0.5)
            },
        )
        .unwrap();
        let half = decode_resolution(&bytes, 1).unwrap();
        assert_eq!((half.width, half.height, half.comps()), (32, 32, 3));
        // Downscale the original by simple 2x2 averaging and compare: the
        // DWT LL is a (better) low-pass of the same content.
        let mut ds = Image::new(32, 32, 3, 8).unwrap();
        for c in 0..3 {
            for y in 0..32 {
                for x in 0..32 {
                    let s: u32 = [(0, 0), (1, 0), (0, 1), (1, 1)]
                        .iter()
                        .map(|&(dx, dy)| im.get(c, 2 * x + dx, 2 * y + dy) as u32)
                        .sum();
                    ds.set(c, x, y, (s / 4) as u16);
                }
            }
        }
        let p = imgio::psnr(&ds, &half).unwrap();
        assert!(p > 20.0, "half-res vs box-downscale PSNR {p}");
    }

    #[test]
    fn zero_layers_decodes_to_flat_image() {
        let im = synth::natural(32, 32, 1);
        let bytes = encode(&im, &EncoderParams::lossless()).unwrap();
        let flat = decode_layers(&bytes, 0).unwrap();
        assert_eq!(flat.width, 32);
        // All coefficients dropped: the reconstruction is the level-shift
        // midpoint everywhere.
        assert!(flat.planes[0].iter().all(|&v| v == flat.planes[0][0]));
    }

    #[test]
    fn bypass_mode_roundtrips_and_is_signalled() {
        let im = synth::natural(96, 96, 61);
        let params = EncoderParams {
            bypass: true,
            ..EncoderParams::lossless()
        };
        let bytes = encode(&im, &params).unwrap();
        assert_eq!(decode(&bytes).unwrap(), im);
        let parsed = codestream::parse(&bytes).unwrap();
        assert!(parsed.header.bypass);
        // Lossy bypass too.
        let params = EncoderParams {
            bypass: true,
            ..EncoderParams::lossy(0.2)
        };
        let bytes = encode(&im, &params).unwrap();
        let back = decode(&bytes).unwrap();
        assert!(imgio::psnr(&im, &back).unwrap() > 25.0);
    }

    #[test]
    fn multi_layer_lossless_roundtrip() {
        let im = synth::natural(48, 48, 6);
        let params = EncoderParams {
            layers: 3,
            levels: 3,
            ..EncoderParams::lossless()
        };
        let bytes = encode(&im, &params).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, im);
    }

    #[test]
    fn all_variants_and_sizes_agree() {
        use wavelet::VerticalVariant;
        let im = synth::natural(33, 41, 8);
        let base = EncoderParams {
            levels: 2,
            ..EncoderParams::lossless()
        };
        let reference = encode(&im, &base).unwrap();
        for variant in [
            VerticalVariant::Separate,
            VerticalVariant::Interleaved,
            VerticalVariant::Merged,
        ] {
            let p = EncoderParams { variant, ..base };
            assert_eq!(encode(&im, &p).unwrap(), reference, "{variant:?}");
        }
    }

    #[test]
    fn profile_measures_real_work() {
        let im = synth::natural(64, 64, 1);
        let (bytes, prof) = encode_with_profile(&im, &EncoderParams::lossless()).unwrap();
        assert_eq!(prof.output_bytes as usize, bytes.len());
        assert!(
            prof.tier1_symbols() > prof.samples,
            "EBCOT codes >1 decision/sample"
        );
        assert_eq!(prof.samples, 64 * 64);
        assert_eq!(prof.rate_control_items, 0);
        assert!(!prof.blocks.is_empty());
        let (_, lossy_prof) = encode_with_profile(&im, &EncoderParams::lossy(0.2)).unwrap();
        assert!(lossy_prof.rate_control_items > 0);
    }

    #[test]
    fn extreme_images_roundtrip_lossless() {
        for im in [
            synth::flat(32, 32, 0),
            synth::flat(32, 32, 255),
            synth::checkerboard(33, 31, 1),
            synth::noise(40, 40, 1),
            synth::gradient(17, 64),
        ] {
            let bytes = encode(
                &im,
                &EncoderParams {
                    levels: 3,
                    ..Default::default()
                },
            )
            .unwrap();
            let back = decode(&bytes).unwrap();
            assert_eq!(back, im);
        }
    }

    #[test]
    fn budget_shrink_retries_multiple_times_and_converges() {
        // Probed configuration: the first reserve bump is insufficient, so
        // the shrink loop has to iterate (3 retries at the time of writing;
        // the test only pins >= 2 so R-D-neutral tweaks don't break it).
        let im = synth::noise(64, 64, 6);
        let params = EncoderParams {
            layers: 6,
            cb_size: 32,
            ..EncoderParams::lossy(0.08)
        };
        let t = transform_samples(&im, &params).unwrap();
        let records = tier1_all(&t, &params);
        let raw = im.raw_bytes() as u64;
        let out = rate_control_and_assemble(&im, &params, &t, &records, raw, 1).unwrap();
        assert!(out.retries >= 2, "wanted >=2 retries, got {}", out.retries);
        assert!(out.converged);
        assert!(out.bytes.len() <= (0.08 * raw as f64) as usize);
        // One reserve recorded per retry, growing strictly monotonically.
        assert_eq!(out.reserves.len() as u64, out.retries);
        for w in out.reserves.windows(2) {
            assert!(w[1] > w[0], "reserve not monotonic: {:?}", out.reserves);
        }
        // The whole retry history is worker-count invariant.
        for workers in [2usize, 5, 8] {
            let o = rate_control_and_assemble(&im, &params, &t, &records, raw, workers).unwrap();
            assert_eq!(o.bytes, out.bytes, "workers={workers}");
            assert_eq!(o.retries, out.retries, "workers={workers}");
            assert_eq!(o.reserves, out.reserves, "workers={workers}");
            assert_eq!(o.rc_items, out.rc_items, "workers={workers}");
        }
    }

    #[test]
    fn budget_shrink_exhaustion_is_clean() {
        // An infeasible budget (the fixed marker overhead alone exceeds
        // it): the loop must stop at 8 tries, report non-convergence, and
        // still hand back a decodable stream.
        let im = synth::noise(8, 8, 5);
        let params = EncoderParams::lossy(0.02);
        let t = transform_samples(&im, &params).unwrap();
        let records = tier1_all(&t, &params);
        let raw = im.raw_bytes() as u64;
        let out = rate_control_and_assemble(&im, &params, &t, &records, raw, 1).unwrap();
        assert_eq!(out.retries, 8);
        assert!(!out.converged);
        assert_eq!(out.reserves.len(), 8);
        for w in out.reserves.windows(2) {
            assert!(w[1] > w[0], "reserve not monotonic: {:?}", out.reserves);
        }
        decode(&out.bytes).unwrap();
        // The profile surfaces the exhaustion for callers.
        let (_, prof) = encode_with_profile(&im, &params).unwrap();
        assert_eq!(prof.rate_retries, 8);
        assert!(!prof.rate_converged);
    }

    #[test]
    fn tiny_images_roundtrip() {
        for (w, h) in [(1usize, 1usize), (2, 2), (1, 17), (16, 1), (5, 5)] {
            let mut im = Image::new(w, h, 1, 8).unwrap();
            for (i, v) in im.planes[0].iter_mut().enumerate() {
                *v = ((i * 37) % 256) as u16;
            }
            let params = EncoderParams {
                levels: 1,
                ..EncoderParams::lossless()
            };
            let back = decode(&encode(&im, &params).unwrap()).unwrap();
            assert_eq!(back, im, "{w}x{h}");
        }
    }
}
