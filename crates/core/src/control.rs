//! Cooperative cancellation and deadlines for long-running encodes.
//!
//! An [`EncodeControl`] is shared between the caller (who may cancel) and
//! the encode driver (which polls it at stage boundaries and, during
//! Tier-1, once per code block — the finest-grained unit of the paper's
//! dynamic work queue). Polling is cooperative: a stopped encode returns
//! [`CodecError::Cancelled`] or [`CodecError::Deadline`] at the next
//! checkpoint rather than being interrupted mid-kernel, so no partially
//! written state ever escapes.

use crate::CodecError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Shared stop signal for an in-flight encode: an explicit cancel flag
/// plus an optional hard deadline. `Sync`, so one instance can be polled
/// from every worker thread of a parallel encode while the owner holds a
/// handle to cancel it.
#[derive(Debug, Default)]
pub struct EncodeControl {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl EncodeControl {
    /// A control that never stops the encode unless [`cancel`ed](Self::cancel).
    pub fn new() -> Self {
        Self::default()
    }

    /// A control that stops the encode at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        EncodeControl {
            cancelled: AtomicBool::new(false),
            deadline: Some(deadline),
        }
    }

    /// Request cancellation; the encode stops at its next checkpoint.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been called.
    pub fn cancel_requested(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Checkpoint: `Err(Cancelled)` after [`cancel`](Self::cancel),
    /// `Err(Deadline)` once the deadline has passed, `Ok` otherwise.
    /// Cancellation wins over an expired deadline.
    pub fn check(&self) -> Result<(), CodecError> {
        if self.cancel_requested() {
            return Err(CodecError::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(CodecError::Deadline);
            }
        }
        Ok(())
    }

    /// Non-erroring form of [`check`](Self::check).
    pub fn is_stopped(&self) -> bool {
        self.check().is_err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_control_is_live() {
        let c = EncodeControl::new();
        assert!(c.check().is_ok());
        assert!(!c.is_stopped());
        assert!(c.deadline().is_none());
    }

    #[test]
    fn cancel_stops() {
        let c = EncodeControl::new();
        c.cancel();
        assert!(c.cancel_requested());
        assert!(matches!(c.check(), Err(CodecError::Cancelled)));
    }

    #[test]
    fn expired_deadline_stops() {
        let c = EncodeControl::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(matches!(c.check(), Err(CodecError::Deadline)));
        assert!(c.is_stopped());
    }

    #[test]
    fn future_deadline_is_live_and_cancel_wins() {
        let c = EncodeControl::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(c.check().is_ok());
        c.cancel();
        assert!(matches!(c.check(), Err(CodecError::Cancelled)));
    }
}
