//! Dead-zone scalar quantization and step-size signalling (Annex E).

use wavelet::Band;

/// Number of guard bits signalled in QCD.
pub const GUARD_BITS: u8 = 3;

/// A quantization step size in the standard's (exponent, mantissa) form:
/// `delta = 2^(R - exponent) * (1 + mantissa / 2^11)` where `R` is the
/// band's nominal dynamic range in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepSize {
    /// 5-bit exponent.
    pub exponent: u8,
    /// 11-bit mantissa.
    pub mantissa: u16,
}

impl StepSize {
    /// Encode a real step size relative to dynamic range `r_bits`.
    /// The value is clamped into the representable range.
    pub fn from_delta(delta: f64, r_bits: i32) -> StepSize {
        let delta = delta.max(1e-12);
        // delta = 2^(r - e) * (1 + m/2048)  =>  log2(delta) - r = -e + log2(1+m/2048)
        let t = delta.log2() - r_bits as f64;
        let mut e = (-t).ceil() as i32;
        let mut frac = delta / f64::powi(2.0, r_bits - e) - 1.0;
        if frac < 0.0 {
            e += 1;
            frac = delta / f64::powi(2.0, r_bits - e) - 1.0;
        }
        let e = e.clamp(0, 31);
        let m = ((frac * 2048.0).round() as i64).clamp(0, 2047);
        StepSize {
            exponent: e as u8,
            mantissa: m as u16,
        }
    }

    /// The real step size for dynamic range `r_bits`.
    pub fn delta(&self, r_bits: i32) -> f64 {
        f64::powi(2.0, r_bits - self.exponent as i32) * (1.0 + self.mantissa as f64 / 2048.0)
    }

    /// Pack as the QCD 16-bit field.
    pub fn pack(&self) -> u16 {
        ((self.exponent as u16) << 11) | self.mantissa
    }

    /// Unpack from the QCD 16-bit field.
    pub fn unpack(v: u16) -> StepSize {
        StepSize {
            exponent: (v >> 11) as u8,
            mantissa: v & 0x7FF,
        }
    }
}

/// Choose the step size for a band: `base_step / basis norm`, so a unit
/// quantization error costs the same image-domain MSE in every band.
pub fn band_delta(base_step: f64, band: Band, level: usize) -> f64 {
    base_step / wavelet::norms::l2_norm_97(band, level)
}

/// Dead-zone quantizer: `q = sign(v) * floor(|v| / delta)`.
#[inline]
pub fn quantize(v: f32, delta: f64) -> i32 {
    let q = (v.abs() as f64 / delta) as i64;
    let q = q.clamp(0, i32::MAX as i64) as i32;
    if v < 0.0 {
        -q
    } else {
        q
    }
}

/// Mid-point dequantizer (reconstruction parameter 1/2).
#[inline]
pub fn dequantize(q: i32, delta: f64) -> f32 {
    if q == 0 {
        0.0
    } else {
        let m = q.unsigned_abs() as f64 + 0.5;
        let v = m * delta;
        if q < 0 {
            -v as f32
        } else {
            v as f32
        }
    }
}

/// Maximum magnitude bit planes for a band with the signalled exponent:
/// `M_b = guard + exponent - 1` (Annex E equation E-2).
pub fn max_bitplanes(exponent: u8) -> u8 {
    GUARD_BITS + exponent - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stepsize_roundtrips_through_packing() {
        for (delta, r) in [(0.5f64, 9), (0.001, 10), (2.0, 8), (0.125, 12)] {
            let s = StepSize::from_delta(delta, r);
            let s2 = StepSize::unpack(s.pack());
            assert_eq!(s, s2);
            let back = s2.delta(r);
            assert!(
                (back / delta - 1.0).abs() < 1e-3,
                "delta {delta} r {r}: back {back}"
            );
        }
    }

    #[test]
    fn stepsize_representation_error_is_small() {
        for i in 1..100 {
            let delta = i as f64 * 0.013;
            let s = StepSize::from_delta(delta, 10);
            let back = s.delta(10);
            assert!((back / delta - 1.0).abs() < 1.0 / 2048.0 + 1e-6);
        }
    }

    #[test]
    fn quantize_dequantize_bounds() {
        let delta = 0.75;
        for v in [-100.5f32, -1.0, -0.2, 0.0, 0.2, 0.74, 0.76, 3.0, 1000.0] {
            let q = quantize(v, delta);
            let r = dequantize(q, delta);
            if q != 0 {
                // Mid-point reconstruction error < delta/2.
                assert!(
                    (r - v).abs() <= delta as f32 / 2.0 + 1e-5,
                    "v={v} q={q} r={r}"
                );
            } else {
                assert!(v.abs() < delta as f32);
                assert_eq!(r, 0.0);
            }
        }
    }

    #[test]
    fn quantize_sign_symmetry() {
        for v in [0.3f32, 1.7, 99.2] {
            assert_eq!(quantize(v, 0.5), -quantize(-v, 0.5));
        }
    }

    #[test]
    fn band_deltas_grow_with_depth() {
        // Deeper bands have larger basis norms, hence smaller deltas.
        let d1 = band_delta(1.0, Band::HH, 1);
        let d3 = band_delta(1.0, Band::HH, 3);
        assert!(d3 < d1);
    }

    #[test]
    fn max_bitplanes_formula() {
        assert_eq!(max_bitplanes(10), GUARD_BITS + 9);
    }
}
